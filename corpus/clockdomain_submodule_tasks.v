// cascade-verify regression
// found: engine=refnl kind=Tasks cycle=7 detail=display gated on a submodule register never fired while the tree-walking oracle printed every eighth cycle (second clock domain, never stepped)
// replay: outputs=o0 cycles=40 stim_seed=0x000000000000002b
module T(input wire clk, input wire [15:0] a, input wire [15:0] b, output wire [15:0] o0);
  wire [15:0] s;
  Sub u(.clk(clk), .o(s));
  reg [15:0] r0 = 0;
  always @(posedge clk) begin
    r0 <= r0 + 1;
    if (s[2:0] == 3'd7) $display("s=%d %h", s, r0[7:0]);
  end
  assign o0 = r0;
endmodule

module Sub(input wire clk, output wire [15:0] o);
  reg [15:0] n = 0;
  always @(posedge clk) n <= n + 1;
  assign o = n;
endmodule
