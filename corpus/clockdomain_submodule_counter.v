// cascade-verify regression
// found: engine=netlist kind=Output cycle=0 detail=o0: oracle counting vs frozen (the top-level clk input's placeholder net stayed Undriven when the real input net was minted, orphaning the parent clock domain)
// replay: outputs=o0 cycles=32 stim_seed=0x00000000000000a5
module T(input wire clk, input wire [15:0] a, input wire [15:0] b, output wire [15:0] o0);
  wire [15:0] s;
  Sub u(.clk(clk), .inc(a), .o(s));
  reg [15:0] r0 = 0;
  always @(posedge clk) r0 <= r0 + 1;
  assign o0 = r0 + s;
endmodule

module Sub(input wire clk, input wire [15:0] inc, output wire [15:0] o);
  reg [15:0] n = 0;
  always @(posedge clk) n <= n + inc;
  assign o = n;
endmodule
