// cascade-verify regression
// found: engine=refnl kind=Output cycle=1 detail=o0: oracle sum of fifo dout vs frozen 0 (hierarchy flattening wired VFifo's clk through a ZExt alias, landing the submodule's registers in a second clock domain the netlist engines never stepped)
// replay: outputs=o0,of cycles=24 stim_seed=0x0000000000000007
module T(input wire clk, input wire [15:0] a, input wire [15:0] b, output wire [15:0] o0, output wire [15:0] of);
  reg [15:0] r0 = 0;
  reg [7:0] cc = 0;
  wire [15:0] fd; wire [3:0] fcnt;
  VFifo vf(.clk(clk), .din(a), .push(a[0]), .pop(b[0]), .dout(fd), .count(fcnt));
  always @(posedge clk) begin
    cc <= cc + 1;
    r0 <= (r0 + fd);
  end
  assign o0 = r0;
  assign of = fd + fcnt;
endmodule

module VFifo(input wire clk, input wire [15:0] din, input wire push, input wire pop,
             output wire [15:0] dout, output wire [3:0] count);
  reg [15:0] q [0:7];
  reg [2:0] rd = 0;
  reg [2:0] wr = 0;
  reg [3:0] cnt = 0;
  always @(posedge clk) begin
    if (push && (cnt < 8) && !(pop && (cnt > 0))) begin
      q[wr[2:0]] <= din; wr <= wr + 1; cnt <= cnt + 1;
    end
    if (pop && (cnt > 0) && !(push && (cnt < 8))) begin
      rd <= rd + 1; cnt <= cnt - 1;
    end
    if (push && (cnt < 8) && pop && (cnt > 0)) begin
      q[wr[2:0]] <= din; wr <= wr + 1; rd <= rd + 1;
    end
  end
  assign dout = q[rd[2:0]];
  assign count = cnt;
endmodule
