// cascade-verify regression
// found: engine=swc kind=Output cycle=2 detail=harness drove the oracle poke-settle-tick but swc poke-tick; the chained assign a->w0->din feeding the FIFO write port lost the race with the clock edge and captured stale din (fixed by settling swc before the edge)
// replay: outputs=o0,of cycles=5 stim_seed=0x119e56f7818f36b4
module T(input wire clk, input wire [15:0] a, input wire [15:0] b, output wire [15:0] o0, output wire [15:0] of);
  reg [15:0] r0 = 1;
  reg [7:0] cc = 0;
  wire [15:0] w0; assign w0 = (r0 | a);
  wire [15:0] fd; wire [3:0] fcnt;
  VFifo vf(.clk(clk), .din((9'h93 & w0)), .push(b[0]), .pop(cc[0]), .dout(fd), .count(fcnt));
  always @(posedge clk) begin
    cc <= cc + 1;
  end
  assign o0 = r0;
  assign of = fd + fcnt;
endmodule

module VFifo(input wire clk, input wire [15:0] din, input wire push, input wire pop,
             output wire [15:0] dout, output wire [3:0] count);
  reg [15:0] q [0:7];
  reg [2:0] rd = 0;
  reg [2:0] wr = 0;
  reg [3:0] cnt = 0;
  always @(posedge clk) begin
    if (push && (cnt < 8) && !(pop && (cnt > 0))) begin
      q[wr[2:0]] <= din; wr <= wr + 1; cnt <= cnt + 1;
    end
    if (pop && (cnt > 0) && !(push && (cnt < 8))) begin
      rd <= rd + 1; cnt <= cnt - 1;
    end
    if (push && (cnt < 8) && pop && (cnt > 0)) begin
      q[wr[2:0]] <= din; wr <= wr + 1; rd <= rd + 1;
    end
  end
  assign dout = q[rd[2:0]];
  assign count = cnt;
endmodule
