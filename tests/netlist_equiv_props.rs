//! Property-based equivalence of the compiled word-arena evaluator
//! ([`NetlistSim`]) against the event-driven interpreter ([`Simulator`]) and
//! the interpretive netlist walker ([`ReferenceSim`]) on randomized
//! synthesizable modules, *including system-task firings*: the peephole
//! passes (copy propagation, compare/select fusion, rotate fusion, cone
//! evaluation, DCE) and the no-mark dense-commit streaks must never change
//! an observable value, a `$display` rendering, or when `$finish` lands.
//!
//! Randomized with the in-tree deterministic [`Prng`] (no registry access in
//! the build environment, so `proptest` is unavailable). Every assertion
//! carries the case seed; rerun a failure by fixing the seed locally.

use cascade_bits::{Bits, Prng};
use cascade_netlist::{synthesize, NetlistSim, ReferenceSim, TaskKind};
use cascade_sim::{elaborate, library_from_source, Design, SimEvent, Simulator};
use std::sync::Arc;

/// A random expression over inputs `a`/`b`, regs `r0..r2`, and literals.
fn arb_expr(rng: &mut Prng, depth: u32) -> String {
    if depth == 0 {
        match rng.below(6) {
            0 => rng.range(1, 0xffff).to_string(),
            1 => {
                let w = rng.range(1, 16);
                let v = rng.next_u64() & ((1u64 << w) - 1);
                format!("{w}'h{v:x}")
            }
            2 => "a".to_string(),
            3 => "b".to_string(),
            4 => format!("r{}", rng.below(3)),
            _ => "cc".to_string(),
        }
    } else {
        match rng.below(6) {
            0 => {
                let op = *rng.pick(&["+", "-", "*", "&", "|", "^", "<<", ">>", "==", "<"]);
                let l = arb_expr(rng, depth - 1);
                let r = arb_expr(rng, depth - 1);
                format!("({l} {op} {r})")
            }
            1 => {
                let c = arb_expr(rng, depth - 1);
                let t = arb_expr(rng, depth - 1);
                let f = arb_expr(rng, depth - 1);
                format!("({c} ? {t} : {f})")
            }
            2 => format!("(~{})", arb_expr(rng, depth - 1)),
            3 => format!("{{2{{{}}}}}", arb_expr(rng, depth - 1)),
            4 => {
                let l = arb_expr(rng, depth - 1);
                let r = arb_expr(rng, depth - 1);
                format!("{{{l}, {r}}}")
            }
            _ => {
                // A case over a narrow scrutinee selecting literals: the
                // shape the cone-evaluation pass turns into table probes.
                let s = arb_expr(rng, 0);
                let v: Vec<u64> = (0..3).map(|_| rng.next_u64() & 0xffff).collect();
                format!(
                    "(({s}[1:0] == 2'd0) ? 16'd{} : ({s}[1:0] == 2'd1) ? 16'd{} : 16'd{})",
                    v[0], v[1], v[2]
                )
            }
        }
    }
}

/// A random guarded-update statement over regs `r0..r2`.
fn arb_seq_stmt(rng: &mut Prng, depth: u32) -> String {
    let assign = |rng: &mut Prng| {
        let r = rng.below(3);
        let e = arb_expr(rng, 1);
        format!("r{r} <= {e};")
    };
    if depth == 0 {
        return assign(rng);
    }
    match rng.below(7) {
        0..=2 => assign(rng),
        3 | 4 => {
            let c = arb_expr(rng, 1);
            let t = arb_seq_stmt(rng, depth - 1);
            let e = arb_seq_stmt(rng, depth - 1);
            format!("if ({c}) begin {t} end else begin {e} end")
        }
        5 => {
            let scr = arb_expr(rng, 0);
            let x = arb_seq_stmt(rng, depth - 1);
            let y = arb_seq_stmt(rng, depth - 1);
            let z = arb_seq_stmt(rng, depth - 1);
            format!(
                "case ({scr}[1:0]) 2'd0: begin {x} end 2'd1: begin {y} end default: begin {z} end endcase"
            )
        }
        _ => {
            let x = arb_seq_stmt(rng, depth - 1);
            let y = arb_seq_stmt(rng, depth - 1);
            format!("begin {x} {y} end")
        }
    }
}

/// A random clocked module with three regs, a cycle counter, a conditional
/// `$display` over live state, and a `$finish` somewhere in the run.
fn arb_module(rng: &mut Prng) -> String {
    let body = arb_seq_stmt(rng, 2);
    let disp_cond = format!("r{}[{}]", rng.below(3), rng.below(4));
    let finish_at = rng.range(3, 12);
    format!(
        "module T(input wire clk, input wire [15:0] a, input wire [15:0] b,\n\
         output wire [15:0] o0, output wire [15:0] o1, output wire [15:0] o2);\n\
         reg [15:0] r0 = 1; reg [15:0] r1 = 2; reg [15:0] r2 = 3;\n\
         reg [7:0] cc = 0;\n\
         always @(posedge clk) begin\n\
           cc <= cc + 1;\n\
           {body}\n\
           if ({disp_cond}) $display(\"s=%d %h\", r0, r1);\n\
           if (cc == {finish_at}) $finish;\n\
         end\n\
         assign o0 = r0; assign o1 = r1; assign o2 = r2;\nendmodule"
    )
}

fn design_of(src: &str) -> Arc<Design> {
    let lib = library_from_source(src).expect("generated module parses");
    Arc::new(elaborate("T", &lib, &Default::default()).expect("elaborates"))
}

const OUTS: [&str; 3] = ["o0", "o1", "o2"];

/// Compiled evaluator vs the event-driven simulator, cycle by cycle:
/// output values, rendered `$display` text, and the `$finish` cycle.
#[test]
fn compiled_matches_simulator_with_tasks() {
    for seed in 0..48 {
        let mut rng = Prng::new(seed);
        let src = arb_module(&mut rng);
        let design = design_of(&src);
        let mut sim = Simulator::new(Arc::clone(&design));
        sim.initialize().unwrap();
        sim.drain_events();
        let nl = Arc::new(synthesize(&design).expect("synthesize"));
        let mut hw = NetlistSim::new(Arc::clone(&nl)).expect("levelize");
        for cycle in 0..20 {
            if sim.is_finished() {
                break;
            }
            let a = Bits::from_u64(16, rng.next_u64() & 0xffff);
            let b = Bits::from_u64(16, rng.next_u64() & 0xffff);
            sim.poke("a", a.clone());
            sim.poke("b", b.clone());
            sim.settle().unwrap();
            hw.set_by_name("a", a);
            hw.set_by_name("b", b);
            sim.tick("clk").unwrap();
            hw.step_clock(0);
            for out in OUTS {
                assert_eq!(
                    sim.peek(out),
                    hw.get_by_name(out).unwrap(),
                    "{out} diverged at cycle {cycle} (seed {seed})\n{src}"
                );
            }
            let sim_log: Vec<String> = sim
                .drain_events()
                .into_iter()
                .map(|e| match e {
                    SimEvent::Display(s) | SimEvent::Write(s) | SimEvent::Fatal(s) => s,
                    SimEvent::Finish => "$finish".into(),
                })
                .collect();
            let hw_log: Vec<String> = hw
                .drain_tasks()
                .into_iter()
                .map(|f| match f.kind {
                    TaskKind::Finish => "$finish".into(),
                    _ => f.text,
                })
                .collect();
            assert_eq!(
                sim_log, hw_log,
                "task firings diverged at cycle {cycle} (seed {seed})\n{src}"
            );
            assert_eq!(
                sim.is_finished(),
                hw.is_finished(),
                "$finish timing diverged at cycle {cycle} (seed {seed})\n{src}"
            );
        }
    }
}

/// Compiled evaluator vs the interpretive netlist walker on the same
/// netlist object: identical outputs and identical [`TaskFire`] streams.
///
/// [`TaskFire`]: cascade_netlist::TaskFire
#[test]
fn compiled_matches_reference_walker() {
    for seed in 0..48 {
        let mut rng = Prng::new(seed + 1000);
        let src = arb_module(&mut rng);
        let design = design_of(&src);
        let nl = Arc::new(synthesize(&design).expect("synthesize"));
        let mut hw = NetlistSim::new(Arc::clone(&nl)).expect("levelize");
        let mut rf = ReferenceSim::new(Arc::clone(&nl)).expect("levelize");
        for cycle in 0..20 {
            let a = Bits::from_u64(16, rng.next_u64() & 0xffff);
            let b = Bits::from_u64(16, rng.next_u64() & 0xffff);
            hw.set_by_name("a", a.clone());
            hw.set_by_name("b", b.clone());
            rf.set_by_name("a", a);
            rf.set_by_name("b", b);
            hw.step_clock(0);
            rf.step_clock(0);
            for out in OUTS {
                assert_eq!(
                    rf.get_by_name(out).unwrap(),
                    hw.get_by_name(out).unwrap(),
                    "{out} diverged at cycle {cycle} (seed {seed})\n{src}"
                );
            }
            assert_eq!(
                rf.drain_tasks(),
                hw.drain_tasks(),
                "task firings diverged at cycle {cycle} (seed {seed})\n{src}"
            );
            assert_eq!(rf.is_finished(), hw.is_finished(), "seed {seed}\n{src}");
        }
    }
}

/// The batched open-loop path (`run_cycles` with its no-mark dense-commit
/// streaks) produces the same state and task stream as single stepping.
#[test]
fn batched_run_matches_single_stepping() {
    for seed in 0..32 {
        let mut rng = Prng::new(seed + 2000);
        let src = arb_module(&mut rng);
        let design = design_of(&src);
        let nl = Arc::new(synthesize(&design).expect("synthesize"));
        let mut batched = NetlistSim::new(Arc::clone(&nl)).expect("levelize");
        let mut stepped = NetlistSim::new(Arc::clone(&nl)).expect("levelize");
        let a = Bits::from_u64(16, rng.next_u64() & 0xffff);
        let b = Bits::from_u64(16, rng.next_u64() & 0xffff);
        for sim in [&mut batched, &mut stepped] {
            sim.set_by_name("a", a.clone());
            sim.set_by_name("b", b.clone());
        }
        // Long enough to enter and leave a 64-cycle dense streak.
        let n = rng.range(100, 400);
        let done_batched = batched.run_cycles(n, usize::MAX);
        let mut done_stepped = 0;
        for _ in 0..n {
            if stepped.is_finished() {
                break;
            }
            stepped.step_clock(0);
            done_stepped += 1;
        }
        assert_eq!(
            done_batched, done_stepped,
            "cycle counts diverged (seed {seed})\n{src}"
        );
        for out in OUTS {
            assert_eq!(
                stepped.get_by_name(out).unwrap(),
                batched.get_by_name(out).unwrap(),
                "{out} diverged after {n} cycles (seed {seed})\n{src}"
            );
        }
        assert_eq!(
            stepped.drain_tasks(),
            batched.drain_tasks(),
            "task streams diverged (seed {seed})\n{src}"
        );
    }
}
