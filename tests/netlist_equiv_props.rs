//! Property-based equivalence of the compiled word-arena evaluator
//! ([`NetlistSim`]) against the event-driven interpreter ([`Simulator`]) and
//! the interpretive netlist walker ([`ReferenceSim`]) on randomized
//! synthesizable modules, *including system-task firings*: the peephole
//! passes (copy propagation, compare/select fusion, rotate fusion, cone
//! evaluation, DCE) and the no-mark dense-commit streaks must never change
//! an observable value, a `$display` rendering, or when `$finish` lands.
//!
//! Randomized with the in-tree deterministic [`Prng`] (no registry access in
//! the build environment, so `proptest` is unavailable). Every assertion
//! carries the case seed; rerun a failure by fixing the seed locally.

use cascade_bits::{Bits, Prng};
use cascade_netlist::{synthesize, BatchHarness, NetlistSim, ReferenceSim, TaskFire, TaskKind};
use cascade_sim::{elaborate, library_from_source, Design, SimEvent, Simulator};
use std::sync::Arc;

/// A random expression over inputs `a`/`b`, regs `r0..r2`, and literals.
fn arb_expr(rng: &mut Prng, depth: u32) -> String {
    if depth == 0 {
        match rng.below(6) {
            0 => rng.range(1, 0xffff).to_string(),
            1 => {
                let w = rng.range(1, 16);
                let v = rng.next_u64() & ((1u64 << w) - 1);
                format!("{w}'h{v:x}")
            }
            2 => "a".to_string(),
            3 => "b".to_string(),
            4 => format!("r{}", rng.below(3)),
            _ => "cc".to_string(),
        }
    } else {
        match rng.below(6) {
            0 => {
                let op = *rng.pick(&["+", "-", "*", "&", "|", "^", "<<", ">>", "==", "<"]);
                let l = arb_expr(rng, depth - 1);
                let r = arb_expr(rng, depth - 1);
                format!("({l} {op} {r})")
            }
            1 => {
                let c = arb_expr(rng, depth - 1);
                let t = arb_expr(rng, depth - 1);
                let f = arb_expr(rng, depth - 1);
                format!("({c} ? {t} : {f})")
            }
            2 => format!("(~{})", arb_expr(rng, depth - 1)),
            3 => format!("{{2{{{}}}}}", arb_expr(rng, depth - 1)),
            4 => {
                let l = arb_expr(rng, depth - 1);
                let r = arb_expr(rng, depth - 1);
                format!("{{{l}, {r}}}")
            }
            _ => {
                // A case over a narrow scrutinee selecting literals: the
                // shape the cone-evaluation pass turns into table probes.
                let s = arb_expr(rng, 0);
                let v: Vec<u64> = (0..3).map(|_| rng.next_u64() & 0xffff).collect();
                format!(
                    "(({s}[1:0] == 2'd0) ? 16'd{} : ({s}[1:0] == 2'd1) ? 16'd{} : 16'd{})",
                    v[0], v[1], v[2]
                )
            }
        }
    }
}

/// A random guarded-update statement over regs `r0..r2`.
fn arb_seq_stmt(rng: &mut Prng, depth: u32) -> String {
    let assign = |rng: &mut Prng| {
        let r = rng.below(3);
        let e = arb_expr(rng, 1);
        format!("r{r} <= {e};")
    };
    if depth == 0 {
        return assign(rng);
    }
    match rng.below(7) {
        0..=2 => assign(rng),
        3 | 4 => {
            let c = arb_expr(rng, 1);
            let t = arb_seq_stmt(rng, depth - 1);
            let e = arb_seq_stmt(rng, depth - 1);
            format!("if ({c}) begin {t} end else begin {e} end")
        }
        5 => {
            let scr = arb_expr(rng, 0);
            let x = arb_seq_stmt(rng, depth - 1);
            let y = arb_seq_stmt(rng, depth - 1);
            let z = arb_seq_stmt(rng, depth - 1);
            format!(
                "case ({scr}[1:0]) 2'd0: begin {x} end 2'd1: begin {y} end default: begin {z} end endcase"
            )
        }
        _ => {
            let x = arb_seq_stmt(rng, depth - 1);
            let y = arb_seq_stmt(rng, depth - 1);
            format!("begin {x} {y} end")
        }
    }
}

/// A random clocked module with three regs, a cycle counter, a conditional
/// `$display` over live state, and a `$finish` somewhere in the run.
fn arb_module(rng: &mut Prng) -> String {
    let body = arb_seq_stmt(rng, 2);
    let disp_cond = format!("r{}[{}]", rng.below(3), rng.below(4));
    let finish_at = rng.range(3, 12);
    format!(
        "module T(input wire clk, input wire [15:0] a, input wire [15:0] b,\n\
         output wire [15:0] o0, output wire [15:0] o1, output wire [15:0] o2);\n\
         reg [15:0] r0 = 1; reg [15:0] r1 = 2; reg [15:0] r2 = 3;\n\
         reg [7:0] cc = 0;\n\
         always @(posedge clk) begin\n\
           cc <= cc + 1;\n\
           {body}\n\
           if ({disp_cond}) $display(\"s=%d %h\", r0, r1);\n\
           if (cc == {finish_at}) $finish;\n\
         end\n\
         assign o0 = r0; assign o1 = r1; assign o2 = r2;\nendmodule"
    )
}

fn design_of(src: &str) -> Arc<Design> {
    let lib = library_from_source(src).expect("generated module parses");
    Arc::new(elaborate("T", &lib, &Default::default()).expect("elaborates"))
}

const OUTS: [&str; 3] = ["o0", "o1", "o2"];

/// Compiled evaluator vs the event-driven simulator, cycle by cycle:
/// output values, rendered `$display` text, and the `$finish` cycle.
#[test]
fn compiled_matches_simulator_with_tasks() {
    for seed in 0..48 {
        let mut rng = Prng::new(seed);
        let src = arb_module(&mut rng);
        let design = design_of(&src);
        let mut sim = Simulator::new(Arc::clone(&design));
        sim.initialize().unwrap();
        sim.drain_events();
        let nl = Arc::new(synthesize(&design).expect("synthesize"));
        let mut hw = NetlistSim::new(Arc::clone(&nl)).expect("levelize");
        for cycle in 0..20 {
            if sim.is_finished() {
                break;
            }
            let a = Bits::from_u64(16, rng.next_u64() & 0xffff);
            let b = Bits::from_u64(16, rng.next_u64() & 0xffff);
            sim.poke("a", a.clone());
            sim.poke("b", b.clone());
            sim.settle().unwrap();
            hw.set_by_name("a", a);
            hw.set_by_name("b", b);
            sim.tick("clk").unwrap();
            hw.step_clock(0);
            for out in OUTS {
                assert_eq!(
                    sim.peek(out),
                    hw.get_by_name(out).unwrap(),
                    "{out} diverged at cycle {cycle} (seed {seed})\n{src}"
                );
            }
            let sim_log: Vec<String> = sim
                .drain_events()
                .into_iter()
                .map(|e| match e {
                    SimEvent::Display(s) | SimEvent::Write(s) | SimEvent::Fatal(s) => s,
                    SimEvent::Finish => "$finish".into(),
                })
                .collect();
            let hw_log: Vec<String> = hw
                .drain_tasks()
                .into_iter()
                .map(|f| match f.kind {
                    TaskKind::Finish => "$finish".into(),
                    _ => f.text,
                })
                .collect();
            assert_eq!(
                sim_log, hw_log,
                "task firings diverged at cycle {cycle} (seed {seed})\n{src}"
            );
            assert_eq!(
                sim.is_finished(),
                hw.is_finished(),
                "$finish timing diverged at cycle {cycle} (seed {seed})\n{src}"
            );
        }
    }
}

/// Compiled evaluator vs the interpretive netlist walker on the same
/// netlist object: identical outputs and identical [`TaskFire`] streams.
///
/// [`TaskFire`]: cascade_netlist::TaskFire
#[test]
fn compiled_matches_reference_walker() {
    for seed in 0..48 {
        let mut rng = Prng::new(seed + 1000);
        let src = arb_module(&mut rng);
        let design = design_of(&src);
        let nl = Arc::new(synthesize(&design).expect("synthesize"));
        let mut hw = NetlistSim::new(Arc::clone(&nl)).expect("levelize");
        let mut rf = ReferenceSim::new(Arc::clone(&nl)).expect("levelize");
        for cycle in 0..20 {
            let a = Bits::from_u64(16, rng.next_u64() & 0xffff);
            let b = Bits::from_u64(16, rng.next_u64() & 0xffff);
            hw.set_by_name("a", a.clone());
            hw.set_by_name("b", b.clone());
            rf.set_by_name("a", a);
            rf.set_by_name("b", b);
            hw.step_clock(0);
            rf.step_clock(0);
            for out in OUTS {
                assert_eq!(
                    rf.get_by_name(out).unwrap(),
                    hw.get_by_name(out).unwrap(),
                    "{out} diverged at cycle {cycle} (seed {seed})\n{src}"
                );
            }
            assert_eq!(
                rf.drain_tasks(),
                hw.drain_tasks(),
                "task firings diverged at cycle {cycle} (seed {seed})\n{src}"
            );
            assert_eq!(rf.is_finished(), hw.is_finished(), "seed {seed}\n{src}");
        }
    }
}

/// Like [`arb_module`], but `$finish` depends on the *inputs*, so the
/// lanes of a batch (which share the module yet see different stimulus)
/// finish on different edges — the interesting case for per-lane
/// commit-skip and task suppression.
fn arb_batch_module(rng: &mut Prng) -> String {
    let body = arb_seq_stmt(rng, 2);
    let disp_cond = format!("r{}[{}]", rng.below(3), rng.below(4));
    let min_at = rng.range(3, 8);
    let bit = rng.below(4);
    format!(
        "module T(input wire clk, input wire [15:0] a, input wire [15:0] b,\n\
         output wire [15:0] o0, output wire [15:0] o1, output wire [15:0] o2);\n\
         reg [15:0] r0 = 1; reg [15:0] r1 = 2; reg [15:0] r2 = 3;\n\
         reg [7:0] cc = 0;\n\
         wire [15:0] fsel;\n\
         assign fsel = a ^ b;\n\
         always @(posedge clk) begin\n\
           cc <= cc + 1;\n\
           {body}\n\
           if ({disp_cond}) $display(\"s=%d %h\", r0, r1);\n\
           if (cc >= {min_at} && fsel[{bit}]) $finish;\n\
         end\n\
         assign o0 = r0; assign o1 = r1; assign o2 = r2;\nendmodule"
    )
}

/// Test-harness batch width: `CASCADE_TEST_BATCH_WIDTH` (CI's
/// parallel-smoke job sets 8) or 4.
fn test_batch_width() -> u32 {
    std::env::var("CASCADE_TEST_BATCH_WIDTH")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

/// Worker threads applied to every batch harness under test:
/// `CASCADE_TEST_EVAL_THREADS` (CI's parallel-smoke job sets 4) or 1.
fn test_eval_threads() -> u32 {
    std::env::var("CASCADE_TEST_EVAL_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// A width-N batched run is bit-identical, lane for lane, to N sequential
/// single-vector runs of the same netlist: outputs every cycle, rendered
/// task text, the edge `$finish` lands on, and the per-lane cycle count.
#[test]
fn batch_lanes_match_sequential_runs() {
    let width = test_batch_width();
    let threads = test_eval_threads();
    for seed in 0..24 {
        let mut rng = Prng::new(seed + 3000);
        let src = arb_batch_module(&mut rng);
        let design = design_of(&src);
        let nl = Arc::new(synthesize(&design).expect("synthesize"));
        let mut batch = BatchHarness::new(Arc::clone(&nl), width).expect("levelize");
        if threads > 1 {
            batch.set_eval_threads(threads);
        }
        let mut scalars: Vec<NetlistSim> = (0..width)
            .map(|_| NetlistSim::new(Arc::clone(&nl)).expect("levelize"))
            .collect();
        // Distinct precomputed stimulus per lane and cycle.
        let stim: Vec<Vec<(Bits, Bits)>> = (0..width)
            .map(|_| {
                (0..20)
                    .map(|_| {
                        (
                            Bits::from_u64(16, rng.next_u64() & 0xffff),
                            Bits::from_u64(16, rng.next_u64() & 0xffff),
                        )
                    })
                    .collect()
            })
            .collect();
        #[allow(clippy::needless_range_loop)] // lock-step over cycles, not one stim row
        for cycle in 0..20 {
            for lane in 0..width {
                let (a, b) = &stim[lane as usize][cycle];
                batch.set_lane_by_name("a", lane, a.clone());
                batch.set_lane_by_name("b", lane, b.clone());
                let sim = &mut scalars[lane as usize];
                if !sim.is_finished() {
                    sim.set_by_name("a", a.clone());
                    sim.set_by_name("b", b.clone());
                }
            }
            for sim in scalars.iter_mut() {
                if !sim.is_finished() {
                    sim.step_clock(0);
                }
            }
            batch.step_clock(0);
            let mut per_lane: Vec<Vec<TaskFire>> = vec![Vec::new(); width as usize];
            for (lane, fire) in batch.drain_tasks() {
                per_lane[lane as usize].push(fire);
            }
            for lane in 0..width {
                for out in OUTS {
                    assert_eq!(
                        scalars[lane as usize].get_by_name(out).unwrap(),
                        batch.get_lane_by_name(out, lane).unwrap(),
                        "{out} lane {lane} diverged at cycle {cycle} (seed {seed})\n{src}"
                    );
                }
                assert_eq!(
                    scalars[lane as usize].drain_tasks(),
                    per_lane[lane as usize],
                    "task firings lane {lane} diverged at cycle {cycle} (seed {seed})\n{src}"
                );
                assert_eq!(
                    scalars[lane as usize].is_finished(),
                    batch.is_finished(lane),
                    "$finish lane {lane} diverged at cycle {cycle} (seed {seed})\n{src}"
                );
            }
        }
    }
}

/// The batch `run_cycles` fast path (dense-commit streaks with per-lane
/// finish skips) matches per-lane sequential `run_cycles`, including how
/// many edges each lane counted before its `$finish`.
#[test]
fn batch_run_cycles_matches_sequential_runs() {
    let width = test_batch_width();
    let threads = test_eval_threads();
    for seed in 0..16 {
        let mut rng = Prng::new(seed + 4000);
        let src = arb_batch_module(&mut rng);
        let design = design_of(&src);
        let nl = Arc::new(synthesize(&design).expect("synthesize"));
        let mut batch = BatchHarness::new(Arc::clone(&nl), width).expect("levelize");
        if threads > 1 {
            batch.set_eval_threads(threads);
        }
        // Constant per-lane stimulus; runs long enough to enter the dense
        // streak. Lanes with (a ^ b)[bit] set finish early, others never.
        let n = rng.range(100, 300);
        let mut scalars = Vec::new();
        for lane in 0..width {
            let a = Bits::from_u64(16, rng.next_u64() & 0xffff);
            let b = Bits::from_u64(16, rng.next_u64() & 0xffff);
            batch.set_lane_by_name("a", lane, a.clone());
            batch.set_lane_by_name("b", lane, b.clone());
            let mut sim = NetlistSim::new(Arc::clone(&nl)).expect("levelize");
            sim.set_by_name("a", a);
            sim.set_by_name("b", b);
            scalars.push(sim);
        }
        batch.run_cycles(n);
        let mut per_lane: Vec<Vec<TaskFire>> = vec![Vec::new(); width as usize];
        for (lane, fire) in batch.drain_tasks() {
            per_lane[lane as usize].push(fire);
        }
        for (lane, sim) in scalars.iter_mut().enumerate() {
            let done = sim.run_cycles(n, usize::MAX);
            assert_eq!(
                done,
                batch.lane_cycles(lane as u32),
                "cycle count lane {lane} diverged (seed {seed})\n{src}"
            );
            for out in OUTS {
                assert_eq!(
                    sim.get_by_name(out).unwrap(),
                    batch.get_lane_by_name(out, lane as u32).unwrap(),
                    "{out} lane {lane} diverged after run_cycles (seed {seed})\n{src}"
                );
            }
            assert_eq!(
                sim.drain_tasks(),
                per_lane[lane],
                "task streams lane {lane} diverged (seed {seed})\n{src}"
            );
            assert_eq!(
                sim.is_finished(),
                batch.is_finished(lane as u32),
                "seed {seed}\n{src}"
            );
        }
    }
}

/// Multicore eval is deterministic: with the pool forced onto every level
/// (`CASCADE_NETLIST_FORCE_PAR`, since these tiny random programs never
/// clear the activity cutover naturally), threads ∈ {2, 4, 8} produce
/// byte-for-byte the single-threaded outputs and task streams — on both
/// the scalar engine and a batch harness.
#[test]
fn multicore_eval_is_deterministic() {
    std::env::set_var("CASCADE_NETLIST_FORCE_PAR", "1");
    for seed in 0..8 {
        let mut rng = Prng::new(seed + 5000);
        let src = arb_batch_module(&mut rng);
        let design = design_of(&src);
        let nl = Arc::new(synthesize(&design).expect("synthesize"));
        let a = Bits::from_u64(16, rng.next_u64() & 0xffff);
        let b = Bits::from_u64(16, rng.next_u64() & 0xffff);
        let n = rng.range(100, 300);

        // Scalar engine: serial baseline, then each thread count.
        let run_scalar = |threads: u32| {
            let mut sim = NetlistSim::new(Arc::clone(&nl)).expect("levelize");
            if threads > 1 {
                sim.set_eval_threads(threads);
            }
            sim.set_by_name("a", a.clone());
            sim.set_by_name("b", b.clone());
            let done = sim.run_cycles(n, usize::MAX);
            let outs: Vec<Bits> = OUTS.iter().map(|o| sim.get_by_name(o).unwrap()).collect();
            (done, outs, sim.drain_tasks(), sim.is_finished())
        };
        let baseline = run_scalar(1);
        for threads in [2, 4, 8] {
            assert_eq!(
                run_scalar(threads),
                baseline,
                "scalar t={threads} diverged from serial (seed {seed})\n{src}"
            );
        }

        // Batch harness: 8 lanes of identical stimulus, same sweep.
        let run_batch = |threads: u32| {
            let mut h = BatchHarness::new(Arc::clone(&nl), 8).expect("levelize");
            if threads > 1 {
                h.set_eval_threads(threads);
            }
            h.set_all_by_name("a", a.clone());
            h.set_all_by_name("b", b.clone());
            h.run_cycles(n);
            let outs: Vec<Bits> = (0..8)
                .flat_map(|lane| {
                    OUTS.iter()
                        .map(|o| h.get_lane_by_name(o, lane).unwrap())
                        .collect::<Vec<_>>()
                })
                .collect();
            (outs, h.drain_tasks(), h.cycles())
        };
        let batch_baseline = run_batch(1);
        for threads in [2, 4, 8] {
            assert_eq!(
                run_batch(threads),
                batch_baseline,
                "batch t={threads} diverged from serial (seed {seed})\n{src}"
            );
        }
    }
    std::env::remove_var("CASCADE_NETLIST_FORCE_PAR");
}

/// The batched open-loop path (`run_cycles` with its no-mark dense-commit
/// streaks) produces the same state and task stream as single stepping.
#[test]
fn batched_run_matches_single_stepping() {
    for seed in 0..32 {
        let mut rng = Prng::new(seed + 2000);
        let src = arb_module(&mut rng);
        let design = design_of(&src);
        let nl = Arc::new(synthesize(&design).expect("synthesize"));
        let mut batched = NetlistSim::new(Arc::clone(&nl)).expect("levelize");
        let mut stepped = NetlistSim::new(Arc::clone(&nl)).expect("levelize");
        let a = Bits::from_u64(16, rng.next_u64() & 0xffff);
        let b = Bits::from_u64(16, rng.next_u64() & 0xffff);
        for sim in [&mut batched, &mut stepped] {
            sim.set_by_name("a", a.clone());
            sim.set_by_name("b", b.clone());
        }
        // Long enough to enter and leave a 64-cycle dense streak.
        let n = rng.range(100, 400);
        let done_batched = batched.run_cycles(n, usize::MAX);
        let mut done_stepped = 0;
        for _ in 0..n {
            if stepped.is_finished() {
                break;
            }
            stepped.step_clock(0);
            done_stepped += 1;
        }
        assert_eq!(
            done_batched, done_stepped,
            "cycle counts diverged (seed {seed})\n{src}"
        );
        for out in OUTS {
            assert_eq!(
                stepped.get_by_name(out).unwrap(),
                batched.get_by_name(out).unwrap(),
                "{out} diverged after {n} cycles (seed {seed})\n{src}"
            );
        }
        assert_eq!(
            stepped.drain_tasks(),
            batched.drain_tasks(),
            "task streams diverged (seed {seed})\n{src}"
        );
    }
}
