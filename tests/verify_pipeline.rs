//! End-to-end exercise of the `cascade-verify` subsystem, plus the
//! checked-in regression corpus.
//!
//! Tier-1 contract: every `.v` file under `corpus/` is a shrunk repro of
//! a once-real engine divergence; all of them must replay as *agreement*
//! through the full six-way differential stack (the bugs they captured
//! stay fixed). On top of that, a bounded fuzz campaign, a BMC proof of
//! the post-synthesis optimizer, and a small chaos soak all run clean.

use cascade_netlist::{synthesize, synthesize_raw};
use cascade_sim::{elaborate, library_from_source};
use cascade_verify::fuzz::replay_repro;
use cascade_verify::{
    check_equiv, run_soak, BmcResult, DiffConfig, DiffOutcome, FuzzConfig, Fuzzer, SoakConfig,
};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    // Tests are registered under crates/xtests; the corpus lives at the
    // workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../corpus")
}

/// Every checked-in repro replays with all engines in agreement.
#[test]
fn corpus_regressions_stay_fixed() {
    let dir = corpus_dir();
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("corpus dir {}: {e}", dir.display()))
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "v"))
        .collect();
    entries.sort();
    assert!(
        entries.len() >= 3,
        "corpus shrank: only {} repro files",
        entries.len()
    );
    let cfg = DiffConfig::default();
    for path in entries {
        let text = std::fs::read_to_string(&path).expect("read repro");
        match replay_repro(&text, &cfg) {
            Some(DiffOutcome::Agree { cycles_run, .. }) => {
                assert!(cycles_run > 0, "{}: zero-cycle replay", path.display());
            }
            Some(DiffOutcome::Diverged(d)) => panic!(
                "{}: regression resurfaced: engine={} cycle={} {}",
                path.display(),
                d.engine.name(),
                d.cycle,
                d.detail
            ),
            Some(DiffOutcome::Skipped(why)) => {
                panic!("{}: repro no longer runs: {why}", path.display())
            }
            None => panic!("{}: not a valid repro file", path.display()),
        }
    }
}

/// A bounded coverage-guided campaign across all six engines finds no
/// divergences and accumulates real coverage.
#[test]
fn bounded_fuzz_campaign_is_clean() {
    let mut fuzzer = Fuzzer::new(FuzzConfig {
        seed: 0xCA5CADE,
        iterations: 60,
        ..FuzzConfig::default()
    });
    let stats = fuzzer.run();
    assert_eq!(stats.executed, 60);
    assert_eq!(
        stats.diverged,
        0,
        "engine divergence found: {:?}",
        fuzzer.repros()
    );
    assert!(stats.coverage_keys >= 10, "{stats:?}");
}

/// The optimizer pipeline is formally bounded-equivalent to the raw
/// synthesis output on a case-heavy design (the shape
/// `balance_case_chains` actually rewrites).
#[test]
fn bmc_proves_optimizer_on_case_chain() {
    let mut arms = String::new();
    for i in 0..10 {
        arms.push_str(&format!("      4'd{i}: r0 <= a + 16'd{};\n", i * 3));
    }
    let src = format!(
        "module T(input wire clk, input wire [15:0] a, input wire [15:0] b, output wire [15:0] o0);\n\
         reg [15:0] r0 = 0;\n\
         always @(posedge clk) begin\n\
           case (b[3:0])\n{arms}      default: r0 <= r0 + 1;\n\
           endcase\n\
         end\n\
         assign o0 = r0;\nendmodule"
    );
    let lib = library_from_source(&src).expect("parse");
    let design = elaborate("T", &lib, &Default::default()).expect("elaborate");
    let raw = synthesize_raw(&design).expect("raw synth");
    let opt = synthesize(&design).expect("optimized synth");
    match check_equiv(&raw, &opt, 4) {
        BmcResult::Equivalent(stats) => {
            assert_eq!(stats.frames, 4);
            assert!(stats.vars > 0);
        }
        other => panic!("optimizer not proven equivalent: {other:?}"),
    }
}

/// A small chaos soak across the config matrix holds every invariant.
#[test]
fn small_chaos_soak_is_clean() {
    let report = run_soak(&SoakConfig {
        seed: 11,
        sessions: 16,
        batch: 8,
        max_burst: 24,
    });
    assert!(
        report.violations.is_empty(),
        "soak violations:\n{}",
        report.violations.join("\n")
    );
    assert_eq!(report.sessions, 16);
}
