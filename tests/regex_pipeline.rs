//! The streaming regex matcher through every substrate, validated against
//! the Rust DFA reference (paper Sec. 6.2's benchmark generator).

use cascade_bits::Bits;
use cascade_core::{ExecMode, JitConfig, Runtime};
use cascade_fpga::Board;
use cascade_netlist::{synthesize, NetlistSim};
use cascade_sim::{elaborate, library_from_source, Simulator};
use cascade_workloads::regex::{compile, matcher_verilog, Flavor};
use std::sync::Arc;

const PATTERN: &str = "GET |POST ";
const INPUT: &[u8] = b"GET /index HTTP POST /x GET  PUT POST!POST ";

fn expected_matches() -> u64 {
    compile(PATTERN).unwrap().count_matches(INPUT)
}

#[test]
fn matcher_interpreter_matches_reference() {
    let dfa = compile(PATTERN).unwrap();
    let src = matcher_verilog(&dfa, Flavor::Ported);
    let lib = library_from_source(&src).expect("parse");
    let design = elaborate("Matcher", &lib, &Default::default()).expect("elaborate");
    let mut sim = Simulator::new(Arc::new(design));
    sim.initialize().unwrap();
    sim.poke("valid", Bits::from_u64(1, 1));
    for &b in INPUT {
        sim.poke("byte_in", Bits::from_u64(8, b as u64));
        sim.tick("clk").unwrap();
    }
    assert_eq!(sim.peek("matches").to_u64(), expected_matches());
    assert!(expected_matches() >= 3, "test input should contain matches");
}

#[test]
fn matcher_netlist_matches_reference() {
    let dfa = compile(PATTERN).unwrap();
    let src = matcher_verilog(&dfa, Flavor::Ported);
    let lib = library_from_source(&src).expect("parse");
    let design = elaborate("Matcher", &lib, &Default::default()).expect("elaborate");
    let nl = synthesize(&design).expect("synthesize");
    let mut hw = NetlistSim::new(Arc::new(nl)).expect("levelize");
    hw.set_by_name("valid", Bits::from_u64(1, 1));
    for &b in INPUT {
        hw.set_by_name("byte_in", Bits::from_u64(8, b as u64));
        hw.step_clock(0);
    }
    assert_eq!(
        hw.get_by_name("matches").unwrap().to_u64(),
        expected_matches()
    );
}

fn run_fifo_session(config: JitConfig, migrate: bool) -> u64 {
    let dfa = compile(PATTERN).unwrap();
    let src = matcher_verilog(&dfa, Flavor::Cascade);
    let board = Board::new();
    board.set_fifo_capacity(1024);
    let mut rt = Runtime::new(board.clone(), config).unwrap();
    rt.eval(&src).unwrap();
    if migrate {
        rt.wait_for_compile_worker();
        let ready = rt.compile_ready_at().expect("staged");
        rt.advance_wall((ready - rt.wall_seconds()).max(0.0) + 1.0);
        rt.run_ticks(1).unwrap();
        assert_eq!(rt.mode(), ExecMode::HardwareForwarded);
    }
    for &b in INPUT {
        board.fifo_push(Bits::from_u64(8, b as u64));
    }
    // One byte consumed per cycle plus pipeline slack.
    rt.run_ticks(INPUT.len() as u64 + 8).unwrap();
    assert_eq!(board.fifo_pops(), INPUT.len() as u64, "all bytes consumed");
    board.leds().to_u64()
}

#[test]
fn matcher_over_fifo_in_software() {
    let leds = run_fifo_session(JitConfig::interpreter_only(), false);
    assert_eq!(leds, expected_matches() & 0xff);
}

#[test]
fn matcher_over_fifo_in_hardware() {
    let leds = run_fifo_session(JitConfig::default(), true);
    assert_eq!(leds, expected_matches() & 0xff);
}

#[test]
fn hardware_io_rate_exceeds_software() {
    // The Fig. 12 claim in miniature: IO/s in hardware dwarfs software.
    let dfa = compile(PATTERN).unwrap();
    let src = matcher_verilog(&dfa, Flavor::Cascade);

    let measure = |config: JitConfig, migrate: bool| -> f64 {
        let board = Board::new();
        board.set_fifo_capacity(4096);
        let mut rt = Runtime::new(board.clone(), config).unwrap();
        rt.eval(&src).unwrap();
        if migrate {
            rt.wait_for_compile_worker();
            let ready = rt.compile_ready_at().expect("staged");
            rt.advance_wall((ready - rt.wall_seconds()).max(0.0) + 1.0);
            rt.run_ticks(1).unwrap();
        }
        for i in 0..2000u64 {
            board.fifo_push(Bits::from_u64(8, b"GETPOST /"[(i % 9) as usize] as u64));
        }
        let w0 = rt.wall_seconds();
        let p0 = board.fifo_pops();
        rt.run_ticks(2100).unwrap();
        (board.fifo_pops() - p0) as f64 / (rt.wall_seconds() - w0)
    };
    let sw_rate = measure(JitConfig::interpreter_only(), false);
    let hw_rate = measure(JitConfig::default(), true);
    assert!(
        hw_rate > sw_rate * 5.0,
        "hardware {hw_rate:.0} IO/s should beat software {sw_rate:.0} IO/s"
    );
}
