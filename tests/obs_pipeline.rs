//! The observability-plane suite: the ISSUE acceptance runs for causal
//! request tracing, tail-latency attribution, per-tenant metering, live
//! telemetry streaming, and the crash flight recorder.
//!
//! - a chaos serve run (random faults, two fabrics, compile dedup in
//!   play) exports a trace where every acked request's spans form one
//!   connected tree across session/compile-pool/fleet boundaries;
//! - `explain p99` attributes ≥90% of a slow request's wall time to
//!   named phases;
//! - per-tenant meters stay monotone across hibernate/wake and
//!   drain/restart;
//! - a crash-point kill leaves a decodable `last-crash.trace.jsonl`
//!   that is byte-identical under a seeded re-run;
//! - a faulted many-session soak with streaming subscribers attached
//!   keeps delivering parseable frames (the CI `obs-smoke` job runs this
//!   at 200 sessions via `CASCADE_OBS_SOAK_SESSIONS`).

use cascade_fpga::{DurableFault, FaultPlan};
use cascade_serve::{InProcClient, Json, Request, ServeConfig, Server};
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::time::{Duration, Instant};

const COUNTER_MODULE: &str = "module Counter(input wire c);\n\
      reg [15:0] cnt = 0;\n\
      always @(posedge c) cnt <= cnt + 1;\n\
      always @(posedge c) if (cnt[2:0] == 3'd7) $display(\"c=%d\", cnt);\n\
    endmodule";

/// Polls `cond` until it holds or the deadline passes.
fn wait_until(mut cond: impl FnMut() -> bool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("cascade-obs-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// One exported trace event's causal fields.
struct SpanRow {
    req: u64,
    span: u64,
    parent: u64,
    link: u64,
    name: String,
}

fn span_rows(jsonl: &str) -> Vec<SpanRow> {
    jsonl
        .lines()
        .filter_map(|l| {
            let obj = Json::parse(l).expect("trace line parses");
            let req = obj.get("req").and_then(Json::as_u64)?;
            Some(SpanRow {
                req,
                span: obj.get("span").and_then(Json::as_u64).unwrap_or(0),
                parent: obj.get("parent").and_then(Json::as_u64).unwrap_or(0),
                link: obj.get("link").and_then(Json::as_u64).unwrap_or(0),
                name: obj
                    .get("name")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string(),
            })
        })
        .collect()
}

/// The acceptance run for causal tracing: two tenants on a two-fabric
/// fleet under a random fault schedule, submitting the identical module
/// (so the shared compile pool can coalesce). Every request id in the
/// exported trace must form one connected span tree: a single root (the
/// request span, parent 0) with every other event's parent resolving to
/// a span of the same request.
#[test]
fn chaos_trace_spans_form_connected_trees_per_request() {
    let mut config = ServeConfig::quick();
    config.fabrics = 2;
    config.workers = 2;
    config.jit.scrub_interval_ticks = 8;
    config.jit.faults = FaultPlan::random(3);
    let server = Server::new(config);

    let mut a = InProcClient::connect(&server);
    let mut b = InProcClient::connect(&server);
    a.open().expect("open a");
    b.open().expect("open b");
    // Identical source, back to back: when both background compiles are
    // in flight together the pool coalesces the second onto the first.
    a.eval_all(COUNTER_MODULE).expect("eval a");
    b.eval_all(COUNTER_MODULE).expect("eval b");
    a.eval_all("Counter c0(.c(clk.val));").expect("inst a");
    b.eval_all("Counter c0(.c(clk.val));").expect("inst b");
    for _ in 0..6 {
        a.run(16).expect("run a");
        b.run(16).expect("run b");
    }
    a.wait_compile().expect("wait a");
    b.wait_compile().expect("wait b");
    a.drain().expect("drain a");
    b.drain().expect("drain b");

    let reply = a
        .raw(&Request::Trace {
            session: None,
            virtual_only: false,
        })
        .expect("server-wide trace");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(
        reply.get("dropped").and_then(Json::as_u64),
        Some(0),
        "ring overflowed; connectivity check needs the full trace"
    );
    let jsonl = reply
        .get("trace")
        .and_then(Json::as_str)
        .expect("trace member");
    let rows = span_rows(jsonl);
    assert!(!rows.is_empty(), "no request-context events in the trace");

    let mut by_req: BTreeMap<u64, Vec<&SpanRow>> = BTreeMap::new();
    for r in &rows {
        by_req.entry(r.req).or_default().push(r);
    }
    // Both tenants issued eval/run/wait/drain rounds; each acked request
    // mints a fresh id and must appear rooted in the trace.
    assert!(
        by_req.len() >= 20,
        "expected one span tree per request, got {} trees",
        by_req.len()
    );
    for (req, group) in &by_req {
        let spans: BTreeSet<u64> = group.iter().map(|r| r.span).collect();
        let roots: Vec<_> = group.iter().filter(|r| r.parent == 0).collect();
        assert_eq!(
            roots.len(),
            1,
            "req {req}: want exactly one root span, got {} ({:?})",
            roots.len(),
            group.iter().map(|r| &r.name).collect::<Vec<_>>()
        );
        for r in group.iter().filter(|r| r.parent != 0) {
            assert!(
                spans.contains(&r.parent),
                "req {req}: event `{}` parent {:#x} not in this request's span set — \
                 the tree is disconnected",
                r.name,
                r.parent
            );
        }
    }

    // Dedup joins surface as span links when the schedules overlapped
    // (soft gate: the race is real, so only assert when it happened).
    let stats = a.server_stats().expect("server stats");
    let coalesced = stats
        .get("compiles_coalesced")
        .and_then(Json::as_u64)
        .unwrap_or(0);
    if coalesced >= 1 {
        assert!(
            rows.iter().any(|r| r.link != 0),
            "{coalesced} compiles coalesced but no span link was recorded"
        );
    }
}

/// Tail-latency attribution: `explain p99` must attribute at least 90%
/// of the slowest request's wall time to named phases, name the dominant
/// phase, and reject unknown percentiles.
#[test]
fn explain_p99_attributes_slow_requests_to_named_phases() {
    let mut config = ServeConfig::quick();
    config.fabrics = 1;
    config.workers = 2;
    let server = Server::new(config);
    let mut c = InProcClient::connect(&server);
    c.open().expect("open");
    c.eval_all(
        "reg [15:0] cnt = 0;\n\
         always @(posedge clk.val) cnt <= cnt + 1;\n\
         assign led.val = cnt[7:0];",
    )
    .expect("eval");
    // A spread of cheap requests plus a few heavy runs: the p99 tail is
    // dominated by eval time, which the phase clock attributes directly.
    for _ in 0..20 {
        c.run(8).expect("small run");
    }
    for _ in 0..3 {
        c.run(4096).expect("big run");
    }
    c.drain().expect("drain");

    let (text, requests, coverage) = c.explain("p99").expect("explain");
    assert!(requests >= 1, "no slow requests reported:\n{text}");
    assert!(
        coverage >= 0.90,
        "only {:.1}% of the slowest request's wall time is attributed:\n{text}",
        coverage * 100.0
    );
    assert!(
        text.contains("eval_sw") || text.contains("eval_hw") || text.contains("compile"),
        "no named eval phase in the breakdown:\n{text}"
    );

    let (_, p50_requests, _) = c.explain("p50").expect("explain p50");
    assert!(p50_requests >= requests, "p50 covers at least the p99 tail");
    assert!(c.explain("p73").is_err(), "unknown percentile must refuse");
}

/// One tenant's `server-top` meter row, pulled out by session id.
fn meter_row(c: &mut InProcClient, id: u64) -> BTreeMap<String, f64> {
    let (_, tenants) = c.server_top(100).expect("server top");
    let row = tenants
        .iter()
        .find(|t| t.get("session").and_then(Json::as_u64) == Some(id))
        .unwrap_or_else(|| panic!("session {id} missing from server-top"));
    [
        "ticks",
        "compile_ms",
        "journal_bytes",
        "output_bytes",
        "lease_ms",
    ]
    .iter()
    .map(|k| {
        (
            k.to_string(),
            row.get(k).and_then(Json::as_f64).unwrap_or(-1.0),
        )
    })
    .collect()
}

fn assert_monotone(before: &BTreeMap<String, f64>, after: &BTreeMap<String, f64>, at: &str) {
    for (k, was) in before {
        let now = after.get(k).copied().unwrap_or(-1.0);
        assert!(
            now >= *was,
            "meter `{k}` went backwards {at}: {was} -> {now}"
        );
    }
}

/// Per-tenant meters are monotone counters: hibernate/wake must not
/// reset them, and a graceful drain → recover restores them from the
/// journal's checkpoint meter block.
#[test]
fn per_tenant_meters_stay_monotone_across_hibernate_and_restart() {
    let dir = fresh_dir("meters");
    let mut config = ServeConfig::quick();
    config.fabrics = 1;
    config.workers = 2;
    config.hibernate_after_s = 0.0;
    config.durable_dir = Some(dir.to_string_lossy().into_owned());
    let server = Server::new(config.clone());

    let mut c = InProcClient::connect(&server);
    let id = c.open().expect("open");
    let token = c.token().expect("token");
    c.eval_all(COUNTER_MODULE).expect("eval module");
    c.eval_all("Counter c0(.c(clk.val));").expect("eval inst");
    c.run(100).expect("run");
    c.drain().expect("drain");
    let m1 = meter_row(&mut c, id);
    assert_eq!(m1["ticks"], 100.0, "tick meter counts acked ticks");
    assert!(m1["journal_bytes"] > 0.0, "journaled commands meter bytes");
    assert!(m1["output_bytes"] > 0.0, "drained lines meter bytes");

    // Hibernate: the dormant session keeps its meters visible and intact.
    assert!(c.hibernate().expect("hibernate"), "session must freeze");
    let m2 = meter_row(&mut c, id);
    assert_monotone(&m1, &m2, "across hibernate");

    // Wake and keep counting.
    c.run(50).expect("run woken");
    let m3 = meter_row(&mut c, id);
    assert_monotone(&m2, &m3, "across wake");
    assert_eq!(m3["ticks"], 150.0, "woken tenant keeps counting");

    // Graceful restart: meters come back from the journal's meter block.
    c.drain_server().expect("drain server");
    drop(c);
    drop(server);
    let recovered = Server::recover(config);
    let mut c = InProcClient::connect(&recovered);
    c.resume(id, token).expect("resume");
    let m4 = meter_row(&mut c, id);
    assert_monotone(&m3, &m4, "across drain/restart");
    c.run(10).expect("run resumed");
    let m5 = meter_row(&mut c, id);
    assert_eq!(m5["ticks"], 160.0, "resumed tenant keeps counting");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Runs a fixed script into a scheduled durable crash, recovers, and
/// returns the flight-recorder dump the dying server persisted.
fn crash_and_read_flight(tag: &str) -> String {
    let dir = fresh_dir(tag);
    let mut config = ServeConfig::quick();
    config.fabrics = 1;
    config.workers = 2;
    config.hibernate_after_s = 0.0;
    config.max_live_sessions = 0;
    config.idle_timeout_s = 3600.0;
    config.durable_dir = Some(dir.to_string_lossy().into_owned());
    config.jit.faults = FaultPlan::builder()
        .durable_fault(4, DurableFault::Crash)
        .build();
    let server = Server::new(config.clone());
    let mut c = InProcClient::connect(&server);
    c.open().expect("open");
    let mut failed = false;
    for (i, line) in COUNTER_MODULE.lines().enumerate() {
        if c.eval_seq(line, (i + 1) as u64).is_err() {
            failed = true;
            break;
        }
    }
    if !failed {
        // The fault fires on a journal append somewhere in the script;
        // keep issuing writes until it does.
        for seq in 10..30 {
            if c.run_seq(16, seq).is_err() {
                failed = true;
                break;
            }
        }
    }
    assert!(failed, "the scheduled durable crash never fired");
    drop(c);
    drop(server);

    let mut clean = config;
    clean.jit.faults = FaultPlan::none();
    let recovered = Server::recover(clean);
    let text = recovered
        .last_crash_trace()
        .expect("crash must leave last-crash.trace.jsonl");
    let _ = std::fs::remove_dir_all(&dir);
    text
}

/// The flight recorder's contract: a crash-point kill leaves a decodable
/// `last-crash.trace.jsonl` whose records are on the deterministic
/// ordinal clock — a seeded re-run produces a byte-identical dump.
#[test]
fn flight_recorder_dump_is_decodable_and_deterministic() {
    let a = crash_and_read_flight("flight-a");
    let names: Vec<String> = a
        .lines()
        .map(|l| {
            Json::parse(l)
                .expect("flight line decodes")
                .get("name")
                .and_then(Json::as_str)
                .expect("flight record has a name")
                .to_string()
        })
        .collect();
    assert!(!names.is_empty(), "flight dump is empty");
    // The tail matches the pre-crash journal: the last breadcrumbs are
    // the submitted command, then the dump marker naming the failure.
    assert_eq!(names.last().map(String::as_str), Some("dump"));
    assert!(
        names.iter().any(|n| n == "commit"),
        "no journal-commit breadcrumb in the flight dump: {names:?}"
    );
    assert!(
        names.iter().any(|n| n == "submit"),
        "no request-submit breadcrumb in the flight dump: {names:?}"
    );

    let b = crash_and_read_flight("flight-b");
    assert_eq!(a, b, "flight dump is not deterministic under re-run");
}

/// The streaming soak (the CI `obs-smoke` shape): many faulted sessions,
/// every fourth with a live `subscribe` attached, must keep delivering
/// parseable telemetry frames through the bounded output queues while
/// `server-top` and `explain` stay serviceable.
#[test]
fn faulted_soak_with_streaming_subscribers_delivers_frames() {
    let sessions: usize = std::env::var("CASCADE_OBS_SOAK_SESSIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40);
    let mut config = ServeConfig::quick();
    config.fabrics = 2;
    config.workers = 4;
    // The soak targets the telemetry plane, not the JIT: skip auto
    // compiles so the pool isn't a giant backlog in debug builds.
    config.jit.auto_compile = false;
    config.jit.faults = FaultPlan::random(9);
    config.sweeper_poll_ms = 5;
    let server = Server::new(config);

    let mut clients = Vec::with_capacity(sessions);
    for i in 0..sessions {
        let mut c = InProcClient::connect(&server);
        let id = c.open().expect("open");
        c.eval_all("reg [15:0] n = 0;\nalways @(posedge clk.val) n <= n + 1;")
            .expect("eval");
        if i % 4 == 0 {
            assert!(c.subscribe("metrics", 10).expect("subscribe metrics"));
        }
        if i % 8 == 0 {
            assert!(c.subscribe("events", 10).expect("subscribe events"));
        }
        c.run(64).expect("run");
        clients.push((i, id, c));
    }

    // Keep the subscribed tenants active until frames flow: every request
    // feeds the trace ring (events frames) and the meters (metrics
    // frames), and the sweeper flushes due subscriptions into the output
    // queues.
    for (i, id, c) in &mut clients {
        if *i % 4 != 0 {
            continue;
        }
        let mut metrics_frames = 0u64;
        let mut events_frames = 0u64;
        wait_until(
            || {
                c.run(8).expect("run subscribed");
                let (lines, _) = c.drain().expect("drain");
                let (frames, _rest) = InProcClient::take_frames(lines);
                for f in frames {
                    assert_eq!(
                        f.get("session").and_then(Json::as_u64),
                        Some(*id),
                        "frame routed to the wrong tenant"
                    );
                    match f.get("frame").and_then(Json::as_str) {
                        Some("metrics") => {
                            assert!(f.get("ticks").and_then(Json::as_u64).is_some());
                            metrics_frames += 1;
                        }
                        Some("events") => {
                            let evs = f.get("events").and_then(Json::as_arr).unwrap_or(&[]);
                            for line in evs {
                                let line = line.as_str().expect("event frame line is a string");
                                Json::parse(line).expect("streamed event decodes");
                            }
                            events_frames += 1;
                        }
                        other => panic!("unknown frame kind {other:?}"),
                    }
                }
                metrics_frames >= 2 && (*i % 8 != 0 || events_frames >= 1)
            },
            "telemetry frames to stream",
        );
    }

    // Unsubscribing (interval 0) stops the stream.
    let (_, _, c0) = &mut clients[0];
    assert!(!c0.subscribe("metrics", 0).expect("unsubscribe"));
    assert!(!c0.subscribe("events", 0).expect("unsubscribe events"));

    // The roll-up commands stay serviceable under the full population.
    let mut probe = InProcClient::connect(&server);
    probe.open().expect("open probe");
    let (text, tenants) = probe.server_top(5).expect("server top");
    assert!(tenants.len() <= 5, "server-top over-returned: {text}");
    assert!(!tenants.is_empty(), "server-top returned no tenants");
    let (_, requests, _) = probe.explain("p99").expect("explain");
    assert!(requests >= 1, "explain found no requests after the soak");

    // Drop accounting is first-class: both families are in the server
    // exposition even when zero.
    let metrics = probe.server_metrics().expect("server metrics");
    assert!(metrics.contains("serve_trace_events_dropped_total"));
    assert!(metrics.contains("serve_session_output_dropped_total{session="));
}
