//! Crash-safe durability: warm restarts from the persistent bitstream
//! store, exactly-once sequenced commands, corrupt-journal quarantine,
//! torn-spill containment, the spill-dir retention contract, and FIFO
//! residue surviving a drain/recover round trip.
//!
//! Everything here drives the public surface only: a durable
//! [`ServeConfig`] pointed at a scratch directory, [`Server::drain`] or a
//! plain drop for the "old" process, and [`Server::recover`] for the new
//! one. Corruption is injected by flipping bytes in real files — the same
//! thing a torn write or bit rot would do.

use cascade_serve::{InProcClient, Json, Request, ServeConfig, Server};
use cascade_workloads::regex::{compile, matcher_verilog, Flavor as RegexFlavor};
use std::path::{Path, PathBuf};

const COUNTER: &str = "reg [15:0] cnt = 0;\n\
                       always @(posedge clk.val) cnt <= cnt + 1;\n\
                       always @(posedge clk.val) if (cnt[2:0] == 3'd7) $display(\"c=%d\", cnt);\n\
                       assign led.val = cnt[7:0];";

fn stat_u64(stats: &Json, key: &str) -> u64 {
    stats.get(key).and_then(Json::as_u64).unwrap_or(0)
}

fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("cascade-recovery-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn durable_config(dir: &Path) -> ServeConfig {
    let mut c = ServeConfig::quick();
    c.fabrics = 1;
    c.workers = 2;
    c.hibernate_after_s = 0.0;
    c.durable_dir = Some(dir.to_string_lossy().into_owned());
    c
}

/// Flips one byte in the middle of `path`.
fn corrupt(path: &Path) {
    let mut raw = std::fs::read(path).expect("read file to corrupt");
    let mid = raw.len() / 2;
    raw[mid] ^= 0x01;
    std::fs::write(path, &raw).expect("write corrupted file");
}

fn journal_files(dir: &Path) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = std::fs::read_dir(dir.join("sessions"))
        .expect("sessions dir")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "jnl"))
        .collect();
    out.sort();
    out
}

/// A graceful drain → recover must resume the tenant with exact state,
/// and the recovered server's first compile must come from the
/// persistent bitstream store, not the toolchain.
#[test]
fn warm_restart_resumes_state_and_skips_recompiles() {
    // Oracle: the same 128-tick script on a server that never restarts.
    let oracle_lines = {
        let server = Server::new(durable_config(&scratch("warm-oracle")));
        let mut c = InProcClient::connect(&server);
        c.open().expect("open oracle");
        c.eval_all(COUNTER).expect("eval oracle");
        c.run(100).expect("run oracle");
        let mut lines = c.drain().expect("drain oracle").0;
        c.run(28).expect("run oracle 2");
        lines.extend(c.drain().expect("drain oracle").0);
        lines
    };

    let dir = scratch("warm");
    let server = Server::new(durable_config(&dir));
    let mut client = InProcClient::connect(&server);
    let id = client.open().expect("open");
    let token = client.token().expect("open returns a token");
    client.eval_all(COUNTER).expect("eval");
    let r = client.run(100).expect("run");
    assert_eq!(r.ticks, 100);
    client.wait_compile().expect("compile resolves");
    let (lines_before, dropped) = client.drain().expect("drain");
    assert_eq!(dropped, 0);
    let stats = client.server_stats().expect("stats");
    assert!(
        stat_u64(&stats, "bitstream_store_saves") >= 1,
        "the compile must be persisted to the store"
    );
    let (flushed, hibernated) = client.drain_server().expect("drain server");
    assert!(flushed >= 1, "the dirty tenant's journal must flush");
    assert!(hibernated >= 1, "the live tenant must hibernate");
    drop(client);
    drop(server);

    let recovered = Server::recover(durable_config(&dir));
    let mut client = InProcClient::connect(&recovered);
    let stats = client.server_stats().expect("stats");
    assert_eq!(stat_u64(&stats, "recovered_sessions"), 1);

    // Commands without a resume are refused — the token is the proof.
    let refused = client
        .raw(&Request::Probe {
            session: id,
            port: "cnt".to_string(),
        })
        .expect("transport");
    assert_eq!(refused.get("ok").and_then(Json::as_bool), Some(false));
    let bad = client.resume(id, token ^ 1).expect_err("wrong token");
    assert!(bad.contains("token"), "{bad}");
    let last_seq = client.resume(id, token).expect("resume");
    assert_eq!(last_seq, 0, "the script was unsequenced");

    // Exact state: the counter is where the old server left it, and the
    // $display stream continues without a gap or a repeat.
    assert_eq!(client.probe("cnt").expect("probe"), Some(100));
    let r = client.run(28).expect("run after recovery");
    assert_eq!(r.ticks, 28);
    assert_eq!(client.probe("cnt").expect("probe"), Some(128));
    client.wait_compile().expect("warm compile resolves");
    let (lines_after, _) = client.drain().expect("drain");
    let mut all = lines_before;
    all.extend(lines_after);
    assert_eq!(
        all, oracle_lines,
        "transcript must be gapless across the restart"
    );

    // The recompile was served by the persistent store.
    let stats = client.server_stats().expect("stats");
    assert!(
        stat_u64(&stats, "warm_bitstream_hits") >= 1,
        "recovered compile must hit the bitstream store"
    );
}

/// Re-sending an acknowledged sequence number returns the stored reply
/// without re-executing — ticks are applied exactly once.
#[test]
fn sequenced_retry_is_deduped_exactly_once() {
    let dir = scratch("dedup");
    let server = Server::new(durable_config(&dir));
    let mut client = InProcClient::connect(&server);
    client.open().expect("open");
    for line in COUNTER.lines() {
        let seq = client.next_seq();
        client.eval_seq(line, seq).expect("eval");
    }
    let seq = client.next_seq();
    let first = client.run_seq(40, seq).expect("run");
    assert_eq!(first.ticks, 40);
    // The client's ack was "lost"; it retries the same seq.
    let retry = client.run_seq(40, seq).expect("retry");
    assert_eq!(retry, first, "dedup must return the stored reply");
    assert_eq!(
        client.probe("cnt").expect("probe"),
        Some(40),
        "the retried run must not execute twice"
    );
    // A fresh seq executes normally.
    let seq = client.next_seq();
    assert_eq!(client.run_seq(40, seq).expect("run 2").ticks, 40);
    assert_eq!(client.probe("cnt").expect("probe"), Some(80));
}

/// A corrupted journal generation is quarantined, never decoded into a
/// half-real session — and the rest of the server recovers normally.
#[test]
fn corrupt_journal_is_quarantined_not_served() {
    let dir = scratch("corrupt-journal");
    let server = Server::new(durable_config(&dir));
    let mut client = InProcClient::connect(&server);
    let victim = client.open().expect("open victim");
    client.eval_all(COUNTER).expect("eval");
    client.run(50).expect("run");
    let mut healthy = InProcClient::connect(&server);
    let kept = healthy.open().expect("open healthy");
    let kept_token = healthy.token().expect("token");
    healthy.eval_all("reg [7:0] z = 9;").expect("eval healthy");
    client.drain_server().expect("drain");
    drop(client);
    drop(healthy);
    drop(server);

    // Corrupt the victim's (compacted) journal; leave the healthy one.
    let victims: Vec<PathBuf> = journal_files(&dir)
        .into_iter()
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with(&format!("s{victim}-")))
        })
        .collect();
    assert!(!victims.is_empty(), "victim journal must exist");
    for p in &victims {
        corrupt(p);
    }

    let recovered = Server::recover(durable_config(&dir));
    let mut client = InProcClient::connect(&recovered);
    let stats = client.server_stats().expect("stats");
    assert!(
        stat_u64(&stats, "recovery_quarantined") >= 1,
        "the corrupt journal must be quarantined"
    );
    assert_eq!(
        stat_u64(&stats, "recovered_sessions"),
        1,
        "only the healthy tenant comes back"
    );
    // The healthy tenant is intact; the victim is gone, not wrong.
    client.resume(kept, kept_token).expect("resume healthy");
    assert_eq!(client.probe("z").expect("probe"), Some(9));
    let gone = client
        .raw(&Request::Resume {
            session: victim,
            token: 0,
        })
        .expect("transport");
    assert_eq!(gone.get("ok").and_then(Json::as_bool), Some(false));
    // Quarantined files are renamed aside for post-mortem, not deleted.
    let quarantined = std::fs::read_dir(dir.join("sessions"))
        .expect("sessions dir")
        .flatten()
        .any(|e| e.file_name().to_string_lossy().ends_with(".quar"));
    assert!(quarantined, "the bad journal must be kept for post-mortem");
}

/// A torn spill image must surface as a counted wake failure — the
/// session dies cleanly rather than waking from half a checkpoint.
#[test]
fn torn_spill_image_is_a_counted_wake_failure() {
    let spill = scratch("torn-spill-dir");
    let mut config = ServeConfig::quick();
    config.fabrics = 0;
    config.workers = 1;
    config.hibernate_after_s = 0.0;
    // A zero budget forces every hibernation image straight to disk.
    config.hibernate_mem_bytes = 0;
    config.hibernate_spill_dir = Some(spill.to_string_lossy().into_owned());
    let server = Server::new(config);
    let mut client = InProcClient::connect(&server);
    client.open().expect("open");
    client.eval_all(COUNTER).expect("eval");
    client.run(30).expect("run");
    client.drain().expect("drain");
    assert!(client.hibernate().expect("hibernate"), "must freeze");

    let spilled: Vec<PathBuf> = std::fs::read_dir(&spill)
        .expect("spill dir")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "hib"))
        .collect();
    assert_eq!(spilled.len(), 1, "image must spill to disk");
    corrupt(&spilled[0]);

    let e = client.probe("cnt").expect_err("wake must fail");
    assert!(e.contains("wake failed"), "{e}");
    let mut fresh = InProcClient::connect(&server);
    let stats = fresh
        .open()
        .and_then(|_| fresh.server_stats())
        .expect("stats");
    assert_eq!(stat_u64(&stats, "wake_failures"), 1);
    assert!(
        stat_u64(&stats, "recovery_quarantined") >= 1,
        "the torn image must be quarantined"
    );
    let _ = std::fs::remove_dir_all(&spill);
}

/// The retention contract: an explicitly configured spill directory is
/// never removed by the server — its images outlive the process.
#[test]
fn explicit_spill_dir_survives_server_drop() {
    let spill = scratch("retained-spill");
    let mut config = ServeConfig::quick();
    config.fabrics = 0;
    config.workers = 1;
    config.hibernate_after_s = 0.0;
    config.hibernate_mem_bytes = 0;
    config.hibernate_spill_dir = Some(spill.to_string_lossy().into_owned());
    let server = Server::new(config);
    let mut client = InProcClient::connect(&server);
    client.open().expect("open");
    client.eval_all("reg [7:0] v = 3;").expect("eval");
    assert!(client.hibernate().expect("hibernate"));
    drop(client);
    drop(server);
    let survivors = std::fs::read_dir(&spill)
        .expect("explicit spill dir must survive server drop")
        .flatten()
        .count();
    assert!(survivors >= 1, "spilled images must be retained");
    let _ = std::fs::remove_dir_all(&spill);
}

/// Words pushed into a board FIFO but not yet consumed must survive a
/// drain/recover restart: the regex matcher sees the full input stream
/// and reports the same match count as an uninterrupted run.
#[test]
fn fifo_residue_survives_drain_and_recovery() {
    let pattern = "GET |POST ";
    let input: &[u8] = b"GET /index HTTP POST /x GET  PUT POST!POST ";
    let dfa = compile(pattern).unwrap();
    let expect_matches = dfa.count_matches(input) as u64;
    let src = matcher_verilog(&dfa, RegexFlavor::Cascade);
    let bytes: Vec<u64> = input.iter().map(|&b| b as u64).collect();
    let split = bytes.len() / 2;

    let dir = scratch("fifo");
    let server = Server::new(durable_config(&dir));
    let mut client = InProcClient::connect(&server);
    let id = client.open().expect("open");
    let token = client.token().expect("token");
    client.eval_all(&src).expect("eval matcher");
    // First half streams in and is partially consumed; whatever the
    // matcher hasn't popped yet is residue that must survive.
    let mut sent = 0usize;
    while sent < split {
        sent += client.fifo_push(8, &bytes[sent..split]).expect("fifo") as usize;
        client.run(8).expect("run");
    }
    client.drain_server().expect("drain");
    drop(client);
    drop(server);

    let recovered = Server::recover(durable_config(&dir));
    let mut client = InProcClient::connect(&recovered);
    client.resume(id, token).expect("resume");
    let mut sent = split;
    while sent < bytes.len() {
        sent += client.fifo_push(8, &bytes[sent..]).expect("fifo") as usize;
        client.run(32).expect("run");
    }
    client.run(64).expect("pipeline slack");
    let stats = client.stats().expect("stats");
    assert_eq!(
        stat_u64(&stats, "leds"),
        expect_matches,
        "match count must equal an uninterrupted run's"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
