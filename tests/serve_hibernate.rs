//! Session hibernation: freeze/wake transparency under chaos, the
//! wake-under-revocation race, and the 10K mostly-idle tenant soak.
//!
//! Hibernation drops a session's entire runtime — engines, compiler
//! handle, fabric lease — keeping only a serialized image. These tests
//! pin down the contract: a session that hibernates and wakes (repeatedly,
//! under a random fault schedule) produces a transcript byte-identical to
//! a solo runtime that never stopped; a woken session re-promoting into a
//! contended fleet survives a revocation injected mid-migration; and a
//! server holding ten thousand mostly-idle sessions keeps its live-runtime
//! count bounded while still serving a woken tenant's first command
//! correctly.

use cascade_core::{JitConfig, Runtime};
use cascade_fpga::{ArbiterConfig, Board, FaultPlan};
use cascade_serve::{InProcClient, Json, ServeConfig, Server};
use std::time::{Duration, Instant};

const COUNTER: &str = "reg [15:0] cnt = 0;\n\
                       always @(posedge clk.val) cnt <= cnt + 1;\n\
                       always @(posedge clk.val) if (cnt[2:0] == 3'd7) $display(\"c=%d\", cnt);\n\
                       assign led.val = cnt[7:0];";

fn stat_u64(stats: &Json, key: &str) -> u64 {
    stats.get(key).and_then(Json::as_u64).unwrap_or(0)
}

/// Polls `cond` until it holds or the deadline passes.
fn wait_until(mut cond: impl FnMut() -> bool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// A session that hibernates and wakes between every run burst, under a
/// seeded random fault schedule, must produce the same `$display`
/// transcript, probe state, and tick count as a fault-free solo runtime
/// that never stopped.
#[test]
fn hibernate_wake_chaos_round_trip_matches_oracle() {
    for seed in [1u64, 7, 42] {
        let mut config = ServeConfig::quick();
        config.fabrics = 1;
        config.workers = 2;
        config.jit.scrub_interval_ticks = 4;
        config.jit.faults = FaultPlan::random(seed);
        // Only explicit hibernate commands: the sweeper stays out of the
        // timing so the test controls every freeze point.
        config.hibernate_after_s = 0.0;
        let server = Server::new(config);
        let mut client = InProcClient::connect(&server);
        client.open().expect("open");
        client.eval_all(COUNTER).expect("eval counter");

        let mut lines = Vec::new();
        let mut ticks = 0u64;
        let mut froze = 0u64;
        for i in 0..10 {
            let r = client.run(17).expect("run");
            ticks += r.ticks;
            let (batch, dropped) = client.drain().expect("drain");
            assert_eq!(dropped, 0, "seed {seed}: no output may drop");
            lines.extend(batch);
            if i % 2 == 0 && client.hibernate().expect("hibernate") {
                froze += 1;
            }
        }
        assert!(froze >= 4, "seed {seed}: sessions froze only {froze} times");
        // Wake once more for the final probe, then cross-check the books.
        let cnt = client.probe("cnt").expect("probe").expect("cnt exists");
        let stats = client.server_stats().expect("server stats");
        assert!(
            stat_u64(&stats, "wakes") > froze,
            "every freeze implies a wake plus the lazy-open one"
        );
        assert_eq!(stat_u64(&stats, "wake_failures"), 0, "seed {seed}");

        let oboard = Board::new();
        let mut ocfg = JitConfig::default();
        ocfg.toolchain.time_scale = 1e-6;
        ocfg.scrub_interval_ticks = 4;
        let mut oracle = Runtime::new(oboard, ocfg).expect("oracle runtime");
        oracle.eval(COUNTER).expect("oracle eval");
        oracle.run_ticks(ticks).expect("oracle run");
        assert_eq!(
            lines,
            oracle.drain_output(),
            "seed {seed}: transcript diverged across hibernation"
        );
        assert_eq!(
            Some(cnt),
            oracle.probe("cnt").map(|b| b.to_u64()),
            "seed {seed}: counter state diverged across hibernation"
        );
    }
}

/// Observability reads must not perturb the hibernation economy: against
/// a dormant session, `timeline`, `trace`, and `metrics` return the
/// preserved ring summary and frozen registry without waking the tenant.
#[test]
fn observability_reads_do_not_wake_dormant_sessions() {
    let mut config = ServeConfig::quick();
    config.fabrics = 1;
    config.workers = 2;
    config.hibernate_after_s = 0.0;
    let server = Server::new(config);
    let mut c = InProcClient::connect(&server);
    c.open().expect("open");
    c.eval_all(COUNTER).expect("eval");
    c.run(32).expect("run");
    c.drain().expect("drain");
    assert!(c.hibernate().expect("hibernate"), "session must freeze");

    let stats = c.server_stats().expect("stats");
    let wakes_before = stat_u64(&stats, "wakes");
    assert_eq!(stat_u64(&stats, "sessions_hibernated"), 1);

    // All three observability reads serve from preserved state.
    let timeline = c.timeline().expect("timeline against dormant session");
    assert!(timeline.contains("eval"), "timeline lost: {timeline}");
    let (jsonl, _) = c.trace_jsonl(true).expect("trace against dormant session");
    assert!(!jsonl.is_empty(), "trace ring lost across hibernation");
    let metrics = c.metrics().expect("metrics against dormant session");
    assert!(
        metrics.contains("jit_ticks_total"),
        "frozen registry not rendered:\n{metrics}"
    );

    let stats = c.server_stats().expect("stats");
    assert_eq!(
        stat_u64(&stats, "wakes"),
        wakes_before,
        "an observability read woke the tenant"
    );
    assert_eq!(
        stat_u64(&stats, "sessions_hibernated"),
        1,
        "the tenant is no longer dormant after a read"
    );

    // A data-plane command still wakes it, with state intact.
    assert_eq!(c.probe("cnt").expect("probe"), Some(32));
    let stats = c.server_stats().expect("stats");
    assert_eq!(stat_u64(&stats, "wakes"), wakes_before + 1);
}

/// The wake-under-revocation race: a hibernated session wakes into a
/// fully-contended one-fabric fleet, evicts the squatter (eager arbiter),
/// and an injected `migration_revoke` yanks the lease back mid-migration.
/// The woken session must land in software with exact state, not corrupt
/// or deadlock.
#[test]
fn wake_survives_revocation_injected_mid_promotion() {
    let mut config = ServeConfig::quick();
    config.fabrics = 1;
    config.workers = 2;
    // Strict hottest-wins arbitration: the woken (hotter) session evicts
    // immediately, which is exactly the window the fault targets.
    config.arbiter = ArbiterConfig::eager();
    config.jit.faults = FaultPlan::builder().migration_revoke(1).build();
    config.hibernate_after_s = 0.0;
    let server = Server::new(config);

    let mut a = InProcClient::connect(&server);
    a.open().expect("open a");
    a.eval_all(COUNTER).expect("eval a");
    let mut ra = a.run(64).expect("run a");
    let mut ticks_a = ra.ticks;

    // Freeze A: its lease (if any) returns to the fleet.
    assert!(a.hibernate().expect("hibernate a"), "a must freeze");

    // B takes over the only fabric while A sleeps.
    let mut b = InProcClient::connect(&server);
    b.open().expect("open b");
    b.eval_all("reg [7:0] r = 0;\nalways @(posedge clk.val) r <= r + 2;")
        .expect("eval b");
    b.run(64).expect("run b");
    b.wait_compile().expect("b compile");
    b.run(64).expect("run b hw");

    // A wakes hotter than B (every command takes a fresher activity
    // stamp), re-compiles, and re-promotes — hitting the injected
    // mid-migration revocation on the way up.
    for _ in 0..30 {
        ra = a.run(32).expect("run woken a");
        ticks_a += ra.ticks;
        a.wait_compile().expect("a compile");
        let stats = a.server_stats().expect("stats");
        if stat_u64(&stats, "fabric_revocations") >= 1 {
            break;
        }
    }
    let stats = a.server_stats().expect("stats");
    assert!(
        stat_u64(&stats, "fabric_revocations") >= 1,
        "the contended wake never triggered a revocation"
    );

    // Both tenants still serve correct state after the scramble; A's
    // transcript and counter must match a solo runtime that never left
    // software.
    let (lines, dropped) = a.drain().expect("drain a");
    assert_eq!(dropped, 0);
    let mut oracle = Runtime::new(Board::new(), JitConfig::default()).expect("oracle");
    oracle.eval(COUNTER).expect("oracle eval");
    oracle.run_ticks(ticks_a).expect("oracle run");
    assert_eq!(
        lines,
        oracle.drain_output(),
        "A's transcript broke across the race"
    );
    assert_eq!(
        a.probe("cnt").expect("probe a"),
        oracle.probe("cnt").map(|b| b.to_u64()),
        "A's counter state broke across the race"
    );
    assert!(b.probe("r").expect("probe b").is_some(), "B died");
}

/// The 10K-tenant soak: ten thousand sessions, a handful active, the rest
/// idle. The sweeper hibernates idle tenants (spilling images to disk past
/// the memory budget), the live-runtime count stays bounded, and a woken
/// tenant's first command after days asleep is served correctly.
#[test]
fn ten_thousand_idle_sessions_stay_bounded_and_wake_correctly() {
    const SESSIONS: usize = 10_000;
    const ACTIVE: usize = 24;
    let mut config = ServeConfig::quick();
    config.fabrics = 1;
    config.workers = 2;
    // The soak targets the hibernation store, not the JIT: skip auto
    // compiles so the compile pool isn't a 24-job backlog in debug builds.
    config.jit.auto_compile = false;
    config.hibernate_after_s = 0.05;
    config.sweeper_poll_ms = 5;
    config.max_live_sessions = 32;
    // A deliberately tiny memory budget forces images onto disk.
    config.hibernate_mem_bytes = 64 << 10;
    let server = Server::new(config);

    let mut client = InProcClient::connect(&server);
    let mut ids = Vec::with_capacity(SESSIONS);
    for _ in 0..SESSIONS {
        ids.push(client.open().expect("open"));
    }

    // A few tenants do real work (building real runtimes), the rest stay
    // dormant-from-birth and must cost nothing.
    let mut active = Vec::new();
    for &id in ids.iter().take(ACTIVE) {
        let mut c = InProcClient::connect(&server);
        c.attach(id).expect("attach");
        c.eval_all("reg [15:0] n = 0;\nalways @(posedge clk.val) n <= n + 1;")
            .expect("eval");
        let r = c.run(100).expect("run");
        assert_eq!(r.ticks, 100);
        active.push((c, id));
    }

    // The sweeper freezes the active set once it goes idle.
    wait_until(
        || {
            let stats = client.server_stats().expect("stats");
            stat_u64(&stats, "sessions_live") == 0
        },
        "all live runtimes to hibernate",
    );

    let stats = client.server_stats().expect("stats");
    assert_eq!(stat_u64(&stats, "sessions"), SESSIONS as u64);
    assert_eq!(stat_u64(&stats, "sessions_hibernated"), SESSIONS as u64);
    assert!(
        stat_u64(&stats, "hibernates") >= ACTIVE as u64,
        "each active tenant hibernates at least once"
    );
    assert!(
        stat_u64(&stats, "hibernate_spills") > 0,
        "the tiny memory budget must spill images to disk"
    );
    assert!(
        stat_u64(&stats, "hibernate_mem_bytes") <= (64 << 10) + 4096,
        "the in-memory store must respect its budget (one image of slack)"
    );

    // Wake a mid-pack tenant: its first command must see exact state.
    let (c, _) = &mut active[ACTIVE / 2];
    assert_eq!(
        c.probe("n").expect("probe woken"),
        Some(100),
        "woken tenant lost state"
    );
    let r = c.run(28).expect("run woken");
    assert_eq!(r.ticks, 28);
    assert_eq!(c.probe("n").expect("probe again"), Some(128));

    // A dormant-from-birth tenant wakes into an empty-but-working REPL.
    let mut fresh = InProcClient::connect(&server);
    fresh.attach(ids[SESSIONS - 1]).expect("attach fresh");
    fresh
        .eval_all("reg [7:0] z = 9;")
        .expect("eval fresh tenant");
    assert_eq!(fresh.probe("z").expect("probe fresh"), Some(9));

    let stats = client.server_stats().expect("stats");
    assert!(
        stat_u64(&stats, "sessions_live") <= 32,
        "the live-runtime bound broke"
    );
    assert!(stat_u64(&stats, "wakes") >= (ACTIVE + 2) as u64);
    assert_eq!(stat_u64(&stats, "wake_failures"), 0);
}

/// The durable 10K soak: ten thousand mostly-idle journaled tenants drain
/// gracefully, the server restarts, and sampled tenants — busy and
/// dormant-from-birth alike — resume by id+token with exact state, while
/// the live-runtime bound keeps holding on the recovered server.
#[test]
fn ten_thousand_tenant_drain_and_restart_soak() {
    const SESSIONS: usize = 10_000;
    const ACTIVE: usize = 16;
    let dir = std::env::temp_dir().join(format!("cascade-soak-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut config = ServeConfig::quick();
    config.fabrics = 1;
    config.workers = 2;
    config.jit.auto_compile = false;
    config.hibernate_after_s = 0.05;
    config.sweeper_poll_ms = 5;
    config.max_live_sessions = 32;
    config.hibernate_mem_bytes = 64 << 10;
    config.durable_dir = Some(dir.to_string_lossy().into_owned());
    let server = Server::new(config.clone());

    let mut client = InProcClient::connect(&server);
    let mut tenants = Vec::with_capacity(SESSIONS);
    for _ in 0..SESSIONS {
        let id = client.open().expect("open");
        tenants.push((id, client.token().expect("durable open returns token")));
    }

    for &(id, _) in tenants.iter().take(ACTIVE) {
        let mut c = InProcClient::connect(&server);
        c.attach(id).expect("attach");
        c.eval_all("reg [15:0] n = 0;\nalways @(posedge clk.val) n <= n + 1;")
            .expect("eval");
        assert_eq!(c.run(100).expect("run").ticks, 100);
    }
    wait_until(
        || stat_u64(&client.server_stats().expect("stats"), "sessions_live") == 0,
        "all live runtimes to hibernate",
    );

    // The sweeper already compacted every busy tenant's journal at
    // hibernate time, so drain finds nothing left to flush — it only has
    // to land the counter baselines durably.
    client.drain_server().expect("drain server");
    drop(client);
    drop(server);

    let journals = std::fs::read_dir(dir.join("sessions"))
        .expect("sessions dir")
        .flatten()
        .filter(|e| e.path().extension().is_some_and(|x| x == "jnl"))
        .count();
    assert_eq!(journals, SESSIONS, "one journal generation per tenant");

    let recovered = Server::recover(config);
    let mut client = InProcClient::connect(&recovered);
    let stats = client.server_stats().expect("stats");
    assert_eq!(
        stat_u64(&stats, "recovered_sessions"),
        SESSIONS as u64,
        "every journaled tenant must rehydrate"
    );
    assert_eq!(stat_u64(&stats, "recovery_quarantined"), 0);
    assert_eq!(
        stat_u64(&stats, "recovery_replayed"),
        0,
        "a graceful drain leaves only checkpoints, nothing to replay"
    );
    assert_eq!(
        stat_u64(&stats, "sessions_live"),
        0,
        "recovered tenants are dormant until resumed"
    );

    // Busy tenants resume with exact state and keep counting.
    for &(id, token) in tenants.iter().take(ACTIVE).step_by(3) {
        let mut c = InProcClient::connect(&recovered);
        c.resume(id, token).expect("resume busy tenant");
        assert_eq!(c.probe("n").expect("probe"), Some(100), "tenant {id}");
        assert_eq!(c.run(28).expect("run").ticks, 28);
        assert_eq!(c.probe("n").expect("probe"), Some(128), "tenant {id}");
    }
    // Dormant-from-birth tenants resume into a working empty REPL.
    for &(id, token) in tenants.iter().skip(SESSIONS - 4) {
        let mut c = InProcClient::connect(&recovered);
        c.resume(id, token).expect("resume idle tenant");
        c.eval_all("reg [7:0] z = 9;").expect("eval");
        assert_eq!(c.probe("z").expect("probe"), Some(9), "tenant {id}");
    }
    // A wrong token is still rejected after recovery.
    let (id, token) = tenants[SESSIONS / 2];
    let mut c = InProcClient::connect(&recovered);
    assert!(
        c.resume(id, token ^ 1).is_err(),
        "bad token must be refused"
    );

    let stats = client.server_stats().expect("stats");
    assert!(
        stat_u64(&stats, "sessions_live") <= 32,
        "the live-runtime bound broke on the recovered server"
    );
    assert_eq!(stat_u64(&stats, "wake_failures"), 0);
    let _ = std::fs::remove_dir_all(&dir);
}
