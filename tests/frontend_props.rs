//! Property-based tests across the frontend and both evaluators:
//! pretty-print/reparse round trips, and interpreter/netlist equivalence on
//! randomized synthesizable programs.
//!
//! Randomized with the in-tree deterministic [`Prng`] (no registry access in
//! the build environment, so `proptest` is unavailable). Every assertion
//! carries the case seed; rerun a failure by fixing the seed locally.

use cascade_bits::{Bits, Prng};
use cascade_netlist::{synthesize, NetlistSim};
use cascade_sim::{elaborate, library_from_source, Simulator};
use std::sync::Arc;

// ----------------------------------------------------------------------
// Random expression / statement grammars (proptest-strategy style).
// ----------------------------------------------------------------------

/// A random expression over inputs `a`/`b`, literals, and the operator set
/// the frontend round-trips.
fn arb_expr(rng: &mut Prng, depth: u32) -> String {
    if depth == 0 {
        match rng.below(4) {
            0 => rng.range(1, 0xffff).to_string(),
            1 => {
                let w = rng.range(1, 16);
                let v = rng.next_u64() & ((1u64 << w) - 1);
                format!("{w}'h{v:x}")
            }
            2 => "a".to_string(),
            _ => "b".to_string(),
        }
    } else {
        match rng.below(5) {
            0 => {
                let op = *rng.pick(&["+", "-", "*", "&", "|", "^", "<<", ">>", "==", "<"]);
                let l = arb_expr(rng, depth - 1);
                let r = arb_expr(rng, depth - 1);
                format!("({l} {op} {r})")
            }
            1 => {
                let c = arb_expr(rng, depth - 1);
                let t = arb_expr(rng, depth - 1);
                let f = arb_expr(rng, depth - 1);
                format!("({c} ? {t} : {f})")
            }
            2 => format!("(~{})", arb_expr(rng, depth - 1)),
            3 => format!("{{2{{{}}}}}", arb_expr(rng, depth - 1)),
            _ => {
                let l = arb_expr(rng, depth - 1);
                let r = arb_expr(rng, depth - 1);
                format!("{{{l}, {r}}}")
            }
        }
    }
}

/// A random guarded-update statement over regs r0..r2 and inputs a/b.
fn arb_seq_stmt(rng: &mut Prng, depth: u32) -> String {
    let assign = |rng: &mut Prng| {
        let r = rng.below(3);
        let e = arb_expr(rng, 1);
        format!("r{r} <= {e};")
    };
    if depth == 0 {
        return assign(rng);
    }
    match rng.below(7) {
        0..=2 => assign(rng),
        3 | 4 => {
            let c = arb_expr(rng, 1);
            let t = arb_seq_stmt(rng, depth - 1);
            let e = arb_seq_stmt(rng, depth - 1);
            format!("if ({c}) begin {t} end else begin {e} end")
        }
        5 => {
            let scr = arb_expr(rng, 0);
            let x = arb_seq_stmt(rng, depth - 1);
            let y = arb_seq_stmt(rng, depth - 1);
            let z = arb_seq_stmt(rng, depth - 1);
            format!(
                "case ({scr}[1:0]) 2'd0: begin {x} end 2'd1: begin {y} end default: begin {z} end endcase"
            )
        }
        _ => {
            let x = arb_seq_stmt(rng, depth - 1);
            let y = arb_seq_stmt(rng, depth - 1);
            format!("begin {x} {y} end")
        }
    }
}

// ----------------------------------------------------------------------
// Expression round trip
// ----------------------------------------------------------------------

#[test]
fn expr_pretty_reparse_roundtrip() {
    for seed in 0..64 {
        let mut rng = Prng::new(seed);
        let src = arb_expr(&mut rng, 3);
        let e1 = cascade_verilog::parse_expr(&src).expect("generated expr parses");
        let printed = cascade_verilog::pretty::print_expr(&e1);
        let e2 = cascade_verilog::parse_expr(&printed)
            .unwrap_or_else(|err| panic!("reparse failed on `{printed}`: {err}"));
        let printed2 = cascade_verilog::pretty::print_expr(&e2);
        assert_eq!(printed, printed2, "seed {seed}");
    }
}

#[test]
fn module_roundtrip_with_expr() {
    for seed in 0..64 {
        let mut rng = Prng::new(seed);
        let src = arb_expr(&mut rng, 2);
        let module = format!(
            "module T(input wire [15:0] a, input wire [15:0] b, output wire [15:0] o);\n\
             assign o = {src};\nendmodule"
        );
        let unit = cascade_verilog::parse(&module).expect("module parses");
        let printed = cascade_verilog::pretty::print_unit(&unit);
        let reparsed = cascade_verilog::parse(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        assert_eq!(
            cascade_verilog::pretty::print_unit(&reparsed),
            printed,
            "seed {seed}"
        );
    }
}

// ----------------------------------------------------------------------
// Interpreter vs netlist on randomized combinational expressions.
// ----------------------------------------------------------------------

#[test]
fn sim_netlist_equivalence() {
    for seed in 0..64 {
        let mut rng = Prng::new(seed);
        let src = arb_expr(&mut rng, 3);
        let a = rng.next_u64();
        let b = rng.next_u64();
        let module = format!(
            "module T(input wire clk, input wire [15:0] a, input wire [15:0] b,\n\
             output wire [15:0] o, output wire [15:0] q);\n\
             reg [15:0] r = 0;\n\
             always @(posedge clk) r <= {src};\n\
             assign o = {src};\n\
             assign q = r;\nendmodule"
        );
        let lib = library_from_source(&module).expect("parse");
        let design = Arc::new(elaborate("T", &lib, &Default::default()).expect("elaborate"));
        let mut sim = Simulator::new(Arc::clone(&design));
        sim.initialize().unwrap();
        let nl = synthesize(&design).expect("synthesize");
        let mut hw = NetlistSim::new(Arc::new(nl)).expect("levelize");
        let av = Bits::from_u64(16, a & 0xffff);
        let bv = Bits::from_u64(16, b & 0xffff);
        sim.poke("a", av.clone());
        sim.poke("b", bv.clone());
        sim.settle().unwrap();
        hw.set_by_name("a", av);
        hw.set_by_name("b", bv);
        assert_eq!(
            sim.peek("o"),
            hw.get_by_name("o").unwrap(),
            "combinational divergence on `{src}` (seed {seed})"
        );
        sim.tick("clk").unwrap();
        hw.step_clock(0);
        assert_eq!(
            sim.peek("q"),
            hw.get_by_name("q").unwrap(),
            "registered divergence on `{src}` (seed {seed})"
        );
    }
}

// ----------------------------------------------------------------------
// The lexer and parser never panic.
// ----------------------------------------------------------------------

#[test]
fn lexer_total() {
    for seed in 0..64 {
        let mut rng = Prng::new(seed);
        let len = rng.below(200) as usize;
        let src: String = (0..len)
            .map(|_| char::from_u32(rng.range(1, 0x24f) as u32).unwrap_or('x'))
            .collect();
        let _ = cascade_verilog::lex(&src);
    }
}

#[test]
fn parser_total() {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789 ;=()[]{}<>+*&|^~!?:.'\"@#,-";
    for seed in 0..64 {
        let mut rng = Prng::new(seed);
        let len = rng.below(200) as usize;
        let src: String = (0..len).map(|_| *rng.pick(ALPHABET) as char).collect();
        let _ = cascade_verilog::parse(&src);
    }
}

// ----------------------------------------------------------------------
// Sequential equivalence: randomized clocked programs with control flow.
// ----------------------------------------------------------------------

#[test]
fn sequential_sim_netlist_equivalence() {
    for seed in 0..48 {
        let mut rng = Prng::new(seed);
        let body = arb_seq_stmt(&mut rng, 2);
        let stim_len = rng.range(1, 5);
        let stimulus: Vec<(u64, u64)> = (0..stim_len)
            .map(|_| (rng.next_u64(), rng.next_u64()))
            .collect();
        // `a`/`b` are inputs; regs r0..r2 are state; every reg is also an
        // output so divergence anywhere is visible.
        let module = format!(
            "module T(input wire clk, input wire [15:0] a, input wire [15:0] b,\n\
             output wire [15:0] o0, output wire [15:0] o1, output wire [15:0] o2);\n\
             reg [15:0] r0 = 1; reg [15:0] r1 = 2; reg [15:0] r2 = 3;\n\
             always @(posedge clk) begin {body} end\n\
             assign o0 = r0; assign o1 = r1; assign o2 = r2;\nendmodule"
        );
        let lib = library_from_source(&module).expect("parse");
        let design = Arc::new(elaborate("T", &lib, &Default::default()).expect("elaborate"));
        let mut sim = Simulator::new(Arc::clone(&design));
        sim.initialize().unwrap();
        let nl = synthesize(&design).expect("synthesize");
        let mut hw = NetlistSim::new(Arc::new(nl)).expect("levelize");
        for (a, b) in stimulus {
            let av = Bits::from_u64(16, a & 0xffff);
            let bv = Bits::from_u64(16, b & 0xffff);
            sim.poke("a", av.clone());
            sim.poke("b", bv.clone());
            sim.settle().unwrap();
            hw.set_by_name("a", av);
            hw.set_by_name("b", bv);
            sim.tick("clk").unwrap();
            hw.step_clock(0);
            for out in ["o0", "o1", "o2"] {
                assert_eq!(
                    sim.peek(out),
                    hw.get_by_name(out).unwrap(),
                    "divergence on {out} running `{body}` (seed {seed})"
                );
            }
        }
    }
}

// ----------------------------------------------------------------------
// Promoted regressions: seeds the randomized suite once minimized, kept
// as named deterministic tests so the exact shapes never regress.
// ----------------------------------------------------------------------

/// Runs one fixed `(body, stimulus)` case through the sequential
/// sim-vs-netlist harness.
fn check_seq_case(name: &str, body: &str, stimulus: &[(u64, u64)]) {
    let module = format!(
        "module T(input wire clk, input wire [15:0] a, input wire [15:0] b,\n\
         output wire [15:0] o0, output wire [15:0] o1, output wire [15:0] o2);\n\
         reg [15:0] r0 = 1; reg [15:0] r1 = 2; reg [15:0] r2 = 3;\n\
         always @(posedge clk) begin {body} end\n\
         assign o0 = r0; assign o1 = r1; assign o2 = r2;\nendmodule"
    );
    let lib = library_from_source(&module).expect("parse");
    let design = Arc::new(elaborate("T", &lib, &Default::default()).expect("elaborate"));
    let mut sim = Simulator::new(Arc::clone(&design));
    sim.initialize().unwrap();
    let nl = synthesize(&design).expect("synthesize");
    let mut hw = NetlistSim::new(Arc::new(nl)).expect("levelize");
    for &(a, b) in stimulus {
        let av = Bits::from_u64(16, a & 0xffff);
        let bv = Bits::from_u64(16, b & 0xffff);
        sim.poke("a", av.clone());
        sim.poke("b", bv.clone());
        sim.settle().unwrap();
        hw.set_by_name("a", av);
        hw.set_by_name("b", bv);
        sim.tick("clk").unwrap();
        hw.step_clock(0);
        for out in ["o0", "o1", "o2"] {
            assert_eq!(
                sim.peek(out),
                hw.get_by_name(out).unwrap(),
                "regression {name}: divergence on {out} running `{body}`"
            );
        }
    }
}

/// Promoted from `frontend_props.proptest-regressions` (seed
/// `47fd54e9…`): a constant-true `if` whose taken arm is dead code, an
/// else-arm concat with a truncating literal, and a same-cycle double
/// write to `r2` where the later assignment must win. Historically the
/// mux lowering dropped the second write's priority.
#[test]
fn regression_const_if_concat_and_double_write_priority() {
    check_seq_case(
        "const-if/double-write",
        "begin if ((1'h0 + 34892)) begin r2 <= (b ^ b); end else begin r2 <= {7450, b}; end \
         begin r0 <= (~48550); r2 <= (b & b); end end",
        &[(15135785235765471721, 7058691194870242878)],
    );
}
