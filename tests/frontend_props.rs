//! Property-based tests across the frontend and both evaluators:
//! pretty-print/reparse round trips, and interpreter/netlist equivalence on
//! randomized synthesizable programs.

use cascade_bits::Bits;
use cascade_netlist::{synthesize, NetlistSim};
use cascade_sim::{elaborate, library_from_source, Simulator};
use proptest::prelude::*;
use std::sync::Arc;

// ----------------------------------------------------------------------
// Expression round trip
// ----------------------------------------------------------------------

fn arb_expr(depth: u32) -> BoxedStrategy<String> {
    if depth == 0 {
        prop_oneof![
            (1u64..=0xffff).prop_map(|v| v.to_string()),
            (1u32..=16, any::<u64>()).prop_map(|(w, v)| format!(
                "{w}'h{:x}",
                v & ((1u64 << w) - 1)
            )),
            Just("a".to_string()),
            Just("b".to_string()),
        ]
        .boxed()
    } else {
        let sub = arb_expr(depth - 1);
        prop_oneof![
            (sub.clone(), sub.clone(), prop_oneof![
                Just("+"), Just("-"), Just("*"), Just("&"), Just("|"), Just("^"),
                Just("<<"), Just(">>"), Just("=="), Just("<"),
            ])
                .prop_map(|(l, r, op)| format!("({l} {op} {r})")),
            (sub.clone(), sub.clone(), sub.clone())
                .prop_map(|(c, t, f)| format!("({c} ? {t} : {f})")),
            sub.clone().prop_map(|e| format!("(~{e})")),
            sub.clone().prop_map(|e| format!("{{2{{{e}}}}}")),
            (sub.clone(), sub).prop_map(|(l, r)| format!("{{{l}, {r}}}")),
        ]
        .boxed()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn expr_pretty_reparse_roundtrip(src in arb_expr(3)) {
        let e1 = cascade_verilog::parse_expr(&src).expect("generated expr parses");
        let printed = cascade_verilog::pretty::print_expr(&e1);
        let e2 = cascade_verilog::parse_expr(&printed)
            .unwrap_or_else(|err| panic!("reparse failed on `{printed}`: {err}"));
        let printed2 = cascade_verilog::pretty::print_expr(&e2);
        prop_assert_eq!(printed, printed2);
    }

    #[test]
    fn module_roundtrip_with_expr(src in arb_expr(2)) {
        let module = format!(
            "module T(input wire [15:0] a, input wire [15:0] b, output wire [15:0] o);\n\
             assign o = {src};\nendmodule"
        );
        let unit = cascade_verilog::parse(&module).expect("module parses");
        let printed = cascade_verilog::pretty::print_unit(&unit);
        let reparsed = cascade_verilog::parse(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        prop_assert_eq!(cascade_verilog::pretty::print_unit(&reparsed), printed);
    }

    // ------------------------------------------------------------------
    // Interpreter vs netlist on randomized combinational expressions.
    // ------------------------------------------------------------------

    #[test]
    fn sim_netlist_equivalence(
        src in arb_expr(3),
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        let module = format!(
            "module T(input wire clk, input wire [15:0] a, input wire [15:0] b,\n\
             output wire [15:0] o, output wire [15:0] q);\n\
             reg [15:0] r = 0;\n\
             always @(posedge clk) r <= {src};\n\
             assign o = {src};\n\
             assign q = r;\nendmodule"
        );
        let lib = library_from_source(&module).expect("parse");
        let design = Arc::new(
            elaborate("T", &lib, &Default::default()).expect("elaborate"),
        );
        let mut sim = Simulator::new(Arc::clone(&design));
        sim.initialize().unwrap();
        let nl = synthesize(&design).expect("synthesize");
        let mut hw = NetlistSim::new(Arc::new(nl)).expect("levelize");
        let av = Bits::from_u64(16, a & 0xffff);
        let bv = Bits::from_u64(16, b & 0xffff);
        sim.poke("a", av.clone());
        sim.poke("b", bv.clone());
        sim.settle().unwrap();
        hw.set_by_name("a", av);
        hw.set_by_name("b", bv);
        prop_assert_eq!(
            sim.peek("o").clone(),
            hw.get_by_name("o").unwrap().clone(),
            "combinational divergence on `{}`", src
        );
        sim.tick("clk").unwrap();
        hw.step_clock(0);
        prop_assert_eq!(
            sim.peek("q").clone(),
            hw.get_by_name("q").unwrap().clone(),
            "registered divergence on `{}`", src
        );
    }

    // ------------------------------------------------------------------
    // The lexer never panics.
    // ------------------------------------------------------------------

    #[test]
    fn lexer_total(src in "\\PC*") {
        let _ = cascade_verilog::lex(&src);
    }

    #[test]
    fn parser_total(src in "[a-z0-9 ;=()\\[\\]{}<>+*&|^~!?:.'\"@#,-]*") {
        let _ = cascade_verilog::parse(&src);
    }
}

// ----------------------------------------------------------------------
// Sequential equivalence: randomized clocked programs with control flow.
// ----------------------------------------------------------------------

/// A random guarded-update statement over regs r0..r2 and inputs a/b.
fn arb_seq_stmt(depth: u32) -> BoxedStrategy<String> {
    let assign = (0u8..3, arb_expr(1)).prop_map(|(r, e)| format!("r{r} <= {e};"));
    if depth == 0 {
        assign.boxed()
    } else {
        let sub = arb_seq_stmt(depth - 1);
        prop_oneof![
            3 => assign,
            2 => (arb_expr(1), sub.clone(), sub.clone())
                .prop_map(|(c, t, e)| format!("if ({c}) begin {t} end else begin {e} end")),
            1 => (arb_expr(0), sub.clone(), sub.clone(), sub.clone()).prop_map(
                |(scr, x, y, z)| format!(
                    "case ({scr}[1:0]) 2'd0: begin {x} end 2'd1: begin {y} end default: begin {z} end endcase"
                )
            ),
            1 => (sub.clone(), sub).prop_map(|(x, y)| format!("begin {x} {y} end")),
        ]
        .boxed()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sequential_sim_netlist_equivalence(
        body in arb_seq_stmt(2),
        stimulus in proptest::collection::vec((any::<u64>(), any::<u64>()), 1..6),
    ) {
        // `a`/`b` are inputs; regs r0..r2 are state; every reg is also an
        // output so divergence anywhere is visible.
        let module = format!(
            "module T(input wire clk, input wire [15:0] a, input wire [15:0] b,\n\
             output wire [15:0] o0, output wire [15:0] o1, output wire [15:0] o2);\n\
             reg [15:0] r0 = 1; reg [15:0] r1 = 2; reg [15:0] r2 = 3;\n\
             always @(posedge clk) begin {body} end\n\
             assign o0 = r0; assign o1 = r1; assign o2 = r2;\nendmodule"
        );
        let lib = library_from_source(&module).expect("parse");
        let design = Arc::new(elaborate("T", &lib, &Default::default()).expect("elaborate"));
        let mut sim = Simulator::new(Arc::clone(&design));
        sim.initialize().unwrap();
        let nl = synthesize(&design).expect("synthesize");
        let mut hw = NetlistSim::new(Arc::new(nl)).expect("levelize");
        for (a, b) in stimulus {
            let av = Bits::from_u64(16, a & 0xffff);
            let bv = Bits::from_u64(16, b & 0xffff);
            sim.poke("a", av.clone());
            sim.poke("b", bv.clone());
            sim.settle().unwrap();
            hw.set_by_name("a", av);
            hw.set_by_name("b", bv);
            sim.tick("clk").unwrap();
            hw.step_clock(0);
            for out in ["o0", "o1", "o2"] {
                prop_assert_eq!(
                    sim.peek(out).clone(),
                    hw.get_by_name(out).unwrap().clone(),
                    "divergence on {} running `{}`", out, body
                );
            }
        }
    }
}
