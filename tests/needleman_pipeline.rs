//! The Needleman-Wunsch "student corpus" (paper Sec. 6.4, Table 1):
//! generated solutions must parse, simulate to the reference score, and —
//! for the styles that synthesize — match in hardware.

use cascade_bits::Bits;
use cascade_sim::{elaborate, library_from_source, Simulator};
use cascade_verilog::analysis;
use cascade_verilog::typecheck::ParamEnv;
use cascade_workloads::needleman::{
    nw_score, pack_sequence, random_sequence, student_solution, student_style,
};
use std::sync::Arc;

fn run_solution(seed: u64) -> (i64, i64) {
    let style = student_style(seed);
    let src = student_solution(&style);
    let n = style.seq_len;
    let a = random_sequence(n, seed * 2 + 1);
    let b = random_sequence(n, seed * 3 + 7);
    let expect = nw_score(&a, &b);
    let lib = library_from_source(&src).expect("parse");
    let overrides = ParamEnv::from([
        (
            "SEQ_A".to_string(),
            Bits::from_u64(n as u32 * 2, pack_sequence(&a)),
        ),
        (
            "SEQ_B".to_string(),
            Bits::from_u64(n as u32 * 2, pack_sequence(&b)),
        ),
    ]);
    let design = elaborate("Nw", &lib, &overrides).expect("elaborate");
    let mut sim = Simulator::new(Arc::new(design));
    sim.initialize().unwrap();
    for _ in 0..(2 * n + 8) {
        if sim.peek("done").to_bool() {
            break;
        }
        sim.tick("clk").unwrap();
    }
    assert!(
        sim.peek("done").to_bool(),
        "seed {seed}: solution never finished"
    );
    let got = {
        let v = sim.peek("score");
        v.to_i64()
    };
    (got, expect)
}

#[test]
fn generated_solutions_compute_reference_scores() {
    for seed in 0..10 {
        let (got, expect) = run_solution(seed);
        assert_eq!(got, expect, "seed {seed}");
    }
}

#[test]
fn corpus_statistics_match_student_habits() {
    // The corpus must reflect Table 1's qualitative facts: blocking
    // assignments dominate nonblocking, display statements are pervasive,
    // and a minority of solutions pipeline.
    let mut blocking = 0usize;
    let mut nonblocking = 0usize;
    let mut displays = 0usize;
    let mut pipelined = 0usize;
    let n = 31; // the paper analysed 31 submissions
    for seed in 0..n {
        let style = student_style(seed as u64);
        let src = student_solution(&style);
        let unit = cascade_verilog::parse(&src).unwrap();
        let stats = analysis::source_stats(&src, &unit);
        blocking += stats.blocking_assignments;
        nonblocking += stats.nonblocking_assignments;
        displays += stats.display_statements;
        if style.pipelined {
            pipelined += 1;
        }
        assert!(stats.display_statements >= 1, "every student printf-debugs");
    }
    assert!(
        blocking > nonblocking * 4,
        "blocking should dominate: {blocking} vs {nonblocking}"
    );
    assert!(displays >= n, "at least one display per submission");
    let frac = pipelined as f64 / n as f64;
    assert!(
        (0.1..=0.55).contains(&frac),
        "a minority pipeline (paper: 29%), got {frac:.2}"
    );
}

#[test]
fn pipelined_solutions_synthesize_and_match() {
    // Pipelined (nonblocking) solutions are the hardware-friendly ones;
    // check one end-to-end in the netlist evaluator.
    let style = {
        let mut s = student_style(3);
        s.pipelined = true;
        s.blocking_heavy = false;
        s.display_count = 0; // tasks in hardware are tested elsewhere
        s.seq_len = 5;
        s
    };
    let src = student_solution(&style);
    let n = style.seq_len;
    let a = random_sequence(n, 11);
    let b = random_sequence(n, 13);
    let expect = nw_score(&a, &b);
    let lib = library_from_source(&src).expect("parse");
    let overrides = ParamEnv::from([
        (
            "SEQ_A".to_string(),
            Bits::from_u64(n as u32 * 2, pack_sequence(&a)),
        ),
        (
            "SEQ_B".to_string(),
            Bits::from_u64(n as u32 * 2, pack_sequence(&b)),
        ),
    ]);
    let design = elaborate("Nw", &lib, &overrides).expect("elaborate");
    let nl = cascade_netlist::synthesize(&design).expect("synthesize");
    let mut hw = cascade_netlist::NetlistSim::new(Arc::new(nl)).expect("levelize");
    for _ in 0..(2 * n as u64 + 8) {
        if hw.get_by_name("done").unwrap().to_bool() {
            break;
        }
        hw.step_clock(0);
    }
    assert!(hw.get_by_name("done").unwrap().to_bool());
    let got = hw.get_by_name("score").unwrap().to_i64();
    assert_eq!(got, expect);
}
