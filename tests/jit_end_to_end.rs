//! Whole-system behavioural equivalence: the same program must produce the
//! same observable behaviour (LED trace, printf output) in every execution
//! mode — interpreter, JIT with migration mid-run, and ablated configs.
//! This is the paper's well-formedness requirement (Sec. 2.5): any system
//! producing the same sequence of observable states is a model for Verilog.

use cascade_bits::Bits;
use cascade_core::{ExecMode, JitConfig, Runtime};
use cascade_fpga::Board;

const PROGRAM: &str = "module Rol(input wire [7:0] x, output wire [7:0] y);\n\
    assign y = (x == 8'h80) ? 8'h1 : (x<<1);\nendmodule\n\
    reg [7:0] cnt = 1;\n\
    Rol r(.x(cnt));\n\
    always @(posedge clk.val)\n\
      if (pad.val == 0)\n\
        cnt <= r.y;\n\
    assign led.val = cnt;";

/// Runs the rotator for `ticks`, sampling the LED bank each tick;
/// optionally migrates to hardware after `migrate_at` ticks.
fn led_trace(config: JitConfig, ticks: u64, migrate_at: Option<u64>) -> Vec<u64> {
    let board = Board::new();
    let mut rt = Runtime::new(board.clone(), config).unwrap();
    rt.eval(PROGRAM).unwrap();
    let mut trace = Vec::new();
    for t in 0..ticks {
        if migrate_at == Some(t) {
            rt.wait_for_compile_worker();
            // Non-inlined configs never compile (the paper inlines before
            // hardware); they simply stay in software.
            if let Some(ready) = rt.compile_ready_at() {
                rt.advance_wall((ready - rt.wall_seconds()).max(0.0) + 1.0);
            }
        }
        rt.run_ticks(1).unwrap();
        trace.push(board.leds().to_u64());
    }
    trace
}

#[test]
fn led_trace_identical_across_modes() {
    let reference = led_trace(JitConfig::interpreter_only(), 24, None);
    // Expected rotation: 2, 4, ..., 0x80, 1, 2, ...
    assert_eq!(reference[0], 2);
    assert_eq!(reference[6], 0x80);
    assert_eq!(reference[7], 1);

    // Migrate at different points: the observable trace must not change.
    for migrate_at in [0u64, 3, 7, 15] {
        let t = led_trace(JitConfig::default(), 24, Some(migrate_at));
        assert_eq!(
            t, reference,
            "divergence when migrating at tick {migrate_at}"
        );
    }
}

#[test]
fn ablations_preserve_behaviour() {
    let reference = led_trace(JitConfig::interpreter_only(), 16, None);
    for stage in ["inline", "forwarding", "open_loop"] {
        let cfg = JitConfig::default().without(stage);
        let t = led_trace(cfg, 16, Some(2));
        assert_eq!(t, reference, "ablation `{stage}` changed behaviour");
    }
}

#[test]
fn interactive_session_with_migration_and_edit() {
    // A realistic session: eval, run, migrate, press buttons, edit code,
    // keep going — state and behaviour must stay coherent throughout.
    let board = Board::new();
    let mut rt = Runtime::new(board.clone(), JitConfig::default()).unwrap();
    rt.eval(PROGRAM).unwrap();
    rt.run_ticks(2).unwrap();
    assert_eq!(board.leds().to_u64(), 4);

    // Migrate.
    rt.wait_for_compile_worker();
    let ready = rt.compile_ready_at().expect("staged");
    rt.advance_wall((ready - rt.wall_seconds()).max(0.0) + 1.0);
    rt.run_ticks(1).unwrap();
    assert_eq!(rt.mode(), ExecMode::HardwareForwarded);
    assert_eq!(board.leds().to_u64(), 8);

    // Pause via button from hardware.
    board.set_button(2, true);
    rt.run_ticks(5).unwrap();
    assert_eq!(board.leds().to_u64(), 8, "paused in hardware");
    board.set_button(2, false);

    // Live edit: add a probe statement; engine drops to software with
    // state intact and the probe sees the live value.
    rt.eval("$display(\"cnt is %d\", cnt);").unwrap();
    let out = rt.drain_output();
    assert_eq!(out, vec!["cnt is 8"]);
    assert_eq!(rt.mode(), ExecMode::Software);
    rt.run_ticks(1).unwrap();
    assert_eq!(board.leds().to_u64(), 16);
}

#[test]
fn gpio_and_reset_components() {
    let board = Board::new();
    let mut rt = Runtime::new(board.clone(), JitConfig::interpreter_only()).unwrap();
    rt.eval(
        "reg [31:0] acc = 0;\n\
         always @(posedge clk.val)\n\
           if (rst.val) acc <= 0;\n\
           else acc <= acc + gpio.in;\n\
         assign gpio.out = acc;",
    )
    .unwrap();
    board.set_gpio(Bits::from_u64(32, 5));
    rt.run_ticks(3).unwrap();
    assert_eq!(board.gpio_out().to_u64(), 15);
    board.set_reset(true);
    rt.run_ticks(1).unwrap();
    assert_eq!(board.gpio_out().to_u64(), 0);
    board.set_reset(false);
    board.set_gpio(Bits::from_u64(32, 7));
    rt.run_ticks(2).unwrap();
    assert_eq!(board.gpio_out().to_u64(), 14);
}

#[test]
fn virtual_clock_gets_faster_over_time() {
    // The headline Fig. 11 shape in one test: measure the virtual clock
    // rate in software, then after migration; the latter must be far
    // higher, and the program must never miss a beat.
    let board = Board::new();
    let mut rt = Runtime::new(board.clone(), JitConfig::default()).unwrap();
    rt.eval(PROGRAM).unwrap();

    let w0 = rt.wall_seconds();
    rt.run_ticks(200).unwrap();
    let sw_rate = 200.0 / (rt.wall_seconds() - w0);

    rt.wait_for_compile_worker();
    let ready = rt.compile_ready_at().expect("staged");
    rt.advance_wall((ready - rt.wall_seconds()).max(0.0) + 1.0);
    rt.run_ticks(1).unwrap();
    let t0 = rt.ticks();
    let w1 = rt.wall_seconds();
    rt.run_ticks(500_000).unwrap();
    let hw_rate = (rt.ticks() - t0) as f64 / (rt.wall_seconds() - w1);

    assert!(
        hw_rate > sw_rate * 100.0,
        "open-loop hardware ({hw_rate:.0} Hz) should be orders of magnitude \
         beyond software ({sw_rate:.0} Hz)"
    );
    // Within 3x of the native 50 MHz clock (paper's headline bound).
    assert!(
        hw_rate > 50e6 / 3.0,
        "rate {hw_rate:.0} outside 3x of native"
    );
}
