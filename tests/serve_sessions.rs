//! Multi-tenant serving: concurrent sessions over a shared one-fabric
//! fleet, protocol transport equivalence (TCP vs in-process), lease
//! revocation with state migration validated against a solo-runtime
//! oracle, bounded output backpressure, the shared compile cache, and the
//! idle reaper.

use cascade_core::Runtime;
use cascade_fpga::Board;
use cascade_serve::{EvalResult, InProcClient, Json, ServeConfig, Server, TcpClient, TcpServer};
use cascade_workloads::regex::{compile, matcher_verilog, Flavor as RegexFlavor};
use cascade_workloads::sha256::{find_nonce, miner_verilog, Flavor as MinerFlavor, MinerConfig};
use std::time::{Duration, Instant};

const COUNTER: &str = "reg [15:0] cnt = 0;\n\
                       always @(posedge clk.val) cnt <= cnt + 1;\n\
                       always @(posedge clk.val) if (cnt[2:0] == 3'd7) $display(\"c=%d\", cnt);\n\
                       assign led.val = cnt[7:0];";

fn stat_u64(stats: &Json, key: &str) -> u64 {
    stats.get(key).and_then(Json::as_u64).unwrap_or(0)
}

fn stat_bool(stats: &Json, key: &str) -> bool {
    stats.get(key).and_then(Json::as_bool).unwrap_or(false)
}

fn stat_str<'j>(stats: &'j Json, key: &str) -> &'j str {
    stats.get(key).and_then(Json::as_str).unwrap_or("")
}

/// Polls `cond` until it holds or the deadline passes.
fn wait_until(mut cond: impl FnMut() -> bool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn tcp_and_inproc_share_one_protocol() {
    let server = Server::new(ServeConfig::quick());
    let tcp = TcpServer::bind(server.clone(), "127.0.0.1:0").expect("bind");
    let mut c = TcpClient::connect(tcp.addr()).expect("connect");

    let id = c.open().expect("open");
    assert_eq!(c.eval("reg [7:0] x"), Ok(EvalResult::Incomplete));
    assert_eq!(c.eval("= 3;"), Ok(EvalResult::Evaluated(vec![])));
    let out = c
        .eval("initial $display(\"x=%d\", x);")
        .expect("display eval");
    assert_eq!(out, EvalResult::Evaluated(vec!["x=3".to_string()]));

    // Position-accurate batched errors travel the wire too: two items
    // close at once, the second is bad, the message names it.
    assert_eq!(c.eval("reg [7:0] y"), Ok(EvalResult::Incomplete));
    let EvalResult::Error(msg) = c.eval("= 1; assign led.val = ghost;").expect("eval") else {
        panic!("expected a per-item error");
    };
    assert!(msg.contains("item 2 of 2"), "got: {msg}");

    // A second connection re-attaches to the same live session.
    let mut c2 = TcpClient::connect(tcp.addr()).expect("connect2");
    c2.attach(id).expect("attach");
    assert_eq!(c2.probe("x").expect("probe"), Some(3));
    assert!(c2.attach(id + 999).is_err(), "bogus id must be rejected");

    // Malformed lines get an error reply, not a dropped connection.
    let mut inproc = InProcClient::connect(&server);
    let reply = Json::parse(&server.handle_line("{\"cmd\":\"warp\"}")).unwrap();
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));

    // The in-process client sees the TCP client's session state.
    inproc.attach(id).expect("attach inproc");
    assert_eq!(inproc.probe("x").expect("probe"), Some(3));
    c.close().expect("close");
    assert!(inproc.probe("x").is_err(), "closed session must be gone");
}

#[test]
fn concurrent_pow_and_regex_sessions_make_progress() {
    let mut config = ServeConfig::quick();
    config.fabrics = 1; // three tenants, one fabric
    let server = Server::new(config);

    let miner_cfg = MinerConfig {
        data: 0x5eed_b10c,
        target: 0x1000_0000,
        start_nonce: 0,
        announce: true,
        use_functions: false,
    };
    let (expect_nonce, _) = find_nonce(miner_cfg.data, miner_cfg.target, miner_cfg.start_nonce);
    assert!(expect_nonce < 200, "easy target keeps the test fast");

    let pattern = "GET |POST ";
    let input: &[u8] = b"GET /index HTTP POST /x GET  PUT POST!POST ";
    let expect_matches = compile(pattern).unwrap().count_matches(input);

    let srv = server.clone();
    let miner_src = miner_verilog(&miner_cfg, MinerFlavor::Cascade);
    let miner = std::thread::spawn(move || {
        let mut c = InProcClient::connect(&srv);
        c.open().expect("open miner");
        c.eval_all(&miner_src).expect("eval miner");
        c.wait_compile().expect("wait");
        let mut lines = Vec::new();
        for _ in 0..2000 {
            let run = c.run(64).expect("run miner");
            lines.extend(c.drain().expect("drain").0);
            if run.finished {
                break;
            }
        }
        let stats = c.stats().expect("stats");
        assert!(stat_bool(&stats, "finished"), "miner must $finish");
        (lines, stat_u64(&stats, "ticks"))
    });

    let srv = server.clone();
    let dfa = compile(pattern).unwrap();
    let regex_src = matcher_verilog(&dfa, RegexFlavor::Cascade);
    let bytes: Vec<u64> = input.iter().map(|&b| b as u64).collect();
    let regex = std::thread::spawn(move || {
        let mut c = InProcClient::connect(&srv);
        c.open().expect("open regex");
        c.eval_all(&regex_src).expect("eval regex");
        c.wait_compile().expect("wait");
        let mut sent = 0usize;
        while sent < bytes.len() {
            sent += c.fifo_push(8, &bytes[sent..]).expect("fifo") as usize;
            c.run(32).expect("run regex");
        }
        c.run(32).expect("run regex tail"); // pipeline slack
        let stats = c.stats().expect("stats");
        (stat_u64(&stats, "leds"), stat_u64(&stats, "ticks"))
    });

    let srv = server.clone();
    let counter = std::thread::spawn(move || {
        let mut c = InProcClient::connect(&srv);
        c.open().expect("open counter");
        c.eval_all(COUNTER).expect("eval counter");
        for _ in 0..20 {
            c.run(50).expect("run counter");
        }
        (
            c.probe("cnt").expect("probe").expect("cnt exists"),
            stat_u64(&c.stats().expect("stats"), "ticks"),
        )
    });

    let (miner_lines, miner_ticks) = miner.join().expect("miner thread");
    let (matches, regex_ticks) = regex.join().expect("regex thread");
    let (cnt, counter_ticks) = counter.join().expect("counter thread");

    // Every tenant made progress despite sharing one fabric.
    assert!(miner_ticks > 0 && regex_ticks > 0 && counter_ticks > 0);
    assert_eq!(cnt, 1000, "counter state is exact");
    assert_eq!(matches, expect_matches, "regex matches the Rust DFA");
    let nonce_hex = format!("nonce={expect_nonce:08x}");
    assert!(
        miner_lines.iter().any(|l| l.contains(&nonce_hex)),
        "miner announces the winning nonce; got {miner_lines:?}"
    );

    let mut c = InProcClient::connect(&server);
    c.open().expect("open");
    let stats = c.server_stats().expect("server stats");
    assert_eq!(stat_u64(&stats, "fabrics"), 1);
    assert!(stat_u64(&stats, "fabric_grants") >= 1, "someone promoted");
}

/// The acceptance scenario: on a one-fabric fleet, the holder's lease is
/// revoked when a hotter tenant's compile lands; the victim's state
/// migrates back to software with zero divergence — values and `$display`
/// ordering — from a solo runtime fed the identical schedule.
#[test]
fn lease_revocation_migrates_state_against_oracle() {
    let mut config = ServeConfig::quick();
    config.fabrics = 1;
    let server = Server::new(config.clone());

    // The oracle: a private runtime, dedicated fabric, same toolchain.
    let mut oracle = Runtime::new(Board::new(), config.jit.clone()).expect("oracle");
    let mut oracle_ticks = 0u64;
    let mut oracle_out = Vec::new();

    let mut s1 = InProcClient::connect(&server);
    s1.open().expect("open s1");
    for line in COUNTER.lines() {
        s1.eval(line).expect("eval s1");
    }
    oracle.eval(COUNTER).expect("oracle eval");

    let mut s1_ticks = 0u64;
    let mut run1 = |c: &mut InProcClient, n: u64| {
        let r = c.run(n).expect("run s1");
        s1_ticks += r.ticks;
        r
    };

    run1(&mut s1, 40);
    s1.wait_compile().expect("wait s1");
    let r = run1(&mut s1, 40);
    assert!(r.lease_held, "sole tenant wins the only fabric");
    assert!(r.mode.starts_with("hardware"), "promoted, got {}", r.mode);

    // A second, hotter tenant with a ready bitstream steals the fabric.
    let mut s2 = InProcClient::connect(&server);
    s2.open().expect("open s2");
    s2.eval_all(COUNTER).expect("eval s2");
    s2.run(40).expect("run s2");
    s2.wait_compile().expect("wait s2");
    wait_until(
        || {
            let _ = s2.run(8);
            stat_bool(&s2.stats().expect("stats s2"), "lease_held")
        },
        "s2 to take the fabric",
    );

    // The victim keeps running — in software now, state intact.
    let st1 = s1.stats().expect("stats s1");
    assert!(stat_u64(&st1, "demotions") >= 1, "s1 lost its lease");
    assert_eq!(stat_str(&st1, "mode"), "software");
    run1(&mut s1, 40);

    // Zero divergence from the oracle on the identical tick schedule.
    let mut s1_out = s1.drain().expect("drain s1").0;
    oracle_ticks += oracle
        .run_ticks(s1_ticks - oracle_ticks)
        .expect("oracle run");
    oracle_out.extend(oracle.drain_output());
    assert_eq!(oracle_ticks, s1_ticks);
    assert_eq!(s1_out.len(), oracle_out.len(), "same $display count");
    assert_eq!(s1_out, oracle_out, "$display ordering preserved");
    assert_eq!(
        s1.probe("cnt").expect("probe"),
        oracle.probe("cnt").map(|b| b.to_u64()),
        "register state preserved across revocation"
    );

    // The fabric can come back: s1 becomes hottest again (every run
    // stamps fresh heat) and its cached bitstream re-promotes it.
    wait_until(
        || {
            s1_out.extend(s1.drain().expect("drain").0);
            let r = s1.run(8).expect("run");
            s1_ticks += r.ticks;
            r.lease_held
        },
        "s1 to win the fabric back",
    );
    let stats = s1.stats().expect("stats");
    assert!(stat_u64(&stats, "promotions") >= 2, "re-granted");

    // Still zero divergence after demote → software → re-promote.
    s1_out.extend(s1.drain().expect("drain").0);
    oracle
        .run_ticks(s1_ticks - oracle_ticks)
        .expect("oracle run");
    oracle_out.extend(oracle.drain_output());
    assert_eq!(s1_out, oracle_out, "output transcript identical end-to-end");

    let server_stats = s1.server_stats().expect("server stats");
    assert!(stat_u64(&server_stats, "fabric_revocations") >= 1);
    assert!(
        stat_u64(&server_stats, "cache_hits") >= 1,
        "re-promotion rides the shared compile cache"
    );
}

#[test]
fn output_queue_bounds_and_backpressure() {
    let mut config = ServeConfig::quick();
    config.output_capacity = 16;
    let server = Server::new(config);
    let mut c = InProcClient::connect(&server);
    c.open().expect("open");
    c.eval("reg [15:0] n = 0;").expect("eval");
    c.eval("always @(posedge clk.val) n <= n + 1;")
        .expect("eval");
    c.eval("always @(posedge clk.val) $display(\"n=%d\", n);")
        .expect("eval");

    // One line per tick against a 16-line bound: the run must stop early.
    let r = c.run(10_000).expect("run");
    assert!(r.backpressure, "full output queue throttles the run");
    assert!(r.ticks < 10_000, "did not run to completion");

    let (lines, dropped) = c.drain().expect("drain");
    assert!(lines.len() <= 16, "queue bounded, got {}", lines.len());
    assert!(
        !lines.is_empty() && lines.last().unwrap().starts_with("n="),
        "newest lines survive"
    );
    // A drained queue lets the session run again.
    let r = c.run(8).expect("run again");
    assert!(r.ticks > 0);
    let _ = dropped; // whether the first burst overflowed is chunk-size dependent
}

#[test]
fn shared_cache_serves_identical_designs_across_sessions() {
    let server = Server::new(ServeConfig::quick());
    let mut first = InProcClient::connect(&server);
    first.open().expect("open");
    first.eval_all(COUNTER).expect("eval");
    first.wait_compile().expect("wait");

    let mut second = InProcClient::connect(&server);
    second.open().expect("open");
    second.eval_all(COUNTER).expect("eval");
    second.wait_compile().expect("wait");

    let stats = second.server_stats().expect("server stats");
    assert!(
        stat_u64(&stats, "cache_hits") >= 1,
        "the second session's identical design hits the shared cache: {stats}"
    );
    assert!(
        stat_u64(&stats, "cache_misses") >= 1,
        "first compile missed"
    );
}

#[test]
fn idle_sessions_are_reaped() {
    let mut config = ServeConfig::quick();
    config.idle_timeout_s = 0.05;
    let server = Server::new(config);
    let mut c = InProcClient::connect(&server);
    let id = c.open().expect("open");
    c.eval("reg [3:0] z = 0;").expect("eval");
    wait_until(
        || {
            let mut probe = InProcClient::connect(&server);
            probe.attach(id).is_err()
        },
        "the idle session to be reaped",
    );
    let mut c2 = InProcClient::connect(&server);
    c2.open().expect("open");
    let stats = c2.server_stats().expect("stats");
    assert!(stat_u64(&stats, "sessions_reaped") >= 1);
}
