//! Fault-tolerance chaos suite: deterministic seeded fault schedules —
//! transient toolchain failures, hangs, compile-worker panics, fabric soft
//! errors and losses, session-worker panics — driven against the full JIT
//! pipeline, with every run checked for byte-identical transcripts against
//! a fault-free software-only oracle. Faults may cost wall-clock time;
//! they must never change what the program observably does.

use cascade_core::{ExecMode, JitConfig, Repl, ReplResponse, Runtime};
use cascade_fpga::{Board, FaultPlan, Fleet};
use cascade_serve::{InProcClient, Json, ServeConfig, Server};
use std::time::{Duration, Instant};

const COUNTER: &str = "reg [15:0] cnt = 0;\n\
                       always @(posedge clk.val) cnt <= cnt + 1;\n\
                       always @(posedge clk.val) if (cnt[2:0] == 3'd7) $display(\"c=%d\", cnt);\n\
                       assign led.val = cnt[7:0];";

/// A counter packaged as a single user module so that eval'ing it submits
/// exactly one background compile (the module declaration itself submits
/// nothing) — this pins fault-schedule occurrence numbers to known jobs.
const COUNTER_MODULE: &str = "module Counter(input wire c);\n\
      reg [15:0] cnt = 0;\n\
      always @(posedge c) cnt <= cnt + 1;\n\
      always @(posedge c) if (cnt[2:0] == 3'd7) $display(\"c=%d\", cnt);\n\
    endmodule";

/// A FIFO consumer: pops host tokens and folds them into a running sum.
/// Exercises the FIFO journaling path under scrub rollbacks.
const FIFO_SUM: &str = "wire [7:0] fd;\n\
    wire fe;\n\
    wire fful;\n\
    FIFO #(.WIDTH(8)) f(.rreq(1'b1), .rdata(fd), .empty(fe), .wreq(1'b0), .wdata(8'd0), .full(fful));\n\
    reg [15:0] sum = 0;\n\
    always @(posedge clk.val) if (!fe) sum <= sum + fd;\n\
    always @(posedge clk.val) if (!fe) $display(\"s=%d\", sum + fd);\n\
    assign led.val = sum[7:0];";

fn stat_u64(stats: &Json, key: &str) -> u64 {
    stats.get(key).and_then(Json::as_u64).unwrap_or(0)
}

fn stat_bool(stats: &Json, key: &str) -> bool {
    stats.get(key).and_then(Json::as_bool).unwrap_or(false)
}

/// Polls `cond` until it holds or the deadline passes.
fn wait_until(mut cond: impl FnMut() -> bool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Drives a solo runtime's background compile to settlement: waits for the
/// worker, advances the modeled wall past the next compiler wake-up (which
/// may be a retry backoff or a watchdog deadline, not just a ready time),
/// and services, until nothing is in flight or the round budget runs out.
fn settle_compile(rt: &mut Runtime) {
    for _ in 0..64 {
        if !rt.stats().compile_in_flight {
            break;
        }
        rt.wait_for_compile_worker();
        if let Some(at) = rt.compile_ready_at() {
            rt.advance_wall((at - rt.wall_seconds()).max(0.0) + 1e-9);
        }
        rt.service().expect("service");
    }
}

/// A fault-free, software-only oracle runtime for transcript comparison.
fn oracle(board: Board, mut config: JitConfig) -> Runtime {
    config.faults = FaultPlan::none();
    config.auto_compile = false;
    Runtime::new(board, config).expect("oracle runtime")
}

/// The ISSUE acceptance run: one serve session suffers a compile-worker
/// panic, a transient toolchain failure, and a fabric soft error in a
/// single run, while a second session keeps serving; the faulted session's
/// transcript must be byte-identical to a fault-free software oracle.
#[test]
fn combined_faults_transcript_matches_oracle() {
    let mut config = ServeConfig::quick();
    config.fabrics = 1;
    config.jit.scrub_interval_ticks = 8;
    config.jit.faults = FaultPlan::builder()
        .worker_panic(1) // first pooled compile execution dies
        .toolchain_transient(1) // its retry hits a transient tool failure
        .scrub_soft_error(1, 0xDEAD_BEEF) // first clean scrub seeds a bit-flip
        .build();
    let jit = config.jit.clone();
    let server = Server::new(config);

    let mut s1 = InProcClient::connect(&server);
    s1.open().expect("open s1");
    s1.eval_all(COUNTER_MODULE).expect("eval module");
    s1.eval_all("Counter c0(.c(clk.val));").expect("eval inst");
    // Chase the compile through panic + transient retries to completion.
    s1.wait_compile().expect("wait compile");
    let mut s1_ticks = 0u64;
    let mut s1_lines: Vec<String> = Vec::new();

    // Promote onto the single fabric before opening the bystander.
    wait_until(
        || {
            let r = s1.run(8).expect("run s1");
            s1_ticks += r.ticks;
            s1_lines.extend(s1.drain().expect("drain s1").0);
            r.lease_held
        },
        "s1 promotion to the shared fabric",
    );

    // A second tenant opens and keeps serving throughout the faults.
    let mut s2 = InProcClient::connect(&server);
    s2.open().expect("open s2");
    s2.eval_all(COUNTER).expect("eval s2");

    // Run the faulted session across several scrub windows: the first
    // clean scrub injects the soft error, the next one detects it, rolls
    // back to the checkpoint and re-executes in software.
    for _ in 0..6 {
        let r = s1.run(40).expect("run s1");
        assert_eq!(r.ticks, 40, "run must complete its full budget");
        s1_ticks += r.ticks;
        s1_lines.extend(s1.drain().expect("drain s1").0);

        let r2 = s2.run(16).expect("run s2");
        assert_eq!(r2.ticks, 16, "bystander session must keep serving");
        s2.drain().expect("drain s2");
    }

    let stats = s1.stats().expect("stats s1");
    assert!(
        stat_u64(&stats, "panics_contained") >= 1,
        "compile-worker panic must be contained and retried: {stats:?}"
    );
    assert!(
        stat_u64(&stats, "compile_retries") >= 2,
        "panic + transient failure each cost one retry: {stats:?}"
    );
    assert!(
        stat_u64(&stats, "scrubs") >= 2,
        "hardware run must be scrubbed: {stats:?}"
    );
    assert!(
        stat_u64(&stats, "scrub_detections") >= 1,
        "the seeded soft error must be detected: {stats:?}"
    );
    assert!(
        stat_u64(&stats, "checkpoints_restored") >= 1,
        "detection must roll back to the checkpoint: {stats:?}"
    );
    let sstats = s1.server_stats().expect("server stats");
    assert!(
        stat_u64(&sstats, "compile_worker_panics") >= 1,
        "pool must count the contained panic: {sstats:?}"
    );
    assert_eq!(
        stat_u64(&sstats, "session_panics"),
        0,
        "no session worker may die in this run: {sstats:?}"
    );

    // The bystander stayed healthy.
    let stats2 = s2.stats().expect("stats s2");
    assert!(!stat_bool(&stats2, "finished"));
    assert!(stat_u64(&stats2, "ticks") >= 96);

    // Byte-identical transcript against the fault-free software oracle.
    let mut orc = oracle(Board::new(), jit);
    orc.eval(COUNTER_MODULE).expect("oracle module");
    orc.eval("Counter c0(.c(clk.val));").expect("oracle inst");
    orc.run_ticks(s1_ticks).expect("oracle run");
    assert_eq!(
        s1_lines,
        orc.drain_output(),
        "faulted transcript diverged from the oracle"
    );
}

/// A session-worker panic is contained: the panicking session dies with a
/// structured error, its queued commands are answered, and both the server
/// and other sessions keep working.
#[test]
fn session_panic_is_contained_and_server_survives() {
    let mut config = ServeConfig::quick();
    config.jit.faults = FaultPlan::builder().session_panic(1).build();
    let server = Server::new(config);

    let mut victim = InProcClient::connect(&server);
    let id = victim.open().expect("open victim");
    assert!(matches!(
        victim.eval("reg [7:0] a = 1;").expect("eval"),
        cascade_serve::EvalResult::Evaluated(_)
    ));
    let err = victim.run(8).expect_err("run must report the panic");
    assert!(
        err.contains("panicked"),
        "structured panic reply expected, got: {err}"
    );

    // The session is removed (asynchronously — the worker finishes its
    // drain after sending the structured reply); the server is not.
    let mut probe = InProcClient::connect(&server);
    wait_until(
        || probe.attach(id).is_err(),
        "panicked session to be removed",
    );

    let mut healthy = InProcClient::connect(&server);
    healthy.open().expect("open healthy");
    healthy.eval_all(COUNTER).expect("eval healthy");
    let r = healthy.run(16).expect("run healthy");
    assert_eq!(r.ticks, 16);
    let sstats = healthy.server_stats().expect("server stats");
    assert_eq!(stat_u64(&sstats, "session_panics"), 1, "{sstats:?}");
}

/// Seeded random fault schedules must never change observable behaviour:
/// for a spread of seeds, the counter workload under chaos produces the
/// same transcript, probe value, and LED state as the fault-free oracle.
#[test]
fn seeded_chaos_counter_matches_oracle() {
    for seed in [1u64, 2, 3, 5, 8, 13] {
        let mut config = JitConfig::default();
        config.toolchain.time_scale = 1e-6;
        config.scrub_interval_ticks = 4;
        config.faults = FaultPlan::random(seed);

        let board = Board::new();
        let mut rt = Runtime::new(board.clone(), config.clone()).expect("runtime");
        rt.eval(COUNTER).expect("eval");
        let mut lines = Vec::new();
        let mut ticks = 0u64;
        for _ in 0..12 {
            settle_compile(&mut rt);
            ticks += rt.run_ticks(17).expect("run");
            lines.extend(rt.drain_output());
        }
        // Verify any open speculation window so live state is trustworthy.
        rt.checkpoint_now().expect("final verify");

        let oboard = Board::new();
        let mut orc = oracle(oboard.clone(), config);
        orc.eval(COUNTER).expect("oracle eval");
        orc.run_ticks(ticks).expect("oracle run");
        let olines = orc.drain_output();
        assert_eq!(lines, olines, "seed {seed}: transcript diverged");
        assert_eq!(
            rt.probe("cnt").map(|b| b.to_u64()),
            orc.probe("cnt").map(|b| b.to_u64()),
            "seed {seed}: counter state diverged"
        );
        assert_eq!(
            board.leds().to_u64(),
            oboard.leds().to_u64(),
            "seed {seed}: LED state diverged"
        );
    }
}

/// The FIFO consumer under chaos: host-side FIFO pops are journaled during
/// speculation windows, so scrub rollbacks re-deliver consumed tokens and
/// the fold result matches the oracle exactly.
#[test]
fn seeded_chaos_fifo_matches_oracle() {
    for seed in [4u64, 9, 21] {
        let mut config = JitConfig::default();
        config.toolchain.time_scale = 1e-6;
        config.scrub_interval_ticks = 4;
        config.faults = FaultPlan::random(seed);

        let tokens: Vec<u64> = (1..=24).map(|i| (i * 7) % 251).collect();
        let board = Board::new();
        for &t in &tokens {
            board.fifo_push(cascade_bits::Bits::from_u64(8, t));
        }
        let mut rt = Runtime::new(board.clone(), config.clone()).expect("runtime");
        rt.eval(FIFO_SUM).expect("eval");
        let mut lines = Vec::new();
        let mut ticks = 0u64;
        for _ in 0..10 {
            settle_compile(&mut rt);
            ticks += rt.run_ticks(13).expect("run");
            lines.extend(rt.drain_output());
        }
        rt.checkpoint_now().expect("final verify");

        let oboard = Board::new();
        for &t in &tokens {
            oboard.fifo_push(cascade_bits::Bits::from_u64(8, t));
        }
        let mut orc = oracle(oboard.clone(), config);
        orc.eval(FIFO_SUM).expect("oracle eval");
        orc.run_ticks(ticks).expect("oracle run");
        assert_eq!(
            lines,
            orc.drain_output(),
            "seed {seed}: transcript diverged"
        );
        assert_eq!(
            rt.probe("sum").map(|b| b.to_u64()),
            orc.probe("sum").map(|b| b.to_u64()),
            "seed {seed}: FIFO fold diverged"
        );
        assert_eq!(
            board.fifo_pops(),
            oboard.fifo_pops(),
            "seed {seed}: consumed token counts diverged"
        );
    }
}

/// A fault-plan upset strikes *at* the clean scrub boundary that
/// scheduled it — the hardest case: live state goes corrupt at the exact
/// iteration the trust guards used to treat as just-verified
/// (`iterations == last_scrub_iter`). A probe at that boundary (or a
/// lease revocation migrating hardware state into software) must verify
/// the open window first rather than leak the flipped bit. Found by the
/// chaos soak, where a tenant's final `cnt` probe read
/// `expected + 0x8000`.
#[test]
fn boundary_probe_never_observes_unverified_state() {
    let mut config = JitConfig::default();
    config.toolchain.time_scale = 1e-6;
    // One big window: no mid-run scrubs, only command-boundary ones.
    config.scrub_interval_ticks = 4096;
    // Salt 0xF_0000 lands on bit 15 of the counter register — the exact
    // signature the soak caught escaping.
    config.faults = FaultPlan::builder().scrub_soft_error(1, 0xF_0000).build();

    let board = Board::new();
    let mut rt = Runtime::new(board, config.clone()).expect("runtime");
    rt.eval(COUNTER).expect("eval");
    let mut ticks = 0u64;
    let mut lines = Vec::new();
    // Probe at every command boundary: each probe must see the fault-free
    // counter value — including the probe right after the boundary whose
    // closing scrub injected the upset (the probe's own verification
    // detects the corruption and rolls back before reading).
    let deadline = Instant::now() + Duration::from_secs(20);
    let boundary_probe = |rt: &mut Runtime, ticks: u64| {
        assert_eq!(
            rt.probe("cnt").map(|b| b.to_u64()),
            Some(ticks & 0xffff),
            "a probe leaked unverified state"
        );
    };
    while !matches!(
        rt.stats().mode,
        ExecMode::Hardware | ExecMode::HardwareForwarded
    ) {
        assert!(Instant::now() < deadline, "promotion timed out");
        settle_compile(&mut rt);
        ticks += rt.run_ticks(8).expect("run");
        lines.extend(rt.drain_output());
        boundary_probe(&mut rt, ticks);
    }
    for _ in 0..6 {
        ticks += rt.run_ticks(8).expect("run");
        lines.extend(rt.drain_output());
        boundary_probe(&mut rt, ticks);
    }
    assert!(rt.stats().scrubs >= 1, "boundaries must have been scrubbed");
    let stats = rt.stats();
    assert!(
        stats.scrub_detections >= 1,
        "the boundary upset must be detected, not silently read: {stats:?}"
    );
    assert!(
        stats.checkpoints_restored >= 1,
        "detection must roll back: {stats:?}"
    );
    let mut orc = oracle(Board::new(), config);
    orc.eval(COUNTER).expect("oracle eval");
    orc.run_ticks(ticks).expect("oracle run");
    assert_eq!(lines, orc.drain_output(), "transcript diverged");
    assert_eq!(
        rt.probe("cnt").map(|b| b.to_u64()),
        orc.probe("cnt").map(|b| b.to_u64()),
        "counter state diverged"
    );
}

/// A fabric loss at scrub time falls back to software with zero lost
/// ticks; restoring fleet capacity lets the program re-promote.
#[test]
fn fabric_loss_falls_back_to_software_and_repromotes() {
    let mut config = JitConfig::default();
    config.toolchain.time_scale = 1e-6;
    config.scrub_interval_ticks = 4;
    config.faults = FaultPlan::builder().fabric_loss(1).build();

    let board = Board::new();
    let fleet = Fleet::new(1);
    let mut rt = Runtime::new(board.clone(), config.clone()).expect("runtime");
    rt.attach_fleet(fleet.clone(), 7);
    rt.eval(COUNTER).expect("eval");
    settle_compile(&mut rt);

    let mut ticks = 0u64;
    let mut lines = Vec::new();
    // Promote, then hit the scheduled loss at the first clean scrub.
    for _ in 0..8 {
        settle_compile(&mut rt);
        ticks += rt.run_ticks(16).expect("run");
        lines.extend(rt.drain_output());
        if rt.stats().fabric_losses >= 1 {
            break;
        }
    }
    let stats = rt.stats();
    assert!(stats.fabric_losses >= 1, "loss must be recorded: {stats:?}");
    assert_eq!(stats.mode, ExecMode::Software, "must fall back to software");
    assert!(!stats.lease_held);
    assert!(fleet.stats().fabric_failures >= 1);

    // Capacity returns; the cached bitstream re-promotes the program.
    fleet.restore_fabric();
    let deadline = Instant::now() + Duration::from_secs(20);
    while !rt.lease_held() {
        assert!(Instant::now() < deadline, "re-promotion timed out");
        settle_compile(&mut rt);
        ticks += rt.run_ticks(4).expect("run");
        lines.extend(rt.drain_output());
    }
    ticks += rt.run_ticks(32).expect("run");
    lines.extend(rt.drain_output());
    rt.checkpoint_now().expect("final verify");

    let mut orc = oracle(Board::new(), config);
    orc.eval(COUNTER).expect("oracle eval");
    orc.run_ticks(ticks).expect("oracle run");
    assert_eq!(lines, orc.drain_output(), "transcript diverged across loss");
}

/// A hung toolchain run is cancelled by the modeled watchdog and retried;
/// the program still reaches hardware.
#[test]
fn toolchain_hang_is_cancelled_by_watchdog() {
    let mut config = JitConfig::default();
    config.toolchain.time_scale = 1e-6;
    config.faults = FaultPlan::builder().toolchain_hang(1).build();

    let board = Board::new();
    let mut rt = Runtime::new(board, config).expect("runtime");
    rt.eval(COUNTER).expect("eval");
    settle_compile(&mut rt);
    rt.run_ticks(4).expect("run");

    let stats = rt.stats();
    assert!(
        stats.compile_watchdog_cancels >= 1,
        "watchdog must cancel the hung run: {stats:?}"
    );
    assert!(stats.compile_retries >= 1, "cancel must retry: {stats:?}");
    assert!(
        matches!(stats.mode, ExecMode::Hardware | ExecMode::HardwareForwarded),
        "retry must still reach hardware: {stats:?}"
    );
}

/// An abandoned compile (transient faults outlasting the retry budget) is
/// reported in the recovery log and leaves the program running in software.
#[test]
fn exhausted_retries_abandon_compile_and_stay_software() {
    let mut config = JitConfig::default();
    config.toolchain.time_scale = 1e-6;
    config.compile_max_retries = 1;
    config.faults = FaultPlan::builder()
        .toolchain_transient(1)
        .toolchain_transient(2)
        .build();

    let board = Board::new();
    let mut rt = Runtime::new(board, config).expect("runtime");
    rt.eval(COUNTER).expect("eval");
    settle_compile(&mut rt);
    rt.run_ticks(16).expect("run");

    let stats = rt.stats();
    assert_eq!(stats.mode, ExecMode::Software);
    assert!(!stats.compile_in_flight, "abandoned, not stuck: {stats:?}");
    assert!(stats.compile_retries >= 1, "{stats:?}");
    let log = rt.drain_recovery_log();
    assert!(
        log.iter().any(|l| l.contains("abandoned")),
        "recovery log must record the abandonment: {log:?}"
    );
}

/// The explicit checkpoint API: `checkpoint_now` snapshots the whole
/// program, `restore_checkpoint` rewinds it, and re-execution replays the
/// same output.
#[test]
fn checkpoint_restore_replays_identically() {
    let config = JitConfig {
        auto_compile: false,
        ..JitConfig::default()
    };
    let board = Board::new();
    let mut rt = Runtime::new(board.clone(), config).expect("runtime");
    rt.eval(COUNTER).expect("eval");

    rt.run_ticks(10).expect("run");
    rt.drain_output();
    assert!(rt.checkpoint_now().expect("checkpoint"));
    let cnt_at_ckpt = rt.probe("cnt").map(|b| b.to_u64());

    rt.run_ticks(6).expect("run");
    let first = rt.drain_output();
    assert!(rt.restore_checkpoint().expect("restore"));
    assert_eq!(rt.probe("cnt").map(|b| b.to_u64()), cnt_at_ckpt);
    rt.run_ticks(6).expect("run");
    let second = rt.drain_output();
    assert_eq!(first, second, "restored run must replay the same output");

    let stats = rt.stats();
    assert!(stats.checkpoints_taken >= 1);
    assert!(stats.checkpoints_restored >= 1);
}

/// A failing item in a multi-item paste is named precisely, earlier items
/// stay committed, later items are not applied, and the REPL keeps
/// accepting input afterwards.
#[test]
fn repl_reports_failing_item_and_stays_consistent() {
    let config = JitConfig {
        auto_compile: false,
        ..JitConfig::default()
    };
    let rt = Runtime::new(Board::new(), config).expect("runtime");
    let mut repl = Repl::new(rt);

    let r = repl.line("reg [7:0] a = 1; assign led.val = ghost; reg [7:0] b = 2;");
    let ReplResponse::Error(msg) = r else {
        panic!("expected a per-item error, got {r:?}");
    };
    assert!(msg.contains("item 2 of 3"), "got: {msg}");

    // Item 1 committed, item 3 never applied, session still live.
    assert_eq!(repl.runtime().probe("a").map(|b| b.to_u64()), Some(1));
    // An unknown port probes as a zero-width value.
    assert_eq!(repl.runtime().probe("b").map_or(0, |b| b.width()), 0);
    let r = repl.line("assign led.val = a;");
    assert!(matches!(r, ReplResponse::Evaluated(_)), "got {r:?}");
    repl.runtime().run_ticks(1).expect("run");
    assert_eq!(repl.runtime().board().leds().to_u64(), 1);
}

/// Fault schedules are deterministic: two identically-seeded plans drive
/// identical recovery statistics.
#[test]
fn identical_seeds_give_identical_recovery_stats() {
    let run = |seed: u64| {
        let mut config = JitConfig::default();
        config.toolchain.time_scale = 1e-6;
        config.scrub_interval_ticks = 4;
        config.faults = FaultPlan::random(seed);
        let mut rt = Runtime::new(Board::new(), config).expect("runtime");
        rt.eval(COUNTER).expect("eval");
        let mut ticks = 0;
        for _ in 0..8 {
            settle_compile(&mut rt);
            ticks += rt.run_ticks(11).expect("run");
        }
        let s = rt.stats();
        (
            ticks,
            s.compile_retries,
            s.compile_watchdog_cancels,
            s.panics_contained,
            s.scrub_detections,
            s.fabric_losses,
            s.checkpoints_restored,
        )
    };
    assert_eq!(run(42), run(42), "same seed must replay the same faults");
}
