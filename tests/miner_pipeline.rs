//! The SHA-256 proof-of-work miner through every substrate: interpreter,
//! synthesized netlist, and the full Cascade JIT — all validated against
//! the Rust reference implementation.

use cascade_core::{ExecMode, JitConfig, Runtime};
use cascade_fpga::Board;
use cascade_netlist::{synthesize, NetlistSim};
use cascade_sim::{elaborate, library_from_source, Simulator};
use cascade_workloads::sha256::{
    find_nonce, miner_verilog, Flavor, MinerConfig, CYCLES_PER_ATTEMPT,
};
use std::sync::Arc;

/// An easy target so tests stay fast: reference search says how many
/// attempts it takes.
fn easy_config() -> (MinerConfig, u32, [u32; 8]) {
    let cfg = MinerConfig {
        data: 0x5eed_b10c,
        target: 0x1000_0000,
        start_nonce: 0,
        announce: true,
        use_functions: false,
    };
    let (nonce, digest) = find_nonce(cfg.data, cfg.target, cfg.start_nonce);
    assert!(
        nonce < 200,
        "pick an easier target for tests (nonce={nonce})"
    );
    (cfg, nonce, digest)
}

#[test]
fn miner_interpreter_matches_reference() {
    let (cfg, expect_nonce, expect_digest) = easy_config();
    let src = miner_verilog(&cfg, Flavor::Ported);
    let lib = library_from_source(&src).expect("parse");
    let design = elaborate("Miner", &lib, &Default::default()).expect("elaborate");
    let mut sim = Simulator::new(Arc::new(design));
    sim.initialize().unwrap();
    let budget = (expect_nonce as u64 + 2) * CYCLES_PER_ATTEMPT + 10;
    for _ in 0..budget {
        if sim.peek("found").to_bool() {
            break;
        }
        sim.tick("clk").unwrap();
    }
    assert!(
        sim.peek("found").to_bool(),
        "miner did not finish in {budget} cycles"
    );
    assert_eq!(sim.peek("nonce_out").to_u64(), expect_nonce as u64);
    assert_eq!(sim.peek("hash_hi").to_u64(), expect_digest[0] as u64);
}

#[test]
fn miner_netlist_matches_interpreter() {
    let (cfg, expect_nonce, expect_digest) = easy_config();
    let src = miner_verilog(&cfg, Flavor::Ported);
    let lib = library_from_source(&src).expect("parse");
    let design = elaborate("Miner", &lib, &Default::default()).expect("elaborate");
    let nl = synthesize(&design).expect("synthesize");
    let mut hw = NetlistSim::new(Arc::new(nl)).expect("levelize");
    let budget = (expect_nonce as u64 + 2) * CYCLES_PER_ATTEMPT + 10;
    for _ in 0..budget {
        if hw.get_by_name("found").unwrap().to_bool() {
            break;
        }
        hw.step_clock(0);
    }
    assert!(hw.get_by_name("found").unwrap().to_bool());
    assert_eq!(
        hw.get_by_name("nonce_out").unwrap().to_u64(),
        expect_nonce as u64
    );
    assert_eq!(
        hw.get_by_name("hash_hi").unwrap().to_u64(),
        expect_digest[0] as u64
    );
}

#[test]
fn miner_under_cascade_jit_announces_from_hardware() {
    let (cfg, expect_nonce, expect_digest) = easy_config();
    let src = miner_verilog(&cfg, Flavor::Cascade);
    let board = Board::new();
    let mut rt = Runtime::new(board, JitConfig::default()).unwrap();
    rt.eval(&src).unwrap();
    // Run a little in software, then let the compile land.
    rt.run_ticks(40).unwrap();
    assert_eq!(rt.mode(), ExecMode::Software);
    rt.wait_for_compile_worker();
    let ready = rt.compile_ready_at().expect("compile staged");
    rt.advance_wall((ready - rt.wall_seconds()).max(0.0) + 1.0);
    rt.run_ticks(1).unwrap();
    assert_eq!(rt.mode(), ExecMode::HardwareForwarded, "miner migrated");
    let budget = (expect_nonce as u64 + 2) * CYCLES_PER_ATTEMPT + 10;
    rt.run_ticks(budget).unwrap();
    assert!(rt.is_finished(), "$finish reached from hardware");
    let out = rt.drain_output().join("\n");
    let expect = format!(
        "FOUND nonce={:08x} hash={:08x}",
        expect_nonce, expect_digest[0]
    );
    assert!(
        out.contains(&expect),
        "expected `{expect}` in output:\n{out}"
    );
}

#[test]
fn miner_under_interpreter_only_matches_too() {
    let (cfg, expect_nonce, _) = easy_config();
    let src = miner_verilog(&cfg, Flavor::Cascade);
    let board = Board::new();
    let mut rt = Runtime::new(board, JitConfig::interpreter_only()).unwrap();
    rt.eval(&src).unwrap();
    let budget = (expect_nonce as u64 + 2) * CYCLES_PER_ATTEMPT + 10;
    rt.run_ticks(budget).unwrap();
    assert!(rt.is_finished());
    let out = rt.drain_output().join("\n");
    assert!(out.contains("FOUND"), "{out}");
}

#[test]
fn function_style_miner_matches_wire_style() {
    // The same search expressed with Verilog functions (the idiom real
    // open-source miners use) must produce identical results through
    // interpretation and synthesis.
    let (mut cfg, expect_nonce, expect_digest) = easy_config();
    cfg.use_functions = true;
    let src = miner_verilog(&cfg, Flavor::Ported);
    let lib = library_from_source(&src).expect("parse");
    let design = elaborate("Miner", &lib, &Default::default()).expect("elaborate");
    let budget = (expect_nonce as u64 + 2) * CYCLES_PER_ATTEMPT + 10;

    let mut sim = Simulator::new(Arc::new(design.clone()));
    sim.initialize().unwrap();
    for _ in 0..budget {
        if sim.peek("found").to_bool() {
            break;
        }
        sim.tick("clk").unwrap();
    }
    assert_eq!(sim.peek("nonce_out").to_u64(), expect_nonce as u64);

    let nl = synthesize(&design).expect("synthesize");
    let mut hw = NetlistSim::new(Arc::new(nl)).expect("levelize");
    for _ in 0..budget {
        if hw.get_by_name("found").unwrap().to_bool() {
            break;
        }
        hw.step_clock(0);
    }
    assert_eq!(
        hw.get_by_name("nonce_out").unwrap().to_u64(),
        expect_nonce as u64
    );
    assert_eq!(
        hw.get_by_name("hash_hi").unwrap().to_u64(),
        expect_digest[0] as u64
    );
}
