//! Observability suite: the `cascade-trace` contract across the whole
//! pipeline — the ISSUE acceptance run (a serve session under chaos
//! faults whose exported trace shows the full JIT lifecycle in order),
//! virtual-time determinism (byte-identical exports across two runs with
//! the same fault seed), zero-allocation emission when tracing is
//! disabled, ring-buffer overflow accounting, JSONL schema round-trips
//! through the serve JSON parser, metrics-exposition completeness, counter
//! monotonicity across checkpoint restores, and a VCD smoke test.

use cascade_core::{JitConfig, Runtime};
use cascade_fpga::{Board, FaultPlan};
use cascade_serve::{InProcClient, Json, ServeConfig, Server};
use cascade_trace::{export_jsonl, Arg, TimeMode, TraceSink, SCHEMA_REQUIRED_FIELDS};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A counter packaged as a single user module so that eval'ing it submits
/// exactly one background compile — this pins fault-schedule occurrence
/// numbers to known jobs (same idiom as `tests/fault_recovery.rs`).
const COUNTER_MODULE: &str = "module Counter(input wire c);\n\
      reg [15:0] cnt = 0;\n\
      always @(posedge c) cnt <= cnt + 1;\n\
      always @(posedge c) if (cnt[2:0] == 3'd7) $display(\"c=%d\", cnt);\n\
    endmodule";

/// Root-level counter driving the LED bank — gives the VCD dump visible
/// data-plane ports.
const COUNTER: &str = "reg [15:0] cnt = 0;\n\
                       always @(posedge clk.val) cnt <= cnt + 1;\n\
                       assign led.val = cnt[7:0];";

/// Polls `cond` until it holds or the deadline passes.
fn wait_until(mut cond: impl FnMut() -> bool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Drives a solo runtime's background compile to settlement (see
/// `tests/fault_recovery.rs` for the full rationale): all waiting happens
/// in *modeled* wall time, so a trace exported in `VirtualOnly` mode is
/// reproducible no matter how the host schedules the worker thread.
fn settle_compile(rt: &mut Runtime) {
    for _ in 0..64 {
        if !rt.stats().compile_in_flight {
            break;
        }
        rt.wait_for_compile_worker();
        if let Some(at) = rt.compile_ready_at() {
            rt.advance_wall((at - rt.wall_seconds()).max(0.0) + 1e-9);
        }
        rt.service().expect("service");
    }
}

/// The event names of a JSONL export, in line order.
fn event_names(jsonl: &str) -> Vec<String> {
    jsonl
        .lines()
        .map(|l| {
            let obj = Json::parse(l).expect("trace line parses as JSON");
            obj.get("name")
                .and_then(Json::as_str)
                .expect("trace event has a name")
                .to_string()
        })
        .collect()
}

/// Asserts that `needles` appear in `haystack` as an ordered (not
/// necessarily contiguous) subsequence.
fn assert_subsequence(haystack: &[String], needles: &[&str]) {
    let mut pos = 0usize;
    for needle in needles {
        match haystack[pos..].iter().position(|n| n == needle) {
            Some(off) => pos += off + 1,
            None => panic!(
                "trace missing `{needle}` after position {pos}; events: {:?}",
                haystack
            ),
        }
    }
}

/// The ISSUE acceptance run: one serve session runs a counter workload
/// under a chaos fault plan (transient toolchain failure plus fabric soft
/// errors at every clean scrub). The exported virtual-time trace must
/// show the whole JIT lifecycle in order: eval, software compile,
/// synthesis and place-and-route (with retry backoff), fabric
/// programming, state migration, scrub-triggered detection and rollback,
/// a replayed recovery window, and re-promotion onto the fabric.
#[test]
fn serve_chaos_trace_shows_full_jit_lifecycle_in_order() {
    let mut config = ServeConfig::quick();
    config.fabrics = 1;
    config.jit.scrub_interval_ticks = 8;
    let mut faults = FaultPlan::builder().toolchain_transient(1);
    // Seed a soft error at every clean scrub so that both recovery paths
    // fire somewhere in the run: the periodic scrub detects corruption
    // and rolls back, and an eval that closes a corrupted speculation
    // window re-executes it in software (`rollback_replay`).
    for occ in 1..=24 {
        faults = faults.scrub_soft_error(occ, 0xBAD5_EED0 + occ);
    }
    config.jit.faults = faults.build();
    let server = Server::new(config);

    let mut c = InProcClient::connect(&server);
    c.open().expect("open");
    c.eval_all(COUNTER_MODULE).expect("eval module");
    c.eval_all("Counter c0(.c(clk.val));").expect("eval inst");
    // Chase the compile through the transient failure to completion: this
    // is where the synthesize/place_route spans and the backoff event are
    // emitted.
    c.wait_compile().expect("wait compile");

    // Promote onto the fabric.
    wait_until(
        || c.run(8).expect("run").lease_held,
        "promotion onto the fabric",
    );

    // Alternate run/eval rounds until an eval lands inside a corrupted
    // speculation window and the replayed recovery appears in the trace.
    // Each eval adds a fresh (unused) module, which is append-only-legal
    // and forces a speculation check before the program is extended.
    let mut replayed = false;
    for i in 0..60 {
        c.run(8).expect("run round");
        c.eval(&format!("module Pad{i}(); endmodule"))
            .expect("pad eval");
        let (jsonl, _) = c.trace_jsonl(true).expect("trace");
        if jsonl.contains("\"name\":\"rollback_replay\"") {
            replayed = true;
            break;
        }
    }
    assert!(replayed, "no eval closed a corrupted speculation window");
    // Let the session re-promote after the recovery churn.
    wait_until(
        || c.run(8).expect("run").lease_held,
        "re-promotion after recovery",
    );

    let (jsonl, _dropped) = c.trace_jsonl(true).expect("trace export");
    let names = event_names(&jsonl);
    assert_subsequence(
        &names,
        &[
            "eval",
            "software_compile",
            "synthesize",
            "place_route",
            "program_fabric",
            "state_migration",
            "scrub",
            "scrub_detection",
            "rollback",
            "rollback_replay",
        ],
    );
    // Re-promotion: the fabric is programmed at least twice.
    assert!(
        names.iter().filter(|n| *n == "program_fabric").count() >= 2,
        "expected a re-promotion after rollback; events: {names:?}"
    );
    // The transient toolchain failure surfaced as a retry with backoff.
    assert!(
        names.iter().any(|n| n == "backoff"),
        "expected a retry backoff event; events: {names:?}"
    );
    let stats = c.stats().expect("stats");
    assert!(
        stats
            .get("compile_retries")
            .and_then(Json::as_u64)
            .unwrap_or(0)
            >= 1,
        "expected at least one compile retry"
    );

    // The human timeline renders the same story.
    let timeline = c.timeline().expect("timeline");
    assert!(timeline.contains("program_fabric"), "timeline: {timeline}");

    // Per-session and server-wide metric expositions are live.
    let metrics = c.metrics().expect("metrics");
    assert!(metrics.contains("jit_scrub_detections_total"));
    let server_metrics = c.server_metrics().expect("server metrics");
    assert!(server_metrics.contains("serve_sessions"));
    assert!(server_metrics.contains("jit_hw_promotions_total"));
    // The durability counter family is always exposed — zero-valued on a
    // server without a durable root — so dashboards never miss the names.
    for name in [
        "serve_recovery_sessions_total",
        "serve_recovery_journal_records_replayed_total",
        "serve_recovery_corrupt_records_quarantined_total",
        "serve_recovery_warm_bitstream_hits_total",
        "serve_recovery_bitstream_saves_total",
        "serve_recovery_drain_flushes_total",
    ] {
        assert!(
            server_metrics.contains(name),
            "missing recovery metric {name}"
        );
    }
    // Drop accounting is first-class too: the trace ring's drop counter
    // and every session's bounded-output drop counter (a labeled series
    // per tenant), not just server-stats fields.
    assert!(
        server_metrics.contains("serve_trace_events_dropped_total"),
        "missing trace-ring drop counter"
    );
    assert!(
        server_metrics.contains("serve_session_output_dropped_total{session="),
        "missing per-session output drop series"
    );
}

/// The sweeper's roll-up (`merge`) racing a live exposition must never
/// produce a torn or non-monotone read: 8 writer threads bump a shared
/// counter 1000 times each while merging live snapshots, and a
/// concurrent reader sees only monotonically non-decreasing values that
/// never exceed the true total.
#[test]
fn concurrent_merge_during_exposition_is_monotone_and_untorn() {
    use cascade_trace::{expose, merge, Registry};
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc as StdArc;

    const THREADS: usize = 8;
    const ITERS: usize = 1000;
    let reg = Registry::new();
    let counter = reg.counter("obs_race_total", "Concurrency-test counter");
    let done = StdArc::new(AtomicBool::new(false));

    let reader = {
        let reg = reg.clone();
        let done = StdArc::clone(&done);
        std::thread::spawn(move || {
            let mut last = 0u64;
            let mut reads = 0u64;
            while !done.load(Ordering::Acquire) {
                // The same path the sweeper races: merge a live snapshot
                // into a roll-up, then render the exposition.
                let mut snaps = Vec::new();
                merge(&mut snaps, reg.snapshot());
                let text = expose(&snaps);
                let value: u64 = text
                    .lines()
                    .find_map(|l| l.strip_prefix("obs_race_total "))
                    .expect("counter exposed")
                    .trim()
                    .parse()
                    .expect("counter value is a clean integer, not torn");
                assert!(value >= last, "counter went backwards: {last} -> {value}");
                assert!(
                    value <= (THREADS * ITERS) as u64,
                    "counter overshot the true total: {value}"
                );
                last = value;
                reads += 1;
            }
            (last, reads)
        })
    };

    let writers: Vec<_> = (0..THREADS)
        .map(|_| {
            let reg = reg.clone();
            let counter = counter.clone();
            std::thread::spawn(move || {
                for _ in 0..ITERS {
                    counter.inc();
                    // Each bump also rolls up a snapshot, so merges and
                    // expositions overlap heavily across threads.
                    let mut snaps = Vec::new();
                    merge(&mut snaps, reg.snapshot());
                }
            })
        })
        .collect();
    for w in writers {
        w.join().expect("writer");
    }
    done.store(true, Ordering::Release);
    let (last, reads) = reader.join().expect("reader");
    assert!(reads > 0, "the reader never overlapped the writers");
    assert!(last <= (THREADS * ITERS) as u64);
    assert_eq!(counter.get(), (THREADS * ITERS) as u64);
    // The settled exposition reads the exact total.
    let text = reg.expose();
    assert!(
        text.contains(&format!("obs_race_total {}", THREADS * ITERS)),
        "settled exposition wrong:\n{text}"
    );
}

/// Runs a faulted solo pipeline to completion and exports the
/// virtual-clock trace.
fn traced_chaos_run(seed: u64) -> String {
    let mut config = JitConfig::default();
    config.toolchain.time_scale = 1e-6;
    config.scrub_interval_ticks = 8;
    // Open-loop batch sizing adapts to host speed; disable it so tick
    // boundaries (and thus service points) are host-independent.
    config.open_loop = false;
    config.faults = FaultPlan::random(seed);
    config.trace = TraceSink::ring(65_536);
    let mut rt = Runtime::new(Board::new(), config).expect("runtime");
    rt.eval(COUNTER_MODULE).expect("eval module");
    rt.eval("Counter c0(.c(clk.val));").expect("eval inst");
    // Tick one at a time, settling any in-flight compile at every tick
    // boundary: a rollback mid-run resubmits a background compile, and
    // without the settle its outcome would land at whatever tick the host
    // happened to schedule the worker — re-promotion would then jitter
    // between runs.
    for _ in 0..240 {
        settle_compile(&mut rt);
        rt.run_ticks(1).expect("run");
    }
    settle_compile(&mut rt);
    export_jsonl(&rt.trace_sink().snapshot(), TimeMode::VirtualOnly)
}

/// The determinism contract: the same seed and fault plan produce a
/// byte-identical virtual-time export, run to run — host scheduling,
/// worker-thread timing, and retry wall-clock cost must leave no residue.
#[test]
fn virtual_time_trace_is_byte_identical_across_runs() {
    for seed in [11, 77] {
        let a = traced_chaos_run(seed);
        let b = traced_chaos_run(seed);
        assert!(!a.is_empty(), "seed {seed}: empty trace");
        assert_eq!(a, b, "seed {seed}: virtual-time export not reproducible");
    }
}

/// A counting allocator so the disabled-tracer test can assert that
/// emission performs no heap work at all.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// A disabled sink is free: emitting spans, instants, and counters
/// allocates nothing (the hot engines lean on this — tracing off must
/// cost ≤2% on the bench hot loops).
#[test]
fn disabled_sink_emission_allocates_nothing() {
    let sink = TraceSink::disabled();
    assert!(!sink.enabled());
    let before = ALLOCS.load(Ordering::SeqCst);
    for i in 0..1_000u64 {
        sink.span(1, "jit", "eval", i, 10, &[("version", Arg::U64(i))]);
        sink.instant(1, "jit", "scrub", i, &[("ok", Arg::Bool(true))]);
        sink.counter(1, "jit", "ticks_per_s", i, &[("value", Arg::F64(1.0))]);
        sink.host_instant(1, "serve", "sweep", &[]);
    }
    let after = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(after - before, 0, "disabled sink emission allocated");
    assert_eq!(sink.len(), 0);
    assert_eq!(sink.dropped(), 0);
}

/// The bounded ring drops oldest-first and counts what it dropped.
#[test]
fn ring_overflow_drops_oldest_and_counts() {
    let sink = TraceSink::ring(8);
    for i in 0..20u64 {
        sink.instant(0, "jit", &format!("ev{i}"), i, &[]);
    }
    assert_eq!(sink.len(), 8);
    assert_eq!(sink.dropped(), 12);
    assert_eq!(sink.emitted(), 20);
    let snap = sink.snapshot();
    // The survivors are the newest events, oldest first.
    assert_eq!(snap.first().unwrap().name, "ev12");
    assert_eq!(snap.last().unwrap().name, "ev19");
}

/// Every exported line is a standalone JSON object carrying the full
/// Chrome-trace schema — the serve JSON parser round-trips it.
#[test]
fn jsonl_export_round_trips_through_json_parser() {
    let sink = TraceSink::ring(64);
    sink.span(3, "jit", "eval", 100, 50, &[("version", Arg::U64(1))]);
    sink.instant(3, "jit", "scrub", 200, &[("ok", Arg::Bool(false))]);
    sink.counter(3, "jit", "ticks_per_s", 300, &[("value", Arg::F64(2.5))]);
    sink.host_instant(3, "serve", "session_open", &[("id", Arg::U64(3))]);
    for mode in [TimeMode::Full, TimeMode::VirtualOnly] {
        let jsonl = export_jsonl(&sink.snapshot(), mode);
        let expect = if mode == TimeMode::Full { 4 } else { 3 };
        assert_eq!(jsonl.lines().count(), expect, "{mode:?}");
        for line in jsonl.lines() {
            let obj = Json::parse(line).expect("line parses");
            for field in SCHEMA_REQUIRED_FIELDS {
                assert!(obj.get(field).is_some(), "missing `{field}` in {line}");
            }
            let ph = obj.get("ph").and_then(Json::as_str).unwrap();
            assert!(matches!(ph, "X" | "i" | "C"), "bad ph `{ph}`");
            assert!(obj.get("ts").and_then(Json::as_f64).is_some());
        }
        // The host clock is redacted from the deterministic export.
        if mode == TimeMode::VirtualOnly {
            assert!(!jsonl.contains("host_ts_ns"));
            assert!(!jsonl.contains("session_open"));
        }
    }
}

/// The metrics exposition lists every former `RuntimeStats` counter plus
/// the compile-latency and lease-wait histograms, with Prometheus-style
/// HELP/TYPE comments.
#[test]
fn metrics_exposition_is_complete() {
    let mut config = JitConfig::default();
    config.toolchain.time_scale = 1e-6;
    config.scrub_interval_ticks = 8;
    let mut rt = Runtime::new(Board::new(), config).expect("runtime");
    rt.eval(COUNTER_MODULE).expect("eval module");
    rt.eval("Counter c0(.c(clk.val));").expect("eval inst");
    settle_compile(&mut rt);
    rt.run_ticks(40).expect("run");
    let text = rt.metrics_text();
    for name in [
        // Former RuntimeStats counters, now registry-backed.
        "jit_hw_promotions_total",
        "jit_lease_demotions_total",
        "jit_scrubs_total",
        "jit_scrub_detections_total",
        "jit_checkpoints_taken_total",
        "jit_checkpoints_restored_total",
        "jit_fabric_losses_total",
        "jit_compile_retries_total",
        "jit_compile_watchdog_cancels_total",
        "jit_compile_worker_panics_total",
        "jit_compile_cache_hits_total",
        "jit_compile_cache_misses_total",
        "jit_compile_cache_evictions_total",
        // Point-in-time gauges.
        "jit_ticks_total",
        "jit_wall_seconds",
        "jit_version",
        "jit_mode",
        "jit_compile_in_flight",
        "jit_open_loop_active",
        "jit_lease_held",
        "jit_hw_pending",
        // Latency histograms.
        "jit_compile_latency_seconds",
        "jit_lease_wait_seconds",
    ] {
        assert!(text.contains(name), "metrics missing `{name}`:\n{text}");
    }
    assert!(text.contains("# HELP"), "no HELP comments:\n{text}");
    assert!(text.contains("# TYPE"), "no TYPE comments:\n{text}");
    assert!(
        text.contains("jit_compile_latency_seconds_bucket"),
        "histogram not exposed with buckets:\n{text}"
    );
}

/// Recovery counters are monotonic: a checkpoint restore (which tears the
/// engines down and rebuilds them) must not reset any counter, because
/// redeclaring a metric by name after the swap yields the same cell.
#[test]
fn recovery_counters_survive_checkpoint_restore() {
    let mut config = JitConfig::default();
    config.toolchain.time_scale = 1e-6;
    config.scrub_interval_ticks = 8;
    config.faults = FaultPlan::builder().toolchain_transient(1).build();
    let mut rt = Runtime::new(Board::new(), config).expect("runtime");
    rt.eval(COUNTER_MODULE).expect("eval module");
    rt.eval("Counter c0(.c(clk.val));").expect("eval inst");
    settle_compile(&mut rt);
    rt.run_ticks(40).expect("run");
    let before = rt.stats();
    assert!(before.compile_retries >= 1, "fault plan did not fire");
    assert!(before.checkpoints_taken >= 1, "no checkpoint armed");

    assert!(
        rt.restore_checkpoint().expect("restore"),
        "nothing restored"
    );
    let after = rt.stats();
    // Monotonic across the engine teardown/rebuild:
    assert_eq!(after.checkpoints_restored, before.checkpoints_restored + 1);
    assert!(after.checkpoints_taken >= before.checkpoints_taken);
    assert!(after.scrubs >= before.scrubs);
    assert_eq!(after.compile_retries, before.compile_retries);
    assert!(after.hw_promotions >= before.hw_promotions);
    // The exposition reads the same cells.
    let text = rt.metrics_text();
    assert!(text.contains(&format!(
        "jit_checkpoints_restored_total {}",
        after.checkpoints_restored
    )));
    assert!(text.contains(&format!(
        "jit_compile_retries_total {}",
        after.compile_retries
    )));

    // And the counters keep counting after the restore.
    rt.run_ticks(40).expect("run after restore");
    settle_compile(&mut rt);
    assert!(rt.stats().ticks >= after.ticks);
}

/// VCD waveform smoke test over the serve protocol: start a dump, run,
/// stop, and check the file holds variable declarations and timestamped
/// value changes.
#[test]
fn serve_vcd_dump_produces_waveform() {
    let dir = std::env::temp_dir().join(format!("cascade_vcd_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("smoke.vcd");
    let path_s = path.to_str().expect("utf8 path");

    let server = Server::new(ServeConfig::quick());
    let mut c = InProcClient::connect(&server);
    c.open().expect("open");
    c.eval_all(COUNTER).expect("eval");
    c.vcd_start(path_s, &[]).expect("vcd start");
    c.run(16).expect("run");
    let stopped = c.vcd_stop().expect("vcd stop");
    assert_eq!(stopped.as_deref(), Some(path_s));
    assert!(c.vcd_stop().expect("second stop").is_none());

    let text = std::fs::read_to_string(&path).expect("read vcd");
    assert!(text.contains("$timescale"), "no header: {text}");
    assert!(text.contains("$var wire"), "no declarations: {text}");
    assert!(text.contains('#'), "no timestamps: {text}");
    // The clock is always tracked and toggles, so value changes exist.
    assert!(
        text.lines().any(|l| l == "1!" || l == "0!"),
        "no clock value changes: {text}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Profiling attribution: with tracing enabled the software engine counts
/// process activations attributable to Verilog source constructs.
#[test]
fn profile_report_names_verilog_sources() {
    let mut config = JitConfig::default();
    config.toolchain.time_scale = 1e-6;
    config.auto_compile = false;
    config.trace = TraceSink::ring(1024);
    let mut rt = Runtime::new(Board::new(), config).expect("runtime");
    rt.eval(COUNTER).expect("eval");
    rt.run_ticks(32).expect("run");
    let text = rt.profile_text().expect("profile text");
    assert!(
        text.contains("always @(posedge"),
        "no always-block attribution:\n{text}"
    );
    assert!(text.contains("assign"), "no assign attribution:\n{text}");
    assert!(text.contains("opcode"), "no opcode histogram:\n{text}");
}

/// Data-parallel knobs end to end over the serve protocol: `configure`
/// round-trips into the session runtime, out-of-range values are clamped,
/// and `stats` echoes the effective settings.
#[test]
fn serve_configure_round_trips_data_parallel_knobs() {
    let server = Server::new(ServeConfig::quick());
    let mut c = InProcClient::connect(&server);
    c.open().expect("open");

    // Defaults are scalar/single-threaded.
    let stats = c.stats().expect("stats");
    assert_eq!(stats.get("batch_width").and_then(Json::as_u64), Some(1));
    assert_eq!(stats.get("eval_threads").and_then(Json::as_u64), Some(1));

    // The reply echoes the effective values, as does a later `stats`.
    assert_eq!(c.configure(Some(8), Some(4)).expect("configure"), (8, 4));
    let stats = c.stats().expect("stats");
    assert_eq!(stats.get("batch_width").and_then(Json::as_u64), Some(8));
    assert_eq!(stats.get("eval_threads").and_then(Json::as_u64), Some(4));

    // Absent members leave knobs unchanged; zeros clamp to 1.
    assert_eq!(c.configure(None, None).expect("configure noop"), (8, 4));
    assert_eq!(
        c.configure(Some(0), Some(0)).expect("configure clamp"),
        (1, 1)
    );

    // Reconfiguring a session with live user logic still works (the
    // worker-pool size is applied to the running engine).
    c.eval_all(COUNTER).expect("eval");
    c.run(16).expect("run");
    assert_eq!(c.configure(None, Some(2)).expect("configure live"), (1, 2));
}

/// The hardware-engine profile renders the data-parallel columns: with
/// `eval_threads > 1` the header carries the thread count, levels carry a
/// `pool` utilization share, and change-tracking kernels carry a lane
/// `occ`upancy share. The design mixes both settle schedules: a long
/// combinational chain hangs off a register that updates every 16th
/// cycle, so most waves are narrow (sparse settles, which track
/// occupancy) while the chain's update waves go dense (which is where
/// the pool engages).
#[test]
fn hw_profile_shows_thread_and_occupancy_columns() {
    let mut src = String::from(
        "reg [15:0] cnt = 0;\n\
         reg [7:0] slow = 0;\n\
         always @(posedge clk.val) cnt <= cnt + 1;\n\
         always @(posedge clk.val) if (cnt[3:0] == 4'd0) slow <= slow + 8'd1;\n\
         wire [7:0] t0;\n\
         assign t0 = slow ^ 8'h5a;\n",
    );
    // 48 taps directly off `slow` (depth 1), reduced by a balanced xor
    // tree (depth ~6) — wide enough to dwarf the counter's cone but
    // shallow enough for the virtual toolchain to close timing.
    for i in 1..48 {
        src.push_str(&format!(
            "wire [7:0] t{i};\nassign t{i} = (slow >> {}) ^ 8'h{:02x};\n",
            i % 8,
            i
        ));
    }
    let mut names: Vec<String> = (0..48).map(|i| format!("t{i}")).collect();
    let mut next = 0;
    while names.len() > 1 {
        let mut reduced = Vec::new();
        for pair in names.chunks(2) {
            if let [a, b] = pair {
                let n = format!("r{next}");
                next += 1;
                src.push_str(&format!("wire [7:0] {n};\nassign {n} = {a} ^ {b};\n"));
                reduced.push(n);
            } else {
                reduced.push(pair[0].clone());
            }
        }
        names = reduced;
    }
    src.push_str(&format!("assign led.val = {} ^ cnt[7:0];\n", names[0]));

    let mut config = JitConfig::default();
    config.toolchain.time_scale = 1e-6;
    config.trace = TraceSink::ring(1024);
    config.eval_threads = 2;
    // The chain levels are one instruction wide, far below the activity
    // cutover, so force the pool onto every level (same knob the CI
    // parallel-smoke job uses for the equivalence suite).
    std::env::set_var("CASCADE_NETLIST_FORCE_PAR", "1");
    let mut rt = Runtime::new(Board::new(), config).expect("runtime");
    rt.eval(&src).expect("eval");
    settle_compile(&mut rt);
    rt.run_ticks(256).expect("run");
    let text = rt.profile_text().expect("profile text");
    std::env::remove_var("CASCADE_NETLIST_FORCE_PAR");
    assert!(
        text.contains("hardware engine"),
        "compile did not promote:\n{text}"
    );
    assert!(text.contains("threads=2"), "no thread count:\n{text}");
    assert!(text.contains("pool"), "no pool utilization column:\n{text}");
    assert!(text.contains("occ"), "no lane occupancy column:\n{text}");
}
