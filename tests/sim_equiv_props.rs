//! Property-based equivalence of the bytecode-compiled software engine
//! ([`CompiledSim`]) against the tree-walking interpreter ([`Simulator`])
//! on randomized behavioural modules: register allocation, the narrow/wide
//! value split, specialized opcodes, the sensitivity index, and the batched
//! `tick_n` fast path must never change an observable value, a `$display`
//! rendering, the `$random` stream, or when `$finish` lands.
//!
//! The generated programs deliberately exercise what the *netlist* property
//! suite cannot: >64-bit registers, dynamic bit selects, signed
//! division/remainder/arithmetic-shift, memories indexed by live state, and
//! `$random` (side effects must line up activation for activation).
//!
//! Randomized with the in-tree deterministic [`Prng`] (no registry access
//! in the build environment, so `proptest` is unavailable). Every assertion
//! carries the case seed; rerun a failure by fixing the seed locally.

use cascade_bits::{Bits, Prng};
use cascade_sim::{
    elaborate, library_from_source, CompiledSim, Design, SimEvent, Simulator, VarClass,
};
use std::sync::Arc;

/// A random self-determined ~16-bit expression over the module's live
/// state, occasionally reaching into the wide register, the memory, or the
/// `$random` stream.
fn arb_expr(rng: &mut Prng, depth: u32) -> String {
    if depth == 0 {
        match rng.below(10) {
            0 => rng.range(1, 0xffff).to_string(),
            1 => {
                let w = rng.range(1, 16);
                let v = rng.next_u64() & ((1u64 << w) - 1);
                format!("{w}'h{v:x}")
            }
            2 => "a".to_string(),
            3 => "b".to_string(),
            4 => format!("r{}", rng.below(3)),
            5 => "cc".to_string(),
            6 => "s0".to_string(),
            7 => "mem[cc[2:0]]".to_string(),
            8 => "w0[47:32]".to_string(),
            _ => "w0[cc[5:0]]".to_string(),
        }
    } else {
        match rng.below(8) {
            0 => {
                let op = *rng.pick(&[
                    "+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>", "==", "!=", "<", "<=",
                ]);
                let l = arb_expr(rng, depth - 1);
                let r = arb_expr(rng, depth - 1);
                format!("({l} {op} {r})")
            }
            1 => {
                let c = arb_expr(rng, depth - 1);
                let t = arb_expr(rng, depth - 1);
                let f = arb_expr(rng, depth - 1);
                format!("({c} ? {t} : {f})")
            }
            2 => format!("(~{})", arb_expr(rng, depth - 1)),
            3 => format!("(^{})", arb_expr(rng, depth - 1)),
            4 => {
                let l = arb_expr(rng, depth - 1);
                let r = arb_expr(rng, depth - 1);
                format!("{{{l}, {r}}}")
            }
            5 => format!("($random ^ {})", arb_expr(rng, depth - 1)),
            6 => format!("(s0 >>> {})", rng.below(4)),
            _ => format!("({} >> {})", arb_expr(rng, depth - 1), rng.below(18)),
        }
    }
}

/// A random 96-bit expression over the wide register.
fn arb_wide_expr(rng: &mut Prng) -> String {
    match rng.below(6) {
        0 => format!("(w0 >> {})", rng.range(1, 90)),
        1 => format!("(w0 << {})", rng.range(1, 90)),
        2 => format!("{{w0[79:0], {}}}", arb_expr(rng, 1)),
        3 => "(w0 + {r0, r1, r2, a, b, cc})".to_string(),
        4 => format!("(~w0 ^ {{3{{{}}}}})", arb_expr(rng, 1)),
        _ => format!("(w0 * 96'h{:x})", rng.next_u64()),
    }
}

/// A random guarded nonblocking update statement.
fn arb_stmt(rng: &mut Prng, depth: u32) -> String {
    let assign = |rng: &mut Prng| match rng.below(8) {
        0..=3 => {
            let r = rng.below(3);
            let e = arb_expr(rng, 2);
            format!("r{r} <= {e};")
        }
        4 => format!("s0 <= {};", arb_expr(rng, 2)),
        5 => format!("mem[{}] <= {};", arb_expr(rng, 1), arb_expr(rng, 2)),
        6 => format!("r2[11:4] <= {};", arb_expr(rng, 1)),
        _ => format!("w0 <= {};", arb_wide_expr(rng)),
    };
    if depth == 0 {
        return assign(rng);
    }
    match rng.below(7) {
        0..=2 => assign(rng),
        3 | 4 => {
            let c = arb_expr(rng, 1);
            let t = arb_stmt(rng, depth - 1);
            let e = arb_stmt(rng, depth - 1);
            format!("if ({c}) begin {t} end else begin {e} end")
        }
        5 => {
            let x = arb_stmt(rng, depth - 1);
            let y = arb_stmt(rng, depth - 1);
            let z = arb_stmt(rng, depth - 1);
            format!(
                "case (cc[1:0]) 2'd0: begin {x} end 2'd1: begin {y} end default: begin {z} end endcase"
            )
        }
        _ => {
            let x = arb_stmt(rng, depth - 1);
            let y = arb_stmt(rng, depth - 1);
            format!("begin {x} {y} end")
        }
    }
}

/// A random clocked module mixing narrow, signed, wide, and array state,
/// with a conditional `$display` over all of it and a `$finish` in range.
fn arb_module(rng: &mut Prng) -> String {
    let body = arb_stmt(rng, 2);
    let disp_cond = format!("r{}[{}]", rng.below(3), rng.below(4));
    let finish_at = rng.range(4, 14);
    format!(
        "module T(input wire clk, input wire [15:0] a, input wire [15:0] b,\n\
         output wire [15:0] o0, output wire [95:0] ow);\n\
         reg [15:0] r0 = 1; reg [15:0] r1 = 2; reg [15:0] r2 = 3;\n\
         reg signed [15:0] s0 = 16'hfffb;\n\
         reg [95:0] w0 = 96'h0123456789abcdef00112233;\n\
         reg [15:0] mem [0:7];\n\
         reg [7:0] cc = 0;\n\
         integer i;\n\
         initial for (i = 0; i < 8; i = i + 1) mem[i] = i * 3 + 1;\n\
         always @(posedge clk) begin\n\
           cc <= cc + 1;\n\
           {body}\n\
           if ({disp_cond}) $display(\"c=%0d r=%h s=%d w=%h m=%h\", cc, r0, s0, w0, mem[cc[2:0]]);\n\
           if (cc == {finish_at}) $finish;\n\
         end\n\
         assign o0 = r0 ^ r1;\n\
         assign ow = w0;\nendmodule"
    )
}

fn design_of(src: &str) -> Arc<Design> {
    let lib = library_from_source(src).expect("generated module parses");
    Arc::new(elaborate("T", &lib, &Default::default()).expect("elaborates"))
}

fn render(events: Vec<SimEvent>) -> Vec<String> {
    events
        .into_iter()
        .map(|e| match e {
            SimEvent::Display(s) | SimEvent::Write(s) | SimEvent::Fatal(s) => s,
            SimEvent::Finish => "$finish".into(),
        })
        .collect()
}

/// Every variable of `design` — scalars and array words — must agree.
fn assert_same_state(sim: &Simulator, c: &CompiledSim, design: &Design, ctx: &str, src: &str) {
    for (name, id) in design.iter_vars() {
        let info = design.info(id);
        if info.class == VarClass::Wire && info.is_input {
            continue;
        }
        if info.is_array() {
            for i in 0..info.array_len {
                assert_eq!(
                    sim.peek_array(id, i),
                    c.peek_array(id, i),
                    "{name}[{i}] diverged {ctx}\n{src}"
                );
            }
        } else {
            assert_eq!(
                sim.peek_id(id),
                c.peek_id(id),
                "{name} diverged {ctx}\n{src}"
            );
        }
    }
}

/// Compiled engine vs the tree walker, cycle by cycle: every variable,
/// rendered `$display` text, the `$random` stream (indirectly, through
/// both), and the `$finish` cycle.
#[test]
fn compiled_matches_tree_walker_with_tasks() {
    for seed in 0..48 {
        let mut rng = Prng::new(seed);
        let src = arb_module(&mut rng);
        let design = design_of(&src);
        let mut sim = Simulator::new(Arc::clone(&design));
        let mut c = CompiledSim::new(Arc::clone(&design));
        sim.seed_random(seed + 7);
        c.seed_random(seed + 7);
        sim.initialize().unwrap();
        c.initialize().unwrap();
        assert_eq!(
            render(sim.drain_events()),
            render(c.drain_events()),
            "initialization tasks diverged (seed {seed})\n{src}"
        );
        assert_same_state(
            &sim,
            &c,
            &design,
            &format!("after init (seed {seed})"),
            &src,
        );
        for cycle in 0..24 {
            if sim.is_finished() {
                break;
            }
            let a = Bits::from_u64(16, rng.next_u64() & 0xffff);
            let b = Bits::from_u64(16, rng.next_u64() & 0xffff);
            sim.poke("a", a.clone());
            c.poke("a", a);
            sim.poke("b", b.clone());
            c.poke("b", b);
            sim.tick("clk").unwrap();
            c.tick("clk").unwrap();
            assert_same_state(
                &sim,
                &c,
                &design,
                &format!("at cycle {cycle} (seed {seed})"),
                &src,
            );
            assert_eq!(
                render(sim.drain_events()),
                render(c.drain_events()),
                "task firings diverged at cycle {cycle} (seed {seed})\n{src}"
            );
            assert_eq!(
                sim.is_finished(),
                c.is_finished(),
                "$finish timing diverged at cycle {cycle} (seed {seed})\n{src}"
            );
            assert_eq!(sim.time(), c.time(), "time diverged (seed {seed})\n{src}");
        }
    }
}

/// The batched open-loop fast path (`tick_n`, which skips per-cycle event
/// scans until a task fires) produces the same state, event order, and
/// cycle count as single stepping.
#[test]
fn batched_tick_n_matches_single_stepping() {
    for seed in 0..32 {
        let mut rng = Prng::new(seed + 5000);
        let src = arb_module(&mut rng);
        let design = design_of(&src);
        let clk = design.var("clk").expect("clk port");
        let mut batched = CompiledSim::new(Arc::clone(&design));
        let mut stepped = CompiledSim::new(Arc::clone(&design));
        batched.seed_random(seed + 11);
        stepped.seed_random(seed + 11);
        batched.initialize().unwrap();
        stepped.initialize().unwrap();
        let a = Bits::from_u64(16, rng.next_u64() & 0xffff);
        let b = Bits::from_u64(16, rng.next_u64() & 0xffff);
        for sim in [&mut batched, &mut stepped] {
            sim.poke("a", a.clone());
            sim.poke("b", b.clone());
            sim.drain_events();
        }
        let mut remaining: u64 = 40;
        while remaining > 0 && !batched.is_finished() {
            let chunk = rng.range(1, 9).min(remaining);
            let did = batched.tick_n(clk, chunk).unwrap();
            assert!(did >= 1, "live sim must make progress (seed {seed})\n{src}");
            for _ in 0..did {
                stepped.tick_id(clk).unwrap();
            }
            assert_eq!(
                render(batched.drain_events()),
                render(stepped.drain_events()),
                "event streams diverged after {did}-cycle batch (seed {seed})\n{src}"
            );
            remaining -= did;
        }
        for (name, id) in design.iter_vars() {
            let info = design.info(id);
            if info.is_array() {
                for i in 0..info.array_len {
                    assert_eq!(
                        batched.peek_array(id, i),
                        stepped.peek_array(id, i),
                        "{name}[{i}] diverged (seed {seed})\n{src}"
                    );
                }
            } else {
                assert_eq!(
                    batched.peek_id(id),
                    stepped.peek_id(id),
                    "{name} diverged (seed {seed})\n{src}"
                );
            }
        }
        assert_eq!(
            batched.is_finished(),
            stepped.is_finished(),
            "seed {seed}\n{src}"
        );
        assert_eq!(batched.time(), stepped.time(), "seed {seed}\n{src}");
    }
}
