//! Streaming regex matching over the stdlib FIFO (paper Sec. 6.2).
//!
//! Compiles a Snort-style pattern to a DFA, emits the Verilog matcher, and
//! streams an HTTP-ish byte soup through the board FIFO one byte at a time
//! — first interpreted, then in virtual hardware — comparing the measured
//! IO rates and validating the match count against the Rust DFA.
//!
//! Run with: `cargo run --release -p cascade-bench --example regex_stream`

use cascade_bits::Bits;
use cascade_core::{JitConfig, Runtime};
use cascade_fpga::Board;
use cascade_workloads::regex::{compile, matcher_verilog, Flavor};

const PATTERN: &str = "GET |POST |HEAD ";

fn traffic(n: usize) -> Vec<u8> {
    let requests: &[&[u8]] = &[
        b"GET /a ",
        b"POST /b ",
        b"PUT /c ",
        b"HEAD /d ",
        b"noise....",
    ];
    let mut out = Vec::with_capacity(n);
    let mut i = 0;
    while out.len() < n {
        out.extend_from_slice(requests[i % requests.len()]);
        i += 1;
    }
    out.truncate(n);
    out
}

fn main() -> Result<(), cascade_core::CascadeError> {
    let dfa = compile(PATTERN).expect("pattern compiles");
    println!(
        "pattern `{PATTERN}` compiled to a {}-state DFA",
        dfa.states()
    );
    let input = traffic(4_000);
    let expected = dfa.count_matches(&input);
    println!(
        "reference match count over {} bytes: {expected}",
        input.len()
    );

    let board = Board::new();
    board.set_fifo_capacity(1 << 16);
    let mut rt = Runtime::new(board.clone(), JitConfig::default())?;
    rt.eval(&matcher_verilog(&dfa, Flavor::Cascade))?;

    // Software phase: push a slice of the traffic and measure IO/s.
    for &b in &input[..1000] {
        board.fifo_push(Bits::from_u64(8, b as u64));
    }
    let w0 = rt.wall_seconds();
    rt.run_ticks(1_100)?;
    let sw_ios = (board.fifo_pops()) as f64 / (rt.wall_seconds() - w0);
    println!(
        "software phase: {:.1} KIO/s ({:?}, {} bytes consumed)",
        sw_ios / 1e3,
        rt.mode(),
        board.fifo_pops()
    );

    // Migrate.
    rt.wait_for_compile_worker();
    let ready = rt.compile_ready_at().expect("compile in flight");
    rt.advance_wall((ready - rt.wall_seconds()).max(0.0) + 1.0);
    rt.run_ticks(1)?;
    println!("migrated: mode={:?}", rt.mode());

    // Hardware phase: the rest of the stream.
    for &b in &input[1000..] {
        board.fifo_push(Bits::from_u64(8, b as u64));
    }
    let p0 = board.fifo_pops();
    let w1 = rt.wall_seconds();
    rt.run_ticks(input.len() as u64)?;
    let hw_ios = (board.fifo_pops() - p0) as f64 / (rt.wall_seconds() - w1);
    println!("hardware phase: {:.1} KIO/s", hw_ios / 1e3);

    assert_eq!(board.fifo_pops(), input.len() as u64, "every byte consumed");
    let leds = board.leds().to_u64();
    assert_eq!(leds, expected & 0xff, "match counter on the LEDs agrees");
    println!(
        "match counter (low 8 bits on LEDs): {leds} == reference {} — OK; speedup {:.0}x",
        expected & 0xff,
        hw_ios / sw_ios
    );
    Ok(())
}
