//! Multi-tenant serving demo: two sessions share a one-fabric fleet.
//!
//! Session A evals a counter and gets promoted to the fabric when its
//! background compile lands. Session B then arrives, becomes the hotter
//! tenant, and steals the fabric: A's lease is revoked and its state
//! migrates back to software mid-run — both keep counting, values intact.
//!
//! Run with `cargo run -p cascade-serve --example serve_demo`.

use cascade_serve::{InProcClient, ServeConfig, Server, TcpClient, TcpServer};
use std::time::{Duration, Instant};

const COUNTER: &str = "reg [15:0] cnt = 0;\n\
                       always @(posedge clk.val) cnt <= cnt + 1;\n\
                       assign led.val = cnt[7:0];";

fn banner(msg: &str) {
    println!("\n=== {msg} ===");
}

fn show(name: &str, client: &mut InProcClient) {
    let stats = client.stats().expect("stats");
    println!(
        "{name}: ticks={} mode={} lease_held={} promotions={} demotions={}",
        stats.get("ticks").and_then(|v| v.as_u64()).unwrap_or(0),
        stats.get("mode").and_then(|v| v.as_str()).unwrap_or("?"),
        stats
            .get("lease_held")
            .and_then(|v| v.as_bool())
            .unwrap_or(false),
        stats
            .get("promotions")
            .and_then(|v| v.as_u64())
            .unwrap_or(0),
        stats.get("demotions").and_then(|v| v.as_u64()).unwrap_or(0),
    );
}

fn main() {
    let mut config = ServeConfig::quick();
    config.fabrics = 1; // force contention
    let server = Server::new(config);

    banner("session A: eval a counter, compile in background");
    let mut a = InProcClient::connect(&server);
    a.open().expect("open A");
    a.eval_all(COUNTER).expect("eval A");
    a.run(50).expect("run A");
    a.wait_compile().expect("wait A");
    let run = a.run(50).expect("run A");
    println!(
        "A after compile: mode={} lease_held={}",
        run.mode, run.lease_held
    );
    show("A", &mut a);

    banner("session B arrives, hotter: steals the single fabric");
    let mut b = InProcClient::connect(&server);
    b.open().expect("open B");
    b.eval_all(COUNTER).expect("eval B");
    b.run(50).expect("run B");
    b.wait_compile().expect("wait B");
    // B is now the hottest tenant with a ready bitstream; the arbiter
    // revokes A's lease. Give the sweeper a moment to migrate both.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let b_holds = b
            .stats()
            .expect("stats B")
            .get("lease_held")
            .and_then(|v| v.as_bool())
            == Some(true);
        if b_holds || Instant::now() > deadline {
            break;
        }
        b.run(10).expect("run B");
        std::thread::sleep(Duration::from_millis(5));
    }
    show("A", &mut a);
    show("B", &mut b);

    banner("both keep running; A is back in software with state intact");
    a.run(50).expect("run A");
    b.run(50).expect("run B");
    let a_cnt = a.probe("cnt").expect("probe A");
    let b_cnt = b.probe("cnt").expect("probe B");
    println!("A cnt={a_cnt:?}  B cnt={b_cnt:?}");
    show("A", &mut a);
    show("B", &mut b);

    banner("the same wire protocol over TCP");
    let tcp = TcpServer::bind(server.clone(), "127.0.0.1:0").expect("bind");
    let mut c = TcpClient::connect(tcp.addr()).expect("connect");
    c.open().expect("open C");
    c.eval("reg [7:0] x = 7;").expect("eval C");
    let out = c
        .eval("initial $display(\"tcp says x=%d\", x);")
        .expect("eval C");
    println!("C over {} -> {out:?}", tcp.addr());

    let mut any = InProcClient::connect(&server);
    any.open().expect("open");
    let stats = any.server_stats().expect("server stats");
    banner("server stats");
    println!("{stats}");
}
