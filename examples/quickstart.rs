//! Quickstart: the paper's running example, end to end.
//!
//! Builds a Cascade runtime on a virtual board, evals the LED-rotator from
//! Fig. 1/Fig. 3, watches it run in software, lets the background compile
//! finish, and keeps going in (virtual) hardware — including a `$display`
//! probe that still works after migration.
//!
//! Run with: `cargo run --release -p cascade-bench --example quickstart`

use cascade_core::{JitConfig, Runtime};
use cascade_fpga::Board;

fn leds_to_string(v: u64) -> String {
    (0..8)
        .rev()
        .map(|i| if v >> i & 1 == 1 { '#' } else { '.' })
        .collect()
}

fn main() -> Result<(), cascade_core::CascadeError> {
    let board = Board::new();
    let mut cascade = Runtime::new(board.clone(), JitConfig::default())?;

    println!(">>> module Rol(...);  // the rotator from the paper's Fig. 1");
    cascade.eval(
        "module Rol(input wire [7:0] x, output wire [7:0] y);\n\
         assign y = (x == 8'h80) ? 8'h1 : (x<<1);\nendmodule",
    )?;
    println!(">>> reg [7:0] cnt = 1;");
    cascade.eval("reg [7:0] cnt = 1;")?;
    println!(">>> Rol r(.x(cnt));");
    cascade.eval("Rol r(.x(cnt));")?;
    println!(">>> always @(posedge clk.val) if (pad.val == 0) cnt <= r.y;");
    cascade.eval("always @(posedge clk.val) if (pad.val == 0) cnt <= r.y;")?;
    println!(">>> assign led.val = cnt;");
    cascade.eval("assign led.val = cnt;")?;

    println!(
        "\n-- running immediately, in software ({:?}) --",
        cascade.mode()
    );
    for _ in 0..4 {
        cascade.run_ticks(1)?;
        println!("  leds: {}", leds_to_string(board.leds().to_u64()));
    }

    println!("\n-- pressing button 0: the animation pauses --");
    board.set_button(0, true);
    cascade.run_ticks(3)?;
    println!("  leds: {} (paused)", leds_to_string(board.leds().to_u64()));
    board.set_button(0, false);

    println!("\n-- waiting for the background compile --");
    cascade.wait_for_compile_worker();
    if let Some(ready) = cascade.compile_ready_at() {
        let wait = (ready - cascade.wall_seconds()).max(0.0);
        println!(
            "  bitstream ready after {:.0} modeled seconds of background work",
            wait
        );
        cascade.advance_wall(wait + 1.0);
    }
    cascade.run_ticks(1)?;
    println!("  now executing in {:?}", cascade.mode());
    for _ in 0..3 {
        cascade.run_ticks(1)?;
        println!("  leds: {}", leds_to_string(board.leds().to_u64()));
    }

    println!("\n-- printf still works from hardware --");
    cascade.eval("$display(\"cnt is currently %d\", cnt);")?;
    for line in cascade.drain_output() {
        println!("  {line}");
    }

    let stats = cascade.stats();
    println!(
        "\ndone: {} virtual ticks in {:.3} modeled seconds ({:?})",
        stats.ticks, stats.wall_seconds, stats.mode
    );
    Ok(())
}
