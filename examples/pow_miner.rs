//! The SHA-256 proof-of-work miner under the JIT (paper Sec. 6.1).
//!
//! Generates the miner Verilog, evals it into Cascade, and narrates the
//! compilation states: interpreted execution starts in well under a second,
//! the virtual toolchain grinds in the background, and when the bitstream
//! lands the nonce search continues in hardware — where the `$display`
//! announcing the found nonce still fires.
//!
//! Run with: `cargo run --release -p cascade-bench --example pow_miner`

use cascade_core::{JitConfig, Runtime};
use cascade_fpga::Board;
use cascade_workloads::sha256::{
    find_nonce, miner_verilog, Flavor, MinerConfig, CYCLES_PER_ATTEMPT,
};
use std::time::Instant;

fn main() -> Result<(), cascade_core::CascadeError> {
    let cfg = MinerConfig {
        target: 0x0400_0000,
        ..MinerConfig::default()
    };
    let (expect_nonce, expect_digest) = find_nonce(cfg.data, cfg.target, cfg.start_nonce);
    println!(
        "reference: nonce {expect_nonce:#010x} gives digest {:#010x} < target {:#010x}",
        expect_digest[0], cfg.target
    );

    let board = Board::new();
    let mut rt = Runtime::new(board, JitConfig::default())?;
    let start = Instant::now();
    rt.eval(&miner_verilog(&cfg, Flavor::Cascade))?;
    println!(
        "eval to running code: {:.0} ms real ({} ticks available immediately)",
        start.elapsed().as_secs_f64() * 1e3,
        rt.ticks()
    );

    // Phase 1: software simulation while the toolchain works.
    rt.run_ticks(2_000)?;
    let sim_rate = rt.ticks() as f64 / rt.wall_seconds();
    println!(
        "software phase: {} attempts hashed at a {:.1} KHz virtual clock ({:?})",
        rt.ticks() / CYCLES_PER_ATTEMPT,
        sim_rate / 1e3,
        rt.mode()
    );

    // Phase 2: the bitstream lands.
    rt.wait_for_compile_worker();
    let ready = rt.compile_ready_at().expect("compile in flight");
    println!("bitstream ready at t={ready:.0}s (modeled); fast-forwarding the wall clock");
    rt.advance_wall((ready - rt.wall_seconds()).max(0.0) + 1.0);
    rt.run_ticks(1)?;
    println!("migrated: mode={:?}", rt.mode());

    // Phase 3: open-loop hardware until the nonce is found.
    let w0 = rt.wall_seconds();
    let t0 = rt.ticks();
    let budget = (expect_nonce as u64 + 2) * CYCLES_PER_ATTEMPT;
    rt.run_ticks(budget)?;
    let hw_rate = (rt.ticks() - t0) as f64 / (rt.wall_seconds() - w0);
    println!(
        "hardware phase: virtual clock {:.1} MHz (native fabric is 50 MHz)",
        hw_rate / 1e6
    );
    for line in rt.drain_output() {
        println!("  {line}");
    }
    assert!(rt.is_finished(), "miner should $finish on success");
    println!("real elapsed: {:.2}s", start.elapsed().as_secs_f64());
    Ok(())
}
