//! An interactive Cascade REPL on the virtual board (paper Fig. 3).
//!
//! Type Verilog a line at a time; it runs as soon as it parses. Meta
//! commands (lines starting with `:`) poke the board and inspect the JIT:
//!
//! ```text
//! :run N        advance N virtual clock ticks
//! :press I      press button I       :release I   release it
//! :leds         show the LED bank    :stats       engine/JIT state
//! :wait         block until the background compile lands
//! :native       enter native mode    :quit
//! ```
//!
//! Run with: `cargo run --release -p cascade-bench --example repl`

use cascade_core::{JitConfig, Repl, ReplResponse, Runtime};
use cascade_fpga::Board;
use std::io::{BufRead, Write};

fn main() {
    let board = Board::new();
    let runtime = Runtime::new(board.clone(), JitConfig::default()).expect("runtime");
    let mut repl = Repl::new(runtime);
    let stdin = std::io::stdin();
    println!("cascade-rs REPL — implicit components: clk, pad (4 buttons), led (8 LEDs)");
    print!("CASCADE >>> ");
    std::io::stdout().flush().ok();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let trimmed = line.trim();
        if let Some(cmd) = trimmed.strip_prefix(':') {
            if !meta(cmd, &mut repl, &board) {
                break;
            }
        } else {
            match repl.line(&line) {
                ReplResponse::Evaluated(output) => {
                    for l in output {
                        println!("{l}");
                    }
                }
                ReplResponse::Incomplete => {
                    print!("       ...> ");
                    std::io::stdout().flush().ok();
                    continue;
                }
                ReplResponse::Error(e) => println!("error: {e}"),
            }
        }
        print!("CASCADE >>> ");
        std::io::stdout().flush().ok();
    }
}

fn meta(cmd: &str, repl: &mut Repl, board: &Board) -> bool {
    let mut parts = cmd.split_whitespace();
    let head = parts.next().unwrap_or("");
    let arg: Option<u64> = parts.next().and_then(|a| a.parse().ok());
    let rt = repl.runtime();
    match head {
        "run" => {
            let n = arg.unwrap_or(1);
            match rt.run_ticks(n) {
                Ok(done) => {
                    for l in rt.drain_output() {
                        println!("{l}");
                    }
                    println!("advanced {done} ticks (t={})", rt.ticks());
                }
                Err(e) => println!("error: {e}"),
            }
        }
        "press" => board.set_button(arg.unwrap_or(0) as u32, true),
        "release" => board.set_button(arg.unwrap_or(0) as u32, false),
        "leds" => {
            let v = board.leds().to_u64();
            let bar: String = (0..8)
                .rev()
                .map(|i| if v >> i & 1 == 1 { '#' } else { '.' })
                .collect();
            println!("leds: {bar} ({v:#04x})");
        }
        "stats" => {
            let s = rt.stats();
            println!(
                "mode={:?} ticks={} wall={:.3}s compiling={}",
                s.mode, s.ticks, s.wall_seconds, s.compile_in_flight
            );
            for (name, kind) in s.engines {
                println!("  engine {name}: {kind}");
            }
        }
        "wait" => {
            rt.wait_for_compile_worker();
            if let Some(ready) = rt.compile_ready_at() {
                let wait = (ready - rt.wall_seconds()).max(0.0);
                rt.advance_wall(wait + 1.0);
                let _ = rt.run_ticks(1);
                println!(
                    "bitstream landed after {wait:.0} modeled seconds; mode={:?}",
                    rt.mode()
                );
            } else {
                println!("no compile in flight");
            }
        }
        "native" => match rt.enter_native() {
            Ok(()) => println!("native mode: {:?}", rt.mode()),
            Err(e) => println!("error: {e}"),
        },
        "quit" | "exit" | "q" => return false,
        other => println!("unknown command `:{other}`"),
    }
    true
}
