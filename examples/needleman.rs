//! Needleman-Wunsch sequence alignment in generated "student" Verilog
//! (paper Sec. 6.4): generate a solution, align two DNA sequences in the
//! simulator, check the score against the Rust reference, and print the
//! Table 1-style syntax statistics for a small corpus.
//!
//! Run with: `cargo run --release -p cascade-bench --example needleman`

use cascade_bits::Bits;
use cascade_sim::{elaborate, library_from_source, Simulator};
use cascade_verilog::analysis;
use cascade_verilog::typecheck::ParamEnv;
use cascade_workloads::needleman::{
    nw_score, pack_sequence, random_sequence, student_solution, student_style,
};
use std::sync::Arc;

fn main() {
    // One solution, end to end.
    let style = student_style(4);
    let src = student_solution(&style);
    let n = style.seq_len;
    let a = random_sequence(n, 101);
    let b = random_sequence(n, 202);
    println!(
        "aligning {} vs {} (n={n}, {}, {} $display statements)",
        String::from_utf8_lossy(&a),
        String::from_utf8_lossy(&b),
        if style.pipelined {
            "pipelined"
        } else {
            "single-shot"
        },
        style.display_count
    );
    let expect = nw_score(&a, &b);

    let lib = library_from_source(&src).expect("generated solution parses");
    let overrides = ParamEnv::from([
        (
            "SEQ_A".to_string(),
            Bits::from_u64(n as u32 * 2, pack_sequence(&a)),
        ),
        (
            "SEQ_B".to_string(),
            Bits::from_u64(n as u32 * 2, pack_sequence(&b)),
        ),
    ]);
    let design = elaborate("Nw", &lib, &overrides).expect("elaborates");
    let mut sim = Simulator::new(Arc::new(design));
    sim.initialize().unwrap();
    for _ in 0..(2 * n + 8) {
        if sim.peek("done").to_bool() {
            break;
        }
        sim.tick("clk").unwrap();
    }
    let got = sim.peek("score").to_i64();
    println!(
        "hardware score: {got}, reference: {expect} — {}",
        if got == expect { "OK" } else { "MISMATCH" }
    );
    assert_eq!(got, expect);
    for ev in sim.drain_events() {
        if let cascade_sim::SimEvent::Display(s) = ev {
            println!("  [$display] {s}");
        }
    }

    // A mini Table 1 over a 10-solution corpus.
    println!("\nmini corpus statistics (cf. paper Table 1):");
    println!("{:<28} {:>6} {:>6} {:>6}", "metric", "mean", "min", "max");
    let mut rows: Vec<[usize; 5]> = Vec::new();
    for seed in 0..10u64 {
        let st = student_style(seed);
        let text = student_solution(&st);
        let unit = cascade_verilog::parse(&text).unwrap();
        let stats = analysis::source_stats(&text, &unit);
        rows.push([
            stats.lines,
            stats.always_blocks,
            stats.blocking_assignments,
            stats.nonblocking_assignments,
            stats.display_statements,
        ]);
    }
    let metrics = [
        "lines of code",
        "always blocks",
        "blocking assigns",
        "nonblocking assigns",
        "display statements",
    ];
    for (k, name) in metrics.iter().enumerate() {
        let vals: Vec<usize> = rows.iter().map(|r| r[k]).collect();
        let mean = vals.iter().sum::<usize>() / vals.len();
        let min = vals.iter().min().unwrap();
        let max = vals.iter().max().unwrap();
        println!("{name:<28} {mean:>6} {min:>6} {max:>6}");
    }
}
