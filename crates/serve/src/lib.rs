//! Cascade-serve: a multi-tenant Cascade server over a shared
//! virtual-FPGA fleet.
//!
//! The single-user [`cascade_core::Runtime`] gives one engineer the JIT
//! experience — eval Verilog, run it immediately in software, migrate to
//! hardware when the background compile lands. This crate hosts *many*
//! such runtimes behind one server process, the way SYNERGY virtualizes
//! Cascade over shared FPGAs:
//!
//! - **protocol**: newline-delimited JSON over TCP (or in-process), one
//!   request/reply pair per line — REPL input, `$display` output, stats.
//! - **sessions**: one runtime per session, hosted on a worker-thread
//!   pool (the runtime is `Send`, asserted in core), with idle timeouts
//!   and bounded output queues with backpressure.
//! - **fleet**: N virtual fabrics shared by all sessions. A finished
//!   background compile needs a fabric lease to promote; under contention
//!   the arbiter revokes the coldest tenant's lease, and the victim
//!   migrates its state back to software via the `get_state` engine ABI —
//!   it keeps running, just slower.
//! - **compile pool**: K toolchain workers, a bounded job queue that
//!   sheds the oldest work, and a shared content-hash bitstream cache, so
//!   a re-promoted tenant pays ~1 modeled second, not a full synthesis.
//!
//! ```no_run
//! use cascade_serve::{InProcClient, ServeConfig, Server};
//!
//! let server = Server::new(ServeConfig::quick());
//! let mut client = InProcClient::connect(&server);
//! client.open().unwrap();
//! client.eval("reg [7:0] cnt = 0;").unwrap();
//! client.eval("always @(posedge clk.val) cnt <= cnt + 1;").unwrap();
//! client.run(100).unwrap();
//! assert_eq!(client.probe("cnt").unwrap(), Some(100));
//! ```

mod client;
pub mod json;
pub mod protocol;
mod server;
mod session;

pub use client::{Client, EvalResult, InProc, InProcClient, RunResult, Tcp, TcpClient, Transport};
pub use json::Json;
pub use protocol::Request;
pub use server::TcpServer;
pub use session::{ServeConfig, Server};
