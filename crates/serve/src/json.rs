//! A minimal JSON value, parser, and printer for the wire protocol.
//!
//! The workspace is deliberately dependency-free (no registry access), so
//! `serde_json` cannot be used; this module implements the subset the
//! line protocol needs: the six value kinds, strict parsing with position
//! in error messages, and compact printing with full string escaping.
//! Numbers are `f64` (the protocol never carries integers that lose
//! precision below 2^53).

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Object keys are sorted (`BTreeMap`) so printing is deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds an array of strings.
    pub fn strings(items: impl IntoIterator<Item = String>) -> Json {
        Json::Arr(items.into_iter().map(Json::Str).collect())
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Parses one JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid utf-8 at byte {start}"))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let cp = self.hex4()?;
                            // Surrogate pair handling for astral characters.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                self.pos += 1; // consume the 'u' below via expect
                                self.expect(b'\\').and_then(|()| self.expect(b'u'))?;
                                self.pos -= 1; // hex4 expects pos on 'u'
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("unpaired surrogate".to_string());
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c).ok_or("invalid codepoint")?
                            } else {
                                char::from_u32(cp).ok_or("invalid codepoint")?
                            };
                            out.push(c);
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    /// Reads `uXXXX` with `pos` on the `u`; leaves `pos` on the last digit.
    fn hex4(&mut self) -> Result<u32, String> {
        let mut cp = 0u32;
        for i in 1..=4 {
            let d = self
                .bytes
                .get(self.pos + i)
                .and_then(|b| (*b as char).to_digit(16))
                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
            cp = cp * 16 + d;
        }
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Json) {
        let text = v.to_string();
        assert_eq!(&Json::parse(&text).unwrap(), v, "through `{text}`");
    }

    #[test]
    fn scalar_round_trips() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Num(0.0),
            Json::Num(-17.0),
            Json::Num(3.5),
            Json::Num(9_007_199_254_740_992.0),
            Json::Str(String::new()),
            Json::Str("plain".to_string()),
            Json::Str("quotes \" and \\ and \n tabs \t".to_string()),
            Json::Str("unicode ✓ and astral 🚀".to_string()),
            Json::Str("\u{1} control".to_string()),
        ] {
            round_trip(&v);
        }
    }

    #[test]
    fn container_round_trips() {
        round_trip(&Json::Arr(vec![]));
        round_trip(&Json::obj([]));
        round_trip(&Json::obj([
            ("cmd", Json::from("eval")),
            ("session", Json::from(3u64)),
            ("line", Json::from("assign led.val = cnt;")),
            ("nested", Json::Arr(vec![Json::Null, Json::from(false)])),
        ]));
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = Json::parse(" { \"a\" : [ 1 , \"\\u0041\\ud83d\\ude80\" ] } ").unwrap();
        assert_eq!(
            v.get("a").and_then(|a| a.as_arr()).unwrap()[1],
            Json::Str("A🚀".to_string())
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"\\ud800\"").is_err());
    }

    #[test]
    fn u64_guards() {
        assert_eq!(Json::Num(5.0).as_u64(), Some(5));
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
    }
}
