//! Clients: a generic typed client over a line transport, with an
//! in-process transport (tests, embedding) and a TCP transport. Both
//! serialize through the same protocol lines, so an in-process test
//! exercises exactly what a socket client would send.

use crate::json::Json;
use crate::protocol::Request;
use crate::session::Server;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

/// A blocking line transport: one request line in, one reply line out.
pub trait Transport {
    /// Sends `line` and returns the reply line.
    ///
    /// # Errors
    ///
    /// Returns an IO error if the transport fails.
    fn round_trip(&mut self, line: &str) -> std::io::Result<String>;
}

/// In-process transport: calls the server directly.
pub struct InProc {
    server: Arc<Server>,
}

impl Transport for InProc {
    fn round_trip(&mut self, line: &str) -> std::io::Result<String> {
        Ok(self.server.handle_line(line))
    }
}

/// TCP transport: newline-delimited JSON over a socket.
pub struct Tcp {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Transport for Tcp {
    fn round_trip(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        let mut reply = String::new();
        if self.reader.read_line(&mut reply)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while reply.ends_with('\n') || reply.ends_with('\r') {
            reply.pop();
        }
        Ok(reply)
    }
}

/// The result of feeding one REPL line.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalResult {
    /// Item(s) accepted; immediate `$display` output attached.
    Evaluated(Vec<String>),
    /// More input needed.
    Incomplete,
    /// The item was rejected.
    Error(String),
}

/// What a `run` command did.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    pub ticks: u64,
    pub backpressure: bool,
    pub finished: bool,
    pub mode: String,
    pub lease_held: bool,
}

/// A typed client bound to one session over a [`Transport`].
pub struct Client<T: Transport> {
    transport: T,
    session: Option<u64>,
    token: Option<u64>,
    /// Next command sequence number (exactly-once). 0 = unsequenced.
    next_seq: u64,
}

/// In-process client (shares the server's address space).
pub type InProcClient = Client<InProc>;

/// Socket client.
pub type TcpClient = Client<Tcp>;

impl InProcClient {
    /// Creates a client talking directly to `server`.
    pub fn connect(server: &Arc<Server>) -> InProcClient {
        Client {
            transport: InProc {
                server: Arc::clone(server),
            },
            session: None,
            token: None,
            next_seq: 0,
        }
    }
}

impl TcpClient {
    /// Connects to a [`TcpServer`](crate::TcpServer).
    ///
    /// # Errors
    ///
    /// Returns the connect error.
    pub fn connect(addr: std::net::SocketAddr) -> std::io::Result<TcpClient> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            transport: Tcp {
                reader,
                writer: stream,
            },
            session: None,
            token: None,
            next_seq: 0,
        })
    }
}

impl<T: Transport> Client<T> {
    /// Sends a raw request and parses the reply.
    ///
    /// # Errors
    ///
    /// Returns a message for transport failures, unparseable replies, or
    /// `{ok: false}` replies (except `eval`, whose errors are data).
    pub fn raw(&mut self, req: &Request) -> Result<Json, String> {
        let line = req.to_line();
        let reply = self
            .transport
            .round_trip(&line)
            .map_err(|e| format!("transport: {e}"))?;
        Json::parse(&reply).map_err(|e| format!("bad reply `{reply}`: {e}"))
    }

    fn expect_ok(&mut self, req: &Request) -> Result<Json, String> {
        let reply = self.raw(req)?;
        if reply.get("ok").and_then(Json::as_bool) == Some(true) {
            Ok(reply)
        } else {
            Err(reply
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("request failed")
                .to_string())
        }
    }

    fn session(&self) -> Result<u64, String> {
        self.session.ok_or_else(|| "no open session".to_string())
    }

    /// Opens a session and binds this client to it.
    ///
    /// # Errors
    ///
    /// Returns the server's error message.
    pub fn open(&mut self) -> Result<u64, String> {
        let reply = self.expect_ok(&Request::Open)?;
        let id = reply
            .get("session")
            .and_then(Json::as_u64)
            .ok_or("reply missing session id")?;
        self.session = Some(id);
        self.token = reply.get("token").and_then(Json::as_u64);
        Ok(id)
    }

    /// The resume capability returned by [`open`](Self::open), needed to
    /// reclaim this session from a recovered server.
    pub fn token(&self) -> Option<u64> {
        self.token
    }

    /// Reclaims a session recovered after a server restart. Returns the
    /// last command sequence number the old server acknowledged, so the
    /// caller knows exactly where to resume its command stream.
    ///
    /// # Errors
    ///
    /// Returns the server's error message (unknown session, bad token).
    pub fn resume(&mut self, id: u64, token: u64) -> Result<u64, String> {
        let reply = self.expect_ok(&Request::Resume { session: id, token })?;
        self.session = Some(id);
        self.token = Some(token);
        Ok(reply.get("last_seq").and_then(Json::as_u64).unwrap_or(0))
    }

    /// Flushes every session's journal to a durable checkpoint and
    /// hibernates live tenants — the graceful half of a restart. Returns
    /// `(flushed, hibernated)`.
    ///
    /// # Errors
    ///
    /// Returns the server's error message.
    pub fn drain_server(&mut self) -> Result<(u64, u64), String> {
        let reply = self.expect_ok(&Request::DrainServer)?;
        let flushed = reply.get("flushed").and_then(Json::as_u64).unwrap_or(0);
        let hibernated = reply.get("hibernated").and_then(Json::as_u64).unwrap_or(0);
        Ok((flushed, hibernated))
    }

    /// Allocates the next command sequence number for the `*_seq`
    /// exactly-once variants.
    pub fn next_seq(&mut self) -> u64 {
        self.next_seq += 1;
        self.next_seq
    }

    /// Re-attaches to a live session by id.
    ///
    /// # Errors
    ///
    /// Returns the server's error message (e.g. the session is gone).
    pub fn attach(&mut self, id: u64) -> Result<(), String> {
        self.expect_ok(&Request::Attach { session: id })?;
        self.session = Some(id);
        Ok(())
    }

    /// Feeds one line of Verilog.
    ///
    /// # Errors
    ///
    /// Returns transport/protocol failures; rejected items come back as
    /// [`EvalResult::Error`].
    pub fn eval(&mut self, line: &str) -> Result<EvalResult, String> {
        self.eval_seq(line, 0)
    }

    /// [`eval`](Self::eval) with an explicit sequence number (see
    /// [`next_seq`](Self::next_seq)): the server journals the command
    /// before acknowledging, and re-sending the same `seq` after a
    /// timeout returns the stored reply instead of re-executing.
    ///
    /// # Errors
    ///
    /// Returns transport/protocol failures; rejected items come back as
    /// [`EvalResult::Error`].
    pub fn eval_seq(&mut self, line: &str, seq: u64) -> Result<EvalResult, String> {
        let reply = self.raw(&Request::Eval {
            session: self.session()?,
            line: line.to_string(),
            seq,
        })?;
        match reply.get("status").and_then(Json::as_str) {
            Some("evaluated") => Ok(EvalResult::Evaluated(string_array(&reply, "output"))),
            Some("incomplete") => Ok(EvalResult::Incomplete),
            Some("error") => Ok(EvalResult::Error(
                reply
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("eval failed")
                    .to_string(),
            )),
            _ => Err(format!("bad eval reply: {reply}")),
        }
    }

    /// Feeds a multi-line source, line by line.
    ///
    /// # Errors
    ///
    /// Returns the first rejected item's message.
    pub fn eval_all(&mut self, src: &str) -> Result<Vec<String>, String> {
        let mut output = Vec::new();
        for line in src.lines() {
            match self.eval(line)? {
                EvalResult::Evaluated(mut out) => output.append(&mut out),
                EvalResult::Incomplete => {}
                EvalResult::Error(e) => return Err(e),
            }
        }
        Ok(output)
    }

    /// Runs up to `ticks` virtual clock ticks.
    ///
    /// # Errors
    ///
    /// Returns the server's error message.
    pub fn run(&mut self, ticks: u64) -> Result<RunResult, String> {
        self.run_seq(ticks, 0)
    }

    /// [`run`](Self::run) with an explicit sequence number for
    /// exactly-once retry (see [`eval_seq`](Self::eval_seq)).
    ///
    /// # Errors
    ///
    /// Returns the server's error message.
    pub fn run_seq(&mut self, ticks: u64, seq: u64) -> Result<RunResult, String> {
        let reply = self.expect_ok(&Request::Run {
            session: self.session()?,
            ticks,
            seq,
        })?;
        Ok(RunResult {
            ticks: reply.get("ticks").and_then(Json::as_u64).unwrap_or(0),
            backpressure: reply
                .get("backpressure")
                .and_then(Json::as_bool)
                .unwrap_or(false),
            finished: reply
                .get("finished")
                .and_then(Json::as_bool)
                .unwrap_or(false),
            mode: reply
                .get("mode")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
            lease_held: reply
                .get("lease_held")
                .and_then(Json::as_bool)
                .unwrap_or(false),
        })
    }

    /// Drains queued `$display` output; returns `(lines, dropped)`.
    ///
    /// # Errors
    ///
    /// Returns the server's error message.
    pub fn drain(&mut self) -> Result<(Vec<String>, u64), String> {
        self.drain_seq(0)
    }

    /// [`drain`](Self::drain) with an explicit sequence number for
    /// exactly-once retry (see [`eval_seq`](Self::eval_seq)).
    ///
    /// # Errors
    ///
    /// Returns the server's error message.
    pub fn drain_seq(&mut self, seq: u64) -> Result<(Vec<String>, u64), String> {
        let reply = self.expect_ok(&Request::Drain {
            session: self.session()?,
            seq,
        })?;
        let dropped = reply.get("dropped").and_then(Json::as_u64).unwrap_or(0);
        Ok((string_array(&reply, "lines"), dropped))
    }

    /// Blocks until the in-flight compile resolves.
    ///
    /// # Errors
    ///
    /// Returns the server's error message.
    pub fn wait_compile(&mut self) -> Result<Json, String> {
        self.expect_ok(&Request::WaitCompile {
            session: self.session()?,
        })
    }

    /// Reads a named signal (`None` when the port does not exist yet).
    ///
    /// # Errors
    ///
    /// Returns the server's error message.
    pub fn probe(&mut self, port: &str) -> Result<Option<u64>, String> {
        let reply = self.expect_ok(&Request::Probe {
            session: self.session()?,
            port: port.to_string(),
        })?;
        Ok(reply.get("value").and_then(Json::as_u64))
    }

    /// Streams words into the session's input FIFO; returns how many fit.
    ///
    /// # Errors
    ///
    /// Returns the server's error message.
    pub fn fifo_push(&mut self, width: u64, data: &[u64]) -> Result<u64, String> {
        self.fifo_push_seq(width, data, 0)
    }

    /// [`fifo_push`](Self::fifo_push) with an explicit sequence number
    /// for exactly-once retry (see [`eval_seq`](Self::eval_seq)).
    ///
    /// # Errors
    ///
    /// Returns the server's error message.
    pub fn fifo_push_seq(&mut self, width: u64, data: &[u64], seq: u64) -> Result<u64, String> {
        let reply = self.expect_ok(&Request::Fifo {
            session: self.session()?,
            width,
            data: data.to_vec(),
            seq,
        })?;
        Ok(reply.get("pushed").and_then(Json::as_u64).unwrap_or(0))
    }

    /// This session's statistics.
    ///
    /// # Errors
    ///
    /// Returns the server's error message.
    pub fn stats(&mut self) -> Result<Json, String> {
        self.expect_ok(&Request::Stats {
            session: Some(self.session()?),
        })
    }

    /// Server-wide statistics.
    ///
    /// # Errors
    ///
    /// Returns the server's error message.
    pub fn server_stats(&mut self) -> Result<Json, String> {
        self.expect_ok(&Request::Stats { session: None })
    }

    /// This session's Prometheus-style metrics exposition.
    ///
    /// # Errors
    ///
    /// Returns the server's error message.
    pub fn metrics(&mut self) -> Result<String, String> {
        let reply = self.expect_ok(&Request::Metrics {
            session: Some(self.session()?),
        })?;
        Ok(text_member(&reply))
    }

    /// The server-wide metrics exposition (all sessions merged).
    ///
    /// # Errors
    ///
    /// Returns the server's error message.
    pub fn server_metrics(&mut self) -> Result<String, String> {
        let reply = self.expect_ok(&Request::Metrics { session: None })?;
        Ok(text_member(&reply))
    }

    /// This session's trace as Chrome-trace JSONL, plus the ring's
    /// dropped-event count. `virtual_only` makes the export deterministic
    /// (virtual clock only, sorted).
    ///
    /// # Errors
    ///
    /// Returns the server's error message.
    pub fn trace_jsonl(&mut self, virtual_only: bool) -> Result<(String, u64), String> {
        let reply = self.expect_ok(&Request::Trace {
            session: Some(self.session()?),
            virtual_only,
        })?;
        let dropped = reply.get("dropped").and_then(Json::as_u64).unwrap_or(0);
        let trace = reply
            .get("trace")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string();
        Ok((trace, dropped))
    }

    /// This session's JIT lifecycle rendered as a human-readable timeline.
    ///
    /// # Errors
    ///
    /// Returns the server's error message.
    pub fn timeline(&mut self) -> Result<String, String> {
        let reply = self.expect_ok(&Request::Timeline {
            session: Some(self.session()?),
        })?;
        Ok(text_member(&reply))
    }

    /// The execution profile of this session's active engine.
    ///
    /// # Errors
    ///
    /// Returns the server's error message.
    pub fn profile(&mut self) -> Result<String, String> {
        let reply = self.expect_ok(&Request::Profile {
            session: self.session()?,
        })?;
        Ok(text_member(&reply))
    }

    /// Tunes this session's data-parallel knobs: advertised batch width
    /// and netlist-engine worker threads. `None` leaves a knob unchanged;
    /// the returned pair is the effective (clamped) `(batch_width,
    /// eval_threads)`.
    ///
    /// # Errors
    ///
    /// Returns the server's error message.
    pub fn configure(
        &mut self,
        batch_width: Option<u64>,
        eval_threads: Option<u64>,
    ) -> Result<(u64, u64), String> {
        let reply = self.expect_ok(&Request::Configure {
            session: self.session()?,
            batch_width,
            eval_threads,
        })?;
        let w = reply.get("batch_width").and_then(Json::as_u64).unwrap_or(1);
        let t = reply
            .get("eval_threads")
            .and_then(Json::as_u64)
            .unwrap_or(1);
        Ok((w, t))
    }

    /// Starts a VCD waveform dump into `path`. An empty `ports` list dumps
    /// the clock and every named wire port.
    ///
    /// # Errors
    ///
    /// Returns the server's error message.
    pub fn vcd_start(&mut self, path: &str, ports: &[&str]) -> Result<(), String> {
        self.expect_ok(&Request::Vcd {
            session: self.session()?,
            path: Some(path.to_string()),
            ports: ports.iter().map(|p| p.to_string()).collect(),
        })?;
        Ok(())
    }

    /// Stops the active VCD dump, returning its path if one was active.
    ///
    /// # Errors
    ///
    /// Returns the server's error message.
    pub fn vcd_stop(&mut self) -> Result<Option<String>, String> {
        let reply = self.expect_ok(&Request::Vcd {
            session: self.session()?,
            path: None,
            ports: Vec::new(),
        })?;
        Ok(reply.get("path").and_then(Json::as_str).map(str::to_string))
    }

    /// Tail-latency attribution: the server's recent slow requests with
    /// their dominant-phase breakdowns. `percentile` is `p50`, `p90`, or
    /// `p99`. Returns `(text, requests_considered, coverage)` where
    /// `coverage` is the named-phase fraction of the slowest request.
    ///
    /// # Errors
    ///
    /// Returns the server's error message.
    pub fn explain(&mut self, percentile: &str) -> Result<(String, u64, f64), String> {
        let reply = self.expect_ok(&Request::Explain {
            percentile: percentile.to_string(),
        })?;
        let requests = reply.get("requests").and_then(Json::as_u64).unwrap_or(0);
        let coverage = reply.get("coverage").and_then(Json::as_f64).unwrap_or(0.0);
        Ok((text_member(&reply), requests, coverage))
    }

    /// The top `n` tenants ranked by recent burn. Returns the rendered
    /// table and one JSON object per tenant (session, burn, meters).
    ///
    /// # Errors
    ///
    /// Returns the server's error message.
    pub fn server_top(&mut self, n: u64) -> Result<(String, Vec<Json>), String> {
        let reply = self.expect_ok(&Request::ServerTop { n })?;
        let tenants = reply
            .get("tenants")
            .and_then(Json::as_arr)
            .map(<[Json]>::to_vec)
            .unwrap_or_default();
        Ok((text_member(&reply), tenants))
    }

    /// Subscribes this session to a live telemetry stream (`metrics` or
    /// `events`). Frames arrive as JSON lines in the session's output
    /// queue — interleave [`drain`](Self::drain) with
    /// [`take_frames`](Self::take_frames) to separate them from
    /// `$display` output. `interval_ms = 0` cancels the stream's
    /// subscription. Returns whether a subscription is now active.
    ///
    /// # Errors
    ///
    /// Returns the server's error message.
    pub fn subscribe(&mut self, stream: &str, interval_ms: u64) -> Result<bool, String> {
        let reply = self.expect_ok(&Request::Subscribe {
            session: self.session()?,
            stream: stream.to_string(),
            interval_ms,
        })?;
        Ok(reply
            .get("subscribed")
            .and_then(Json::as_bool)
            .unwrap_or(false))
    }

    /// Splits drained output lines into telemetry frames and ordinary
    /// `$display` lines: `(frames, rest)`. A frame is a JSON object with
    /// a `"frame"` member (`metrics` or `events`).
    pub fn take_frames(lines: Vec<String>) -> (Vec<Json>, Vec<String>) {
        let mut frames = Vec::new();
        let mut rest = Vec::new();
        for line in lines {
            match Json::parse(&line) {
                Ok(v) if v.get("frame").and_then(Json::as_str).is_some() => frames.push(v),
                _ => rest.push(line),
            }
        }
        (frames, rest)
    }

    /// Asks the server to hibernate this session now (freeze it to an
    /// image and drop its runtime). Returns whether it actually froze —
    /// the server refuses, without error, in native mode or while a VCD
    /// dump is active. The session stays usable either way; the next
    /// command wakes it transparently.
    ///
    /// # Errors
    ///
    /// Returns the server's error message.
    pub fn hibernate(&mut self) -> Result<bool, String> {
        let reply = self.expect_ok(&Request::Hibernate {
            session: self.session()?,
        })?;
        Ok(reply
            .get("hibernated")
            .and_then(Json::as_bool)
            .unwrap_or(false))
    }

    /// Closes the session.
    ///
    /// # Errors
    ///
    /// Returns the server's error message.
    pub fn close(&mut self) -> Result<(), String> {
        let id = self.session()?;
        self.expect_ok(&Request::Close { session: id })?;
        self.session = None;
        Ok(())
    }
}

fn text_member(reply: &Json) -> String {
    reply
        .get("text")
        .and_then(Json::as_str)
        .unwrap_or_default()
        .to_string()
}

fn string_array(reply: &Json, key: &str) -> Vec<String> {
    reply
        .get(key)
        .and_then(Json::as_arr)
        .map(|a| {
            a.iter()
                .filter_map(|v| v.as_str().map(str::to_string))
                .collect()
        })
        .unwrap_or_default()
}
