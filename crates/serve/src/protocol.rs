//! The wire protocol: newline-delimited JSON request/reply pairs.
//!
//! Every request is one line holding a JSON object with a `cmd` member;
//! every reply is one line holding a JSON object with an `ok` member.
//! Session-scoped commands carry the session id explicitly, so a single
//! connection can multiplex several sessions and a reconnecting client
//! can re-attach to a live session by id.
//!
//! | `cmd`          | members                | reply                                        |
//! |----------------|------------------------|----------------------------------------------|
//! | `open`         |                        | `{ok, session, token}`                       |
//! | `attach`       | `session`              | `{ok}` (validates the id)                    |
//! | `resume`       | `session`, `token`     | `{ok, session, last_seq}` (after recovery)   |
//! | `eval`         | `session`, `line`      | `{ok, status, output[], error?}`             |
//! | `run`          | `session`, `ticks`     | `{ok, ticks, backpressure, mode, lease_held}`|
//! | `drain`        | `session`              | `{ok, lines[], dropped}`                     |
//! | `wait_compile` | `session`              | `{ok, mode, lease_held}`                     |
//! | `probe`        | `session`, `port`      | `{ok, value}` (null when absent)             |
//! | `fifo`         | `session`, `width`, `data[]` | `{ok, pushed}` (stops when full)       |
//! | `stats`        | `session?`             | session stats, or server stats when omitted  |
//! | `metrics`      | `session?`             | `{ok, text}` Prometheus exposition           |
//! | `trace`        | `session?`, `virtual_only?` | `{ok, trace, dropped}` Chrome-trace JSONL |
//! | `timeline`     | `session?`             | `{ok, text}` human-readable JIT timeline     |
//! | `profile`      | `session`              | `{ok, text}` engine execution profile        |
//! | `configure`    | `session`, `batch_width?`, `eval_threads?` | `{ok, batch_width, eval_threads}` |
//! | `vcd`          | `session`, `path?`, `ports?[]` | `{ok, active, path?}` start/stop dump |
//! | `hibernate`    | `session`              | `{ok, hibernated, bytes?, reason?}`          |
//! | `drain_server` |                        | `{ok, flushed, hibernated}` durable flush    |
//! | `explain`      | `percentile?`          | `{ok, text, requests, coverage}` tail-latency phase breakdown |
//! | `server_top`   | `n?`                   | `{ok, text, tenants[]}` tenants ranked by recent burn |
//! | `subscribe`    | `session`, `stream`, `interval_ms?` | `{ok, subscribed, stream}` live telemetry frames |
//! | `close`        | `session`              | `{ok}`                                       |
//!
//! The mutating session commands (`eval`, `run`, `drain`, `fifo`) accept
//! an optional `seq` member — a client-chosen, strictly increasing
//! sequence number (0 / absent = unsequenced). On a durable server the
//! command is journaled under that `seq` *before* the reply is released,
//! and re-sending the last acknowledged `seq` after a reconnect returns
//! the stored reply instead of executing twice — exactly-once delivery
//! across crashes. `resume` re-attaches to a session rehydrated by
//! crash recovery, proving ownership with the token `open` handed out;
//! its reply reports the last journaled `seq` so the client knows
//! whether its in-flight command was acknowledged.

use crate::json::Json;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Creates a session; the reply carries its id.
    Open,
    /// Validates that a session id is live (re-attach after reconnect).
    Attach { session: u64 },
    /// Re-attaches to a session rehydrated by crash recovery, proving
    /// ownership with the token `open` returned. The reply's `last_seq`
    /// is the highest journaled sequence number.
    Resume { session: u64, token: u64 },
    /// Feeds one line of Verilog to the session's REPL. `seq` (0 =
    /// unsequenced) enables exactly-once journaling and dedup.
    Eval {
        session: u64,
        line: String,
        seq: u64,
    },
    /// Runs up to `ticks` virtual clock ticks.
    Run { session: u64, ticks: u64, seq: u64 },
    /// Drains queued `$display` output.
    Drain { session: u64, seq: u64 },
    /// Blocks until the session's in-flight compile resolves.
    WaitCompile { session: u64 },
    /// Reads a named signal.
    Probe { session: u64, port: String },
    /// Streams words into the session board's input FIFO.
    Fifo {
        session: u64,
        width: u64,
        data: Vec<u64>,
        seq: u64,
    },
    /// Session statistics, or server-wide statistics when `session` is
    /// `None`.
    Stats { session: Option<u64> },
    /// Prometheus-style text exposition: one session's full metric set,
    /// or the server-wide merge (every session's registry summed, plus
    /// server gauges) when `session` is `None`.
    Metrics { session: Option<u64> },
    /// Exports the trace ring as Chrome-trace JSONL, filtered to one
    /// session's track (or every track when `session` is `None`).
    /// `virtual_only` redacts host clocks and sorts by virtual time, so
    /// the output is deterministic for a given seed and fault plan.
    Trace {
        session: Option<u64>,
        virtual_only: bool,
    },
    /// Renders the recorded JIT lifecycle as a human-readable timeline,
    /// filtered like `Trace`.
    Timeline { session: Option<u64> },
    /// Execution profile of the session's active main engine (bytecode
    /// process/opcode counts, or netlist level/kernel/net activity).
    Profile { session: u64 },
    /// Tunes the session's data-parallel knobs: the advertised batch
    /// width for lane-parallel drivers and the netlist engine's worker
    /// thread count. Omitted members are left unchanged; the reply
    /// echoes the effective (clamped) values.
    Configure {
        session: u64,
        batch_width: Option<u64>,
        eval_threads: Option<u64>,
    },
    /// Starts (`path` set) or stops (`path` absent) a VCD waveform dump
    /// of the session's main-engine ports. An empty `ports` list dumps
    /// the clock plus every named wire port.
    Vcd {
        session: u64,
        path: Option<String>,
        ports: Vec<String>,
    },
    /// Freezes an idle session to a hibernation image and drops its
    /// runtime (releasing its fabric lease). The next command wakes it
    /// transparently; this just forces the transition the sweeper would
    /// make on its own. Refused (with a `reason`) in native mode or while
    /// a VCD dump is active.
    Hibernate { session: u64 },
    /// Durably flushes every session (live ones are hibernated, journals
    /// are compacted, counter baselines snapshotted) ahead of a graceful
    /// restart. The reply counts `flushed` journals and `hibernated`
    /// runtimes.
    DrainServer,
    /// Tail-latency attribution over the server's recent-request ring:
    /// which named phases (queue, wake, compile, eval, flush, journal)
    /// dominate wall time at and above the given percentile (`"p50"` or
    /// `"p99"`, default `"p99"`).
    Explain { percentile: String },
    /// The top `n` tenants ranked by recent metered burn (ticks,
    /// compile time, fabric-lease time, journal and output bytes).
    ServerTop { n: u64 },
    /// Subscribes the session's output queue to periodic telemetry
    /// frames: `stream` is `"metrics"` (meter snapshots) or `"events"`
    /// (incremental trace events). `interval_ms = 0` cancels the
    /// stream's subscription. Frames are newline-JSON objects with a
    /// `frame` member, delivered through the bounded output queue
    /// (oldest dropped and accounted under backpressure).
    Subscribe {
        session: u64,
        stream: String,
        interval_ms: u64,
    },
    /// Closes a session, releasing its fabric lease.
    Close { session: u64 },
}

impl Request {
    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed JSON, an unknown
    /// `cmd`, or missing/mistyped members.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = Json::parse(line)?;
        let cmd = v
            .get("cmd")
            .and_then(Json::as_str)
            .ok_or("missing `cmd` member")?;
        let session = || {
            v.get("session")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("`{cmd}` needs a numeric `session`"))
        };
        let seq = || v.get("seq").and_then(Json::as_u64).unwrap_or(0);
        match cmd {
            "open" => Ok(Request::Open),
            "attach" => Ok(Request::Attach {
                session: session()?,
            }),
            "resume" => Ok(Request::Resume {
                session: session()?,
                token: v
                    .get("token")
                    .and_then(Json::as_u64)
                    .ok_or("`resume` needs a numeric `token`")?,
            }),
            "eval" => Ok(Request::Eval {
                session: session()?,
                line: v
                    .get("line")
                    .and_then(Json::as_str)
                    .ok_or("`eval` needs a string `line`")?
                    .to_string(),
                seq: seq(),
            }),
            "run" => Ok(Request::Run {
                session: session()?,
                ticks: v
                    .get("ticks")
                    .and_then(Json::as_u64)
                    .ok_or("`run` needs a numeric `ticks`")?,
                seq: seq(),
            }),
            "drain" => Ok(Request::Drain {
                session: session()?,
                seq: seq(),
            }),
            "wait_compile" => Ok(Request::WaitCompile {
                session: session()?,
            }),
            "probe" => Ok(Request::Probe {
                session: session()?,
                port: v
                    .get("port")
                    .and_then(Json::as_str)
                    .ok_or("`probe` needs a string `port`")?
                    .to_string(),
            }),
            "fifo" => Ok(Request::Fifo {
                session: session()?,
                width: v
                    .get("width")
                    .and_then(Json::as_u64)
                    .ok_or("`fifo` needs a numeric `width`")?,
                data: v
                    .get("data")
                    .and_then(Json::as_arr)
                    .ok_or("`fifo` needs a `data` array")?
                    .iter()
                    .map(|x| {
                        x.as_u64()
                            .ok_or("`fifo` data must be non-negative integers")
                    })
                    .collect::<Result<Vec<u64>, _>>()?,
                seq: seq(),
            }),
            "stats" => Ok(Request::Stats {
                session: v.get("session").and_then(Json::as_u64),
            }),
            "metrics" => Ok(Request::Metrics {
                session: v.get("session").and_then(Json::as_u64),
            }),
            "trace" => Ok(Request::Trace {
                session: v.get("session").and_then(Json::as_u64),
                virtual_only: v
                    .get("virtual_only")
                    .and_then(Json::as_bool)
                    .unwrap_or(false),
            }),
            "timeline" => Ok(Request::Timeline {
                session: v.get("session").and_then(Json::as_u64),
            }),
            "profile" => Ok(Request::Profile {
                session: session()?,
            }),
            "configure" => Ok(Request::Configure {
                session: session()?,
                batch_width: v.get("batch_width").and_then(Json::as_u64),
                eval_threads: v.get("eval_threads").and_then(Json::as_u64),
            }),
            "vcd" => Ok(Request::Vcd {
                session: session()?,
                path: v.get("path").and_then(Json::as_str).map(str::to_string),
                ports: match v.get("ports") {
                    None => Vec::new(),
                    Some(arr) => arr
                        .as_arr()
                        .ok_or("`vcd` ports must be an array of strings")?
                        .iter()
                        .map(|x| {
                            x.as_str()
                                .map(str::to_string)
                                .ok_or("`vcd` ports must be an array of strings")
                        })
                        .collect::<Result<Vec<String>, _>>()?,
                },
            }),
            "hibernate" => Ok(Request::Hibernate {
                session: session()?,
            }),
            "drain_server" => Ok(Request::DrainServer),
            // `server-top` is accepted as an operator-friendly alias.
            "explain" => Ok(Request::Explain {
                percentile: v
                    .get("percentile")
                    .and_then(Json::as_str)
                    .unwrap_or("p99")
                    .to_string(),
            }),
            "server_top" | "server-top" => Ok(Request::ServerTop {
                n: v.get("n").and_then(Json::as_u64).unwrap_or(10),
            }),
            "subscribe" => Ok(Request::Subscribe {
                session: session()?,
                stream: v
                    .get("stream")
                    .and_then(Json::as_str)
                    .ok_or("`subscribe` needs a string `stream`")?
                    .to_string(),
                interval_ms: v.get("interval_ms").and_then(Json::as_u64).unwrap_or(100),
            }),
            "close" => Ok(Request::Close {
                session: session()?,
            }),
            other => Err(format!("unknown cmd `{other}`")),
        }
    }

    /// Serializes the request to its wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        let json = match self {
            Request::Open => Json::obj([("cmd", "open".into())]),
            Request::Attach { session } => {
                Json::obj([("cmd", "attach".into()), ("session", (*session).into())])
            }
            Request::Resume { session, token } => Json::obj([
                ("cmd", "resume".into()),
                ("session", (*session).into()),
                ("token", (*token).into()),
            ]),
            Request::Eval { session, line, seq } => {
                let mut pairs = vec![
                    ("cmd", Json::from("eval")),
                    ("session", (*session).into()),
                    ("line", line.as_str().into()),
                ];
                if *seq > 0 {
                    pairs.push(("seq", (*seq).into()));
                }
                Json::obj(pairs)
            }
            Request::Run {
                session,
                ticks,
                seq,
            } => {
                let mut pairs = vec![
                    ("cmd", Json::from("run")),
                    ("session", (*session).into()),
                    ("ticks", (*ticks).into()),
                ];
                if *seq > 0 {
                    pairs.push(("seq", (*seq).into()));
                }
                Json::obj(pairs)
            }
            Request::Drain { session, seq } => {
                let mut pairs = vec![("cmd", Json::from("drain")), ("session", (*session).into())];
                if *seq > 0 {
                    pairs.push(("seq", (*seq).into()));
                }
                Json::obj(pairs)
            }
            Request::WaitCompile { session } => Json::obj([
                ("cmd", "wait_compile".into()),
                ("session", (*session).into()),
            ]),
            Request::Probe { session, port } => Json::obj([
                ("cmd", "probe".into()),
                ("session", (*session).into()),
                ("port", port.as_str().into()),
            ]),
            Request::Fifo {
                session,
                width,
                data,
                seq,
            } => {
                let mut pairs = vec![
                    ("cmd", Json::from("fifo")),
                    ("session", (*session).into()),
                    ("width", (*width).into()),
                    (
                        "data",
                        Json::Arr(data.iter().map(|&x| Json::from(x)).collect()),
                    ),
                ];
                if *seq > 0 {
                    pairs.push(("seq", (*seq).into()));
                }
                Json::obj(pairs)
            }
            Request::Stats { session } => match session {
                Some(s) => Json::obj([("cmd", "stats".into()), ("session", (*s).into())]),
                None => Json::obj([("cmd", "stats".into())]),
            },
            Request::Metrics { session } => match session {
                Some(s) => Json::obj([("cmd", "metrics".into()), ("session", (*s).into())]),
                None => Json::obj([("cmd", "metrics".into())]),
            },
            Request::Trace {
                session,
                virtual_only,
            } => {
                let mut pairs = vec![("cmd", Json::from("trace"))];
                if let Some(s) = session {
                    pairs.push(("session", (*s).into()));
                }
                pairs.push(("virtual_only", (*virtual_only).into()));
                Json::obj(pairs)
            }
            Request::Timeline { session } => match session {
                Some(s) => Json::obj([("cmd", "timeline".into()), ("session", (*s).into())]),
                None => Json::obj([("cmd", "timeline".into())]),
            },
            Request::Profile { session } => {
                Json::obj([("cmd", "profile".into()), ("session", (*session).into())])
            }
            Request::Configure {
                session,
                batch_width,
                eval_threads,
            } => {
                let mut pairs = vec![
                    ("cmd", Json::from("configure")),
                    ("session", (*session).into()),
                ];
                if let Some(w) = batch_width {
                    pairs.push(("batch_width", (*w).into()));
                }
                if let Some(t) = eval_threads {
                    pairs.push(("eval_threads", (*t).into()));
                }
                Json::obj(pairs)
            }
            Request::Vcd {
                session,
                path,
                ports,
            } => {
                let mut pairs = vec![("cmd", Json::from("vcd")), ("session", (*session).into())];
                if let Some(p) = path {
                    pairs.push(("path", p.as_str().into()));
                }
                pairs.push((
                    "ports",
                    Json::Arr(ports.iter().map(|p| Json::from(p.as_str())).collect()),
                ));
                Json::obj(pairs)
            }
            Request::Hibernate { session } => {
                Json::obj([("cmd", "hibernate".into()), ("session", (*session).into())])
            }
            Request::DrainServer => Json::obj([("cmd", "drain_server".into())]),
            Request::Explain { percentile } => Json::obj([
                ("cmd", "explain".into()),
                ("percentile", percentile.as_str().into()),
            ]),
            Request::ServerTop { n } => {
                Json::obj([("cmd", "server_top".into()), ("n", (*n).into())])
            }
            Request::Subscribe {
                session,
                stream,
                interval_ms,
            } => Json::obj([
                ("cmd", "subscribe".into()),
                ("session", (*session).into()),
                ("stream", stream.as_str().into()),
                ("interval_ms", (*interval_ms).into()),
            ]),
            Request::Close { session } => {
                Json::obj([("cmd", "close".into()), ("session", (*session).into())])
            }
        };
        json.to_string()
    }
}

/// An `{ok: true, ...}` reply.
pub fn ok(extra: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    let mut pairs = vec![("ok", Json::Bool(true))];
    pairs.extend(extra);
    Json::obj(pairs)
}

/// An `{ok: false, error: ...}` reply.
pub fn err(message: impl Into<String>) -> Json {
    Json::obj([
        ("ok", Json::Bool(false)),
        ("error", Json::Str(message.into())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_lines_round_trip() {
        let requests = [
            Request::Open,
            Request::Attach { session: 7 },
            Request::Resume {
                session: 7,
                token: 0xdead_beef_cafe,
            },
            Request::Eval {
                session: 1,
                line: "assign led.val = \"odd\\nstring\";".to_string(),
                seq: 0,
            },
            Request::Eval {
                session: 1,
                line: "reg r = 0;".to_string(),
                seq: 41,
            },
            Request::Run {
                session: 2,
                ticks: 1_000_000,
                seq: 0,
            },
            Request::Run {
                session: 2,
                ticks: 64,
                seq: 42,
            },
            Request::Drain { session: 3, seq: 0 },
            Request::Drain {
                session: 3,
                seq: 43,
            },
            Request::WaitCompile { session: 4 },
            Request::Probe {
                session: 5,
                port: "cnt".to_string(),
            },
            Request::Fifo {
                session: 5,
                width: 8,
                data: vec![71, 69, 84, 32],
                seq: 0,
            },
            Request::Fifo {
                session: 5,
                width: 16,
                data: vec![9],
                seq: 44,
            },
            Request::Stats { session: None },
            Request::Stats { session: Some(6) },
            Request::Metrics { session: None },
            Request::Metrics { session: Some(2) },
            Request::Trace {
                session: Some(1),
                virtual_only: true,
            },
            Request::Trace {
                session: None,
                virtual_only: false,
            },
            Request::Timeline { session: Some(3) },
            Request::Timeline { session: None },
            Request::Profile { session: 4 },
            Request::Configure {
                session: 4,
                batch_width: Some(64),
                eval_threads: Some(4),
            },
            Request::Configure {
                session: 4,
                batch_width: None,
                eval_threads: None,
            },
            Request::Vcd {
                session: 5,
                path: Some("/tmp/wave.vcd".to_string()),
                ports: vec!["clk".to_string(), "cnt".to_string()],
            },
            Request::Vcd {
                session: 5,
                path: None,
                ports: vec![],
            },
            Request::Hibernate { session: 6 },
            Request::DrainServer,
            Request::Explain {
                percentile: "p99".to_string(),
            },
            Request::ServerTop { n: 5 },
            Request::Subscribe {
                session: 7,
                stream: "metrics".to_string(),
                interval_ms: 50,
            },
            Request::Close { session: 8 },
        ];
        for r in requests {
            let line = r.to_line();
            assert!(!line.contains('\n'), "one request per line: {line}");
            assert_eq!(Request::parse(&line).unwrap(), r, "through `{line}`");
        }
    }

    #[test]
    fn parse_rejects_malformed_requests() {
        assert!(Request::parse("not json").is_err());
        assert!(Request::parse("{}").is_err());
        assert!(Request::parse("{\"cmd\":\"warp\"}").is_err());
        assert!(Request::parse("{\"cmd\":\"eval\",\"session\":1}").is_err());
        assert!(Request::parse("{\"cmd\":\"run\",\"session\":1,\"ticks\":\"x\"}").is_err());
        assert!(Request::parse("{\"cmd\":\"eval\",\"line\":\"x;\"}").is_err());
        assert!(Request::parse("{\"cmd\":\"resume\",\"session\":1}").is_err());
    }

    #[test]
    fn omitted_seq_parses_as_unsequenced() {
        let r = Request::parse("{\"cmd\":\"run\",\"session\":1,\"ticks\":8}").unwrap();
        assert_eq!(
            r,
            Request::Run {
                session: 1,
                ticks: 8,
                seq: 0
            }
        );
        // And an unsequenced request does not emit a `seq` member.
        assert!(!r.to_line().contains("seq"));
    }

    #[test]
    fn reply_builders() {
        let r = ok([("session", 3u64.into())]);
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(r.get("session").and_then(Json::as_u64), Some(3));
        let e = err("nope");
        assert_eq!(e.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(e.get("error").and_then(Json::as_str), Some("nope"));
    }
}
