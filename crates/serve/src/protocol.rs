//! The wire protocol: newline-delimited JSON request/reply pairs.
//!
//! Every request is one line holding a JSON object with a `cmd` member;
//! every reply is one line holding a JSON object with an `ok` member.
//! Session-scoped commands carry the session id explicitly, so a single
//! connection can multiplex several sessions and a reconnecting client
//! can re-attach to a live session by id.
//!
//! | `cmd`          | members                | reply                                        |
//! |----------------|------------------------|----------------------------------------------|
//! | `open`         |                        | `{ok, session}`                              |
//! | `attach`       | `session`              | `{ok}` (validates the id)                    |
//! | `eval`         | `session`, `line`      | `{ok, status, output[], error?}`             |
//! | `run`          | `session`, `ticks`     | `{ok, ticks, backpressure, mode, lease_held}`|
//! | `drain`        | `session`              | `{ok, lines[], dropped}`                     |
//! | `wait_compile` | `session`              | `{ok, mode, lease_held}`                     |
//! | `probe`        | `session`, `port`      | `{ok, value}` (null when absent)             |
//! | `fifo`         | `session`, `width`, `data[]` | `{ok, pushed}` (stops when full)       |
//! | `stats`        | `session?`             | session stats, or server stats when omitted  |
//! | `close`        | `session`              | `{ok}`                                       |

use crate::json::Json;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Creates a session; the reply carries its id.
    Open,
    /// Validates that a session id is live (re-attach after reconnect).
    Attach { session: u64 },
    /// Feeds one line of Verilog to the session's REPL.
    Eval { session: u64, line: String },
    /// Runs up to `ticks` virtual clock ticks.
    Run { session: u64, ticks: u64 },
    /// Drains queued `$display` output.
    Drain { session: u64 },
    /// Blocks until the session's in-flight compile resolves.
    WaitCompile { session: u64 },
    /// Reads a named signal.
    Probe { session: u64, port: String },
    /// Streams words into the session board's input FIFO.
    Fifo {
        session: u64,
        width: u64,
        data: Vec<u64>,
    },
    /// Session statistics, or server-wide statistics when `session` is
    /// `None`.
    Stats { session: Option<u64> },
    /// Closes a session, releasing its fabric lease.
    Close { session: u64 },
}

impl Request {
    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed JSON, an unknown
    /// `cmd`, or missing/mistyped members.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = Json::parse(line)?;
        let cmd = v
            .get("cmd")
            .and_then(Json::as_str)
            .ok_or("missing `cmd` member")?;
        let session = || {
            v.get("session")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("`{cmd}` needs a numeric `session`"))
        };
        match cmd {
            "open" => Ok(Request::Open),
            "attach" => Ok(Request::Attach {
                session: session()?,
            }),
            "eval" => Ok(Request::Eval {
                session: session()?,
                line: v
                    .get("line")
                    .and_then(Json::as_str)
                    .ok_or("`eval` needs a string `line`")?
                    .to_string(),
            }),
            "run" => Ok(Request::Run {
                session: session()?,
                ticks: v
                    .get("ticks")
                    .and_then(Json::as_u64)
                    .ok_or("`run` needs a numeric `ticks`")?,
            }),
            "drain" => Ok(Request::Drain {
                session: session()?,
            }),
            "wait_compile" => Ok(Request::WaitCompile {
                session: session()?,
            }),
            "probe" => Ok(Request::Probe {
                session: session()?,
                port: v
                    .get("port")
                    .and_then(Json::as_str)
                    .ok_or("`probe` needs a string `port`")?
                    .to_string(),
            }),
            "fifo" => Ok(Request::Fifo {
                session: session()?,
                width: v
                    .get("width")
                    .and_then(Json::as_u64)
                    .ok_or("`fifo` needs a numeric `width`")?,
                data: v
                    .get("data")
                    .and_then(Json::as_arr)
                    .ok_or("`fifo` needs a `data` array")?
                    .iter()
                    .map(|x| {
                        x.as_u64()
                            .ok_or("`fifo` data must be non-negative integers")
                    })
                    .collect::<Result<Vec<u64>, _>>()?,
            }),
            "stats" => Ok(Request::Stats {
                session: v.get("session").and_then(Json::as_u64),
            }),
            "close" => Ok(Request::Close {
                session: session()?,
            }),
            other => Err(format!("unknown cmd `{other}`")),
        }
    }

    /// Serializes the request to its wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        let json = match self {
            Request::Open => Json::obj([("cmd", "open".into())]),
            Request::Attach { session } => {
                Json::obj([("cmd", "attach".into()), ("session", (*session).into())])
            }
            Request::Eval { session, line } => Json::obj([
                ("cmd", "eval".into()),
                ("session", (*session).into()),
                ("line", line.as_str().into()),
            ]),
            Request::Run { session, ticks } => Json::obj([
                ("cmd", "run".into()),
                ("session", (*session).into()),
                ("ticks", (*ticks).into()),
            ]),
            Request::Drain { session } => {
                Json::obj([("cmd", "drain".into()), ("session", (*session).into())])
            }
            Request::WaitCompile { session } => Json::obj([
                ("cmd", "wait_compile".into()),
                ("session", (*session).into()),
            ]),
            Request::Probe { session, port } => Json::obj([
                ("cmd", "probe".into()),
                ("session", (*session).into()),
                ("port", port.as_str().into()),
            ]),
            Request::Fifo {
                session,
                width,
                data,
            } => Json::obj([
                ("cmd", "fifo".into()),
                ("session", (*session).into()),
                ("width", (*width).into()),
                (
                    "data",
                    Json::Arr(data.iter().map(|&x| Json::from(x)).collect()),
                ),
            ]),
            Request::Stats { session } => match session {
                Some(s) => Json::obj([("cmd", "stats".into()), ("session", (*s).into())]),
                None => Json::obj([("cmd", "stats".into())]),
            },
            Request::Close { session } => {
                Json::obj([("cmd", "close".into()), ("session", (*session).into())])
            }
        };
        json.to_string()
    }
}

/// An `{ok: true, ...}` reply.
pub fn ok(extra: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    let mut pairs = vec![("ok", Json::Bool(true))];
    pairs.extend(extra);
    Json::obj(pairs)
}

/// An `{ok: false, error: ...}` reply.
pub fn err(message: impl Into<String>) -> Json {
    Json::obj([
        ("ok", Json::Bool(false)),
        ("error", Json::Str(message.into())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_lines_round_trip() {
        let requests = [
            Request::Open,
            Request::Attach { session: 7 },
            Request::Eval {
                session: 1,
                line: "assign led.val = \"odd\\nstring\";".to_string(),
            },
            Request::Run {
                session: 2,
                ticks: 1_000_000,
            },
            Request::Drain { session: 3 },
            Request::WaitCompile { session: 4 },
            Request::Probe {
                session: 5,
                port: "cnt".to_string(),
            },
            Request::Fifo {
                session: 5,
                width: 8,
                data: vec![71, 69, 84, 32],
            },
            Request::Stats { session: None },
            Request::Stats { session: Some(6) },
            Request::Close { session: 8 },
        ];
        for r in requests {
            let line = r.to_line();
            assert!(!line.contains('\n'), "one request per line: {line}");
            assert_eq!(Request::parse(&line).unwrap(), r, "through `{line}`");
        }
    }

    #[test]
    fn parse_rejects_malformed_requests() {
        assert!(Request::parse("not json").is_err());
        assert!(Request::parse("{}").is_err());
        assert!(Request::parse("{\"cmd\":\"warp\"}").is_err());
        assert!(Request::parse("{\"cmd\":\"eval\",\"session\":1}").is_err());
        assert!(Request::parse("{\"cmd\":\"run\",\"session\":1,\"ticks\":\"x\"}").is_err());
        assert!(Request::parse("{\"cmd\":\"eval\",\"line\":\"x;\"}").is_err());
    }

    #[test]
    fn reply_builders() {
        let r = ok([("session", 3u64.into())]);
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(r.get("session").and_then(Json::as_u64), Some(3));
        let e = err("nope");
        assert_eq!(e.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(e.get("error").and_then(Json::as_str), Some("nope"));
    }
}
