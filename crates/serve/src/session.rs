//! The session layer: one [`Runtime`] per session, hosted on a worker
//! thread pool, sharing a virtual-FPGA [`Fleet`] and one background
//! compile pool across all tenants.
//!
//! Scheduling is sharded: each worker owns a run-queue shard, sessions are
//! pinned to a home shard by id hash, and an idle worker pops locally,
//! then steals from a random victim shard, then parks. A session is marked
//! runnable at most once at a time (`scheduled` flag), and the worker that
//! claims it drains its whole command queue through one REPL checkout —
//! so a burst of N commands costs one scheduling round-trip, not N.
//!
//! A session's REPL is a checked-out resource: exactly one worker holds it
//! at a time, drains the session's command queue through it, and puts it
//! back. Commands are request/reply (the submitting connection blocks on a
//! reply channel), except the internal `Service` pump which lets the
//! sweeper advance compile/lease state machines of *idle* sessions — a
//! revocation must not wait for the victim's next command.
//!
//! Idle sessions do not keep a live `Runtime` at all: the sweeper (or an
//! explicit `hibernate` command) freezes them through the checkpoint
//! machinery into a [`HibernateImage`] held in a bounded in-memory store
//! that spills to disk, and the runtime — engines, compiler handle, fabric
//! lease — is dropped. The next command wakes the session transparently by
//! replaying its append-only source and restoring the checkpointed engine
//! state. One process can hold tens of thousands of mostly-idle tenants
//! this way. New sessions start dormant (an empty image), so `open` is a
//! map insert, not an engine build.
//!
//! `$display` output produced by `run` is buffered in a bounded per-session
//! queue. When the queue fills, `run` stops early (backpressure: the reply
//! says so and the client drains before continuing); a single burst that
//! overflows the bound drops the *oldest* lines and counts them — per
//! session (`stats`) and server-wide (`output_dropped` in `server-stats`
//! and `serve_output_dropped_total` in the metrics exposition).

use crate::json::Json;
use crate::protocol::{err, ok, Request};
use cascade_core::{
    panic_message, CascadeError, CompilePool, CompileQueue, ExecMode, HibernateImage, JitConfig,
    Repl, ReplResponse, Runtime,
};
use cascade_durable::{codec, quarantine, BitstreamStore, DurableFs};
use cascade_fpga::{ArbiterConfig, Board, Fleet};
use cascade_trace::{
    export_jsonl, expose, merge, render_timeline, Arg, Histogram, MetricSnapshot, Registry,
    RequestCtx, SnapValue, SpanRef, TimeMode, TraceEvent, TraceSink, DEFAULT_RING_CAPACITY,
    LATENCY_BUCKETS_S,
};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Poison-tolerant locking: a panic contained on one worker must not
/// poison shared state for every other session. All data guarded by these
/// mutexes stays consistent across a panic boundary (queues of owned
/// values, timestamps, counters), so recovering the guard is safe.
trait LockExt<T> {
    fn lock_unpoisoned(&self) -> MutexGuard<'_, T>;
}

impl<T> LockExt<T> for Mutex<T> {
    fn lock_unpoisoned(&self) -> MutexGuard<'_, T> {
        self.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Ticks per scheduling quantum: a long `run` is sliced so output flushes
/// into the session queue (and backpressure is observed) at this grain.
const RUN_CHUNK: u64 = 128;

/// How long a connection waits for its command's reply before giving up.
const REPLY_TIMEOUT: Duration = Duration::from_secs(60);

/// Parked workers re-check their shards at least this often — a safety
/// net under the notify protocol, and the shutdown latency bound.
const PARK_TIMEOUT: Duration = Duration::from_millis(50);

/// Completed requests kept in the server's recent ring for `explain`.
const RECENT_CAP: usize = 512;

/// Events per `subscribe events` frame (bounds frame size, not delivery:
/// the next due frame resumes from the last delivered sequence number).
const EVENTS_FRAME_CAP: usize = 256;

/// Capacity of the always-on crash flight recorder ring.
const FLIGHT_RING: usize = 2048;

// Named wall-time phases a request's latency decomposes into. `other` is
// the residual (total minus every named phase): lock handoffs, channel
// sends, scheduling gaps. Fleet lease waits surface inside `compile` —
// `wait_compile` is where a session blocks for promotion resources.
const PH_QUEUE: usize = 0;
const PH_WAKE: usize = 1;
const PH_COMPILE: usize = 2;
const PH_EVAL_SW: usize = 3;
const PH_EVAL_HW: usize = 4;
const PH_FLUSH: usize = 5;
const PH_JOURNAL: usize = 6;
const PH_OTHER: usize = 7;
const PHASE_NAMES: [&str; 8] = [
    "queue", "wake", "compile", "eval_sw", "eval_hw", "flush", "journal", "other",
];

/// Wall-time accumulator for one request, indexed by the `PH_*` phases.
#[derive(Default)]
struct PhaseAcc {
    ns: [u64; 8],
}

impl PhaseAcc {
    fn add(&mut self, phase: usize, d: Duration) {
        self.ns[phase] += d.as_nanos() as u64;
    }
}

/// Causal metadata minted when a user command is submitted: the request
/// context every downstream span attributes to, the enqueue stamp the
/// queue phase is measured from, and the protocol name for the root span.
struct ReqMeta {
    ctx: RequestCtx,
    enq: Instant,
    name: &'static str,
}

/// A queue entry: the command plus its request metadata. Internal traffic
/// (sweeper pumps, reaper closes, replays) carries no metadata and is
/// invisible to request tracing and tail attribution.
struct Queued {
    cmd: Cmd,
    meta: Option<ReqMeta>,
}

impl Queued {
    fn internal(cmd: Cmd) -> Queued {
        Queued { cmd, meta: None }
    }
}

/// One completed request in the recent ring.
#[derive(Clone)]
struct ReqRecord {
    req: u64,
    tenant: u64,
    name: &'static str,
    total_ns: u64,
    phase_ns: [u64; 8],
}

/// Monotone per-session resource meters. Counters only ever grow for the
/// life of the tenant — they survive hibernation (the `Session` object
/// persists) and restarts (checkpoints carry them; see `REC_CKPT`).
#[derive(Default)]
struct Meter {
    /// Virtual clock ticks executed for this tenant.
    ticks: AtomicU64,
    /// Wall nanoseconds spent in the compile phase on this tenant's
    /// behalf (includes lease waits inside `wait-compile`).
    compile_ns: AtomicU64,
    /// Bytes appended to the tenant's write-ahead journal.
    journal_bytes: AtomicU64,
    /// Bytes of `$display` output and telemetry frames queued.
    output_bytes: AtomicU64,
    /// Fabric lease-microseconds from previous lifetimes (recovery seed);
    /// the live fleet meter is added on read.
    lease_base_us: AtomicU64,
    /// EWMA of recent burn (f64 bits), settled by the sweeper.
    burn: AtomicU64,
    /// The weighted score at the last sweep (f64 bits).
    last_score: AtomicU64,
}

/// What a `subscribe` delivers.
#[derive(Clone, Copy, PartialEq, Eq)]
enum SubStream {
    Metrics,
    Events,
}

/// One live telemetry subscription on a session. Frames are pushed into
/// the session's bounded output queue by the sweeper; a slow consumer
/// sheds oldest-first like any other output (drops are accounted).
struct Subscription {
    stream: SubStream,
    interval: Duration,
    next_at: Instant,
    /// High-water mark of delivered trace events (`events` stream).
    last_seq: u64,
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Virtual fabrics in the shared fleet (0 = software-only serving).
    pub fabrics: usize,
    /// Lease arbitration tuning: hysteresis margin, modeled revocation
    /// cost, minimum tenure, dwell, and heat decay.
    pub arbiter: ArbiterConfig,
    /// Background toolchain worker threads shared by all sessions.
    pub compile_workers: usize,
    /// Bound on the pending compile-job queue (oldest jobs are shed).
    pub compile_queue_capacity: usize,
    /// Bound on the shared bitstream cache (entries, LRU).
    pub compile_cache_capacity: usize,
    /// Session executor threads (one run-queue shard each).
    pub workers: usize,
    /// Bound on each session's `$display` output queue (lines).
    pub output_capacity: usize,
    /// Real seconds of inactivity after which a session is reaped.
    pub idle_timeout_s: f64,
    /// Real seconds of inactivity after which a live session is
    /// hibernated (runtime dropped, state frozen to an image). `0`
    /// disables idle-triggered hibernation; the live-count bound below
    /// still applies.
    pub hibernate_after_s: f64,
    /// Bound on concurrently live runtimes; the sweeper hibernates the
    /// most-idle sessions to stay under it. `0` = unbounded.
    pub max_live_sessions: usize,
    /// In-memory budget for hibernation images; images past it spill to
    /// disk under `hibernate_spill_dir`.
    pub hibernate_mem_bytes: usize,
    /// Directory for spilled images. `None` = a per-server directory
    /// under the system temp dir, removed on shutdown. **Retention
    /// contract:** an explicitly configured directory is *never* removed
    /// by the server — its spilled images survive `Server` drop and the
    /// operator owns cleanup. (Durable recovery does not depend on spill
    /// files: every hibernated session's image also lives in its
    /// compacted journal.)
    pub hibernate_spill_dir: Option<String>,
    /// Root directory for crash-safe durable state: write-ahead session
    /// journals under `sessions/`, the persistent content-addressed
    /// bitstream store under `bitstreams/`, and counter baselines in
    /// `server.meta`. `None` disables durability — sessions and compiled
    /// bitstreams die with the process. The directory is never removed
    /// by the server; [`Server::recover`] rebuilds from it after a crash
    /// or a graceful [`Server::drain`].
    pub durable_dir: Option<String>,
    /// Sweeper cadence in real milliseconds. The sweeper is also woken
    /// event-driven by workers when the arbiter has a revocation or
    /// reservation in flight, so this is the *idle* scan period.
    pub sweeper_poll_ms: u64,
    /// Template JIT configuration for new sessions (toolchain model,
    /// optimization switches, cache bound for solo runtimes).
    pub jit: JitConfig,
    /// The shared trace sink every session records into (the session id
    /// is the track, so one ring holds the whole server's timeline).
    /// Enabled by default — serving is observability-on; disable with
    /// [`TraceSink::disabled`] to shed even the ring-buffer cost.
    pub trace: TraceSink,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            fabrics: 2,
            arbiter: ArbiterConfig::default(),
            compile_workers: 2,
            compile_queue_capacity: 16,
            compile_cache_capacity: 64,
            workers: 4,
            output_capacity: 4096,
            idle_timeout_s: 300.0,
            hibernate_after_s: 120.0,
            max_live_sessions: 0,
            hibernate_mem_bytes: 32 << 20,
            hibernate_spill_dir: None,
            durable_dir: None,
            sweeper_poll_ms: 5,
            jit: JitConfig::default(),
            trace: TraceSink::ring(DEFAULT_RING_CAPACITY),
        }
    }
}

impl ServeConfig {
    /// A configuration for tests and demos: modeled compile latency is
    /// compressed to microseconds so promotion happens within a short run.
    pub fn quick() -> Self {
        let mut c = ServeConfig::default();
        c.jit.toolchain.time_scale = 1e-6;
        c
    }
}

/// One user command, carried to the worker holding the session's REPL.
/// The mutating commands carry the client's sequence number (`0` =
/// unsequenced) for exactly-once journaling and dedup.
enum Cmd {
    Eval {
        line: String,
        seq: u64,
        tx: Sender<Json>,
    },
    Run {
        ticks: u64,
        seq: u64,
        tx: Sender<Json>,
    },
    Drain {
        seq: u64,
        tx: Sender<Json>,
    },
    WaitCompile {
        tx: Sender<Json>,
    },
    Probe {
        port: String,
        tx: Sender<Json>,
    },
    Stats {
        tx: Sender<Json>,
    },
    Metrics {
        tx: Sender<Json>,
    },
    Profile {
        tx: Sender<Json>,
    },
    Configure {
        batch_width: Option<u32>,
        eval_threads: Option<u32>,
        tx: Sender<Json>,
    },
    Vcd {
        path: Option<String>,
        ports: Vec<String>,
        tx: Sender<Json>,
    },
    /// Internal pump: advance compile/lease state without user traffic.
    Service,
    /// Freeze the session to a hibernation image and drop its runtime.
    /// `tx` is `None` when the sweeper (idle/pressure) initiates it.
    Hibernate {
        tx: Option<Sender<Json>>,
    },
    /// `tx` is `None` when the idle reaper closes the session.
    Close {
        tx: Option<Sender<Json>>,
    },
}

impl Cmd {
    /// A clone of the command's reply channel, for replies delivered
    /// outside the normal execution path (worker panic containment,
    /// teardown of a dead session's queued commands).
    fn reply_tx(&self) -> Option<Sender<Json>> {
        match self {
            Cmd::Eval { tx, .. }
            | Cmd::Run { tx, .. }
            | Cmd::Drain { tx, .. }
            | Cmd::WaitCompile { tx }
            | Cmd::Probe { tx, .. }
            | Cmd::Stats { tx }
            | Cmd::Metrics { tx }
            | Cmd::Profile { tx }
            | Cmd::Configure { tx, .. }
            | Cmd::Vcd { tx, .. } => Some(tx.clone()),
            Cmd::Service => None,
            Cmd::Hibernate { tx } | Cmd::Close { tx } => tx.clone(),
        }
    }

    /// Whether a user is waiting on this command's latency (scheduled at
    /// the front of its shard) rather than its throughput (the back).
    /// `run` bursts and sweeper traffic are the bulk tier.
    fn is_interactive(&self) -> bool {
        !matches!(self, Cmd::Run { .. } | Cmd::Service)
    }

    /// Protocol name, used as the request root span's name.
    fn name(&self) -> &'static str {
        match self {
            Cmd::Eval { .. } => "eval",
            Cmd::Run { .. } => "run",
            Cmd::Drain { .. } => "drain",
            Cmd::WaitCompile { .. } => "wait-compile",
            Cmd::Probe { .. } => "probe",
            Cmd::Stats { .. } => "stats",
            Cmd::Metrics { .. } => "metrics",
            Cmd::Profile { .. } => "profile",
            Cmd::Configure { .. } => "configure",
            Cmd::Vcd { .. } => "vcd",
            Cmd::Service => "service",
            Cmd::Hibernate { .. } => "hibernate",
            Cmd::Close { .. } => "close",
        }
    }
}

/// Bounded `$display` buffer. `dropped` is the drainable delta handed to
/// the client on `drain`; `dropped_total` never resets — it backs the
/// per-session `serve_session_output_dropped_total` exposition.
struct Output {
    lines: VecDeque<String>,
    dropped: u64,
    dropped_total: u64,
}

/// A hibernated session's frozen state.
enum Dormant {
    Mem(Vec<u8>),
    Disk { path: PathBuf, bytes: usize },
}

// Write-ahead journal record tags. Every record after the first carries
// `[tag u8][seq u64][reply str]` followed by tag-specific fields; the
// first record is either `REC_OPEN` (`[token]`) or `REC_CKPT` (`[token]
// [last_seq][last_reply][image][fifo residue][pending output]`).
const REC_OPEN: u8 = 0;
const REC_EVAL: u8 = 1;
const REC_RUN: u8 = 2;
const REC_FIFO: u8 = 3;
const REC_DRAIN: u8 = 4;
const REC_CKPT: u8 = 5;

/// The server's durable roots (present when `durable_dir` is set).
struct Durability {
    fs: DurableFs,
    sessions_dir: PathBuf,
    meta_path: PathBuf,
    /// Where the crash flight recorder dumps its ring.
    crash_path: PathBuf,
    store: Arc<BitstreamStore>,
}

impl Durability {
    fn journal_path(&self, id: u64, gen: u64) -> PathBuf {
        self.sessions_dir.join(format!("s{id}-{gen}.jnl"))
    }
}

/// Per-session journal state; the lock also serializes appends against
/// compaction.
struct JournalState {
    /// Current journal generation. Compaction writes generation `n+1`
    /// complete (one checkpoint record) before removing generation `n`,
    /// so a fault mid-compaction never destroys acknowledged state.
    gen: u64,
}

/// One journaled command, re-applied at the session's first post-recovery
/// wake.
enum ReplayCmd {
    Eval(String),
    Run(u64),
    Fifo(u32, Vec<u64>),
    Drain,
}

/// Everything a recovered session re-applies on its first wake: the
/// checkpoint's FIFO residue and undrained output, then the journaled
/// command suffix.
struct RecoveredReplay {
    fifo: Vec<(u32, u64)>,
    pending: Vec<String>,
    cmds: Vec<ReplayCmd>,
}

impl RecoveredReplay {
    fn empty() -> RecoveredReplay {
        RecoveredReplay {
            fifo: Vec::new(),
            pending: Vec::new(),
            cmds: Vec::new(),
        }
    }

    fn is_empty(&self) -> bool {
        self.fifo.is_empty() && self.pending.is_empty() && self.cmds.is_empty()
    }
}

/// A session journal decoded for recovery.
struct RecoveredSession {
    token: u64,
    last_seq: u64,
    last_reply: Option<String>,
    image: Vec<u8>,
    replay: RecoveredReplay,
    /// Checkpointed meter counters: ticks, compile_ns, journal_bytes,
    /// output_bytes, lease_us. Zero for pre-meter journals.
    meters: [u64; 5],
}

/// Deterministic per-session resume capability (splitmix64 of the id).
/// A capability against accidental cross-tenant resume, not a secret.
/// Masked to 48 bits so it round-trips losslessly through the protocol's
/// f64 JSON number channel (exact up to 2^53).
fn session_token(id: u64) -> u64 {
    let mut z = id
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94d0_49bb_1331_11eb);
    (z ^ (z >> 31)) & 0xffff_ffff_ffff
}

struct Session {
    id: u64,
    /// Handle on the session runtime's metric registry (clones share
    /// cells), so server-wide expositions can read counters without
    /// waiting for the session's worker. Replaced on wake — a fresh
    /// runtime brings fresh cells.
    registry: Mutex<Registry>,
    /// The runtime's full metric snapshot (registry plus stats-derived
    /// series like `jit_ticks_total`) captured at hibernation, so
    /// observability reads against the dormant session see the complete
    /// exposition without waking it. Empty until the first freeze.
    frozen_metrics: Mutex<Vec<MetricSnapshot>>,
    /// The session's virtual board, shared with its runtime: FIFO input
    /// streams in directly, even while a `run` command is executing (and
    /// across hibernation — the board outlives the runtime).
    board: Board,
    cmds: Mutex<VecDeque<Queued>>,
    /// Monotone resource meters (ticks, compile time, journal/output
    /// bytes, lease time) — the tenant's bill.
    meter: Meter,
    /// Live telemetry subscriptions, serviced by the sweeper.
    subs: Mutex<Vec<Subscription>>,
    /// `None` while a worker has the REPL checked out *or* the session is
    /// dormant (see `dormant`).
    repl: Mutex<Option<Box<Repl>>>,
    /// The hibernation image when the session has no live runtime.
    dormant: Mutex<Option<Dormant>>,
    /// Whether a run-queue entry (or the claiming worker) is already
    /// responsible for this session — dedups wakeups so a burst of
    /// commands schedules the session once.
    scheduled: AtomicBool,
    output: Mutex<Output>,
    last_active: Mutex<Instant>,
    closed: AtomicBool,
    /// Resume capability returned by `open`; recovered sessions require
    /// it (`resume`) before accepting commands.
    token: u64,
    /// Set for sessions rehydrated by recovery until the client resumes.
    needs_resume: AtomicBool,
    /// Exactly-once bookkeeping: the highest acknowledged sequence
    /// number and the reply that acknowledged it (re-sent verbatim when
    /// a reconnecting client retries the same `seq`).
    last_seq: AtomicU64,
    last_reply: Mutex<Option<String>>,
    /// Write-ahead journal generation; the lock serializes appends
    /// against compaction.
    journal: Mutex<JournalState>,
    /// Journal suffix not yet re-applied (recovered sessions replay it
    /// on their first wake).
    replay: Mutex<Option<RecoveredReplay>>,
    /// Whether the journal holds records past its last checkpoint (so a
    /// drain must compact it).
    dirty: AtomicBool,
}

/// One worker's run-queue shard.
struct Shard {
    queue: Mutex<VecDeque<u64>>,
    cond: Condvar,
    /// Queue length mirror readable without the lock (steal scan).
    len: AtomicUsize,
    /// Whether the owning worker is parked on `cond`.
    parked: AtomicBool,
    steals: AtomicU64,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            queue: Mutex::new(VecDeque::new()),
            cond: Condvar::new(),
            len: AtomicUsize::new(0),
            parked: AtomicBool::new(false),
            steals: AtomicU64::new(0),
        }
    }
}

struct Shared {
    config: ServeConfig,
    fleet: Fleet,
    /// The shared trace sink (a clone of `config.trace`).
    trace: TraceSink,
    queue: CompileQueue,
    /// Owns the toolchain worker threads; joined when the server drops.
    _pool: CompilePool,
    sessions: Mutex<HashMap<u64, Arc<Session>>>,
    next_session: AtomicU64,
    /// Monotonic activity clock: each user command takes a stamp, and the
    /// stamp is the session's heat for fleet arbitration (most recently
    /// active = hottest).
    activity: AtomicU64,
    /// Per-worker run-queue shards (work stealing).
    shards: Vec<Shard>,
    /// Sweeper gate: `true` when a worker has nudged the sweeper to run
    /// early (arbiter has a revocation/reservation in flight).
    sweep_gate: Mutex<bool>,
    sweep_cond: Condvar,
    shutdown: AtomicBool,
    /// Server-wide counters.
    evals: AtomicU64,
    total_ticks: AtomicU64,
    sessions_opened: AtomicU64,
    sessions_reaped: AtomicU64,
    /// Worker panics contained at the session isolation boundary (the
    /// session dies with a structured error; the server keeps serving).
    session_panics: AtomicU64,
    /// Output lines dropped by bounded session queues, server-wide.
    output_dropped: AtomicU64,
    /// Sessions with a live runtime right now.
    live_runtimes: AtomicUsize,
    /// Sessions currently dormant (hibernated or never woken).
    dormant_now: AtomicUsize,
    hibernates: AtomicU64,
    wakes: AtomicU64,
    wake_failures: AtomicU64,
    /// Hibernation store accounting.
    hib_mem_bytes: AtomicUsize,
    hib_disk_bytes: AtomicUsize,
    hib_spills: AtomicU64,
    spill_dir: PathBuf,
    spill_seq: AtomicU64,
    /// The durable-write seam. Always present — non-durable servers use
    /// it too (spill images go through the same atomic CRC-framed path),
    /// sharing the fault plan's occurrence counters with the JIT layer.
    dfs: DurableFs,
    /// Durable roots; `None` when `durable_dir` is unset.
    durable: Option<Durability>,
    /// Counter floors from the previous lifetime's drain snapshot, so
    /// `serve_*_total` counters are monotone across graceful restarts.
    baseline: BTreeMap<String, u64>,
    /// Recovery counters (`serve_recovery_*`).
    recovered_sessions: AtomicU64,
    recovery_replayed: AtomicU64,
    recovery_quarantined: AtomicU64,
    drain_flushes: AtomicU64,
    /// Server-wide request id mint (1-based; 0 = "no request").
    next_req: AtomicU64,
    /// Server-level observability registry (phase histograms live here;
    /// merged into the exposition alongside session registries).
    obs: Registry,
    /// Per-phase request latency histograms, indexed like `PHASE_NAMES`.
    phase_hists: Vec<Histogram>,
    /// Ring of recently completed requests (`explain` reads it).
    recent: Mutex<VecDeque<ReqRecord>>,
    /// Always-on crash flight recorder: a small ring separate from the
    /// configurable trace sink, stamped by an ordinal virtual clock so
    /// its export is deterministic under seeded re-runs.
    flight: TraceSink,
    flight_clock: AtomicU64,
    /// The flight ring is dumped at most once per process.
    flight_dumped: AtomicBool,
    /// The previous lifetime's crash trace (`last-crash.trace.jsonl`),
    /// loaded by [`Server::recover`].
    last_crash: Option<String>,
}

/// The multi-tenant Cascade server: sessions, workers, fleet, compile pool.
///
/// Protocol entry points are [`Server::request`] (typed) and
/// [`Server::handle_line`] (wire). Dropping the server shuts down its
/// worker and sweeper threads and releases every session's fabric lease.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    sweeper: Option<JoinHandle<()>>,
}

/// Distinguishes spill directories of servers coexisting in one process.
static SERVER_SEQ: AtomicU64 = AtomicU64::new(0);

impl Server {
    /// Starts a server: `config.workers` session executors (one run-queue
    /// shard each), a compile pool of `config.compile_workers` threads,
    /// and the idle/service sweeper.
    pub fn new(config: ServeConfig) -> Arc<Server> {
        Server::build(config, false)
    }

    /// Rebuilds a server from the durable state under
    /// `config.durable_dir`: every journaled session is rehydrated as a
    /// dormant tenant (resumable by id + token), counter baselines from
    /// the last drain are restored, and the persistent bitstream store
    /// makes the first compiles warm. With no `durable_dir` this is just
    /// [`Server::new`].
    pub fn recover(config: ServeConfig) -> Arc<Server> {
        Server::build(config, true)
    }

    fn build(config: ServeConfig, recovering: bool) -> Arc<Server> {
        let dfs = DurableFs::new(config.jit.faults.clone());
        let durable = config.durable_dir.as_ref().map(|root| {
            let root = PathBuf::from(root);
            let sessions_dir = root.join("sessions");
            let _ = std::fs::create_dir_all(&sessions_dir);
            Durability {
                fs: dfs.clone(),
                meta_path: root.join("server.meta"),
                crash_path: root.join("last-crash.trace.jsonl"),
                store: Arc::new(BitstreamStore::open(root.join("bitstreams"), dfs.clone())),
                sessions_dir,
            }
        });
        let baseline = match (&durable, recovering) {
            (Some(d), true) => load_baseline(d),
            _ => BTreeMap::new(),
        };
        let last_crash = match (&durable, recovering) {
            (Some(d), true) => std::fs::read_to_string(&d.crash_path).ok(),
            _ => None,
        };
        let obs = Registry::new();
        let phase_hists: Vec<Histogram> = PHASE_NAMES
            .iter()
            .map(|p| {
                obs.histogram(
                    &format!("serve_phase_{p}_seconds"),
                    "Wall seconds requests spent in this phase",
                    LATENCY_BUCKETS_S,
                )
            })
            .collect();
        let pool = CompilePool::with_store(
            config.compile_workers.max(1),
            config.compile_queue_capacity.max(1),
            config.compile_cache_capacity.max(1),
            durable.as_ref().map(|d| Arc::clone(&d.store)),
        );
        let nworkers = config.workers.max(1);
        let spill_dir = match &config.hibernate_spill_dir {
            Some(d) => PathBuf::from(d),
            None => std::env::temp_dir().join(format!(
                "cascade-hib-{}-{}",
                std::process::id(),
                SERVER_SEQ.fetch_add(1, Ordering::Relaxed)
            )),
        };
        // Wire the compile queue into the trace plane: dedup joins on
        // shared in-flight jobs are recorded as span links.
        let queue = pool.queue();
        queue.set_trace(config.trace.clone());
        let shared = Arc::new(Shared {
            fleet: Fleet::with_config(config.fabrics, config.arbiter.clone()),
            trace: config.trace.clone(),
            queue,
            _pool: pool,
            sessions: Mutex::new(HashMap::new()),
            next_session: AtomicU64::new(0),
            activity: AtomicU64::new(0),
            shards: (0..nworkers).map(|_| Shard::new()).collect(),
            sweep_gate: Mutex::new(false),
            sweep_cond: Condvar::new(),
            shutdown: AtomicBool::new(false),
            evals: AtomicU64::new(0),
            total_ticks: AtomicU64::new(0),
            sessions_opened: AtomicU64::new(0),
            sessions_reaped: AtomicU64::new(0),
            session_panics: AtomicU64::new(0),
            output_dropped: AtomicU64::new(0),
            live_runtimes: AtomicUsize::new(0),
            dormant_now: AtomicUsize::new(0),
            hibernates: AtomicU64::new(0),
            wakes: AtomicU64::new(0),
            wake_failures: AtomicU64::new(0),
            hib_mem_bytes: AtomicUsize::new(0),
            hib_disk_bytes: AtomicUsize::new(0),
            hib_spills: AtomicU64::new(0),
            spill_dir,
            spill_seq: AtomicU64::new(0),
            dfs,
            durable,
            baseline,
            recovered_sessions: AtomicU64::new(0),
            recovery_replayed: AtomicU64::new(0),
            recovery_quarantined: AtomicU64::new(0),
            drain_flushes: AtomicU64::new(0),
            next_req: AtomicU64::new(0),
            obs,
            phase_hists,
            recent: Mutex::new(VecDeque::new()),
            flight: TraceSink::ring(FLIGHT_RING),
            flight_clock: AtomicU64::new(0),
            flight_dumped: AtomicBool::new(false),
            last_crash,
            config,
        });
        if recovering {
            rehydrate(&shared);
        }
        let workers = (0..nworkers)
            .map(|me| {
                let s = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&s, me))
            })
            .collect();
        let sweeper = {
            let s = Arc::clone(&shared);
            Some(std::thread::spawn(move || sweeper_loop(&s)))
        };
        Arc::new(Server {
            shared,
            workers,
            sweeper,
        })
    }

    /// Handles one wire line, returning the reply line (no newline).
    pub fn handle_line(&self, line: &str) -> String {
        let reply = match Request::parse(line) {
            Ok(req) => self.request(req),
            Err(e) => err(e),
        };
        reply.to_string()
    }

    /// Handles one typed request.
    pub fn request(&self, req: Request) -> Json {
        match req {
            Request::Open => match self.open_session() {
                Ok((id, token)) => ok([("session", id.into()), ("token", token.into())]),
                Err(e) => err(e),
            },
            Request::Attach { session } => match self.shared.session(session) {
                Some(_) => ok([("session", session.into())]),
                None => err(format!("no session {session}")),
            },
            Request::Resume { session, token } => {
                let Some(s) = self.shared.session(session) else {
                    return err(format!("no session {session}"));
                };
                if s.token != token {
                    return err(format!("bad token for session {session}"));
                }
                s.needs_resume.store(false, Ordering::SeqCst);
                *s.last_active.lock_unpoisoned() = Instant::now();
                ok([
                    ("session", session.into()),
                    ("last_seq", s.last_seq.load(Ordering::SeqCst).into()),
                ])
            }
            Request::DrainServer => {
                let (flushed, hibernated) = self.drain();
                ok([
                    ("flushed", flushed.into()),
                    ("hibernated", hibernated.into()),
                ])
            }
            Request::Stats { session: None } => self.server_stats(),
            Request::Metrics { session: None } => self.server_metrics(),
            Request::Metrics {
                session: Some(session),
            } => {
                // A dormant session's registry is a frozen snapshot of its
                // last live runtime: render it directly instead of waking
                // (and re-hibernating) the tenant for a read.
                if let Some(s) = self.shared.session(session) {
                    if self.shared.refuse(&s).is_none() && s.dormant.lock_unpoisoned().is_some() {
                        let frozen = s.frozen_metrics.lock_unpoisoned();
                        let text = if frozen.is_empty() {
                            // Recovered-from-disk dormancy: no in-process
                            // freeze happened; the registry is all we have.
                            expose(&s.registry.lock_unpoisoned().snapshot())
                        } else {
                            expose(&frozen)
                        };
                        return ok([("text", text.into()), ("dormant", true.into())]);
                    }
                }
                self.submit(session, false, |tx| Cmd::Metrics { tx })
            }
            Request::Explain { percentile } => self.explain(&percentile),
            Request::ServerTop { n } => self.server_top(n),
            Request::Subscribe {
                session,
                stream,
                interval_ms,
            } => self.subscribe(session, &stream, interval_ms),
            Request::Trace {
                session,
                virtual_only,
            } => {
                let mode = if virtual_only {
                    TimeMode::VirtualOnly
                } else {
                    TimeMode::Full
                };
                let events = self.trace_events(session);
                ok([
                    ("trace", export_jsonl(&events, mode).into()),
                    ("dropped", self.shared.trace.dropped().into()),
                ])
            }
            Request::Timeline { session } => {
                let events = self.trace_events(session);
                ok([("text", render_timeline(&events).into())])
            }
            Request::Profile { session } => self.submit(session, false, |tx| Cmd::Profile { tx }),
            Request::Configure {
                session,
                batch_width,
                eval_threads,
            } => self.submit(session, false, |tx| Cmd::Configure {
                batch_width: batch_width.map(|w| w.min(u32::MAX as u64) as u32),
                eval_threads: eval_threads.map(|t| t.min(u32::MAX as u64) as u32),
                tx,
            }),
            Request::Vcd {
                session,
                path,
                ports,
            } => self.submit(session, true, |tx| Cmd::Vcd { path, ports, tx }),
            Request::Eval { session, line, seq } => {
                self.submit(session, true, |tx| Cmd::Eval { line, seq, tx })
            }
            Request::Run {
                session,
                ticks,
                seq,
            } => self.submit(session, true, |tx| Cmd::Run { ticks, seq, tx }),
            Request::Drain { session, seq } => {
                self.submit(session, false, |tx| Cmd::Drain { seq, tx })
            }
            Request::WaitCompile { session } => {
                self.submit(session, true, |tx| Cmd::WaitCompile { tx })
            }
            Request::Probe { session, port } => {
                self.submit(session, false, |tx| Cmd::Probe { port, tx })
            }
            Request::Fifo {
                session,
                width,
                data,
                seq,
            } => {
                let Some(s) = self.shared.session(session) else {
                    return err(format!("no session {session}"));
                };
                if let Some(reason) = self.shared.refuse(&s) {
                    return err(reason);
                }
                if !(1..=64).contains(&width) {
                    return err("fifo width must be 1..=64");
                }
                if let Some(reply) = Shared::dedup_reply(&s, seq) {
                    return reply;
                }
                // A recovered session applies its journal (checkpoint
                // FIFO residue plus replayed pushes) at wake; force the
                // wake first so this push lands after them.
                if s.replay.lock_unpoisoned().is_some() {
                    let probe = self.submit(session, false, |tx| Cmd::Probe {
                        port: String::new(),
                        tx,
                    });
                    if probe.get("ok").and_then(Json::as_bool) != Some(true) {
                        return probe;
                    }
                }
                *s.last_active.lock_unpoisoned() = Instant::now();
                // FIFO pushes execute inline (no session worker), so the
                // request context and phase clock are minted right here.
                let meta = ReqMeta {
                    ctx: self.shared.mint_req(session),
                    enq: Instant::now(),
                    name: "fifo",
                };
                let mut pushed = 0u64;
                for &word in &data {
                    if !s
                        .board
                        .fifo_push(cascade_bits::Bits::from_u64(width as u32, word))
                    {
                        break;
                    }
                    pushed += 1;
                }
                // Journal only the accepted prefix: replay must re-push
                // exactly the words the board took.
                let mut extra = Vec::new();
                codec::put_u32(&mut extra, width as u32);
                codec::put_u64(&mut extra, pushed);
                for &word in &data[..pushed as usize] {
                    codec::put_u64(&mut extra, word);
                }
                let mut acc = PhaseAcc::default();
                let t_journal = Instant::now();
                let reply =
                    self.shared
                        .commit(&s, seq, ok([("pushed", pushed.into())]), REC_FIFO, &extra);
                acc.add(PH_JOURNAL, t_journal.elapsed());
                finish_request(&self.shared, &s, &meta, &mut acc);
                reply
            }
            Request::Stats {
                session: Some(session),
            } => self.submit(session, false, |tx| Cmd::Stats { tx }),
            Request::Hibernate { session } => {
                self.submit(session, false, |tx| Cmd::Hibernate { tx: Some(tx) })
            }
            Request::Close { session } => {
                self.submit(session, false, |tx| Cmd::Close { tx: Some(tx) })
            }
        }
    }

    /// Creates a session. Sessions are born dormant — an empty hibernation
    /// image, no runtime — so `open` is cheap at any tenant count; the
    /// first command builds the runtime through the ordinary wake path.
    /// On a durable server the open itself is journaled (write-ahead)
    /// before the id is handed out.
    fn open_session(&self) -> Result<(u64, u64), String> {
        let id = self.shared.next_session.fetch_add(1, Ordering::Relaxed) + 1;
        let token = session_token(id);
        if let Some(d) = &self.shared.durable {
            let mut payload = Vec::new();
            codec::put_u8(&mut payload, REC_OPEN);
            codec::put_u64(&mut payload, token);
            if let Err(e) = d.fs.write_atomic(&d.journal_path(id, 0), &payload) {
                self.shared.dump_flight("open journal write failed");
                return Err(format!("open not acknowledged: {e}"));
            }
        }
        let board = Board::new();
        let session = Arc::new(Session {
            id,
            registry: Mutex::new(Registry::new()),
            frozen_metrics: Mutex::new(Vec::new()),
            board,
            cmds: Mutex::new(VecDeque::new()),
            meter: Meter::default(),
            subs: Mutex::new(Vec::new()),
            repl: Mutex::new(None),
            dormant: Mutex::new(None),
            scheduled: AtomicBool::new(false),
            output: Mutex::new(Output {
                lines: VecDeque::new(),
                dropped: 0,
                dropped_total: 0,
            }),
            last_active: Mutex::new(Instant::now()),
            closed: AtomicBool::new(false),
            token,
            needs_resume: AtomicBool::new(false),
            last_seq: AtomicU64::new(0),
            last_reply: Mutex::new(None),
            journal: Mutex::new(JournalState { gen: 0 }),
            replay: Mutex::new(None),
            dirty: AtomicBool::new(false),
        });
        // The empty birth image goes through the same budgeted store as
        // real hibernation images, so even opens alone cannot grow the
        // in-memory store past its budget at high tenant counts.
        self.shared
            .store_dormant(&session, HibernateImage::empty().to_bytes());
        self.shared.sessions.lock_unpoisoned().insert(id, session);
        self.shared.sessions_opened.fetch_add(1, Ordering::Relaxed);
        self.shared.flight(id, "open", &[]);
        Ok((id, token))
    }

    /// Enqueues a command and blocks for its reply.
    fn submit(&self, id: u64, user_activity: bool, make: impl FnOnce(Sender<Json>) -> Cmd) -> Json {
        let Some(session) = self.shared.session(id) else {
            return err(format!("no session {id}"));
        };
        if let Some(reason) = self.shared.refuse(&session) {
            return err(reason);
        }
        if user_activity {
            *session.last_active.lock_unpoisoned() = Instant::now();
        }
        let (tx, rx) = channel();
        let cmd = make(tx);
        let interactive = cmd.is_interactive();
        // Mint the causal context here, at protocol ingress: every span the
        // request produces downstream — wake, compile, engine eval, journal
        // — hangs off this id, across threads and crates.
        let meta = ReqMeta {
            ctx: self.shared.mint_req(id),
            enq: Instant::now(),
            name: cmd.name(),
        };
        self.shared.flight(
            id,
            "submit",
            &[
                ("cmd", Arg::Str(meta.name)),
                ("req", Arg::U64(meta.ctx.req)),
            ],
        );
        session.cmds.lock_unpoisoned().push_back(Queued {
            cmd,
            meta: Some(meta),
        });
        self.shared.wake(&session, interactive);
        match rx.recv_timeout(REPLY_TIMEOUT) {
            Ok(reply) => reply,
            Err(_) => err(format!("session {id} reply timed out")),
        }
    }

    fn server_stats(&self) -> Json {
        let s = &self.shared;
        let fleet = s.fleet.stats();
        let cache = s.queue.cache();
        let steals: u64 = s
            .shards
            .iter()
            .map(|sh| sh.steals.load(Ordering::Relaxed))
            .sum();
        let (store_hits, store_saves, store_corrupt) = match &s.durable {
            Some(d) => (
                d.store.hits(),
                d.store.saves(),
                d.store.corrupt_quarantined(),
            ),
            None => (0, 0, 0),
        };
        ok([
            (
                "sessions",
                (s.sessions.lock_unpoisoned().len() as u64).into(),
            ),
            (
                "sessions_live",
                (s.live_runtimes.load(Ordering::Relaxed) as u64).into(),
            ),
            (
                "sessions_hibernated",
                (s.dormant_now.load(Ordering::Relaxed) as u64).into(),
            ),
            (
                "sessions_opened",
                s.sessions_opened.load(Ordering::Relaxed).into(),
            ),
            (
                "sessions_reaped",
                s.sessions_reaped.load(Ordering::Relaxed).into(),
            ),
            ("evals", s.evals.load(Ordering::Relaxed).into()),
            ("requests", s.next_req.load(Ordering::Relaxed).into()),
            ("ticks", s.total_ticks.load(Ordering::Relaxed).into()),
            ("steals", steals.into()),
            ("hibernates", s.hibernates.load(Ordering::Relaxed).into()),
            ("wakes", s.wakes.load(Ordering::Relaxed).into()),
            (
                "wake_failures",
                s.wake_failures.load(Ordering::Relaxed).into(),
            ),
            (
                "hibernate_spills",
                s.hib_spills.load(Ordering::Relaxed).into(),
            ),
            (
                "hibernate_mem_bytes",
                (s.hib_mem_bytes.load(Ordering::Relaxed) as u64).into(),
            ),
            (
                "hibernate_disk_bytes",
                (s.hib_disk_bytes.load(Ordering::Relaxed) as u64).into(),
            ),
            (
                "output_dropped",
                s.output_dropped.load(Ordering::Relaxed).into(),
            ),
            ("fabrics", (fleet.capacity as u64).into()),
            ("fabrics_in_use", (fleet.in_use as u64).into()),
            ("fabric_grants", fleet.granted.into()),
            ("fabric_revocations", fleet.revocations.into()),
            (
                "fabric_revocations_suppressed",
                fleet.revocations_suppressed.into(),
            ),
            ("compile_queue_depth", (s.queue.depth() as u64).into()),
            ("compiles_coalesced", s.queue.coalesced().into()),
            ("compiles_shed", s.queue.dropped().into()),
            ("cache_entries", (cache.len() as u64).into()),
            ("cache_hits", cache.hits().into()),
            ("cache_misses", cache.misses().into()),
            ("cache_evictions", cache.evictions().into()),
            (
                "session_panics",
                s.session_panics.load(Ordering::Relaxed).into(),
            ),
            ("compile_worker_panics", s.queue.worker_panics().into()),
            ("fabrics_lost", (fleet.lost as u64).into()),
            ("fabric_failures", fleet.fabric_failures.into()),
            ("trace_events", (s.trace.len() as u64).into()),
            ("trace_dropped", s.trace.dropped().into()),
            (
                "recovered_sessions",
                s.recovered_sessions.load(Ordering::Relaxed).into(),
            ),
            (
                "recovery_replayed",
                s.recovery_replayed.load(Ordering::Relaxed).into(),
            ),
            (
                "recovery_quarantined",
                (s.recovery_quarantined.load(Ordering::Relaxed) + store_corrupt).into(),
            ),
            ("warm_bitstream_hits", store_hits.into()),
            ("bitstream_store_saves", store_saves.into()),
            (
                "drain_flushes",
                s.drain_flushes.load(Ordering::Relaxed).into(),
            ),
        ])
    }

    /// Tail-latency attribution over the recent-request ring: picks the
    /// requests at or past the given percentile of total wall time and
    /// prints each one's dominant phase and full phase breakdown.
    fn explain(&self, percentile: &str) -> Json {
        let q = match percentile {
            "p50" => 0.50,
            "p90" => 0.90,
            "p99" => 0.99,
            other => return err(format!("unknown percentile `{other}` (want p50|p90|p99)")),
        };
        let recs: Vec<ReqRecord> = self
            .shared
            .recent
            .lock_unpoisoned()
            .iter()
            .cloned()
            .collect();
        if recs.is_empty() {
            return ok([
                ("text", "no requests recorded".into()),
                ("requests", 0.into()),
                ("coverage", 0.0.into()),
            ]);
        }
        let mut totals: Vec<u64> = recs.iter().map(|r| r.total_ns).collect();
        totals.sort_unstable();
        let idx = (((totals.len() - 1) as f64) * q).round() as usize;
        let threshold = totals[idx.min(totals.len() - 1)];
        let mut slow: Vec<&ReqRecord> = recs.iter().filter(|r| r.total_ns >= threshold).collect();
        slow.sort_by_key(|r| std::cmp::Reverse(r.total_ns));
        slow.truncate(10);
        let mut text = format!(
            "{percentile} tail of {} recent requests (threshold {:.3} ms):\n",
            recs.len(),
            threshold as f64 / 1e6,
        );
        for r in &slow {
            let (dom, dom_ns) = r
                .phase_ns
                .iter()
                .enumerate()
                .max_by_key(|(_, ns)| **ns)
                .map(|(i, ns)| (PHASE_NAMES[i], *ns))
                .unwrap_or(("other", 0));
            let pct = if r.total_ns > 0 {
                100.0 * dom_ns as f64 / r.total_ns as f64
            } else {
                0.0
            };
            let breakdown: Vec<String> = r
                .phase_ns
                .iter()
                .enumerate()
                .filter(|(_, ns)| **ns > 0)
                .map(|(i, ns)| format!("{} {:.3}ms", PHASE_NAMES[i], *ns as f64 / 1e6))
                .collect();
            text.push_str(&format!(
                "  req {} session {} {}: {:.3} ms, dominant {dom} ({pct:.0}%)  [{}]\n",
                r.req,
                r.tenant,
                r.name,
                r.total_ns as f64 / 1e6,
                breakdown.join(" | "),
            ));
        }
        // Named-phase coverage of the slowest request: everything except
        // the unattributed residual.
        let coverage = slow
            .first()
            .map(|r| {
                if r.total_ns == 0 {
                    1.0
                } else {
                    (r.total_ns.saturating_sub(r.phase_ns[PH_OTHER])) as f64 / r.total_ns as f64
                }
            })
            .unwrap_or(0.0);
        ok([
            ("text", text.into()),
            ("requests", (recs.len() as u64).into()),
            ("coverage", coverage.into()),
        ])
    }

    /// Ranks tenants by recent burn (the sweeper's EWMA over each
    /// session's weighted meter growth). Reads only meters — no session
    /// is woken.
    fn server_top(&self, n: u64) -> Json {
        let sessions: Vec<Arc<Session>> = self
            .shared
            .sessions
            .lock_unpoisoned()
            .values()
            .cloned()
            .collect();
        let mut rows: Vec<(f64, Json, String)> = sessions
            .iter()
            .map(|s| {
                let m = &s.meter;
                let burn = f64::from_bits(m.burn.load(Ordering::Relaxed));
                let ticks = m.ticks.load(Ordering::Relaxed);
                let compile_ms = m.compile_ns.load(Ordering::Relaxed) as f64 / 1e6;
                let journal_bytes = m.journal_bytes.load(Ordering::Relaxed);
                let output_bytes = m.output_bytes.load(Ordering::Relaxed);
                let lease_ms = self.shared.lease_us_total(s) as f64 / 1e3;
                let row = Json::obj([
                    ("session", s.id.into()),
                    ("burn", burn.into()),
                    ("ticks", ticks.into()),
                    ("compile_ms", compile_ms.into()),
                    ("journal_bytes", journal_bytes.into()),
                    ("output_bytes", output_bytes.into()),
                    ("lease_ms", lease_ms.into()),
                ]);
                let line = format!(
                    "  session {} burn {burn:.1} ticks {ticks} compile {compile_ms:.3}ms \
                     lease {lease_ms:.3}ms journal {journal_bytes}B output {output_bytes}B",
                    s.id,
                );
                (burn, row, line)
            })
            .collect();
        rows.sort_by(|a, b| b.0.total_cmp(&a.0));
        rows.truncate(n.max(1) as usize);
        let mut text = format!("top {} tenants by recent burn:\n", rows.len());
        let mut tenants = Vec::with_capacity(rows.len());
        for (_, row, line) in rows {
            text.push_str(&line);
            text.push('\n');
            tenants.push(row);
        }
        ok([("text", text.into()), ("tenants", Json::Arr(tenants))])
    }

    /// Adds (interval > 0) or cancels (interval 0) a live telemetry
    /// subscription on a session. Frames are delivered through the
    /// session's bounded output queue by the sweeper.
    fn subscribe(&self, session: u64, stream: &str, interval_ms: u64) -> Json {
        let Some(s) = self.shared.session(session) else {
            return err(format!("no session {session}"));
        };
        if let Some(reason) = self.shared.refuse(&s) {
            return err(reason);
        }
        let st = match stream {
            "metrics" => SubStream::Metrics,
            "events" => SubStream::Events,
            other => return err(format!("unknown stream `{other}` (want metrics|events)")),
        };
        let mut subs = s.subs.lock_unpoisoned();
        subs.retain(|sub| sub.stream != st);
        let subscribed = interval_ms > 0;
        if subscribed {
            // Event streams start at the ring's current high-water mark:
            // subscribers see what happens next, not history.
            let last_seq = match st {
                SubStream::Events => self
                    .shared
                    .trace
                    .snapshot()
                    .last()
                    .map(|e| e.seq)
                    .unwrap_or(0),
                SubStream::Metrics => 0,
            };
            subs.push(Subscription {
                stream: st,
                interval: Duration::from_millis(interval_ms),
                next_at: Instant::now(),
                last_seq,
            });
        }
        ok([("subscribed", subscribed.into()), ("stream", stream.into())])
    }

    /// The flight-recorder trace persisted by the previous lifetime's
    /// crash, if recovery found one (`last-crash.trace.jsonl`).
    pub fn last_crash_trace(&self) -> Option<String> {
        self.shared.last_crash.clone()
    }

    /// Graceful pre-restart flush: every session's durable state is
    /// brought current — live sessions are hibernated (compacting their
    /// journals on the way down), already-dormant-but-dirty sessions get
    /// their journals compacted from the stored image without waking,
    /// and the counter-baseline snapshot is written. Returns `(flushed,
    /// hibernated)`. Recovered-but-never-woken sessions are skipped:
    /// their journals are already exactly what recovery needs. On a
    /// non-durable server this only hibernates.
    pub fn drain(&self) -> (u64, u64) {
        let ids: Vec<u64> = {
            let sessions = self.shared.sessions.lock_unpoisoned();
            sessions.keys().copied().collect()
        };
        let mut flushed = 0u64;
        let mut hibernated = 0u64;
        for id in ids {
            let Some(session) = self.shared.session(id) else {
                continue;
            };
            if session.needs_resume.load(Ordering::SeqCst) {
                continue;
            }
            if session.dormant.lock_unpoisoned().is_some() {
                if self.shared.compact_dormant(&session) {
                    flushed += 1;
                }
                continue;
            }
            let reply = self.submit(id, false, |tx| Cmd::Hibernate { tx: Some(tx) });
            if reply.get("hibernated").and_then(Json::as_bool) == Some(true) {
                hibernated += 1;
                flushed += 1;
            }
        }
        if let Some(d) = &self.shared.durable {
            let counters = self.counter_baseline();
            let mut payload = Vec::new();
            codec::put_u64(&mut payload, counters.len() as u64);
            for (name, value) in &counters {
                codec::put_str(&mut payload, name);
                codec::put_u64(&mut payload, *value);
            }
            let _ = d.fs.write_atomic(&d.meta_path, &payload);
            self.shared
                .drain_flushes
                .fetch_add(flushed, Ordering::Relaxed);
        }
        (flushed, hibernated)
    }

    /// Every `serve_*_total` counter at its current (baseline-inclusive)
    /// value — the floor a successor process must report from.
    fn counter_baseline(&self) -> Vec<(String, u64)> {
        self.metric_snapshots()
            .into_iter()
            .filter_map(|snap| {
                if !snap.name.starts_with("serve_") || !snap.name.ends_with("_total") {
                    return None;
                }
                match snap.value {
                    SnapValue::Counter(v) => Some((snap.name, v)),
                    _ => None,
                }
            })
            .collect()
    }

    /// Events from the shared ring, filtered to one session's track (the
    /// compile category rides on the submitting session's track too).
    fn trace_events(&self, session: Option<u64>) -> Vec<TraceEvent> {
        let mut events = self.shared.trace.snapshot();
        if let Some(id) = session {
            events.retain(|ev| ev.track == id);
        }
        events
    }

    /// Server-wide Prometheus exposition: every live session's registry
    /// summed (counters and histogram buckets add; a restarted or
    /// hibernated session's cells simply stop contributing), plus
    /// server-level gauges.
    fn server_metrics(&self) -> Json {
        ok([("text", expose(&self.metric_snapshots()).into())])
    }

    /// The snapshots behind [`Server::server_metrics`]. Every
    /// `serve_*_total` counter is reported baseline-inclusive: a server
    /// recovered from a drain adds the previous lifetime's floor, so the
    /// family is monotone across graceful restarts. (After a crash —
    /// no drain snapshot — counters restart from the last *drained*
    /// baseline, still a monotone lower bound of true lifetime totals.)
    fn metric_snapshots(&self) -> Vec<MetricSnapshot> {
        let s = &self.shared;
        let mut snaps: Vec<MetricSnapshot> = Vec::new();
        let per_session: Vec<(u64, Registry, u64)> = s
            .sessions
            .lock_unpoisoned()
            .values()
            .map(|sess| {
                (
                    sess.id,
                    sess.registry.lock_unpoisoned().clone(),
                    sess.output.lock_unpoisoned().dropped_total,
                )
            })
            .collect();
        let mut labeled = Vec::with_capacity(per_session.len());
        for (id, reg, dropped_total) in per_session {
            merge(&mut snaps, reg.snapshot());
            labeled.push(MetricSnapshot {
                name: format!("serve_session_output_dropped_total{{session=\"{id}\"}}"),
                help: "Output lines dropped by one session's bounded queue".to_string(),
                value: SnapValue::Counter(dropped_total),
            });
        }
        merge(&mut snaps, labeled);
        // Server-level phase histograms (`serve_phase_*_seconds`).
        merge(&mut snaps, s.obs.snapshot());
        let fleet = s.fleet.stats();
        let cache = s.queue.cache();
        let steals: u64 = s
            .shards
            .iter()
            .map(|sh| sh.steals.load(Ordering::Relaxed))
            .sum();
        let gauge = |name: &str, help: &str, v: f64| MetricSnapshot {
            name: name.to_string(),
            help: help.to_string(),
            value: SnapValue::Gauge(v),
        };
        let counter = |name: &str, help: &str, v: u64| MetricSnapshot {
            name: name.to_string(),
            help: help.to_string(),
            value: SnapValue::Counter(v + s.baseline.get(name).copied().unwrap_or(0)),
        };
        let (store_hits, store_saves, store_corrupt) = match &s.durable {
            Some(d) => (
                d.store.hits(),
                d.store.saves(),
                d.store.corrupt_quarantined(),
            ),
            None => (0, 0, 0),
        };
        merge(
            &mut snaps,
            vec![
                gauge(
                    "serve_sessions",
                    "Live sessions",
                    s.sessions.lock_unpoisoned().len() as f64,
                ),
                gauge(
                    "serve_sessions_live",
                    "Sessions with a live runtime",
                    s.live_runtimes.load(Ordering::Relaxed) as f64,
                ),
                gauge(
                    "serve_sessions_hibernated",
                    "Sessions currently hibernated (runtime dropped)",
                    s.dormant_now.load(Ordering::Relaxed) as f64,
                ),
                counter(
                    "serve_sessions_opened_total",
                    "Sessions ever opened",
                    s.sessions_opened.load(Ordering::Relaxed),
                ),
                counter(
                    "serve_sessions_reaped_total",
                    "Sessions reaped by the idle timeout",
                    s.sessions_reaped.load(Ordering::Relaxed),
                ),
                counter(
                    "serve_evals_total",
                    "Eval commands served",
                    s.evals.load(Ordering::Relaxed),
                ),
                counter(
                    "serve_ticks_total",
                    "Virtual clock ticks run across all sessions",
                    s.total_ticks.load(Ordering::Relaxed),
                ),
                counter(
                    "serve_steals_total",
                    "Sessions claimed from another worker's shard",
                    steals,
                ),
                counter(
                    "serve_hibernates_total",
                    "Sessions frozen to a hibernation image",
                    s.hibernates.load(Ordering::Relaxed),
                ),
                counter(
                    "serve_wakes_total",
                    "Sessions rebuilt from a hibernation image",
                    s.wakes.load(Ordering::Relaxed),
                ),
                counter(
                    "serve_wake_failures_total",
                    "Sessions lost to an unrestorable hibernation image",
                    s.wake_failures.load(Ordering::Relaxed),
                ),
                counter(
                    "serve_hibernate_spills_total",
                    "Hibernation images spilled to disk",
                    s.hib_spills.load(Ordering::Relaxed),
                ),
                gauge(
                    "serve_hibernate_bytes",
                    "Bytes held by the hibernation store (memory + disk)",
                    (s.hib_mem_bytes.load(Ordering::Relaxed)
                        + s.hib_disk_bytes.load(Ordering::Relaxed)) as f64,
                ),
                counter(
                    "serve_output_dropped_total",
                    "Output lines dropped by bounded session queues",
                    s.output_dropped.load(Ordering::Relaxed),
                ),
                counter(
                    "serve_session_panics_total",
                    "Worker panics contained at the session boundary",
                    s.session_panics.load(Ordering::Relaxed),
                ),
                gauge("serve_fabrics", "Fleet capacity", fleet.capacity as f64),
                gauge(
                    "serve_fabrics_in_use",
                    "Fabric leases currently held",
                    fleet.in_use as f64,
                ),
                counter("serve_fabric_grants_total", "Leases granted", fleet.granted),
                counter(
                    "serve_fabric_revocations_total",
                    "Leases revoked for arbitration",
                    fleet.revocations,
                ),
                counter(
                    "serve_fabric_revocations_suppressed_total",
                    "Revocations suppressed by lease hysteresis",
                    fleet.revocations_suppressed,
                ),
                gauge(
                    "serve_compile_queue_depth",
                    "Pending jobs in the shared compile queue",
                    s.queue.depth() as f64,
                ),
                counter(
                    "serve_compiles_coalesced_total",
                    "Compile jobs coalesced onto an identical in-flight job",
                    s.queue.coalesced(),
                ),
                counter(
                    "serve_compiles_shed_total",
                    "Compile jobs shed by the bounded queue",
                    s.queue.dropped(),
                ),
                counter(
                    "serve_bitstream_cache_hits_total",
                    "Shared bitstream cache hits",
                    cache.hits(),
                ),
                counter(
                    "serve_bitstream_cache_misses_total",
                    "Shared bitstream cache misses",
                    cache.misses(),
                ),
                counter(
                    "serve_trace_events_dropped_total",
                    "Trace events dropped by the bounded ring",
                    s.trace.dropped(),
                ),
                counter(
                    "serve_recovery_sessions_total",
                    "Sessions rehydrated from write-ahead journals at recovery",
                    s.recovered_sessions.load(Ordering::Relaxed),
                ),
                counter(
                    "serve_recovery_journal_records_replayed_total",
                    "Journaled commands replayed into woken sessions after recovery",
                    s.recovery_replayed.load(Ordering::Relaxed),
                ),
                counter(
                    "serve_recovery_corrupt_records_quarantined_total",
                    "Corrupt journals, torn tails, spill images, and store entries quarantined",
                    s.recovery_quarantined.load(Ordering::Relaxed) + store_corrupt,
                ),
                counter(
                    "serve_recovery_warm_bitstream_hits_total",
                    "Compiles skipped by the persistent bitstream store",
                    store_hits,
                ),
                counter(
                    "serve_recovery_bitstream_saves_total",
                    "Bitstreams persisted to the durable store",
                    store_saves,
                ),
                counter(
                    "serve_recovery_drain_flushes_total",
                    "Session journals flushed durably by server drains",
                    s.drain_flushes.load(Ordering::Relaxed),
                ),
            ],
        );
        snaps
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for shard in &self.shared.shards {
            let _g = shard.queue.lock_unpoisoned();
            shard.cond.notify_all();
        }
        {
            let mut gate = self.shared.sweep_gate.lock_unpoisoned();
            *gate = true;
            self.shared.sweep_cond.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(s) = self.sweeper.take() {
            let _ = s.join();
        }
        // Dropping sessions drops their runtimes, releasing fleet leases.
        self.shared.sessions.lock_unpoisoned().clear();
        // Spilled images are worthless without their sessions — but only
        // the server's *own* temp directory is removed; an explicitly
        // configured spill dir (and all durable state under
        // `durable_dir`) is retained for the operator / the successor
        // process.
        if self.shared.config.hibernate_spill_dir.is_none() {
            let _ = std::fs::remove_dir_all(&self.shared.spill_dir);
        }
    }
}

impl Shared {
    fn session(&self, id: u64) -> Option<Arc<Session>> {
        self.sessions.lock_unpoisoned().get(&id).cloned()
    }

    /// The shard a session is pinned to (id hash, stable for its life).
    fn home_shard(&self, id: u64) -> usize {
        ((id.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) % self.shards.len() as u64) as usize
    }

    /// Marks a session runnable on its home shard and makes sure some
    /// worker will claim it. Deduped: if the session is already scheduled
    /// (queued or being drained), this is a no-op — the draining worker
    /// re-checks the command queue before releasing the REPL.
    ///
    /// `interactive` puts the session at the *front* of its shard: a user
    /// waiting on an eval or a probe should not queue behind a line of
    /// 256-tick run bursts. Bulk traffic (run, service sweeps) goes to the
    /// back. Sub-millisecond interactive tails at high tenant counts come
    /// from this split, not from more worker threads.
    fn wake(&self, session: &Session, interactive: bool) {
        if session.scheduled.swap(true, Ordering::SeqCst) {
            return;
        }
        let home = self.home_shard(session.id);
        let shard = &self.shards[home];
        let home_parked = {
            let mut q = shard.queue.lock_unpoisoned();
            if interactive {
                q.push_front(session.id);
            } else {
                q.push_back(session.id);
            }
            shard.len.fetch_add(1, Ordering::SeqCst);
            if shard.parked.load(Ordering::SeqCst) {
                shard.cond.notify_one();
                true
            } else {
                false
            }
        };
        if home_parked {
            return;
        }
        // The home worker is busy: hand the wakeup to any parked worker —
        // it will find the session via its steal scan. Taking the victim's
        // queue lock orders the notify against its park/re-check.
        for s in &self.shards {
            if s.parked.load(Ordering::SeqCst) {
                let _g = s.queue.lock_unpoisoned();
                s.cond.notify_one();
                break;
            }
        }
    }

    /// Wakes the sweeper ahead of its poll tick (a worker observed the
    /// arbiter with a revocation or reservation in flight).
    fn nudge_sweeper(&self) {
        let mut gate = self.sweep_gate.lock_unpoisoned();
        if !*gate {
            *gate = true;
            self.sweep_cond.notify_one();
        }
    }

    /// Fresh activity stamp (monotone across all sessions).
    fn stamp(&self) -> f64 {
        (self.activity.fetch_add(1, Ordering::Relaxed) + 1) as f64
    }

    /// Takes a session's dormant image out of the store (accounting
    /// updated). `None` means the session is not dormant — live, or its
    /// REPL is checked out by some worker.
    fn take_dormant(&self, session: &Session) -> Option<Dormant> {
        let d = session.dormant.lock_unpoisoned().take()?;
        self.dormant_now.fetch_sub(1, Ordering::Relaxed);
        match &d {
            Dormant::Mem(b) => {
                self.hib_mem_bytes.fetch_sub(b.len(), Ordering::Relaxed);
            }
            Dormant::Disk { bytes, .. } => {
                self.hib_disk_bytes.fetch_sub(*bytes, Ordering::Relaxed);
            }
        }
        Some(d)
    }

    /// Puts a dormant image back untouched (the mirror of `take_dormant`).
    fn restore_dormant(&self, session: &Session, d: Dormant) {
        match &d {
            Dormant::Mem(b) => {
                self.hib_mem_bytes.fetch_add(b.len(), Ordering::Relaxed);
            }
            Dormant::Disk { bytes, .. } => {
                self.hib_disk_bytes.fetch_add(*bytes, Ordering::Relaxed);
            }
        }
        self.dormant_now.fetch_add(1, Ordering::Relaxed);
        *session.dormant.lock_unpoisoned() = Some(d);
    }

    /// Stores a freshly serialized image, spilling to disk past the
    /// memory budget.
    fn store_dormant(&self, session: &Session, bytes: Vec<u8>) -> bool {
        let len = bytes.len();
        let budget = self.config.hibernate_mem_bytes;
        let prev = self.hib_mem_bytes.fetch_add(len, Ordering::SeqCst);
        let mut spilled = false;
        let dormant = if prev + len > budget {
            self.hib_mem_bytes.fetch_sub(len, Ordering::SeqCst);
            match self.spill(session.id, &bytes) {
                Some(path) => {
                    self.hib_disk_bytes.fetch_add(len, Ordering::Relaxed);
                    self.hib_spills.fetch_add(1, Ordering::Relaxed);
                    spilled = true;
                    Dormant::Disk { path, bytes: len }
                }
                None => {
                    // Disk refused the image: keep it in memory over
                    // budget rather than lose the session.
                    self.hib_mem_bytes.fetch_add(len, Ordering::SeqCst);
                    Dormant::Mem(bytes)
                }
            }
        } else {
            Dormant::Mem(bytes)
        };
        self.dormant_now.fetch_add(1, Ordering::Relaxed);
        *session.dormant.lock_unpoisoned() = Some(dormant);
        spilled
    }

    fn spill(&self, id: u64, bytes: &[u8]) -> Option<PathBuf> {
        if std::fs::create_dir_all(&self.spill_dir).is_err() {
            return None;
        }
        let seq = self.spill_seq.fetch_add(1, Ordering::Relaxed);
        let path = self.spill_dir.join(format!("s{id}-{seq}.hib"));
        // Atomic + CRC-framed: a torn spill must be *detected* at wake
        // (counted wake failure), never restored as a session.
        self.dfs.write_atomic(&path, bytes).ok()?;
        Some(path)
    }

    /// Mints the causal context for the next request of `tenant`.
    fn mint_req(&self, tenant: u64) -> RequestCtx {
        RequestCtx::new(tenant, self.next_req.fetch_add(1, Ordering::Relaxed) + 1)
    }

    /// A tenant's total fabric lease time in microseconds: the recovered
    /// floor plus what the live fleet has metered this lifetime. Monotone.
    fn lease_us_total(&self, session: &Session) -> u64 {
        session.meter.lease_base_us.load(Ordering::Relaxed)
            + (self.fleet.tenant_lease_seconds(session.id) * 1e6) as u64
    }

    /// Records one flight-recorder breadcrumb. The flight ring runs on an
    /// ordinal virtual clock, so a seeded re-run that performs the same
    /// operations exports byte-identical records.
    fn flight(&self, track: u64, name: &'static str, args: &[(&str, Arg)]) {
        let at = self.flight_clock.fetch_add(1, Ordering::Relaxed);
        self.flight.instant(track, "flight", name, at, args);
    }

    /// Persists the flight ring as `last-crash.trace.jsonl` under the
    /// durable root — once per process, through the raw sidecar path that
    /// still works after the durable layer latches its crash flag.
    fn dump_flight(&self, reason: &str) {
        let Some(d) = &self.durable else {
            return;
        };
        if self.flight_dumped.swap(true, Ordering::SeqCst) {
            return;
        }
        let at = self.flight_clock.fetch_add(1, Ordering::Relaxed);
        self.flight
            .instant(0, "flight", "dump", at, &[("reason", Arg::Str(reason))]);
        let text = export_jsonl(&self.flight.snapshot(), TimeMode::VirtualOnly);
        let _ = d.fs.write_sidecar(&d.crash_path, text.as_bytes());
    }

    /// Why a session cannot accept commands right now, if it cannot.
    fn refuse(&self, session: &Session) -> Option<String> {
        if let Some(d) = &self.durable {
            if d.fs.crashed() {
                self.dump_flight("durable store crashed");
                return Some("durable store crashed; restart the server and recover".to_string());
            }
        }
        if session.needs_resume.load(Ordering::SeqCst) {
            return Some(format!(
                "session {} was recovered; resume it with its token first",
                session.id
            ));
        }
        None
    }

    /// The dedup half of exactly-once: a client retrying its last
    /// unacknowledged command re-sends the same `seq`; if that seq was
    /// acknowledged, the stored reply is returned without re-executing.
    /// `seq` 0 = unsequenced (never deduped).
    fn dedup_reply(session: &Session, seq: u64) -> Option<Json> {
        if seq == 0 || session.last_seq.load(Ordering::SeqCst) != seq {
            return None;
        }
        let stored = session.last_reply.lock_unpoisoned().clone()?;
        Json::parse(&stored).ok()
    }

    /// The write-ahead half of exactly-once: the record — including the
    /// reply — is appended and fsynced *before* the reply is released.
    /// A failed append returns an error reply instead: the command was
    /// never acknowledged, so recovery rightly forgets it.
    fn commit(&self, session: &Session, seq: u64, reply: Json, tag: u8, extra: &[u8]) -> Json {
        let reply_text = reply.to_string();
        if let Some(d) = &self.durable {
            let mut payload = Vec::with_capacity(17 + reply_text.len() + extra.len());
            codec::put_u8(&mut payload, tag);
            codec::put_u64(&mut payload, seq);
            codec::put_str(&mut payload, &reply_text);
            payload.extend_from_slice(extra);
            let journal = session.journal.lock_unpoisoned();
            let path = d.journal_path(session.id, journal.gen);
            if let Err(e) = d.fs.append(&path, &payload) {
                drop(journal);
                self.dump_flight("journal append failed");
                return err(format!("not acknowledged: {e}"));
            }
            session
                .meter
                .journal_bytes
                .fetch_add(payload.len() as u64, Ordering::Relaxed);
        }
        self.flight(
            session.id,
            "commit",
            &[("tag", Arg::U64(tag as u64)), ("seq", Arg::U64(seq))],
        );
        session.dirty.store(true, Ordering::Relaxed);
        if seq > 0 {
            session.last_seq.store(seq, Ordering::SeqCst);
            *session.last_reply.lock_unpoisoned() = Some(reply_text);
        }
        reply
    }

    /// Rewrites a session's journal as one checkpoint record at
    /// generation `gen+1`, then retires the old generation. The old file
    /// is removed only after the new one is durably in place, so a fault
    /// at any point leaves a parseable journal holding every
    /// acknowledged command.
    fn compact_journal(&self, session: &Session, image: &[u8]) -> bool {
        let Some(d) = &self.durable else {
            return false;
        };
        if !session.dirty.load(Ordering::Relaxed) {
            return false;
        }
        let mut payload = Vec::new();
        codec::put_u8(&mut payload, REC_CKPT);
        codec::put_u64(&mut payload, session.token);
        codec::put_u64(&mut payload, session.last_seq.load(Ordering::SeqCst));
        codec::put_str(
            &mut payload,
            session
                .last_reply
                .lock_unpoisoned()
                .as_deref()
                .unwrap_or(""),
        );
        codec::put_bytes(&mut payload, image);
        let fifo = session.board.fifo_snapshot();
        codec::put_u64(&mut payload, fifo.len() as u64);
        for bits in &fifo {
            codec::put_bits(&mut payload, bits);
        }
        let queued: Vec<String> = {
            let out = session.output.lock_unpoisoned();
            out.lines.iter().cloned().collect()
        };
        codec::put_u64(&mut payload, queued.len() as u64);
        for line in &queued {
            codec::put_str(&mut payload, line);
        }
        // Trailing meter block (added after the original checkpoint
        // layout; decode treats it as optional for old journals): the
        // tenant's monotone resource counters survive the restart.
        let m = &session.meter;
        codec::put_u64(&mut payload, m.ticks.load(Ordering::Relaxed));
        codec::put_u64(&mut payload, m.compile_ns.load(Ordering::Relaxed));
        codec::put_u64(&mut payload, m.journal_bytes.load(Ordering::Relaxed));
        codec::put_u64(&mut payload, m.output_bytes.load(Ordering::Relaxed));
        codec::put_u64(&mut payload, self.lease_us_total(session));
        let mut journal = session.journal.lock_unpoisoned();
        let next = journal.gen + 1;
        if d.fs
            .write_atomic(&d.journal_path(session.id, next), &payload)
            .is_err()
        {
            return false; // old generation remains authoritative
        }
        let _ = std::fs::remove_file(d.journal_path(session.id, journal.gen));
        journal.gen = next;
        drop(journal);
        session.dirty.store(false, Ordering::Relaxed);
        true
    }

    /// Compacts a dormant session's journal from its stored image
    /// without waking it (drain of a FIFO-dirtied or long-dormant
    /// session). Refuses while a replay suffix is pending — the stored
    /// image does not include it yet.
    fn compact_dormant(&self, session: &Session) -> bool {
        if self.durable.is_none()
            || !session.dirty.load(Ordering::Relaxed)
            || session.replay.lock_unpoisoned().is_some()
        {
            return false;
        }
        let bytes = {
            let dormant = session.dormant.lock_unpoisoned();
            match dormant.as_ref() {
                Some(Dormant::Mem(b)) => b.clone(),
                Some(Dormant::Disk { path, .. }) => match self.dfs.read_record(path) {
                    Ok(b) => b,
                    Err(_) => return false,
                },
                None => return false,
            }
        };
        self.compact_journal(session, &bytes)
    }
}

// ---------------------------------------------------------------------
// Worker: sharded run queues with randomized stealing
// ---------------------------------------------------------------------

fn worker_loop(shared: &Shared, me: usize) {
    let mut prng = cascade_bits::Prng::new(0x5eed_0000 ^ me as u64);
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Some(id) = next_session_id(shared, me, &mut prng) else {
            continue; // parked and timed out (or woken empty): rescan
        };
        let Some(session) = shared.session(id) else {
            continue; // closed while queued
        };
        run_session(shared, &session);
    }
}

/// Local pop → randomized steal scan → park (with a timeout safety net).
fn next_session_id(shared: &Shared, me: usize, prng: &mut cascade_bits::Prng) -> Option<u64> {
    let shards = &shared.shards;
    let mine = &shards[me];
    // 1. Local pop.
    {
        let mut q = mine.queue.lock_unpoisoned();
        if let Some(id) = q.pop_front() {
            mine.len.fetch_sub(1, Ordering::SeqCst);
            return Some(id);
        }
    }
    // 2. Steal scan from a random starting victim. Steals take the tail:
    // the victim owner drains from the head.
    let n = shards.len();
    if n > 1 {
        let start = prng.below(n as u64) as usize;
        for k in 0..n {
            let j = (start + k) % n;
            if j == me || shards[j].len.load(Ordering::SeqCst) == 0 {
                continue;
            }
            let mut q = shards[j].queue.lock_unpoisoned();
            if let Some(id) = q.pop_back() {
                shards[j].len.fetch_sub(1, Ordering::SeqCst);
                mine.steals.fetch_add(1, Ordering::Relaxed);
                return Some(id);
            }
        }
    }
    // 3. Park on the home shard. The parked flag is published before the
    // final emptiness re-check; `wake` increments a shard len before
    // reading parked flags — under SeqCst one side always sees the other,
    // so a wakeup cannot be lost.
    let mut q = mine.queue.lock_unpoisoned();
    mine.parked.store(true, Ordering::SeqCst);
    let work_visible = !q.is_empty()
        || shared.shutdown.load(Ordering::SeqCst)
        || shards
            .iter()
            .enumerate()
            .any(|(j, s)| j != me && s.len.load(Ordering::SeqCst) > 0);
    if !work_visible {
        let (guard, _) = mine
            .cond
            .wait_timeout(q, PARK_TIMEOUT)
            .unwrap_or_else(PoisonError::into_inner);
        q = guard;
    }
    mine.parked.store(false, Ordering::SeqCst);
    let id = q.pop_front();
    if id.is_some() {
        mine.len.fetch_sub(1, Ordering::SeqCst);
    }
    id
}

/// What `ensure_repl` decided about a command that arrived while the
/// session had no live REPL in hand.
enum Disposition {
    /// Handled without a runtime; move to the next command.
    Handled,
    /// Session torn down (closed, or wake failed); stop draining.
    Exit,
    /// A runtime is now in hand; execute the command.
    Execute(Queued),
}

/// Drains a session's command queue through one REPL checkout. Claims the
/// live REPL if present, wakes the session from its hibernation image on
/// the first command that needs a runtime, and hands the commands back if
/// another worker currently holds the REPL.
fn run_session(shared: &Shared, session: &Arc<Session>) {
    // This worker is now responsible: later wakes must re-enqueue.
    session.scheduled.store(false, Ordering::SeqCst);
    let mut repl: Option<Box<Repl>> = session.repl.lock_unpoisoned().take();
    loop {
        if session.closed.load(Ordering::Relaxed) {
            break;
        }
        let Some(q) = session.cmds.lock_unpoisoned().pop_front() else {
            break;
        };
        // The queue phase ends here: a worker has claimed the command.
        let mut acc = PhaseAcc::default();
        if let Some(m) = &q.meta {
            acc.add(PH_QUEUE, m.enq.elapsed());
        }
        let q = if repl.is_some() {
            q
        } else {
            match ensure_repl(shared, session, &mut repl, q, &mut acc) {
                Disposition::Handled => continue,
                Disposition::Exit => return,
                Disposition::Execute(q) => q,
            }
        };
        let Queued { cmd, meta } = q;
        let r = repl.as_mut().expect("repl in hand");
        // Isolation boundary: a panic while executing one session's
        // command kills that session with a structured error. The
        // worker, the server, and every other tenant keep running.
        let reply_tx = cmd.reply_tx();
        let flow = match catch_unwind(AssertUnwindSafe(|| {
            execute(shared, session, r, cmd, meta.as_ref(), &mut acc)
        })) {
            Ok(flow) => flow,
            Err(payload) => {
                shared.session_panics.fetch_add(1, Ordering::Relaxed);
                session.closed.store(true, Ordering::Relaxed);
                let msg = panic_message(payload.as_ref());
                shared.flight(session.id, "panic", &[]);
                shared.dump_flight("session worker panicked");
                if let Some(tx) = reply_tx {
                    let _ = tx.send(Json::obj([
                        ("ok", false.into()),
                        ("status", "panicked".into()),
                        ("error", format!("session worker panicked: {msg}").into()),
                    ]));
                }
                // Commands already queued behind the panic get an error
                // reply instead of a timeout.
                let dead: Vec<Queued> = session.cmds.lock_unpoisoned().drain(..).collect();
                for c in dead {
                    if let Some(tx) = c.cmd.reply_tx() {
                        let _ = tx.send(err(format!(
                            "session {} closed: worker panicked: {msg}",
                            session.id
                        )));
                    }
                }
                Flow::Continue
            }
        };
        if let Flow::Hibernate(tx) = flow {
            let held = repl.take().expect("repl in hand");
            let (at, parent) = request_span(&meta);
            match try_hibernate(shared, session, held, at, parent) {
                Ok((bytes, spilled)) => {
                    if let Some(tx) = tx {
                        let _ = tx.send(ok([
                            ("hibernated", true.into()),
                            ("bytes", (bytes as u64).into()),
                            ("spilled", spilled.into()),
                        ]));
                    }
                }
                Err((held, reason)) => {
                    repl = Some(held);
                    if let Some(tx) = tx {
                        let _ = tx.send(ok([
                            ("hibernated", false.into()),
                            ("reason", reason.into()),
                        ]));
                    }
                }
            }
        }
        if let Some(m) = &meta {
            finish_request(shared, session, m, &mut acc);
        }
    }
    if session.closed.load(Ordering::Relaxed) {
        // Dropping the REPL drops the runtime: its `Drop` releases the
        // fabric lease and cancels any pending fleet request.
        shared.sessions.lock_unpoisoned().remove(&session.id);
        if repl.take().is_some() {
            shared.live_runtimes.fetch_sub(1, Ordering::Relaxed);
        }
    } else {
        if let Some(r) = repl {
            *session.repl.lock_unpoisoned() = Some(r);
        }
        // A command may have arrived between the last pop and the
        // put-back; make sure it gets a worker (at the tier of whatever
        // is now at the front).
        let straggler = session
            .cmds
            .lock_unpoisoned()
            .front()
            .map(|q| q.cmd.is_interactive());
        if let Some(interactive) = straggler {
            shared.wake(session, interactive);
        }
        // Event-driven sweeper: if this batch left the arbiter with a
        // revocation or reservation in flight, service the affected
        // sessions now instead of on the next poll tick.
        if shared.config.fabrics > 0 && shared.fleet.needs_service() {
            shared.nudge_sweeper();
        }
    }
}

/// Obtains a runtime for a command that arrived while `repl` was empty:
/// wakes a dormant session, short-circuits commands that need no runtime,
/// and yields to the worker that has the REPL checked out.
fn ensure_repl(
    shared: &Shared,
    session: &Arc<Session>,
    repl: &mut Option<Box<Repl>>,
    q: Queued,
    acc: &mut PhaseAcc,
) -> Disposition {
    let Queued { cmd, meta } = q;
    // The service pump has nothing to advance in a session with no
    // runtime (no lease, no compile in flight).
    if matches!(cmd, Cmd::Service) {
        return Disposition::Handled;
    }
    match shared.take_dormant(session) {
        Some(image) => match cmd {
            Cmd::Hibernate { tx } => {
                // Already dormant: put the image back untouched.
                shared.restore_dormant(session, image);
                if let Some(tx) = tx {
                    let _ = tx.send(ok([("hibernated", true.into()), ("bytes", 0.into())]));
                }
                Disposition::Handled
            }
            Cmd::Close { tx } => {
                // Close without waking: discard the image, drop the session.
                if let Dormant::Disk { path, .. } = &image {
                    let _ = std::fs::remove_file(path);
                }
                drop(image);
                session.closed.store(true, Ordering::Relaxed);
                shared.sessions.lock_unpoisoned().remove(&session.id);
                match tx {
                    Some(tx) => {
                        let _ = tx.send(ok([]));
                    }
                    None => {
                        shared.sessions_reaped.fetch_add(1, Ordering::Relaxed);
                    }
                }
                fail_queued(session, &format!("session {} closed", session.id));
                Disposition::Exit
            }
            cmd => {
                let t0 = Instant::now();
                let (at, parent) = request_span(&meta);
                match wake_session(shared, session, image, at, parent) {
                    Ok(r) => {
                        acc.add(PH_WAKE, t0.elapsed());
                        *repl = Some(r);
                        Disposition::Execute(Queued { cmd, meta })
                    }
                    Err(msg) => {
                        shared.wake_failures.fetch_add(1, Ordering::Relaxed);
                        session.closed.store(true, Ordering::Relaxed);
                        shared.sessions.lock_unpoisoned().remove(&session.id);
                        let full = format!("session {} wake failed: {msg}", session.id);
                        if let Some(tx) = cmd.reply_tx() {
                            let _ = tx.send(err(full.clone()));
                        }
                        fail_queued(session, &full);
                        Disposition::Exit
                    }
                }
            }
        },
        None => {
            // Another worker has the REPL checked out. Hand the command
            // back for the holder's drain. If the holder put the REPL
            // back in the meantime, claim it ourselves; otherwise its
            // put-back re-check will see this command and re-wake.
            session
                .cmds
                .lock_unpoisoned()
                .push_front(Queued { cmd, meta });
            match session.repl.lock_unpoisoned().take() {
                Some(r) => {
                    *repl = Some(r);
                    Disposition::Handled
                }
                None => Disposition::Exit,
            }
        }
    }
}

/// Error-replies every command still queued on a dead session.
fn fail_queued(session: &Session, msg: &str) {
    let dead: Vec<Queued> = session.cmds.lock_unpoisoned().drain(..).collect();
    for c in dead {
        if let Some(tx) = c.cmd.reply_tx() {
            let _ = tx.send(err(msg.to_string()));
        }
    }
}

/// `(child span, root span)` of a request, for attributing lifecycle
/// events (wake, hibernate) to it. Zeroed when there is no request.
fn request_span(meta: &Option<ReqMeta>) -> (SpanRef, u64) {
    match meta {
        Some(m) => (m.ctx.span_ref(m.ctx.child_span()), m.ctx.root_span()),
        None => (SpanRef::default(), 0),
    }
}

/// Rebuilds a runtime from a hibernation image: replay the source log,
/// restore the checkpointed engine state, reattach fleet/compiler/trace.
fn wake_session(
    shared: &Shared,
    session: &Arc<Session>,
    image: Dormant,
    at: SpanRef,
    parent: u64,
) -> Result<Box<Repl>, String> {
    let t0 = Instant::now();
    let bytes = match image {
        Dormant::Mem(b) => b,
        Dormant::Disk { path, .. } => {
            // CRC-framed read: a torn or bit-rotted spill is quarantined
            // and surfaces as a counted wake failure, never as a
            // half-restored session.
            match shared.dfs.read_record(&path) {
                Ok(b) => {
                    let _ = std::fs::remove_file(&path);
                    b
                }
                Err(e) => {
                    let _ = quarantine(&path);
                    shared.recovery_quarantined.fetch_add(1, Ordering::Relaxed);
                    return Err(format!("spill image rejected: {e}"));
                }
            }
        }
    };
    let image = HibernateImage::from_bytes(&bytes)?;
    let mut jit = shared.config.jit.clone();
    jit.trace = shared.trace.clone();
    let board = session.board.clone();
    let queue = shared.queue.clone();
    let fleet = shared.fleet.clone();
    let id = session.id;
    let built = catch_unwind(AssertUnwindSafe(|| -> Result<Runtime, String> {
        let mut rt = Runtime::new(board, jit).map_err(|e| e.to_string())?;
        rt.attach_compile_queue(queue);
        rt.attach_fleet(fleet, id);
        rt.set_trace_track(id);
        rt.restore_image(&image).map_err(|e| e.to_string())?;
        Ok(rt)
    }));
    let rt = match built {
        Ok(Ok(rt)) => rt,
        Ok(Err(e)) => return Err(e),
        Err(payload) => return Err(panic_message(payload.as_ref())),
    };
    *session.registry.lock_unpoisoned() = rt.metrics_registry().clone();
    let mut repl = Box::new(Repl::new(rt));
    // A recovered session's image is its last checkpoint; the journal
    // suffix of commands acknowledged after that checkpoint is replayed
    // here, on first wake, to land exactly where the crashed server left
    // the tenant.
    if let Some(plan) = session.replay.lock_unpoisoned().take() {
        replay_journal(shared, session, &mut repl, plan)?;
    }
    shared.live_runtimes.fetch_add(1, Ordering::Relaxed);
    shared.wakes.fetch_add(1, Ordering::Relaxed);
    shared.flight(session.id, "wake", &[]);
    if shared.trace.enabled() {
        shared.trace.host_instant_ctx(
            session.id,
            "serve",
            "wake",
            at,
            parent,
            0,
            &[
                ("bytes", Arg::U64(bytes.len() as u64)),
                ("us", Arg::U64(t0.elapsed().as_micros() as u64)),
            ],
        );
    }
    Ok(repl)
}

/// Re-executes the journal suffix against a freshly restored runtime.
/// Replayed work is deterministic re-derivation of already-acknowledged
/// state, so it is not re-counted in `total_ticks` — only in the
/// recovery counters.
fn replay_journal(
    shared: &Shared,
    session: &Session,
    repl: &mut Repl,
    plan: RecoveredReplay,
) -> Result<(), String> {
    let n = plan.cmds.len() as u64;
    for &(width, word) in &plan.fifo {
        session
            .board
            .fifo_push(cascade_bits::Bits::from_u64(width, word));
    }
    // Output queued at checkpoint time comes first, then whatever the
    // replayed commands produce, in command order.
    let mut pending = plan.pending;
    for cmd in plan.cmds {
        match cmd {
            ReplayCmd::Eval(line) => {
                // Output stays inside the runtime, exactly as after the
                // live `Eval`; the next Run/Drain sweeps it.
                let _ = repl.line(&line);
            }
            ReplayCmd::Run(ticks) => {
                let rt = repl.runtime();
                let mut done = 0u64;
                while done < ticks && !rt.is_finished() {
                    let chunk = (ticks - done).min(RUN_CHUNK);
                    match rt.run_ticks(chunk) {
                        Ok(0) => break,
                        Ok(k) => done += k,
                        Err(e) => return Err(format!("replay run failed: {e}")),
                    }
                }
                pending.extend(rt.drain_output());
            }
            ReplayCmd::Fifo(width, words) => {
                for word in words {
                    session
                        .board
                        .fifo_push(cascade_bits::Bits::from_u64(width, word));
                }
            }
            ReplayCmd::Drain => {
                let _ = repl.runtime().drain_output();
                pending.clear();
                session.output.lock_unpoisoned().lines.clear();
            }
        }
    }
    push_output(shared, session, pending);
    shared.recovery_replayed.fetch_add(n, Ordering::Relaxed);
    Ok(())
}

/// Decodes a complete journal (one generation file) into the recovered
/// session it describes: identity from the head record, then the replay
/// suffix of everything acknowledged since.
fn decode_journal(records: &[Vec<u8>]) -> Result<RecoveredSession, String> {
    let mut iter = records.iter();
    let head = iter.next().ok_or("empty journal")?;
    let mut r = codec::Reader::new(head);
    let mut rec = match r.u8()? {
        REC_OPEN => {
            let token = r.u64()?;
            r.finish()?;
            RecoveredSession {
                token,
                last_seq: 0,
                last_reply: None,
                image: HibernateImage::empty().to_bytes(),
                replay: RecoveredReplay::empty(),
                meters: [0; 5],
            }
        }
        REC_CKPT => {
            let token = r.u64()?;
            let last_seq = r.u64()?;
            let reply = r.string()?;
            let image = r.bytes()?;
            let mut fifo = Vec::new();
            for _ in 0..r.u64()? {
                let bits = r.bits()?;
                fifo.push((bits.width(), bits.to_u64()));
            }
            let mut pending = Vec::new();
            for _ in 0..r.u64()? {
                pending.push(r.string()?);
            }
            // Optional trailing meter block (absent in pre-meter journals).
            let meters = if r.remaining() > 0 {
                [r.u64()?, r.u64()?, r.u64()?, r.u64()?, r.u64()?]
            } else {
                [0; 5]
            };
            r.finish()?;
            RecoveredSession {
                token,
                last_seq,
                last_reply: (!reply.is_empty()).then_some(reply),
                image,
                replay: RecoveredReplay {
                    fifo,
                    pending,
                    cmds: Vec::new(),
                },
                meters,
            }
        }
        tag => return Err(format!("journal head has tag {tag}, want open/checkpoint")),
    };
    for record in iter {
        let mut r = codec::Reader::new(record);
        let tag = r.u8()?;
        let seq = r.u64()?;
        let reply = r.string()?;
        let cmd = match tag {
            REC_EVAL => ReplayCmd::Eval(r.string()?),
            REC_RUN => ReplayCmd::Run(r.u64()?),
            REC_FIFO => {
                let width = r.u32()?;
                let n = r.u64()?;
                let mut words = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    words.push(r.u64()?);
                }
                ReplayCmd::Fifo(width, words)
            }
            REC_DRAIN => ReplayCmd::Drain,
            tag => return Err(format!("journal record has unknown tag {tag}")),
        };
        r.finish()?;
        if seq > 0 {
            rec.last_seq = seq;
            rec.last_reply = Some(reply);
        }
        rec.replay.cmds.push(cmd);
    }
    Ok(rec)
}

/// `s{id}-{gen}.jnl` → `(id, gen)`.
fn parse_journal_name(name: &str) -> Option<(u64, u64)> {
    let stem = name.strip_prefix('s')?.strip_suffix(".jnl")?;
    let (id, gen) = stem.split_once('-')?;
    Some((id.parse().ok()?, gen.parse().ok()?))
}

/// Installs one recovered session as a dormant tenant awaiting `resume`.
fn install_recovered(shared: &Shared, id: u64, gen: u64, rec: RecoveredSession) {
    let has_replay = !rec.replay.is_empty();
    let session = Arc::new(Session {
        id,
        token: rec.token,
        board: Board::new(),
        cmds: Mutex::new(VecDeque::new()),
        // Meters resume from the checkpointed floor; the fleet's live
        // lease meter restarts at zero, so the floor includes all prior
        // lease time (monotone across the restart).
        meter: Meter {
            ticks: AtomicU64::new(rec.meters[0]),
            compile_ns: AtomicU64::new(rec.meters[1]),
            journal_bytes: AtomicU64::new(rec.meters[2]),
            output_bytes: AtomicU64::new(rec.meters[3]),
            lease_base_us: AtomicU64::new(rec.meters[4]),
            burn: AtomicU64::new(0),
            last_score: AtomicU64::new(0),
        },
        subs: Mutex::new(Vec::new()),
        repl: Mutex::new(None),
        dormant: Mutex::new(None),
        output: Mutex::new(Output {
            lines: VecDeque::new(),
            dropped: 0,
            dropped_total: 0,
        }),
        registry: Mutex::new(Registry::new()),
        frozen_metrics: Mutex::new(Vec::new()),
        last_active: Mutex::new(Instant::now()),
        closed: AtomicBool::new(false),
        scheduled: AtomicBool::new(false),
        needs_resume: AtomicBool::new(true),
        last_seq: AtomicU64::new(rec.last_seq),
        last_reply: Mutex::new(rec.last_reply),
        journal: Mutex::new(JournalState { gen }),
        replay: Mutex::new(if has_replay { Some(rec.replay) } else { None }),
        // A pending replay means the stored image alone is stale —
        // compaction must wait until the suffix has been applied.
        dirty: AtomicBool::new(has_replay),
    });
    shared.store_dormant(&session, rec.image);
    shared.sessions.lock_unpoisoned().insert(id, session);
    shared.recovered_sessions.fetch_add(1, Ordering::Relaxed);
}

/// Scans the sessions directory and rebuilds every decodable tenant.
/// Newest generation wins; corrupt generations are quarantined and the
/// scan falls back to the previous one. Torn tails (a crash mid-append)
/// are truncated to the last whole record — those commands were never
/// acknowledged.
fn rehydrate(shared: &Shared) {
    let Some(d) = &shared.durable else {
        return;
    };
    let Ok(entries) = std::fs::read_dir(&d.sessions_dir) else {
        return;
    };
    let mut gens: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    for entry in entries.flatten() {
        if let Some((id, gen)) = entry.file_name().to_str().and_then(parse_journal_name) {
            gens.entry(id).or_default().push(gen);
        }
    }
    let mut max_id = 0u64;
    for (id, mut generations) in gens {
        generations.sort_unstable_by(|a, b| b.cmp(a));
        let mut chosen: Option<u64> = None;
        for &gen in &generations {
            let path = d.journal_path(id, gen);
            let scan = match d.fs.read_journal(&path) {
                Ok(scan) => scan,
                Err(_) => {
                    let _ = quarantine(&path);
                    shared.recovery_quarantined.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
            };
            if scan.torn_bytes > 0 {
                let _ = d.fs.truncate(&path, scan.clean_len);
                shared.recovery_quarantined.fetch_add(1, Ordering::Relaxed);
            }
            match decode_journal(&scan.records) {
                Ok(rec) => {
                    install_recovered(shared, id, gen, rec);
                    chosen = Some(gen);
                    break;
                }
                Err(_) => {
                    let _ = quarantine(&path);
                    shared.recovery_quarantined.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        if let Some(kept) = chosen {
            max_id = max_id.max(id);
            for &gen in &generations {
                if gen < kept {
                    let _ = std::fs::remove_file(d.journal_path(id, gen));
                }
            }
        }
    }
    // `open` allocates `fetch_add(1) + 1`, so parking the counter at the
    // highest recovered id hands out fresh ids above every tenant.
    let prev = shared.next_session.load(Ordering::Relaxed);
    shared
        .next_session
        .store(prev.max(max_id), Ordering::Relaxed);
}

/// Loads the counter baselines persisted by the last graceful drain.
/// Missing or unreadable baselines start from zero — crash restarts
/// keep counters monotone as a lower bound, not exact.
fn load_baseline(d: &Durability) -> BTreeMap<String, u64> {
    let Ok(payload) = d.fs.read_record(&d.meta_path) else {
        return BTreeMap::new();
    };
    let mut r = codec::Reader::new(&payload);
    let mut out = BTreeMap::new();
    let Ok(n) = r.u64() else {
        return BTreeMap::new();
    };
    for _ in 0..n {
        match (r.string(), r.u64()) {
            (Ok(name), Ok(value)) => {
                out.insert(name, value);
            }
            _ => return BTreeMap::new(),
        }
    }
    out
}

/// Freezes a live session: verified checkpoint → image → store (spilling
/// past the memory budget) → runtime dropped. On refusal (native mode,
/// active VCD, speculation-verify failure) the REPL is handed back.
fn try_hibernate(
    shared: &Shared,
    session: &Arc<Session>,
    mut repl: Box<Repl>,
    at: SpanRef,
    parent: u64,
) -> Result<(usize, bool), (Box<Repl>, String)> {
    let t0 = Instant::now();
    let rt = repl.runtime();
    let image = match rt.hibernate_image() {
        Ok(image) => image,
        Err(e) => return Err((repl, e.to_string())),
    };
    // Freeze the full exposition (registry + stats-derived series) so a
    // `metrics` read against the dormant session is complete without a
    // wake.
    *session.frozen_metrics.lock_unpoisoned() = rt.metrics_snapshot();
    // Verification may have committed quarantined output; flush the lot
    // into the session queue before the runtime goes away.
    let pending = rt.drain_output();
    push_output(shared, session, pending);
    drop(repl); // releases the fabric lease, cancels fleet/compile interest
    shared.hibernates.fetch_add(1, Ordering::Relaxed);
    let bytes = image.to_bytes();
    let len = bytes.len();
    // Hibernation already serialized full session state: fold the
    // journal down to one checkpoint record while the image is in hand.
    shared.compact_journal(session, &bytes);
    let spilled = shared.store_dormant(session, bytes);
    // Decrement live only after the dormant image is in the store, so an
    // observer that sees `sessions_live == 0` also sees every frozen
    // session counted in `sessions_hibernated` (transient double-count
    // over missing-count).
    shared.live_runtimes.fetch_sub(1, Ordering::Relaxed);
    shared.flight(session.id, "hibernate", &[]);
    if shared.trace.enabled() {
        shared.trace.host_instant_ctx(
            session.id,
            "serve",
            "hibernate",
            at,
            parent,
            0,
            &[
                ("bytes", Arg::U64(len as u64)),
                ("spilled", Arg::Bool(spilled)),
                ("us", Arg::U64(t0.elapsed().as_micros() as u64)),
            ],
        );
    }
    Ok((len, spilled))
}

/// What the drain loop should do after a command executes.
enum Flow {
    Continue,
    /// Consume the REPL and freeze the session (reply on the sender).
    Hibernate(Option<Sender<Json>>),
}

fn execute(
    shared: &Shared,
    session: &Session,
    repl: &mut Repl,
    cmd: Cmd,
    meta: Option<&ReqMeta>,
    acc: &mut PhaseAcc,
) -> Flow {
    // Propagate (or clear) the causal context into the runtime: compile
    // jobs, fleet requests, and engine spans emitted while this command
    // executes attribute to this request's tree. Always set, so a stale
    // context from the previous command never leaks into internal work.
    repl.runtime().set_request_ctx(meta.map(|m| m.ctx.clone()));
    match cmd {
        Cmd::Eval { line, seq, tx } => {
            if let Some(reply) = Shared::dedup_reply(session, seq) {
                let _ = tx.send(reply);
                return Flow::Continue;
            }
            shared.evals.fetch_add(1, Ordering::Relaxed);
            let heat = shared.stamp();
            repl.runtime().set_heat(heat);
            let t_eval = Instant::now();
            let reply = match repl.line(&line) {
                ReplResponse::Evaluated(output) => ok([
                    ("status", "evaluated".into()),
                    ("output", Json::strings(output)),
                ]),
                ReplResponse::Incomplete => ok([("status", "incomplete".into())]),
                ReplResponse::Error(e) => Json::obj([
                    ("ok", false.into()),
                    ("status", "error".into()),
                    ("error", e.into()),
                ]),
            };
            acc.add(eval_phase(repl.runtime().mode()), t_eval.elapsed());
            let mut extra = Vec::new();
            codec::put_str(&mut extra, &line);
            let t_journal = Instant::now();
            let reply = shared.commit(session, seq, reply, REC_EVAL, &extra);
            acc.add(PH_JOURNAL, t_journal.elapsed());
            let _ = tx.send(reply);
        }
        Cmd::Run { ticks, seq, tx } => {
            if let Some(reply) = Shared::dedup_reply(session, seq) {
                let _ = tx.send(reply);
                return Flow::Continue;
            }
            // A scheduled worker fault strikes at the start of a run
            // command; the containment boundary in `run_session` turns it
            // into a structured session death.
            if shared.config.jit.faults.next_session_panic() {
                panic!("injected session worker panic");
            }
            let heat = shared.stamp();
            let rt = repl.runtime();
            rt.set_heat(heat);
            let mut done = 0u64;
            let mut backpressure = false;
            while done < ticks && !rt.is_finished() {
                if output_full(session, shared.config.output_capacity) {
                    backpressure = true;
                    break;
                }
                let chunk = (ticks - done).min(RUN_CHUNK);
                let t_run = Instant::now();
                match rt.run_ticks(chunk) {
                    Ok(k) => {
                        acc.add(eval_phase(rt.mode()), t_run.elapsed());
                        let t_flush = Instant::now();
                        let lines = rt.drain_output();
                        push_output(shared, session, lines);
                        acc.add(PH_FLUSH, t_flush.elapsed());
                        if k == 0 {
                            break;
                        }
                        done += k;
                    }
                    Err(e) => {
                        acc.add(eval_phase(rt.mode()), t_run.elapsed());
                        let _ = tx.send(err(e.to_string()));
                        return Flow::Continue;
                    }
                }
            }
            shared.total_ticks.fetch_add(done, Ordering::Relaxed);
            session.meter.ticks.fetch_add(done, Ordering::Relaxed);
            let reply = ok([
                ("ticks", done.into()),
                ("backpressure", backpressure.into()),
                ("finished", rt.is_finished().into()),
                ("mode", mode_str(rt.mode()).into()),
                ("lease_held", rt.lease_held().into()),
            ]);
            // The journal records the ticks actually *performed* (`done`),
            // not the ticks requested: replay must land on the same tick
            // count the client was told about.
            let mut extra = Vec::new();
            codec::put_u64(&mut extra, done);
            let t_journal = Instant::now();
            let reply = shared.commit(session, seq, reply, REC_RUN, &extra);
            acc.add(PH_JOURNAL, t_journal.elapsed());
            let _ = tx.send(reply);
        }
        Cmd::Drain { seq, tx } => {
            if let Some(reply) = Shared::dedup_reply(session, seq) {
                let _ = tx.send(reply);
                return Flow::Continue;
            }
            // Sweep anything still inside the runtime, then hand over the
            // whole queue.
            let t_flush = Instant::now();
            let pending = repl.runtime().drain_output();
            push_output(shared, session, pending);
            let mut out = session.output.lock_unpoisoned();
            let lines: Vec<String> = out.lines.drain(..).collect();
            let dropped = std::mem::take(&mut out.dropped);
            drop(out);
            acc.add(PH_FLUSH, t_flush.elapsed());
            let reply = ok([("lines", Json::strings(lines)), ("dropped", dropped.into())]);
            let t_journal = Instant::now();
            let reply = shared.commit(session, seq, reply, REC_DRAIN, &[]);
            acc.add(PH_JOURNAL, t_journal.elapsed());
            let _ = tx.send(reply);
        }
        Cmd::WaitCompile { tx } => {
            let rt = repl.runtime();
            let t_compile = Instant::now();
            let reply = match wait_compile(rt) {
                Ok(()) => ok([
                    ("mode", mode_str(rt.mode()).into()),
                    ("lease_held", rt.lease_held().into()),
                    ("hw_pending", rt.stats().hw_pending.into()),
                ]),
                Err(e) => err(e.to_string()),
            };
            acc.add(PH_COMPILE, t_compile.elapsed());
            let _ = tx.send(reply);
        }
        Cmd::Probe { port, tx } => {
            let value = match repl.runtime().probe(&port) {
                Some(bits) => Json::from(bits.to_u64()),
                None => Json::Null,
            };
            let _ = tx.send(ok([("value", value)]));
        }
        Cmd::Stats { tx } => {
            let stats = repl.runtime().stats();
            let rt = repl.runtime();
            let (batch_width, eval_threads) = rt.data_parallel();
            let out = session.output.lock_unpoisoned();
            let _ = tx.send(ok([
                ("session", session.id.into()),
                ("version", stats.version.into()),
                ("ticks", stats.ticks.into()),
                ("wall_seconds", stats.wall_seconds.into()),
                ("mode", mode_str(stats.mode).into()),
                ("lease_held", stats.lease_held.into()),
                ("hw_pending", stats.hw_pending.into()),
                ("promotions", stats.hw_promotions.into()),
                ("demotions", stats.lease_demotions.into()),
                ("compile_in_flight", stats.compile_in_flight.into()),
                ("cache_hits", stats.compile_cache_hits.into()),
                ("cache_misses", stats.compile_cache_misses.into()),
                ("cache_evictions", stats.compile_cache_evictions.into()),
                ("finished", rt.is_finished().into()),
                ("leds", rt.board().leds().to_u64().into()),
                ("output_queued", (out.lines.len() as u64).into()),
                ("output_dropped", out.dropped.into()),
                ("compile_retries", stats.compile_retries.into()),
                (
                    "compile_watchdog_cancels",
                    stats.compile_watchdog_cancels.into(),
                ),
                ("panics_contained", stats.panics_contained.into()),
                ("scrubs", stats.scrubs.into()),
                ("scrub_detections", stats.scrub_detections.into()),
                ("checkpoints_taken", stats.checkpoints_taken.into()),
                ("checkpoints_restored", stats.checkpoints_restored.into()),
                ("fabric_losses", stats.fabric_losses.into()),
                ("batch_width", u64::from(batch_width).into()),
                ("eval_threads", u64::from(eval_threads).into()),
            ]));
        }
        Cmd::Metrics { tx } => {
            let _ = tx.send(ok([("text", repl.runtime().metrics_text().into())]));
        }
        Cmd::Profile { tx } => {
            let reply = match repl.runtime().profile_text() {
                Some(text) => ok([("text", text.into())]),
                None => err("no profile: session has no user logic or tracing is disabled"),
            };
            let _ = tx.send(reply);
        }
        Cmd::Configure {
            batch_width,
            eval_threads,
            tx,
        } => {
            let rt = repl.runtime();
            rt.set_data_parallel(batch_width, eval_threads);
            let (w, t) = rt.data_parallel();
            let _ = tx.send(ok([
                ("batch_width", u64::from(w).into()),
                ("eval_threads", u64::from(t).into()),
            ]));
        }
        Cmd::Vcd { path, ports, tx } => {
            let rt = repl.runtime();
            let reply = match path {
                Some(path) => match rt.vcd_start(&path, &ports) {
                    Ok(()) => ok([("active", true.into()), ("path", path.as_str().into())]),
                    Err(e) => err(e.to_string()),
                },
                None => match rt.vcd_stop() {
                    Some(path) => ok([("active", false.into()), ("path", path.as_str().into())]),
                    None => ok([("active", false.into())]),
                },
            };
            let _ = tx.send(reply);
        }
        Cmd::Service => {
            // Best effort: a service fault surfaces on the next command.
            if let Err(e) = repl.runtime().service() {
                push_output(shared, session, vec![format!("service error: {e}")]);
            }
        }
        Cmd::Hibernate { tx } => return Flow::Hibernate(tx),
        Cmd::Close { tx } => {
            session.closed.store(true, Ordering::Relaxed);
            if let Some(tx) = tx {
                let _ = tx.send(ok([]));
            } else {
                shared.sessions_reaped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    Flow::Continue
}

/// Blocks until any in-flight compile resolves, advancing the session's
/// modeled wall clock past the bitstream's ready time so promotion (or a
/// fleet request) happens now rather than on some later tick.
fn wait_compile(rt: &mut Runtime) -> Result<(), CascadeError> {
    rt.service()?;
    // Transient faults re-dispatch the compile with a backoff, and a hung
    // compile resolves only at its watchdog deadline — chase the wake-up
    // chain. Bounded well above any retry budget so a compiler bug cannot
    // hang the session worker.
    for _ in 0..64 {
        if !rt.stats().compile_in_flight {
            break;
        }
        rt.wait_for_compile_worker();
        if let Some(wake_at) = rt.compile_ready_at() {
            let now = rt.wall_seconds();
            if wake_at > now {
                rt.advance_wall(wake_at - now + 1e-9);
            }
        }
        rt.service()?;
    }
    Ok(())
}

fn output_full(session: &Session, capacity: usize) -> bool {
    session.output.lock_unpoisoned().lines.len() >= capacity
}

fn push_output(shared: &Shared, session: &Session, lines: Vec<String>) {
    if lines.is_empty() {
        return;
    }
    let capacity = shared.config.output_capacity;
    let mut out = session.output.lock_unpoisoned();
    let mut dropped_now = 0u64;
    let mut bytes = 0u64;
    for line in lines {
        if out.lines.len() >= capacity {
            out.lines.pop_front();
            out.dropped += 1;
            out.dropped_total += 1;
            dropped_now += 1;
        }
        bytes += line.len() as u64;
        out.lines.push_back(line);
    }
    drop(out);
    session
        .meter
        .output_bytes
        .fetch_add(bytes, Ordering::Relaxed);
    if dropped_now > 0 {
        shared
            .output_dropped
            .fetch_add(dropped_now, Ordering::Relaxed);
    }
}

/// Which eval phase a slice of engine time belongs to, by exec mode.
fn eval_phase(mode: ExecMode) -> usize {
    match mode {
        ExecMode::Hardware | ExecMode::HardwareForwarded | ExecMode::Native => PH_EVAL_HW,
        ExecMode::Idle | ExecMode::Software => PH_EVAL_SW,
    }
}

/// Closes out one traced request: the residual becomes the `other` phase,
/// the server-wide phase histograms and the tenant's meters absorb the
/// breakdown, the request lands in the recent ring for `explain`, and the
/// root span ties the whole tree together in the trace export.
fn finish_request(shared: &Shared, session: &Session, meta: &ReqMeta, acc: &mut PhaseAcc) {
    let total_ns = (meta.enq.elapsed().as_nanos() as u64).max(1);
    let named: u64 = acc.ns[..PH_OTHER].iter().sum();
    acc.ns[PH_OTHER] = total_ns.saturating_sub(named);
    for (i, h) in shared.phase_hists.iter().enumerate() {
        if acc.ns[i] > 0 {
            h.observe(acc.ns[i] as f64 / 1e9);
        }
    }
    session
        .meter
        .compile_ns
        .fetch_add(acc.ns[PH_COMPILE], Ordering::Relaxed);
    {
        let mut recent = shared.recent.lock_unpoisoned();
        if recent.len() >= RECENT_CAP {
            recent.pop_front();
        }
        recent.push_back(ReqRecord {
            req: meta.ctx.req,
            tenant: session.id,
            name: meta.name,
            total_ns,
            phase_ns: acc.ns,
        });
    }
    if shared.trace.enabled() {
        let start = shared.trace.host_ns().saturating_sub(total_ns);
        shared.trace.host_span_ctx(
            session.id,
            "req",
            meta.name,
            start,
            total_ns,
            meta.ctx.span_ref(meta.ctx.root_span()),
            0,
            &[
                ("queue_us", Arg::U64(acc.ns[PH_QUEUE] / 1000)),
                ("wake_us", Arg::U64(acc.ns[PH_WAKE] / 1000)),
                ("compile_us", Arg::U64(acc.ns[PH_COMPILE] / 1000)),
                ("eval_sw_us", Arg::U64(acc.ns[PH_EVAL_SW] / 1000)),
                ("eval_hw_us", Arg::U64(acc.ns[PH_EVAL_HW] / 1000)),
                ("flush_us", Arg::U64(acc.ns[PH_FLUSH] / 1000)),
                ("journal_us", Arg::U64(acc.ns[PH_JOURNAL] / 1000)),
                ("other_us", Arg::U64(acc.ns[PH_OTHER] / 1000)),
            ],
        );
    }
}

fn mode_str(mode: ExecMode) -> &'static str {
    match mode {
        ExecMode::Idle => "idle",
        ExecMode::Software => "software",
        ExecMode::Hardware => "hardware",
        ExecMode::HardwareForwarded => "hardware_forwarded",
        ExecMode::Native => "native",
    }
}

// ---------------------------------------------------------------------
// Sweeper: service pump + hibernation + idle reaper
// ---------------------------------------------------------------------

/// Periodically (and on worker nudges, when the arbiter has a revocation
/// or reservation in flight): enqueue a `Service` for idle *live*
/// sessions so lease/compile state machines advance without user traffic,
/// hibernate sessions idle past `hibernate_after_s` (or the most-idle
/// ones when the live count exceeds `max_live_sessions`), and reap
/// sessions idle past the timeout. Dormant sessions cost nothing here —
/// they have no state machines to pump.
fn sweeper_loop(shared: &Shared) {
    let poll = Duration::from_millis(shared.config.sweeper_poll_ms.max(1));
    loop {
        {
            let mut gate = shared.sweep_gate.lock_unpoisoned();
            if !*gate {
                let (guard, _) = shared
                    .sweep_cond
                    .wait_timeout(gate, poll)
                    .unwrap_or_else(PoisonError::into_inner);
                gate = guard;
            }
            *gate = false;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let sessions: Vec<Arc<Session>> = shared
            .sessions
            .lock_unpoisoned()
            .values()
            .cloned()
            .collect();
        // Live-count pressure: pick the most-idle live sessions to freeze
        // when over budget.
        let max_live = shared.config.max_live_sessions;
        let mut pressure: Vec<u64> = Vec::new();
        if max_live > 0 {
            let live = shared.live_runtimes.load(Ordering::Relaxed);
            if live > max_live {
                let mut idle_live: Vec<(f64, u64)> = sessions
                    .iter()
                    .filter(|s| {
                        !s.closed.load(Ordering::Relaxed)
                            && s.dormant.lock_unpoisoned().is_none()
                            && s.cmds.lock_unpoisoned().is_empty()
                    })
                    .map(|s| {
                        (
                            s.last_active.lock_unpoisoned().elapsed().as_secs_f64(),
                            s.id,
                        )
                    })
                    .collect();
                idle_live.sort_by(|a, b| b.0.total_cmp(&a.0));
                pressure = idle_live
                    .into_iter()
                    .take(live - max_live)
                    .map(|(_, id)| id)
                    .collect();
            }
        }
        for session in sessions {
            if session.closed.load(Ordering::Relaxed) {
                continue;
            }
            // Metering and live streaming ride the sweep: every pass
            // settles the tenant's burn EWMA and delivers due telemetry
            // frames — dormant sessions included, without waking them
            // (meters and subscriptions outlive the runtime).
            settle_burn(shared, &session);
            service_subscriptions(shared, &session);
            let idle_s = session
                .last_active
                .lock_unpoisoned()
                .elapsed()
                .as_secs_f64();
            if idle_s > shared.config.idle_timeout_s {
                session
                    .cmds
                    .lock_unpoisoned()
                    .push_back(Queued::internal(Cmd::Close { tx: None }));
                shared.wake(&session, false);
                continue;
            }
            if session.dormant.lock_unpoisoned().is_some() {
                continue; // nothing to pump, nothing to freeze
            }
            let hibernate = pressure.contains(&session.id)
                || (shared.config.hibernate_after_s > 0.0
                    && idle_s > shared.config.hibernate_after_s);
            let mut cmds = session.cmds.lock_unpoisoned();
            if !cmds.is_empty() {
                continue; // busy: the drain loop is already servicing it
            }
            if hibernate {
                cmds.push_back(Queued::internal(Cmd::Hibernate { tx: None }));
            } else {
                cmds.push_back(Queued::internal(Cmd::Service));
            }
            drop(cmds);
            shared.wake(&session, false);
        }
    }
}

/// Settles one tenant's burn EWMA from the growth of its weighted meter
/// score since the last sweep. The score weighs each meter into one
/// comparable "work units" number: ticks + compile-µs + lease-µs +
/// journal/output bytes.
fn settle_burn(shared: &Shared, session: &Session) {
    let m = &session.meter;
    let score = m.ticks.load(Ordering::Relaxed) as f64
        + m.compile_ns.load(Ordering::Relaxed) as f64 / 1e3
        + shared.lease_us_total(session) as f64
        + m.journal_bytes.load(Ordering::Relaxed) as f64
        + m.output_bytes.load(Ordering::Relaxed) as f64;
    let last = f64::from_bits(m.last_score.load(Ordering::Relaxed));
    m.last_score.store(score.to_bits(), Ordering::Relaxed);
    let delta = (score - last).max(0.0);
    let burn = f64::from_bits(m.burn.load(Ordering::Relaxed));
    m.burn
        .store((0.7 * burn + 0.3 * delta).to_bits(), Ordering::Relaxed);
}

/// Delivers due telemetry frames for one session's subscriptions through
/// its bounded output queue (newline-JSON frames; a slow consumer sheds
/// oldest-first and the drops are accounted like any other output).
fn service_subscriptions(shared: &Shared, session: &Session) {
    let now = Instant::now();
    let mut frames: Vec<String> = Vec::new();
    {
        let mut subs = session.subs.lock_unpoisoned();
        if subs.is_empty() {
            return;
        }
        for sub in subs.iter_mut() {
            if now < sub.next_at {
                continue;
            }
            sub.next_at = now + sub.interval;
            match sub.stream {
                SubStream::Metrics => frames.push(metrics_frame(shared, session).to_string()),
                SubStream::Events => {
                    let events: Vec<TraceEvent> = shared
                        .trace
                        .snapshot()
                        .into_iter()
                        .filter(|e| e.track == session.id && e.seq > sub.last_seq)
                        .take(EVENTS_FRAME_CAP)
                        .collect();
                    let Some(last) = events.last() else {
                        continue;
                    };
                    sub.last_seq = last.seq;
                    let lines: Vec<Json> = export_jsonl(&events, TimeMode::Full)
                        .lines()
                        .map(|l| Json::Str(l.to_string()))
                        .collect();
                    frames.push(
                        Json::obj([
                            ("frame", "events".into()),
                            ("session", session.id.into()),
                            ("events", Json::Arr(lines)),
                        ])
                        .to_string(),
                    );
                }
            }
        }
    }
    push_output(shared, session, frames);
}

/// One incremental metrics frame: the tenant's meters and burn, cheap
/// enough to stream every interval without touching the session worker.
fn metrics_frame(shared: &Shared, session: &Session) -> Json {
    let m = &session.meter;
    Json::obj([
        ("frame", "metrics".into()),
        ("session", session.id.into()),
        ("ticks", m.ticks.load(Ordering::Relaxed).into()),
        (
            "compile_ms",
            (m.compile_ns.load(Ordering::Relaxed) as f64 / 1e6).into(),
        ),
        (
            "journal_bytes",
            m.journal_bytes.load(Ordering::Relaxed).into(),
        ),
        (
            "output_bytes",
            m.output_bytes.load(Ordering::Relaxed).into(),
        ),
        (
            "lease_ms",
            (shared.lease_us_total(session) as f64 / 1e3).into(),
        ),
        (
            "burn",
            f64::from_bits(m.burn.load(Ordering::Relaxed)).into(),
        ),
    ])
}
