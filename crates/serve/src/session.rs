//! The session layer: one [`Runtime`] per session, hosted on a worker
//! thread pool, sharing a virtual-FPGA [`Fleet`] and one background
//! compile pool across all tenants.
//!
//! A session's REPL is a checked-out resource: exactly one worker holds it
//! at a time, drains the session's command queue through it, and puts it
//! back. Commands are request/reply (the submitting connection blocks on a
//! reply channel), except the internal `Service` pump which lets the
//! sweeper advance compile/lease state machines of *idle* sessions — a
//! revocation must not wait for the victim's next command.
//!
//! `$display` output produced by `run` is buffered in a bounded per-session
//! queue. When the queue fills, `run` stops early (backpressure: the reply
//! says so and the client drains before continuing); a single burst that
//! overflows the bound drops the *oldest* lines and counts them.

use crate::json::Json;
use crate::protocol::{err, ok, Request};
use cascade_core::{
    panic_message, CascadeError, CompilePool, CompileQueue, ExecMode, JitConfig, Repl,
    ReplResponse, Runtime,
};
use cascade_fpga::{Board, Fleet};
use cascade_trace::{
    export_jsonl, expose, merge, render_timeline, MetricSnapshot, Registry, SnapValue, TimeMode,
    TraceEvent, TraceSink, DEFAULT_RING_CAPACITY,
};
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Poison-tolerant locking: a panic contained on one worker must not
/// poison shared state for every other session. All data guarded by these
/// mutexes stays consistent across a panic boundary (queues of owned
/// values, timestamps, counters), so recovering the guard is safe.
trait LockExt<T> {
    fn lock_unpoisoned(&self) -> MutexGuard<'_, T>;
}

impl<T> LockExt<T> for Mutex<T> {
    fn lock_unpoisoned(&self) -> MutexGuard<'_, T> {
        self.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Ticks per scheduling quantum: a long `run` is sliced so output flushes
/// into the session queue (and backpressure is observed) at this grain.
const RUN_CHUNK: u64 = 128;

/// How long a connection waits for its command's reply before giving up.
const REPLY_TIMEOUT: Duration = Duration::from_secs(60);

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Virtual fabrics in the shared fleet (0 = software-only serving).
    pub fabrics: usize,
    /// Background toolchain worker threads shared by all sessions.
    pub compile_workers: usize,
    /// Bound on the pending compile-job queue (oldest jobs are shed).
    pub compile_queue_capacity: usize,
    /// Bound on the shared bitstream cache (entries, LRU).
    pub compile_cache_capacity: usize,
    /// Session executor threads.
    pub workers: usize,
    /// Bound on each session's `$display` output queue (lines).
    pub output_capacity: usize,
    /// Real seconds of inactivity after which a session is reaped.
    pub idle_timeout_s: f64,
    /// Template JIT configuration for new sessions (toolchain model,
    /// optimization switches, cache bound for solo runtimes).
    pub jit: JitConfig,
    /// The shared trace sink every session records into (the session id
    /// is the track, so one ring holds the whole server's timeline).
    /// Enabled by default — serving is observability-on; disable with
    /// [`TraceSink::disabled`] to shed even the ring-buffer cost.
    pub trace: TraceSink,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            fabrics: 2,
            compile_workers: 2,
            compile_queue_capacity: 16,
            compile_cache_capacity: 64,
            workers: 4,
            output_capacity: 4096,
            idle_timeout_s: 300.0,
            jit: JitConfig::default(),
            trace: TraceSink::ring(DEFAULT_RING_CAPACITY),
        }
    }
}

impl ServeConfig {
    /// A configuration for tests and demos: modeled compile latency is
    /// compressed to microseconds so promotion happens within a short run.
    pub fn quick() -> Self {
        let mut c = ServeConfig::default();
        c.jit.toolchain.time_scale = 1e-6;
        c
    }
}

/// One user command, carried to the worker holding the session's REPL.
enum Cmd {
    Eval {
        line: String,
        tx: Sender<Json>,
    },
    Run {
        ticks: u64,
        tx: Sender<Json>,
    },
    Drain {
        tx: Sender<Json>,
    },
    WaitCompile {
        tx: Sender<Json>,
    },
    Probe {
        port: String,
        tx: Sender<Json>,
    },
    Stats {
        tx: Sender<Json>,
    },
    Metrics {
        tx: Sender<Json>,
    },
    Profile {
        tx: Sender<Json>,
    },
    Vcd {
        path: Option<String>,
        ports: Vec<String>,
        tx: Sender<Json>,
    },
    /// Internal pump: advance compile/lease state without user traffic.
    Service,
    /// `tx` is `None` when the idle reaper closes the session.
    Close {
        tx: Option<Sender<Json>>,
    },
}

impl Cmd {
    /// A clone of the command's reply channel, for replies delivered
    /// outside the normal execution path (worker panic containment,
    /// teardown of a dead session's queued commands).
    fn reply_tx(&self) -> Option<Sender<Json>> {
        match self {
            Cmd::Eval { tx, .. }
            | Cmd::Run { tx, .. }
            | Cmd::Drain { tx }
            | Cmd::WaitCompile { tx }
            | Cmd::Probe { tx, .. }
            | Cmd::Stats { tx }
            | Cmd::Metrics { tx }
            | Cmd::Profile { tx }
            | Cmd::Vcd { tx, .. } => Some(tx.clone()),
            Cmd::Service => None,
            Cmd::Close { tx } => tx.clone(),
        }
    }
}

/// Bounded `$display` buffer.
struct Output {
    lines: VecDeque<String>,
    dropped: u64,
}

struct Session {
    id: u64,
    /// Handle on the session runtime's metric registry (clones share
    /// cells), so server-wide expositions can read counters without
    /// waiting for the session's worker.
    registry: Registry,
    /// The session's virtual board, shared with its runtime: FIFO input
    /// streams in directly, even while a `run` command is executing.
    board: Board,
    cmds: Mutex<VecDeque<Cmd>>,
    /// `None` while a worker has the REPL checked out.
    repl: Mutex<Option<Box<Repl>>>,
    output: Mutex<Output>,
    last_active: Mutex<Instant>,
    closed: AtomicBool,
}

struct Shared {
    config: ServeConfig,
    fleet: Fleet,
    /// The shared trace sink (a clone of `config.trace`).
    trace: TraceSink,
    queue: CompileQueue,
    /// Owns the toolchain worker threads; joined when the server drops.
    _pool: CompilePool,
    sessions: Mutex<HashMap<u64, Arc<Session>>>,
    next_session: AtomicU64,
    /// Monotonic activity clock: each user command takes a stamp, and the
    /// stamp is the session's heat for fleet arbitration (most recently
    /// active = hottest).
    activity: AtomicU64,
    runq: Mutex<VecDeque<u64>>,
    runq_cond: Condvar,
    shutdown: AtomicBool,
    /// Server-wide counters.
    evals: AtomicU64,
    total_ticks: AtomicU64,
    sessions_opened: AtomicU64,
    sessions_reaped: AtomicU64,
    /// Worker panics contained at the session isolation boundary (the
    /// session dies with a structured error; the server keeps serving).
    session_panics: AtomicU64,
}

/// The multi-tenant Cascade server: sessions, workers, fleet, compile pool.
///
/// Protocol entry points are [`Server::request`] (typed) and
/// [`Server::handle_line`] (wire). Dropping the server shuts down its
/// worker and sweeper threads and releases every session's fabric lease.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    sweeper: Option<JoinHandle<()>>,
}

impl Server {
    /// Starts a server: `config.workers` session executors, a compile pool
    /// of `config.compile_workers` threads, and the idle/service sweeper.
    pub fn new(config: ServeConfig) -> Arc<Server> {
        let pool = CompilePool::new(
            config.compile_workers.max(1),
            config.compile_queue_capacity.max(1),
            config.compile_cache_capacity.max(1),
        );
        let shared = Arc::new(Shared {
            fleet: Fleet::new(config.fabrics),
            trace: config.trace.clone(),
            queue: pool.queue(),
            _pool: pool,
            sessions: Mutex::new(HashMap::new()),
            next_session: AtomicU64::new(0),
            activity: AtomicU64::new(0),
            runq: Mutex::new(VecDeque::new()),
            runq_cond: Condvar::new(),
            shutdown: AtomicBool::new(false),
            evals: AtomicU64::new(0),
            total_ticks: AtomicU64::new(0),
            sessions_opened: AtomicU64::new(0),
            sessions_reaped: AtomicU64::new(0),
            session_panics: AtomicU64::new(0),
            config,
        });
        let workers = (0..shared.config.workers.max(1))
            .map(|_| {
                let s = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&s))
            })
            .collect();
        let sweeper = {
            let s = Arc::clone(&shared);
            Some(std::thread::spawn(move || sweeper_loop(&s)))
        };
        Arc::new(Server {
            shared,
            workers,
            sweeper,
        })
    }

    /// Handles one wire line, returning the reply line (no newline).
    pub fn handle_line(&self, line: &str) -> String {
        let reply = match Request::parse(line) {
            Ok(req) => self.request(req),
            Err(e) => err(e),
        };
        reply.to_string()
    }

    /// Handles one typed request.
    pub fn request(&self, req: Request) -> Json {
        match req {
            Request::Open => match self.open_session() {
                Ok(id) => ok([("session", id.into())]),
                Err(e) => err(e.to_string()),
            },
            Request::Attach { session } => match self.shared.session(session) {
                Some(_) => ok([("session", session.into())]),
                None => err(format!("no session {session}")),
            },
            Request::Stats { session: None } => self.server_stats(),
            Request::Metrics { session: None } => self.server_metrics(),
            Request::Metrics {
                session: Some(session),
            } => self.submit(session, false, |tx| Cmd::Metrics { tx }),
            Request::Trace {
                session,
                virtual_only,
            } => {
                let mode = if virtual_only {
                    TimeMode::VirtualOnly
                } else {
                    TimeMode::Full
                };
                let events = self.trace_events(session);
                ok([
                    ("trace", export_jsonl(&events, mode).into()),
                    ("dropped", self.shared.trace.dropped().into()),
                ])
            }
            Request::Timeline { session } => {
                let events = self.trace_events(session);
                ok([("text", render_timeline(&events).into())])
            }
            Request::Profile { session } => self.submit(session, false, |tx| Cmd::Profile { tx }),
            Request::Vcd {
                session,
                path,
                ports,
            } => self.submit(session, true, |tx| Cmd::Vcd { path, ports, tx }),
            Request::Eval { session, line } => {
                self.submit(session, true, |tx| Cmd::Eval { line, tx })
            }
            Request::Run { session, ticks } => {
                self.submit(session, true, |tx| Cmd::Run { ticks, tx })
            }
            Request::Drain { session } => self.submit(session, false, |tx| Cmd::Drain { tx }),
            Request::WaitCompile { session } => {
                self.submit(session, true, |tx| Cmd::WaitCompile { tx })
            }
            Request::Probe { session, port } => {
                self.submit(session, false, |tx| Cmd::Probe { port, tx })
            }
            Request::Fifo {
                session,
                width,
                data,
            } => {
                let Some(s) = self.shared.session(session) else {
                    return err(format!("no session {session}"));
                };
                if !(1..=64).contains(&width) {
                    return err("fifo width must be 1..=64");
                }
                *s.last_active.lock_unpoisoned() = Instant::now();
                let mut pushed = 0u64;
                for &word in &data {
                    if !s
                        .board
                        .fifo_push(cascade_bits::Bits::from_u64(width as u32, word))
                    {
                        break;
                    }
                    pushed += 1;
                }
                ok([("pushed", pushed.into())])
            }
            Request::Stats {
                session: Some(session),
            } => self.submit(session, false, |tx| Cmd::Stats { tx }),
            Request::Close { session } => {
                self.submit(session, false, |tx| Cmd::Close { tx: Some(tx) })
            }
        }
    }

    /// Creates a session: a fresh board and runtime wired to the shared
    /// fleet and compile queue, hosted on the worker pool.
    fn open_session(&self) -> Result<u64, CascadeError> {
        let id = self.shared.next_session.fetch_add(1, Ordering::Relaxed) + 1;
        let board = Board::new();
        let mut jit = self.shared.config.jit.clone();
        jit.trace = self.shared.trace.clone();
        let mut runtime = Runtime::new(board.clone(), jit)?;
        runtime.attach_compile_queue(self.shared.queue.clone());
        runtime.attach_fleet(self.shared.fleet.clone(), id);
        // Stamp this session's id on every event it records (and on the
        // compiler telemetry), so one shared ring multiplexes the fleet.
        runtime.set_trace_track(id);
        let registry = runtime.metrics_registry().clone();
        let session = Arc::new(Session {
            id,
            registry,
            board,
            cmds: Mutex::new(VecDeque::new()),
            repl: Mutex::new(Some(Box::new(Repl::new(runtime)))),
            output: Mutex::new(Output {
                lines: VecDeque::new(),
                dropped: 0,
            }),
            last_active: Mutex::new(Instant::now()),
            closed: AtomicBool::new(false),
        });
        self.shared.sessions.lock_unpoisoned().insert(id, session);
        self.shared.sessions_opened.fetch_add(1, Ordering::Relaxed);
        Ok(id)
    }

    /// Enqueues a command and blocks for its reply.
    fn submit(&self, id: u64, user_activity: bool, make: impl FnOnce(Sender<Json>) -> Cmd) -> Json {
        let Some(session) = self.shared.session(id) else {
            return err(format!("no session {id}"));
        };
        if user_activity {
            *session.last_active.lock_unpoisoned() = Instant::now();
        }
        let (tx, rx) = channel();
        session.cmds.lock_unpoisoned().push_back(make(tx));
        self.shared.wake(id);
        match rx.recv_timeout(REPLY_TIMEOUT) {
            Ok(reply) => reply,
            Err(_) => err(format!("session {id} reply timed out")),
        }
    }

    fn server_stats(&self) -> Json {
        let s = &self.shared;
        let fleet = s.fleet.stats();
        let cache = s.queue.cache();
        ok([
            (
                "sessions",
                (s.sessions.lock_unpoisoned().len() as u64).into(),
            ),
            (
                "sessions_opened",
                s.sessions_opened.load(Ordering::Relaxed).into(),
            ),
            (
                "sessions_reaped",
                s.sessions_reaped.load(Ordering::Relaxed).into(),
            ),
            ("evals", s.evals.load(Ordering::Relaxed).into()),
            ("ticks", s.total_ticks.load(Ordering::Relaxed).into()),
            ("fabrics", (fleet.capacity as u64).into()),
            ("fabrics_in_use", (fleet.in_use as u64).into()),
            ("fabric_grants", fleet.granted.into()),
            ("fabric_revocations", fleet.revocations.into()),
            ("compile_queue_depth", (s.queue.depth() as u64).into()),
            ("compiles_coalesced", s.queue.coalesced().into()),
            ("compiles_shed", s.queue.dropped().into()),
            ("cache_entries", (cache.len() as u64).into()),
            ("cache_hits", cache.hits().into()),
            ("cache_misses", cache.misses().into()),
            ("cache_evictions", cache.evictions().into()),
            (
                "session_panics",
                s.session_panics.load(Ordering::Relaxed).into(),
            ),
            ("compile_worker_panics", s.queue.worker_panics().into()),
            ("fabrics_lost", (fleet.lost as u64).into()),
            ("fabric_failures", fleet.fabric_failures.into()),
            ("trace_events", (s.trace.len() as u64).into()),
            ("trace_dropped", s.trace.dropped().into()),
        ])
    }

    /// Events from the shared ring, filtered to one session's track (the
    /// compile category rides on the submitting session's track too).
    fn trace_events(&self, session: Option<u64>) -> Vec<TraceEvent> {
        let mut events = self.shared.trace.snapshot();
        if let Some(id) = session {
            events.retain(|ev| ev.track == id);
        }
        events
    }

    /// Server-wide Prometheus exposition: every live session's registry
    /// summed (counters and histogram buckets add; a restarted session's
    /// cells simply stop contributing), plus server-level gauges.
    fn server_metrics(&self) -> Json {
        let s = &self.shared;
        let mut snaps: Vec<MetricSnapshot> = Vec::new();
        let registries: Vec<Registry> = s
            .sessions
            .lock_unpoisoned()
            .values()
            .map(|sess| sess.registry.clone())
            .collect();
        for reg in registries {
            merge(&mut snaps, reg.snapshot());
        }
        let fleet = s.fleet.stats();
        let cache = s.queue.cache();
        let gauge = |name: &str, help: &str, v: f64| MetricSnapshot {
            name: name.to_string(),
            help: help.to_string(),
            value: SnapValue::Gauge(v),
        };
        let counter = |name: &str, help: &str, v: u64| MetricSnapshot {
            name: name.to_string(),
            help: help.to_string(),
            value: SnapValue::Counter(v),
        };
        merge(
            &mut snaps,
            vec![
                gauge(
                    "serve_sessions",
                    "Live sessions",
                    s.sessions.lock_unpoisoned().len() as f64,
                ),
                counter(
                    "serve_sessions_opened_total",
                    "Sessions ever opened",
                    s.sessions_opened.load(Ordering::Relaxed),
                ),
                counter(
                    "serve_sessions_reaped_total",
                    "Sessions reaped by the idle timeout",
                    s.sessions_reaped.load(Ordering::Relaxed),
                ),
                counter(
                    "serve_evals_total",
                    "Eval commands served",
                    s.evals.load(Ordering::Relaxed),
                ),
                counter(
                    "serve_ticks_total",
                    "Virtual clock ticks run across all sessions",
                    s.total_ticks.load(Ordering::Relaxed),
                ),
                counter(
                    "serve_session_panics_total",
                    "Worker panics contained at the session boundary",
                    s.session_panics.load(Ordering::Relaxed),
                ),
                gauge("serve_fabrics", "Fleet capacity", fleet.capacity as f64),
                gauge(
                    "serve_fabrics_in_use",
                    "Fabric leases currently held",
                    fleet.in_use as f64,
                ),
                counter("serve_fabric_grants_total", "Leases granted", fleet.granted),
                counter(
                    "serve_fabric_revocations_total",
                    "Leases revoked for arbitration",
                    fleet.revocations,
                ),
                gauge(
                    "serve_compile_queue_depth",
                    "Pending jobs in the shared compile queue",
                    s.queue.depth() as f64,
                ),
                counter(
                    "serve_compiles_coalesced_total",
                    "Compile jobs coalesced onto an identical in-flight job",
                    s.queue.coalesced(),
                ),
                counter(
                    "serve_compiles_shed_total",
                    "Compile jobs shed by the bounded queue",
                    s.queue.dropped(),
                ),
                counter(
                    "serve_bitstream_cache_hits_total",
                    "Shared bitstream cache hits",
                    cache.hits(),
                ),
                counter(
                    "serve_bitstream_cache_misses_total",
                    "Shared bitstream cache misses",
                    cache.misses(),
                ),
                counter(
                    "serve_trace_events_dropped_total",
                    "Trace events dropped by the bounded ring",
                    s.trace.dropped(),
                ),
            ],
        );
        ok([("text", expose(&snaps).into())])
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.runq_cond.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(s) = self.sweeper.take() {
            let _ = s.join();
        }
        // Dropping sessions drops their runtimes, releasing fleet leases.
        self.shared.sessions.lock_unpoisoned().clear();
    }
}

impl Shared {
    fn session(&self, id: u64) -> Option<Arc<Session>> {
        self.sessions.lock_unpoisoned().get(&id).cloned()
    }

    /// Marks a session runnable and wakes one worker.
    fn wake(&self, id: u64) {
        self.runq.lock_unpoisoned().push_back(id);
        self.runq_cond.notify_one();
    }

    /// Fresh activity stamp (monotone across all sessions).
    fn stamp(&self) -> f64 {
        (self.activity.fetch_add(1, Ordering::Relaxed) + 1) as f64
    }
}

// ---------------------------------------------------------------------
// Worker: checks out a session's REPL and drains its command queue
// ---------------------------------------------------------------------

fn worker_loop(shared: &Shared) {
    loop {
        let id = {
            let mut q = shared.runq.lock_unpoisoned();
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(id) = q.pop_front() {
                    break id;
                }
                q = shared
                    .runq_cond
                    .wait(q)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some(session) = shared.session(id) else {
            continue;
        };
        // Check the REPL out; if another worker has it, that worker will
        // re-drain the queue before putting it back.
        let Some(mut repl) = session.repl.lock_unpoisoned().take() else {
            continue;
        };
        while let Some(cmd) = {
            let popped = session.cmds.lock_unpoisoned().pop_front();
            popped
        } {
            // Isolation boundary: a panic while executing one session's
            // command kills that session with a structured error. The
            // worker, the server, and every other tenant keep running.
            let reply_tx = cmd.reply_tx();
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| {
                execute(shared, &session, &mut repl, cmd);
            })) {
                shared.session_panics.fetch_add(1, Ordering::Relaxed);
                session.closed.store(true, Ordering::Relaxed);
                let msg = panic_message(payload.as_ref());
                if let Some(tx) = reply_tx {
                    let _ = tx.send(Json::obj([
                        ("ok", false.into()),
                        ("status", "panicked".into()),
                        ("error", format!("session worker panicked: {msg}").into()),
                    ]));
                }
                // Commands already queued behind the panic get an error
                // reply instead of a timeout.
                let dead: Vec<Cmd> = session.cmds.lock_unpoisoned().drain(..).collect();
                for c in dead {
                    if let Some(tx) = c.reply_tx() {
                        let _ = tx.send(err(format!(
                            "session {} closed: worker panicked: {msg}",
                            session.id
                        )));
                    }
                }
            }
            if session.closed.load(Ordering::Relaxed) {
                break;
            }
        }
        if session.closed.load(Ordering::Relaxed) {
            // Dropping the REPL drops the runtime: its `Drop` releases the
            // fabric lease and cancels any pending fleet request.
            shared.sessions.lock_unpoisoned().remove(&session.id);
            drop(repl);
        } else {
            *session.repl.lock_unpoisoned() = Some(repl);
            // A command may have arrived between the last pop and the
            // put-back; make sure it gets a worker.
            if !session.cmds.lock_unpoisoned().is_empty() {
                shared.wake(session.id);
            }
        }
    }
}

fn execute(shared: &Shared, session: &Session, repl: &mut Repl, cmd: Cmd) {
    match cmd {
        Cmd::Eval { line, tx } => {
            shared.evals.fetch_add(1, Ordering::Relaxed);
            let heat = shared.stamp();
            repl.runtime().set_heat(heat);
            let reply = match repl.line(&line) {
                ReplResponse::Evaluated(output) => ok([
                    ("status", "evaluated".into()),
                    ("output", Json::strings(output)),
                ]),
                ReplResponse::Incomplete => ok([("status", "incomplete".into())]),
                ReplResponse::Error(e) => Json::obj([
                    ("ok", false.into()),
                    ("status", "error".into()),
                    ("error", e.into()),
                ]),
            };
            let _ = tx.send(reply);
        }
        Cmd::Run { ticks, tx } => {
            // A scheduled worker fault strikes at the start of a run
            // command; the containment boundary in `worker_loop` turns it
            // into a structured session death.
            if shared.config.jit.faults.next_session_panic() {
                panic!("injected session worker panic");
            }
            let heat = shared.stamp();
            let rt = repl.runtime();
            rt.set_heat(heat);
            let mut done = 0u64;
            let mut backpressure = false;
            while done < ticks && !rt.is_finished() {
                if output_full(session, shared.config.output_capacity) {
                    backpressure = true;
                    break;
                }
                let chunk = (ticks - done).min(RUN_CHUNK);
                match rt.run_ticks(chunk) {
                    Ok(k) => {
                        push_output(session, shared.config.output_capacity, rt.drain_output());
                        if k == 0 {
                            break;
                        }
                        done += k;
                    }
                    Err(e) => {
                        let _ = tx.send(err(e.to_string()));
                        return;
                    }
                }
            }
            shared.total_ticks.fetch_add(done, Ordering::Relaxed);
            let _ = tx.send(ok([
                ("ticks", done.into()),
                ("backpressure", backpressure.into()),
                ("finished", rt.is_finished().into()),
                ("mode", mode_str(rt.mode()).into()),
                ("lease_held", rt.lease_held().into()),
            ]));
        }
        Cmd::Drain { tx } => {
            // Sweep anything still inside the runtime, then hand over the
            // whole queue.
            let pending = repl.runtime().drain_output();
            push_output(session, shared.config.output_capacity, pending);
            let mut out = session.output.lock_unpoisoned();
            let lines: Vec<String> = out.lines.drain(..).collect();
            let dropped = std::mem::take(&mut out.dropped);
            let _ = tx.send(ok([
                ("lines", Json::strings(lines)),
                ("dropped", dropped.into()),
            ]));
        }
        Cmd::WaitCompile { tx } => {
            let rt = repl.runtime();
            let reply = match wait_compile(rt) {
                Ok(()) => ok([
                    ("mode", mode_str(rt.mode()).into()),
                    ("lease_held", rt.lease_held().into()),
                    ("hw_pending", rt.stats().hw_pending.into()),
                ]),
                Err(e) => err(e.to_string()),
            };
            let _ = tx.send(reply);
        }
        Cmd::Probe { port, tx } => {
            let value = match repl.runtime().probe(&port) {
                Some(bits) => Json::from(bits.to_u64()),
                None => Json::Null,
            };
            let _ = tx.send(ok([("value", value)]));
        }
        Cmd::Stats { tx } => {
            let stats = repl.runtime().stats();
            let rt = repl.runtime();
            let out = session.output.lock_unpoisoned();
            let _ = tx.send(ok([
                ("session", session.id.into()),
                ("version", stats.version.into()),
                ("ticks", stats.ticks.into()),
                ("wall_seconds", stats.wall_seconds.into()),
                ("mode", mode_str(stats.mode).into()),
                ("lease_held", stats.lease_held.into()),
                ("hw_pending", stats.hw_pending.into()),
                ("promotions", stats.hw_promotions.into()),
                ("demotions", stats.lease_demotions.into()),
                ("compile_in_flight", stats.compile_in_flight.into()),
                ("cache_hits", stats.compile_cache_hits.into()),
                ("cache_misses", stats.compile_cache_misses.into()),
                ("cache_evictions", stats.compile_cache_evictions.into()),
                ("finished", rt.is_finished().into()),
                ("leds", rt.board().leds().to_u64().into()),
                ("output_queued", (out.lines.len() as u64).into()),
                ("output_dropped", out.dropped.into()),
                ("compile_retries", stats.compile_retries.into()),
                (
                    "compile_watchdog_cancels",
                    stats.compile_watchdog_cancels.into(),
                ),
                ("panics_contained", stats.panics_contained.into()),
                ("scrubs", stats.scrubs.into()),
                ("scrub_detections", stats.scrub_detections.into()),
                ("checkpoints_taken", stats.checkpoints_taken.into()),
                ("checkpoints_restored", stats.checkpoints_restored.into()),
                ("fabric_losses", stats.fabric_losses.into()),
            ]));
        }
        Cmd::Metrics { tx } => {
            let _ = tx.send(ok([("text", repl.runtime().metrics_text().into())]));
        }
        Cmd::Profile { tx } => {
            let reply = match repl.runtime().profile_text() {
                Some(text) => ok([("text", text.into())]),
                None => err("no profile: session has no user logic or tracing is disabled"),
            };
            let _ = tx.send(reply);
        }
        Cmd::Vcd { path, ports, tx } => {
            let rt = repl.runtime();
            let reply = match path {
                Some(path) => match rt.vcd_start(&path, &ports) {
                    Ok(()) => ok([("active", true.into()), ("path", path.as_str().into())]),
                    Err(e) => err(e.to_string()),
                },
                None => match rt.vcd_stop() {
                    Some(path) => ok([("active", false.into()), ("path", path.as_str().into())]),
                    None => ok([("active", false.into())]),
                },
            };
            let _ = tx.send(reply);
        }
        Cmd::Service => {
            // Best effort: a service fault surfaces on the next command.
            if let Err(e) = repl.runtime().service() {
                push_output(
                    session,
                    shared.config.output_capacity,
                    vec![format!("service error: {e}")],
                );
            }
        }
        Cmd::Close { tx } => {
            session.closed.store(true, Ordering::Relaxed);
            if let Some(tx) = tx {
                let _ = tx.send(ok([]));
            } else {
                shared.sessions_reaped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Blocks until any in-flight compile resolves, advancing the session's
/// modeled wall clock past the bitstream's ready time so promotion (or a
/// fleet request) happens now rather than on some later tick.
fn wait_compile(rt: &mut Runtime) -> Result<(), CascadeError> {
    rt.service()?;
    // Transient faults re-dispatch the compile with a backoff, and a hung
    // compile resolves only at its watchdog deadline — chase the wake-up
    // chain. Bounded well above any retry budget so a compiler bug cannot
    // hang the session worker.
    for _ in 0..64 {
        if !rt.stats().compile_in_flight {
            break;
        }
        rt.wait_for_compile_worker();
        if let Some(wake_at) = rt.compile_ready_at() {
            let now = rt.wall_seconds();
            if wake_at > now {
                rt.advance_wall(wake_at - now + 1e-9);
            }
        }
        rt.service()?;
    }
    Ok(())
}

fn output_full(session: &Session, capacity: usize) -> bool {
    session.output.lock_unpoisoned().lines.len() >= capacity
}

fn push_output(session: &Session, capacity: usize, lines: Vec<String>) {
    if lines.is_empty() {
        return;
    }
    let mut out = session.output.lock_unpoisoned();
    for line in lines {
        if out.lines.len() >= capacity {
            out.lines.pop_front();
            out.dropped += 1;
        }
        out.lines.push_back(line);
    }
}

fn mode_str(mode: ExecMode) -> &'static str {
    match mode {
        ExecMode::Idle => "idle",
        ExecMode::Software => "software",
        ExecMode::Hardware => "hardware",
        ExecMode::HardwareForwarded => "hardware_forwarded",
        ExecMode::Native => "native",
    }
}

// ---------------------------------------------------------------------
// Sweeper: service pump + idle reaper
// ---------------------------------------------------------------------

/// Every few milliseconds: enqueue a `Service` for idle sessions whose
/// lease/compile state machines may need to advance (the fleet names
/// tenants being revoked or holding reservations; polling everyone is
/// also how staged compiles land without user traffic), and reap sessions
/// idle past the timeout.
fn sweeper_loop(shared: &Shared) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(5));
        let sessions: Vec<Arc<Session>> = shared
            .sessions
            .lock_unpoisoned()
            .values()
            .cloned()
            .collect();
        for session in sessions {
            if session.closed.load(Ordering::Relaxed) {
                continue;
            }
            let idle_s = session
                .last_active
                .lock_unpoisoned()
                .elapsed()
                .as_secs_f64();
            let mut cmds = session.cmds.lock_unpoisoned();
            if idle_s > shared.config.idle_timeout_s {
                cmds.push_back(Cmd::Close { tx: None });
            } else if cmds.is_empty() {
                cmds.push_back(Cmd::Service);
            } else {
                continue;
            }
            drop(cmds);
            shared.wake(session.id);
        }
    }
}
