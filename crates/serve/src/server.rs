//! The TCP front end: newline-delimited JSON over a socket.
//!
//! Each accepted connection gets its own thread reading request lines and
//! writing reply lines; all protocol work happens in
//! [`Server::handle_line`], so TCP and the in-process client share one
//! code path.

use crate::session::Server;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A listening TCP endpoint over a [`Server`].
pub struct TcpServer {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept loop.
    ///
    /// # Errors
    ///
    /// Returns the bind error.
    pub fn bind(server: Arc<Server>, addr: &str) -> std::io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let server = Arc::clone(&server);
                std::thread::spawn(move || connection_loop(&server, stream));
            }
        });
        Ok(TcpServer {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn connection_loop(server: &Server, stream: TcpStream) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut writer = write_half;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let mut reply = server.handle_line(&line);
        reply.push('\n');
        if writer.write_all(reply.as_bytes()).is_err() {
            break;
        }
    }
}
