//! The trace sink: a cloneable handle over a bounded event ring buffer.
//!
//! A disabled sink is a `None` — every emit path is a single branch on
//! `Option::is_some` and performs **no allocation and no locking**. An
//! enabled sink shares one `Mutex<Ring>` between all clones (runtime,
//! compiler, serve sessions); emission sites are cold (JIT phase
//! transitions, rate-limited counters), so one short lock per event is
//! cheap. Hot-loop profiling (netlist kernels, bytecode opcodes) never
//! goes through the sink per-operation — engines keep local counters and
//! publish summaries at phase boundaries.

use crate::ctx::SpanRef;
use crate::event::{Arg, Phase, TraceEvent};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// Default ring capacity (events) for [`TraceSink::ring`].
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

struct Ring {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    seq: u64,
    dropped: u64,
}

struct SinkInner {
    ring: Mutex<Ring>,
    epoch: Instant,
}

/// A cloneable, thread-safe handle to a shared trace ring buffer.
///
/// `TraceSink::default()` is disabled: it records nothing, allocates
/// nothing, and costs one branch per emit call.
#[derive(Clone, Default)]
pub struct TraceSink {
    inner: Option<Arc<SinkInner>>,
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "TraceSink(disabled)"),
            Some(_) => write!(f, "TraceSink(enabled, {} events)", self.len()),
        }
    }
}

impl TraceSink {
    /// A disabled sink (same as `default()`).
    pub fn disabled() -> Self {
        TraceSink { inner: None }
    }

    /// An enabled sink with a bounded ring of `capacity` events. When the
    /// ring is full the **oldest** event is dropped (and counted), so the
    /// buffer always holds the most recent window — the part of the
    /// timeline a user asks about.
    pub fn ring(capacity: usize) -> Self {
        TraceSink {
            inner: Some(Arc::new(SinkInner {
                ring: Mutex::new(Ring {
                    events: VecDeque::with_capacity(capacity.min(4096)),
                    capacity: capacity.max(1),
                    seq: 0,
                    dropped: 0,
                }),
                epoch: Instant::now(),
            })),
        }
    }

    /// Whether events are being recorded. Emit sites that need to build
    /// names or arguments should guard on this first.
    #[inline(always)]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Nanoseconds of host time since this sink was created.
    pub fn host_ns(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.epoch.elapsed().as_nanos() as u64,
            None => 0,
        }
    }

    fn push(&self, mut ev: TraceEvent) {
        let Some(inner) = &self.inner else { return };
        ev.host_ns = inner.epoch.elapsed().as_nanos() as u64;
        let mut ring = inner.ring.lock().unwrap_or_else(PoisonError::into_inner);
        ev.seq = ring.seq;
        ring.seq += 1;
        if ring.events.len() >= ring.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(ev);
    }

    /// Emits a complete span on the virtual clock.
    #[inline]
    pub fn span(
        &self,
        track: u64,
        cat: &'static str,
        name: &str,
        virt_ns: u64,
        virt_dur_ns: u64,
        args: &[(&str, Arg)],
    ) {
        self.span_ctx(
            track,
            cat,
            name,
            virt_ns,
            virt_dur_ns,
            SpanRef::default(),
            0,
            args,
        );
    }

    /// Emits a complete span on the virtual clock, attributed to a request
    /// span (`at`) with an optional parent span id. A default `at` behaves
    /// exactly like [`TraceSink::span`].
    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub fn span_ctx(
        &self,
        track: u64,
        cat: &'static str,
        name: &str,
        virt_ns: u64,
        virt_dur_ns: u64,
        at: SpanRef,
        parent: u64,
        args: &[(&str, Arg)],
    ) {
        if self.inner.is_none() {
            return;
        }
        self.push(self.build(
            track,
            cat,
            name,
            Phase::Span,
            virt_ns,
            virt_dur_ns,
            true,
            at,
            parent,
            0,
            args,
        ));
    }

    /// Emits a host-clock span (`vclock = false`): `virt_ns`/`virt_dur_ns`
    /// carry *host* nanoseconds and the event is excluded from the
    /// deterministic export. Used for request root spans, whose queue/wake
    /// phases exist only in host time.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub fn host_span_ctx(
        &self,
        track: u64,
        cat: &'static str,
        name: &str,
        start_ns: u64,
        dur_ns: u64,
        at: SpanRef,
        parent: u64,
        args: &[(&str, Arg)],
    ) {
        if self.inner.is_none() {
            return;
        }
        self.push(self.build(
            track,
            cat,
            name,
            Phase::Span,
            start_ns,
            dur_ns,
            false,
            at,
            parent,
            0,
            args,
        ));
    }

    /// Emits an instant event on the virtual clock.
    #[inline]
    pub fn instant(
        &self,
        track: u64,
        cat: &'static str,
        name: &str,
        virt_ns: u64,
        args: &[(&str, Arg)],
    ) {
        self.instant_ctx(track, cat, name, virt_ns, SpanRef::default(), 0, args);
    }

    /// Emits an instant event on the virtual clock, attributed to a
    /// request span. A default `at` behaves like [`TraceSink::instant`].
    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub fn instant_ctx(
        &self,
        track: u64,
        cat: &'static str,
        name: &str,
        virt_ns: u64,
        at: SpanRef,
        parent: u64,
        args: &[(&str, Arg)],
    ) {
        if self.inner.is_none() {
            return;
        }
        self.push(self.build(
            track,
            cat,
            name,
            Phase::Instant,
            virt_ns,
            0,
            true,
            at,
            parent,
            0,
            args,
        ));
    }

    /// Emits a counter sample on the virtual clock. `args` should carry
    /// the sampled value(s), e.g. `("value", Arg::F64(rate))`.
    #[inline]
    pub fn counter(
        &self,
        track: u64,
        cat: &'static str,
        name: &str,
        virt_ns: u64,
        args: &[(&str, Arg)],
    ) {
        if self.inner.is_none() {
            return;
        }
        self.push(self.build(
            track,
            cat,
            name,
            Phase::Counter,
            virt_ns,
            0,
            true,
            SpanRef::default(),
            0,
            0,
            args,
        ));
    }

    /// Emits a host-clock-only instant (session lifecycle, sweeper
    /// activity). Excluded from the deterministic export.
    #[inline]
    pub fn host_instant(&self, track: u64, cat: &'static str, name: &str, args: &[(&str, Arg)]) {
        self.host_instant_ctx(track, cat, name, SpanRef::default(), 0, 0, args);
    }

    /// Emits a host-clock-only instant attributed to a request span, with
    /// an optional cross-request `link` (e.g. a compile-dedup join pointing
    /// at the leader's compile span). A default `at` with `parent = 0` and
    /// `link = 0` behaves like [`TraceSink::host_instant`].
    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub fn host_instant_ctx(
        &self,
        track: u64,
        cat: &'static str,
        name: &str,
        at: SpanRef,
        parent: u64,
        link: u64,
        args: &[(&str, Arg)],
    ) {
        if self.inner.is_none() {
            return;
        }
        self.push(self.build(
            track,
            cat,
            name,
            Phase::Instant,
            0,
            0,
            false,
            at,
            parent,
            link,
            args,
        ));
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        &self,
        track: u64,
        cat: &'static str,
        name: &str,
        ph: Phase,
        virt_ns: u64,
        virt_dur_ns: u64,
        vclock: bool,
        at: SpanRef,
        parent: u64,
        link: u64,
        args: &[(&str, Arg)],
    ) -> TraceEvent {
        TraceEvent {
            seq: 0,     // assigned under the ring lock
            host_ns: 0, // assigned in push()
            track,
            cat,
            name: name.to_string(),
            ph,
            virt_ns,
            virt_dur_ns,
            vclock,
            req: at.req,
            span_id: at.span,
            parent,
            link,
            args: args
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_owned_value()))
                .collect(),
        }
    }

    /// A copy of the buffered events, oldest first.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        match &self.inner {
            Some(inner) => {
                let ring = inner.ring.lock().unwrap_or_else(PoisonError::into_inner);
                ring.events.iter().cloned().collect()
            }
            None => Vec::new(),
        }
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        match &self.inner {
            Some(inner) => inner
                .ring
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .events
                .len(),
            None => 0,
        }
    }

    /// True when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events dropped to ring overflow since creation (or last `clear`).
    pub fn dropped(&self) -> u64 {
        match &self.inner {
            Some(inner) => {
                inner
                    .ring
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .dropped
            }
            None => 0,
        }
    }

    /// Total events ever emitted into this sink.
    pub fn emitted(&self) -> u64 {
        match &self.inner {
            Some(inner) => {
                inner
                    .ring
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .seq
            }
            None => 0,
        }
    }

    /// Discards all buffered events and resets the drop counter (the
    /// sequence counter keeps running so `seq` stays unique).
    pub fn clear(&self) {
        if let Some(inner) = &self.inner {
            let mut ring = inner.ring.lock().unwrap_or_else(PoisonError::into_inner);
            ring.events.clear();
            ring.dropped = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        let s = TraceSink::disabled();
        assert!(!s.enabled());
        s.span(0, "jit", "eval", 0, 10, &[("v", Arg::U64(1))]);
        s.instant(0, "jit", "x", 5, &[]);
        s.counter(0, "jit", "r", 5, &[("value", Arg::F64(1.0))]);
        assert_eq!(s.len(), 0);
        assert_eq!(s.snapshot().len(), 0);
        assert_eq!(s.dropped(), 0);
        assert_eq!(s.emitted(), 0);
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let s = TraceSink::ring(4);
        for i in 0..10u64 {
            s.instant(0, "t", "e", i, &[]);
        }
        assert_eq!(s.len(), 4);
        assert_eq!(s.dropped(), 6);
        assert_eq!(s.emitted(), 10);
        let snap = s.snapshot();
        // The survivors are the most recent four, in order.
        let ts: Vec<u64> = snap.iter().map(|e| e.virt_ns).collect();
        assert_eq!(ts, vec![6, 7, 8, 9]);
        // seq remains globally unique and ordered.
        assert!(snap.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn clones_share_one_ring() {
        let a = TraceSink::ring(16);
        let b = a.clone();
        a.instant(1, "t", "from_a", 1, &[]);
        b.instant(2, "t", "from_b", 2, &[]);
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 2);
        b.clear();
        assert_eq!(a.len(), 0);
    }

    #[test]
    fn host_clock_monotone() {
        let s = TraceSink::ring(8);
        s.instant(0, "t", "a", 0, &[]);
        s.instant(0, "t", "b", 0, &[]);
        let snap = s.snapshot();
        assert!(snap[0].host_ns <= snap[1].host_ns);
    }
}
