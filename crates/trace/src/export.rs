//! Chrome-trace / Perfetto export.
//!
//! Each event becomes one JSON object in the [Trace Event Format]: `ph`,
//! `name`, `cat`, `ts`/`dur` (microseconds), `pid`, `tid`, `args`. The
//! JSONL form (`export_jsonl`) writes one object per line — streamable and
//! easy to validate; the array form (`export_chrome_json`) wraps the same
//! objects in `[...]` so the file loads directly in `ui.perfetto.dev` or
//! `chrome://tracing`.
//!
//! Two time modes:
//!
//! - **Full** — `ts` is virtual time; `args` gains `host_ts_ns` and `seq`.
//! - **VirtualOnly** — host time and `seq` are redacted and only events
//!   with a meaningful virtual clock are kept, *sorted by virtual time*,
//!   so two runs with the same seed and fault plan export byte-identical
//!   text (the determinism contract tested in `tests/trace_pipeline.rs`).
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
use crate::event::{ArgValue, Phase, TraceEvent};

/// Which clocks appear in the export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeMode {
    /// Virtual `ts` plus host time and sequence numbers in `args`.
    Full,
    /// Deterministic: virtual clock only, host/seq redacted, events sorted.
    VirtualOnly,
}

/// Escapes a string for a JSON string literal (without the quotes).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as JSON (non-finite values clamp to 0).
pub fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    let s = format!("{v}");
    // `1e21`-style output is not valid JSON-number-parsable by some strict
    // readers; our values (rates, seconds) never reach that range, but be
    // safe and fall back to a fixed rendering.
    if s.contains('e') || s.contains('E') {
        format!("{v:.6}")
    } else {
        s
    }
}

/// Nanoseconds → Chrome trace microseconds with exact 3-decimal rendering
/// (integer arithmetic: deterministic across platforms and runs).
fn fmt_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn fmt_arg(v: &ArgValue) -> String {
    match v {
        ArgValue::U64(n) => format!("{n}"),
        ArgValue::F64(f) => fmt_f64(*f),
        ArgValue::Str(s) => format!("\"{}\"", escape_json(s)),
        ArgValue::Bool(b) => format!("{b}"),
    }
}

/// Renders one event as a Chrome trace JSON object (no trailing newline).
pub fn event_to_json(ev: &TraceEvent, mode: TimeMode) -> String {
    let mut out = String::with_capacity(128);
    out.push('{');
    out.push_str(&format!("\"ph\":\"{}\"", ev.ph.code()));
    out.push_str(&format!(",\"name\":\"{}\"", escape_json(&ev.name)));
    out.push_str(&format!(",\"cat\":\"{}\"", escape_json(ev.cat)));
    out.push_str(&format!(",\"ts\":{}", fmt_us(ev.virt_ns)));
    if ev.ph == Phase::Span {
        out.push_str(&format!(",\"dur\":{}", fmt_us(ev.virt_dur_ns)));
    }
    out.push_str(",\"pid\":1");
    out.push_str(&format!(",\"tid\":{}", ev.track));
    // Causal request context: rendered only when present, so traces from
    // context-free emitters are byte-identical to the pre-context format.
    if ev.req != 0 {
        out.push_str(&format!(
            ",\"req\":{},\"span\":{},\"parent\":{}",
            ev.req, ev.span_id, ev.parent
        ));
    }
    if ev.link != 0 {
        out.push_str(&format!(",\"link\":{}", ev.link));
    }
    out.push_str(",\"args\":{");
    let mut first = true;
    for (k, v) in &ev.args {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\"{}\":{}", escape_json(k), fmt_arg(v)));
    }
    if mode == TimeMode::Full {
        if !first {
            out.push(',');
        }
        out.push_str(&format!(
            "\"host_ts_ns\":{},\"seq\":{},\"vclock\":{}",
            ev.host_ns, ev.seq, ev.vclock
        ));
    }
    out.push_str("}}");
    out
}

/// Selects and orders events for the given mode.
fn prepare(events: &[TraceEvent], mode: TimeMode) -> Vec<&TraceEvent> {
    let mut evs: Vec<&TraceEvent> = match mode {
        TimeMode::Full => events.iter().collect(),
        TimeMode::VirtualOnly => events.iter().filter(|e| e.vclock).collect(),
    };
    match mode {
        // Full mode preserves emission order (seq).
        TimeMode::Full => evs.sort_by_key(|e| e.seq),
        // Deterministic mode orders by the virtual clock, breaking ties by
        // content so concurrent emitters cannot perturb the byte stream.
        TimeMode::VirtualOnly => evs.sort_by(|a, b| {
            (
                a.virt_ns,
                a.track,
                a.cat,
                &a.name,
                a.virt_dur_ns,
                a.req,
                a.span_id,
            )
                .cmp(&(
                    b.virt_ns,
                    b.track,
                    b.cat,
                    &b.name,
                    b.virt_dur_ns,
                    b.req,
                    b.span_id,
                ))
        }),
    }
    evs
}

/// One JSON object per line (JSONL). Ends with a trailing newline when
/// non-empty.
pub fn export_jsonl(events: &[TraceEvent], mode: TimeMode) -> String {
    let mut out = String::new();
    for ev in prepare(events, mode) {
        out.push_str(&event_to_json(ev, mode));
        out.push('\n');
    }
    out
}

/// A Chrome trace JSON array — loads directly in Perfetto.
pub fn export_chrome_json(events: &[TraceEvent], mode: TimeMode) -> String {
    let mut out = String::from("[\n");
    let evs = prepare(events, mode);
    for (i, ev) in evs.iter().enumerate() {
        out.push_str(&event_to_json(ev, mode));
        if i + 1 < evs.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push(']');
    out
}

/// The field names every exported object carries, for schema validation.
pub const SCHEMA_REQUIRED_FIELDS: &[&str] = &["ph", "name", "cat", "ts", "pid", "tid", "args"];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Arg;
    use crate::sink::TraceSink;

    fn sample_sink() -> TraceSink {
        let s = TraceSink::ring(64);
        s.span(1, "jit", "eval", 1000, 500, &[("version", Arg::U64(1))]);
        s.instant(1, "jit", "mode", 1500, &[("mode", Arg::Str("sw"))]);
        s.counter(1, "jit", "ticks_per_s", 2000, &[("value", Arg::F64(12.5))]);
        s.host_instant(1, "serve", "session_open", &[]);
        s
    }

    #[test]
    fn jsonl_one_object_per_line() {
        let s = sample_sink();
        let text = export_jsonl(&s.snapshot(), TimeMode::Full);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            for f in SCHEMA_REQUIRED_FIELDS {
                assert!(line.contains(&format!("\"{f}\"")), "missing {f} in {line}");
            }
        }
        assert!(lines[0].contains("\"dur\":0.500"));
        assert!(lines[0].contains("\"ts\":1.000"));
    }

    #[test]
    fn virtual_only_redacts_host_and_filters() {
        let s = sample_sink();
        let text = export_jsonl(&s.snapshot(), TimeMode::VirtualOnly);
        assert_eq!(text.lines().count(), 3, "host-only event filtered out");
        assert!(!text.contains("host_ts_ns"));
        assert!(!text.contains("\"seq\""));
    }

    #[test]
    fn chrome_json_is_bracketed() {
        let s = sample_sink();
        let text = export_chrome_json(&s.snapshot(), TimeMode::Full);
        assert!(text.starts_with("[\n"));
        assert!(text.ends_with(']'));
    }

    #[test]
    fn escaping() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn f64_rendering() {
        assert_eq!(fmt_f64(12.5), "12.5");
        assert_eq!(fmt_f64(f64::NAN), "0");
        assert_eq!(fmt_f64(f64::INFINITY), "0");
    }

    #[test]
    fn deterministic_mode_sorts_by_virtual_time() {
        // Emit out of order: the deterministic export sorts.
        let s = TraceSink::ring(8);
        s.instant(1, "t", "late", 100, &[]);
        s.instant(1, "t", "early", 50, &[]);
        let text = export_jsonl(&s.snapshot(), TimeMode::VirtualOnly);
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains("early"));
        assert!(lines[1].contains("late"));
    }
}
