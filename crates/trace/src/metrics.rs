//! A typed metrics registry: counters, gauges, and fixed-bucket
//! histograms, with a Prometheus-style text exposition.
//!
//! Registration is idempotent — declaring `compile_retries_total` twice
//! returns the *same* underlying cell, which is what makes counters
//! survive component swaps: the `Runtime` hands its `BackgroundCompiler` a
//! [`Counter`] handle, and replacing the compiler (e.g. when a session
//! attaches to the shared compile pool) re-fetches the same cell instead
//! of starting a fresh one at zero.
//!
//! Naming rules (checked at registration): `snake_case`
//! (`[a-z_][a-z0-9_]*`), counters end in `_total`, histograms carry a unit
//! suffix (`_seconds`, `_ticks`, ...). See DESIGN.md "Observability".

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// A monotonically increasing counter.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not attached to any registry (for tests / defaults).
    pub fn detached() -> Self {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge holding an `f64` (stored as bits in an atomic).
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A gauge not attached to any registry.
    pub fn detached() -> Self {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistState {
    /// Upper bounds of each bucket (strictly increasing); an implicit
    /// `+Inf` bucket follows.
    bounds: Vec<f64>,
    /// One count per bound, plus the `+Inf` bucket at the end.
    counts: Vec<AtomicU64>,
    sum_bits: AtomicU64,
    count: AtomicU64,
}

/// A fixed-bucket histogram (cumulative exposition, Prometheus-style).
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistState>);

impl Histogram {
    /// A histogram not attached to any registry.
    pub fn detached(bounds: &[f64]) -> Self {
        Histogram(Arc::new(HistState {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            count: AtomicU64::new(0),
        }))
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let idx = self
            .0
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.0.bounds.len());
        self.0.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        // CAS-add for the f64 sum.
        let mut cur = self.0.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.0.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }

    /// Per-bucket (non-cumulative) counts; last entry is `+Inf`.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.0
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Bucket upper bounds (without the implicit `+Inf`).
    pub fn bounds(&self) -> &[f64] {
        &self.0.bounds
    }
}

/// Default latency buckets in modeled seconds: microseconds → minutes.
pub const LATENCY_BUCKETS_S: &[f64] = &[
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
];

#[derive(Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug)]
struct Entry {
    help: String,
    metric: Metric,
}

/// A shared, cloneable registry of named metrics.
#[derive(Clone, Default, Debug)]
pub struct Registry {
    inner: Arc<Mutex<BTreeMap<String, Entry>>>,
}

/// True when `name` is legal: `[a-z_][a-z0-9_]*`.
pub fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_lowercase() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn check_name(name: &str) {
        assert!(
            valid_metric_name(name),
            "invalid metric name `{name}` (want snake_case [a-z_][a-z0-9_]*)"
        );
    }

    /// Declares (or re-fetches) a counter. Counter names end in `_total`.
    ///
    /// # Panics
    ///
    /// If the name is malformed or already registered as another kind.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        Self::check_name(name);
        let mut map = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        match map.get(name) {
            Some(Entry {
                metric: Metric::Counter(c),
                ..
            }) => c.clone(),
            Some(_) => panic!("metric `{name}` already registered with a different kind"),
            None => {
                let c = Counter::detached();
                map.insert(
                    name.to_string(),
                    Entry {
                        help: help.to_string(),
                        metric: Metric::Counter(c.clone()),
                    },
                );
                c
            }
        }
    }

    /// Declares (or re-fetches) a gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        Self::check_name(name);
        let mut map = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        match map.get(name) {
            Some(Entry {
                metric: Metric::Gauge(g),
                ..
            }) => g.clone(),
            Some(_) => panic!("metric `{name}` already registered with a different kind"),
            None => {
                let g = Gauge::detached();
                map.insert(
                    name.to_string(),
                    Entry {
                        help: help.to_string(),
                        metric: Metric::Gauge(g.clone()),
                    },
                );
                g
            }
        }
    }

    /// Declares (or re-fetches) a histogram with the given bucket bounds.
    /// Re-fetching ignores `bounds` and returns the original cell.
    pub fn histogram(&self, name: &str, help: &str, bounds: &[f64]) -> Histogram {
        Self::check_name(name);
        let mut map = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        match map.get(name) {
            Some(Entry {
                metric: Metric::Histogram(h),
                ..
            }) => h.clone(),
            Some(_) => panic!("metric `{name}` already registered with a different kind"),
            None => {
                let h = Histogram::detached(bounds);
                map.insert(
                    name.to_string(),
                    Entry {
                        help: help.to_string(),
                        metric: Metric::Histogram(h.clone()),
                    },
                );
                h
            }
        }
    }

    /// A point-in-time copy of every metric, sorted by name.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let map = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        map.iter()
            .map(|(name, e)| MetricSnapshot {
                name: name.clone(),
                help: e.help.clone(),
                value: match &e.metric {
                    Metric::Counter(c) => SnapValue::Counter(c.get()),
                    Metric::Gauge(g) => SnapValue::Gauge(g.get()),
                    Metric::Histogram(h) => SnapValue::Histogram {
                        bounds: h.bounds().to_vec(),
                        counts: h.bucket_counts(),
                        sum: h.sum(),
                        count: h.count(),
                    },
                },
            })
            .collect()
    }

    /// Renders this registry alone (see [`expose`] for merged sets).
    pub fn expose(&self) -> String {
        expose(&self.snapshot())
    }
}

/// A snapshot of one metric's value.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// Metric name.
    pub name: String,
    /// Help text.
    pub help: String,
    /// The value.
    pub value: SnapValue,
}

/// Snapshot payload per metric kind.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram buckets (non-cumulative, `+Inf` last), sum, and count.
    Histogram {
        /// Bucket upper bounds.
        bounds: Vec<f64>,
        /// Per-bucket counts (one more than `bounds`).
        counts: Vec<u64>,
        /// Sum of observations.
        sum: f64,
        /// Number of observations.
        count: u64,
    },
}

/// Merges `from` into `into` by name: counters and histogram buckets add,
/// gauges add too (a summed gauge across sessions reads as a fleet-wide
/// level, e.g. total leases held). Histograms with mismatched bounds keep
/// the first set and add only `sum`/`count`.
pub fn merge(into: &mut Vec<MetricSnapshot>, from: Vec<MetricSnapshot>) {
    for snap in from {
        match into.iter_mut().find(|m| m.name == snap.name) {
            None => into.push(snap),
            Some(existing) => match (&mut existing.value, snap.value) {
                (SnapValue::Counter(a), SnapValue::Counter(b)) => *a += b,
                (SnapValue::Gauge(a), SnapValue::Gauge(b)) => *a += b,
                (
                    SnapValue::Histogram {
                        bounds: ab,
                        counts: ac,
                        sum: asum,
                        count: acount,
                    },
                    SnapValue::Histogram {
                        bounds: bb,
                        counts: bc,
                        sum: bsum,
                        count: bcount,
                    },
                ) => {
                    if *ab == bb && ac.len() == bc.len() {
                        for (a, b) in ac.iter_mut().zip(bc) {
                            *a += b;
                        }
                    }
                    *asum += bsum;
                    *acount += bcount;
                }
                _ => {} // kind mismatch across registries: keep the first
            },
        }
    }
    into.sort_by(|a, b| a.name.cmp(&b.name));
}

fn fmt_bound(b: f64) -> String {
    crate::export::fmt_f64(b)
}

/// The metric family name: everything before a `{label="..."}` suffix.
/// Snapshot names may carry Prometheus labels (per-session series such as
/// `serve_session_output_dropped_total{session="3"}`); `HELP`/`TYPE` lines
/// must name the family, not the labeled series.
pub fn family_name(name: &str) -> &str {
    match name.find('{') {
        Some(i) => &name[..i],
        None => name,
    }
}

/// Prometheus text exposition for a snapshot set.
pub fn expose(snaps: &[MetricSnapshot]) -> String {
    let mut out = String::new();
    let mut last_family = String::new();
    for m in snaps {
        let family = family_name(&m.name);
        // Labeled series of the same family sort adjacently (the registry
        // snapshot is name-sorted); emit HELP/TYPE once per family.
        let header = family != last_family;
        last_family = family.to_string();
        match &m.value {
            SnapValue::Counter(v) => {
                if header {
                    out.push_str(&format!("# HELP {} {}\n", family, m.help));
                    out.push_str(&format!("# TYPE {family} counter\n"));
                }
                out.push_str(&format!("{} {}\n", m.name, v));
            }
            SnapValue::Gauge(v) => {
                if header {
                    out.push_str(&format!("# HELP {} {}\n", family, m.help));
                    out.push_str(&format!("# TYPE {family} gauge\n"));
                }
                out.push_str(&format!("{} {}\n", m.name, crate::export::fmt_f64(*v)));
            }
            SnapValue::Histogram {
                bounds,
                counts,
                sum,
                count,
            } => {
                if header {
                    out.push_str(&format!("# HELP {} {}\n", family, m.help));
                    out.push_str(&format!("# TYPE {family} histogram\n"));
                }
                let mut cum = 0u64;
                for (i, b) in bounds.iter().enumerate() {
                    cum += counts.get(i).copied().unwrap_or(0);
                    out.push_str(&format!(
                        "{}_bucket{{le=\"{}\"}} {}\n",
                        m.name,
                        fmt_bound(*b),
                        cum
                    ));
                }
                cum += counts.last().copied().unwrap_or(0);
                out.push_str(&format!("{}_bucket{{le=\"+Inf\"}} {}\n", m.name, cum));
                out.push_str(&format!(
                    "{}_sum {}\n",
                    m.name,
                    crate::export::fmt_f64(*sum)
                ));
                out.push_str(&format!("{}_count {}\n", m.name, count));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_idempotent_across_redeclaration() {
        let r = Registry::new();
        let a = r.counter("compile_retries_total", "retries");
        a.add(3);
        // A second component declaring the same counter gets the same cell
        // — the monotonicity guarantee behind the PR-5 satellite fix.
        let b = r.counter("compile_retries_total", "retries");
        b.inc();
        assert_eq!(a.get(), 4);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("x_total", "x");
        r.gauge("x_total", "x");
    }

    #[test]
    fn name_validation() {
        assert!(valid_metric_name("jit_ticks_total"));
        assert!(valid_metric_name("_x"));
        assert!(!valid_metric_name("BadName"));
        assert!(!valid_metric_name("9lead"));
        assert!(!valid_metric_name("has-dash"));
        assert!(!valid_metric_name(""));
    }

    #[test]
    fn histogram_buckets_and_exposition() {
        let r = Registry::new();
        let h = r.histogram("lat_seconds", "latency", &[0.1, 1.0, 10.0]);
        for v in [0.05, 0.5, 0.5, 5.0, 50.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 56.05).abs() < 1e-9);
        assert_eq!(h.bucket_counts(), vec![1, 2, 1, 1]);
        let text = r.expose();
        assert!(text.contains("lat_seconds_bucket{le=\"0.1\"} 1"));
        assert!(text.contains("lat_seconds_bucket{le=\"1\"} 3"));
        assert!(text.contains("lat_seconds_bucket{le=\"10\"} 4"));
        assert!(text.contains("lat_seconds_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("lat_seconds_count 5"));
        assert!(text.contains("# TYPE lat_seconds histogram"));
    }

    #[test]
    fn merge_sums_by_name() {
        let r1 = Registry::new();
        let r2 = Registry::new();
        r1.counter("ticks_total", "t").add(10);
        r2.counter("ticks_total", "t").add(5);
        r2.counter("only_in_two_total", "o").inc();
        r1.gauge("lease_held", "l").set(1.0);
        r2.gauge("lease_held", "l").set(1.0);
        let mut all = r1.snapshot();
        merge(&mut all, r2.snapshot());
        let find = |n: &str| all.iter().find(|m| m.name == n).unwrap().value.clone();
        assert_eq!(find("ticks_total"), SnapValue::Counter(15));
        assert_eq!(find("only_in_two_total"), SnapValue::Counter(1));
        assert_eq!(find("lease_held"), SnapValue::Gauge(2.0));
    }

    #[test]
    fn exposition_counter_and_gauge_lines() {
        let r = Registry::new();
        r.counter("a_total", "the a").add(2);
        r.gauge("depth", "queue depth").set(3.5);
        let text = r.expose();
        assert!(text.contains("# TYPE a_total counter\na_total 2\n"));
        assert!(text.contains("# TYPE depth gauge\ndepth 3.5\n"));
    }
}
