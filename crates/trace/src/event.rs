//! The structured trace event model.
//!
//! Every event carries **dual clocks** (paper Sec. 2: the user experiences
//! *modeled* time, the operator experiences host time):
//!
//! - `virt_ns` — modeled virtual time in nanoseconds, derived from the
//!   runtime's `VirtualWall`. Deterministic: two runs with the same seed
//!   and the same `FaultPlan` produce identical virtual timestamps.
//! - `host_ns` — host wall time in nanoseconds since the sink's epoch.
//!   Useful for profiling the host process; never deterministic.
//!
//! Events whose virtual timestamp is meaningful set [`TraceEvent::vclock`];
//! the deterministic exporter keeps only those and redacts `host_ns`/`seq`.

/// Event phase, mirroring the Chrome Trace Event Format `ph` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// A complete span (`ph: "X"`): has a start and a duration.
    Span,
    /// A point event (`ph: "i"`).
    Instant,
    /// A sampled counter (`ph: "C"`); the value lives in `args`.
    Counter,
}

impl Phase {
    /// The Chrome trace `ph` letter.
    pub fn code(self) -> &'static str {
        match self {
            Phase::Span => "X",
            Phase::Instant => "i",
            Phase::Counter => "C",
        }
    }

    /// Parses a Chrome trace `ph` letter.
    pub fn from_code(s: &str) -> Option<Phase> {
        match s {
            "X" => Some(Phase::Span),
            "i" => Some(Phase::Instant),
            "C" => Some(Phase::Counter),
            _ => None,
        }
    }
}

/// A borrowed argument value, used at emit sites so that building the
/// argument list allocates nothing until the sink is known to be enabled.
#[derive(Debug, Clone, Copy)]
pub enum Arg<'a> {
    /// Unsigned integer.
    U64(u64),
    /// Floating point (rates, seconds).
    F64(f64),
    /// Borrowed string.
    Str(&'a str),
    /// Boolean.
    Bool(bool),
}

/// An owned argument value, stored in the ring buffer.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer.
    U64(u64),
    /// Floating point.
    F64(f64),
    /// Owned string.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl Arg<'_> {
    /// Converts to the owned representation.
    pub fn to_owned_value(self) -> ArgValue {
        match self {
            Arg::U64(v) => ArgValue::U64(v),
            Arg::F64(v) => ArgValue::F64(v),
            Arg::Str(s) => ArgValue::Str(s.to_string()),
            Arg::Bool(b) => ArgValue::Bool(b),
        }
    }
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Emission order, assigned by the sink. Not deterministic across runs
    /// when multiple threads emit concurrently.
    pub seq: u64,
    /// Track id — the Chrome trace `tid`. By convention this is the serve
    /// session id, or 0 for a standalone runtime / server-wide events.
    pub track: u64,
    /// Category (`cat`): `"jit"`, `"compile"`, `"recover"`, `"serve"`, ...
    pub cat: &'static str,
    /// Event name: `"eval"`, `"place_route"`, `"rollback_replay"`, ...
    pub name: String,
    /// Chrome trace phase.
    pub ph: Phase,
    /// Virtual (modeled) timestamp, nanoseconds.
    pub virt_ns: u64,
    /// Virtual duration for spans, nanoseconds (0 for instants/counters).
    pub virt_dur_ns: u64,
    /// Host timestamp, nanoseconds since the sink epoch.
    pub host_ns: u64,
    /// True when `virt_ns` is meaningful and deterministic; host-side
    /// bookkeeping events (session open, sweeper activity) clear this.
    pub vclock: bool,
    /// Request id this event belongs to (causal tracing); 0 = none.
    pub req: u64,
    /// Span id within the request's tree; 0 = none.
    pub span_id: u64,
    /// Parent span id; 0 = this is the request's root (or no context).
    pub parent: u64,
    /// Cross-request span link (e.g. a compile-dedup join pointing at the
    /// leader's compile span); 0 = none.
    pub link: u64,
    /// Key/value payload, preserved in emission order.
    pub args: Vec<(String, ArgValue)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_codes_round_trip() {
        for ph in [Phase::Span, Phase::Instant, Phase::Counter] {
            assert_eq!(Phase::from_code(ph.code()), Some(ph));
        }
        assert_eq!(Phase::from_code("Z"), None);
    }

    #[test]
    fn arg_to_owned() {
        assert_eq!(Arg::U64(7).to_owned_value(), ArgValue::U64(7));
        assert_eq!(
            Arg::Str("hi").to_owned_value(),
            ArgValue::Str("hi".to_string())
        );
    }
}
