//! Causal request context.
//!
//! A [`RequestCtx`] is minted once per protocol request (at decode time)
//! and propagated through every layer the request touches — session
//! scheduling, hibernation wake, the shared compile pool, fleet
//! arbitration, and both execution engines — so that one request yields
//! one connected span tree even when its work crosses threads and crates.
//!
//! Span identifiers are derived deterministically from the request id:
//! the root span is `req << 16` and children take the low 16 bits from a
//! per-request counter. Request ids themselves are minted sequentially by
//! the server, so a seeded run reproduces the same tree.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Bits reserved for the per-request child-span counter.
const SPAN_BITS: u32 = 16;

/// A lightweight `(tenant, req, span)` triple identifying one span of one
/// request. Cheap to copy across thread and crate boundaries (compile-pool
/// jobs carry one so dedup joins can link back to the leader). A zeroed
/// ref means "no request context".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanRef {
    /// Tenant (serve session) id.
    pub tenant: u64,
    /// Request id (server-wide, minted at protocol decode).
    pub req: u64,
    /// Span id within the request's tree.
    pub span: u64,
}

impl SpanRef {
    /// Whether this ref carries a real context.
    pub fn is_some(&self) -> bool {
        self.req != 0
    }
}

/// The causal context of one in-flight request. Clones share the child
/// span counter, so every span allocated anywhere in the request's
/// lifetime gets a unique id under the same root.
#[derive(Debug, Clone)]
pub struct RequestCtx {
    /// Tenant (serve session) id the request belongs to.
    pub tenant: u64,
    /// Server-wide request id (1-based; 0 is reserved for "none").
    pub req: u64,
    next_child: Arc<AtomicU64>,
}

impl RequestCtx {
    /// Mints the context for request `req` of `tenant`.
    pub fn new(tenant: u64, req: u64) -> RequestCtx {
        RequestCtx {
            tenant,
            req,
            next_child: Arc::new(AtomicU64::new(1)),
        }
    }

    /// The root span id of this request's tree.
    pub fn root_span(&self) -> u64 {
        self.req << SPAN_BITS
    }

    /// Allocates a fresh child span id under the root. Deterministic for
    /// a deterministic allocation order (within a request, span work is
    /// effectively sequential on the session thread).
    pub fn child_span(&self) -> u64 {
        let n = self.next_child.fetch_add(1, Ordering::Relaxed);
        self.root_span() | (n & ((1 << SPAN_BITS) - 1))
    }

    /// A copyable ref to a span of this request.
    pub fn span_ref(&self, span: u64) -> SpanRef {
        SpanRef {
            tenant: self.tenant,
            req: self.req,
            span,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_ids_are_unique_under_the_root() {
        let ctx = RequestCtx::new(3, 7);
        assert_eq!(ctx.root_span(), 7 << 16);
        let a = ctx.child_span();
        let b = ctx.child_span();
        assert_ne!(a, b);
        assert_eq!(a >> 16, 7);
        assert_eq!(b >> 16, 7);
        // Clones share the counter.
        let c = ctx.clone().child_span();
        assert_ne!(c, a);
        assert_ne!(c, b);
    }

    #[test]
    fn default_span_ref_is_none() {
        assert!(!SpanRef::default().is_some());
        assert!(RequestCtx::new(1, 2).span_ref(9).is_some());
    }
}
