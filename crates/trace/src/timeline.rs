//! A human-readable timeline: the paper's "gets faster" curve as text.
//!
//! For each track (serve session), events are listed in virtual-time
//! order; `ticks_per_s` counter samples render a log-scale bar so the
//! promotion staircase — interpreter → compiled software → hardware →
//! native — is visible at a glance in a terminal.

use crate::event::{ArgValue, Phase, TraceEvent};
use std::collections::BTreeMap;

fn fmt_secs(ns: u64) -> String {
    format!("{:.6}s", ns as f64 / 1e9)
}

fn fmt_rate(r: f64) -> String {
    if r >= 1e9 {
        format!("{:.1}G", r / 1e9)
    } else if r >= 1e6 {
        format!("{:.1}M", r / 1e6)
    } else if r >= 1e3 {
        format!("{:.1}k", r / 1e3)
    } else {
        format!("{r:.1}")
    }
}

/// One `#` per decade of ticks/s: a log-scale sparkline.
fn rate_bar(r: f64) -> String {
    if r <= 1.0 {
        return String::new();
    }
    let decades = r.log10().floor().max(0.0) as usize + 1;
    "#".repeat(decades.min(12))
}

fn arg_str(v: &ArgValue) -> String {
    match v {
        ArgValue::U64(n) => format!("{n}"),
        ArgValue::F64(f) => format!("{f:.3}"),
        ArgValue::Str(s) => s.clone(),
        ArgValue::Bool(b) => format!("{b}"),
    }
}

fn args_summary(ev: &TraceEvent, skip: &[&str]) -> String {
    let parts: Vec<String> = ev
        .args
        .iter()
        .filter(|(k, _)| !skip.contains(&k.as_str()))
        .map(|(k, v)| format!("{k}={}", arg_str(v)))
        .collect();
    if parts.is_empty() {
        String::new()
    } else {
        format!(" ({})", parts.join(", "))
    }
}

fn arg_f64(ev: &TraceEvent, key: &str) -> Option<f64> {
    ev.args
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| match v {
            ArgValue::F64(f) => Some(*f),
            ArgValue::U64(n) => Some(*n as f64),
            _ => None,
        })
}

fn arg_text<'a>(ev: &'a TraceEvent, key: &str) -> Option<&'a str> {
    ev.args
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| match v {
            ArgValue::Str(s) => Some(s.as_str()),
            _ => None,
        })
}

/// Renders the timeline for every track in `events`.
pub fn render_timeline(events: &[TraceEvent]) -> String {
    let mut by_track: BTreeMap<u64, Vec<&TraceEvent>> = BTreeMap::new();
    for ev in events.iter().filter(|e| e.vclock) {
        by_track.entry(ev.track).or_default().push(ev);
    }
    if by_track.is_empty() {
        return "timeline: no virtual-clock events recorded (tracing off?)\n".to_string();
    }
    let mut out = String::new();
    for (track, mut evs) in by_track {
        evs.sort_by_key(|e| (e.virt_ns, e.seq));
        out.push_str(&format!(
            "== session {track} {}\n",
            "=".repeat(60usize.saturating_sub(12)),
        ));
        out.push_str(&format!(
            "{:>14}  {:<12} {:<10} event\n",
            "virt", "ticks/s", ""
        ));
        let mut peak_rate = 0f64;
        let mut last_mode = String::new();
        for ev in &evs {
            let t = fmt_secs(ev.virt_ns);
            match ev.ph {
                Phase::Counter if ev.name == "ticks_per_s" => {
                    let rate = arg_f64(ev, "value").unwrap_or(0.0);
                    peak_rate = peak_rate.max(rate);
                    let mode = arg_text(ev, "mode").unwrap_or(&last_mode).to_string();
                    out.push_str(&format!(
                        "{t:>14}  {:<12} {:<10} [{mode}]\n",
                        fmt_rate(rate),
                        rate_bar(rate),
                    ));
                }
                Phase::Counter => {
                    out.push_str(&format!(
                        "{t:>14}  {:<12} {:<10} {}{}\n",
                        "",
                        "",
                        ev.name,
                        args_summary(ev, &[]),
                    ));
                }
                Phase::Instant if ev.name == "mode" => {
                    let mode = arg_text(ev, "mode").unwrap_or("?").to_string();
                    out.push_str(&format!(
                        "{t:>14}  {:<12} {:<10} mode -> {mode}{}\n",
                        "",
                        "",
                        args_summary(ev, &["mode"]),
                    ));
                    last_mode = mode;
                }
                Phase::Instant => {
                    out.push_str(&format!(
                        "{t:>14}  {:<12} {:<10} * {}{}\n",
                        "",
                        "",
                        ev.name,
                        args_summary(ev, &[]),
                    ));
                }
                Phase::Span => {
                    let dur_s = ev.virt_dur_ns as f64 / 1e9;
                    out.push_str(&format!(
                        "{t:>14}  {:<12} {:<10} {} [{dur_s:.6}s]{}\n",
                        "",
                        "",
                        ev.name,
                        args_summary(ev, &[]),
                    ));
                }
            }
        }
        out.push_str(&format!(
            "   -- {} events, peak {} ticks/s, final mode {}\n",
            evs.len(),
            fmt_rate(peak_rate),
            if last_mode.is_empty() {
                "?"
            } else {
                &last_mode
            },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Arg;
    use crate::sink::TraceSink;

    #[test]
    fn renders_modes_rates_and_spans() {
        let s = TraceSink::ring(64);
        s.instant(
            1,
            "jit",
            "mode",
            0,
            &[("mode", Arg::Str("software-interp"))],
        );
        s.span(
            1,
            "compile",
            "place_route",
            0,
            14_000_000_000,
            &[("attempt", Arg::U64(1))],
        );
        s.counter(
            1,
            "jit",
            "ticks_per_s",
            1_000_000_000,
            &[
                ("value", Arg::F64(1.25e4)),
                ("mode", Arg::Str("software-interp")),
            ],
        );
        s.instant(
            1,
            "jit",
            "mode",
            15_000_000_000,
            &[("mode", Arg::Str("hardware"))],
        );
        s.counter(
            1,
            "jit",
            "ticks_per_s",
            16_000_000_000,
            &[("value", Arg::F64(2.5e6)), ("mode", Arg::Str("hardware"))],
        );
        let text = render_timeline(&s.snapshot());
        assert!(text.contains("session 1"));
        assert!(text.contains("mode -> software-interp"));
        assert!(text.contains("mode -> hardware"));
        assert!(text.contains("12.5k"));
        assert!(text.contains("2.5M"));
        assert!(text.contains("place_route"));
        assert!(text.contains("peak 2.5M ticks/s"));
        assert!(text.contains("final mode hardware"));
        // The staircase: the hardware bar is longer than the interp bar.
        let bar_interp = rate_bar(1.25e4).len();
        let bar_hw = rate_bar(2.5e6).len();
        assert!(bar_hw > bar_interp);
    }

    #[test]
    fn empty_timeline_reports_gently() {
        let text = render_timeline(&[]);
        assert!(text.contains("no virtual-clock events"));
    }
}
