//! Cascade-trace: virtual-time-aware tracing, metrics, and JIT phase
//! profiling for Cascade-rs.
//!
//! The paper's headline claim is a *user-experience curve*: a program
//! starts in the interpreter and "just gets faster" as the JIT promotes it
//! through compiled software, hardware, and native mode. This crate is the
//! instrument that makes the curve observable:
//!
//! - [`TraceSink`] — a structured span/event tracer over a bounded ring
//!   buffer, recording the JIT lifecycle (parse, elaborate, software
//!   compile, synthesis, place-and-route attempts, bitstream programming,
//!   state migration, revocation, rollback/replay, native handoff) with
//!   **dual clocks**: deterministic modeled virtual time and host wall
//!   time. A disabled sink is a no-op costing one branch.
//! - [`export_jsonl`] / [`export_chrome_json`] — Chrome-trace/Perfetto
//!   compatible export; [`TimeMode::VirtualOnly`] is byte-identical across
//!   runs with the same seed and `FaultPlan`.
//! - [`render_timeline`] — the "gets faster" curve as terminal text.
//! - [`Registry`] — typed counters/gauges/fixed-bucket histograms with a
//!   Prometheus-style text exposition; counters are declared once and
//!   survive component swaps because redeclaration returns the same cell.
//!
//! ```
//! use cascade_trace::{Arg, Registry, TimeMode, TraceSink};
//!
//! let sink = TraceSink::ring(1024);
//! sink.span(1, "compile", "place_route", 0, 14_000_000_000,
//!           &[("attempt", Arg::U64(1))]);
//! let jsonl = cascade_trace::export_jsonl(&sink.snapshot(), TimeMode::VirtualOnly);
//! assert!(jsonl.contains("\"name\":\"place_route\""));
//!
//! let reg = Registry::new();
//! let retries = reg.counter("compile_retries_total", "toolchain retries");
//! retries.inc();
//! assert!(reg.expose().contains("compile_retries_total 1"));
//! ```

mod ctx;
mod event;
mod export;
mod metrics;
mod sink;
mod timeline;

pub use ctx::{RequestCtx, SpanRef};
pub use event::{Arg, ArgValue, Phase, TraceEvent};
pub use export::{
    escape_json, event_to_json, export_chrome_json, export_jsonl, fmt_f64, TimeMode,
    SCHEMA_REQUIRED_FIELDS,
};
pub use metrics::{
    expose, family_name, merge, valid_metric_name, Counter, Gauge, Histogram, MetricSnapshot,
    Registry, SnapValue, LATENCY_BUCKETS_S,
};
pub use sink::{TraceSink, DEFAULT_RING_CAPACITY};
pub use timeline::render_timeline;
