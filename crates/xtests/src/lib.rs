//! Integration-test host crate. The tests live in the workspace-level
//! `tests/` directory (see `Cargo.toml` test targets); this library is
//! intentionally empty.
