use crate::{instantiate, is_stdlib_module, stdlib_modules, Peripheral};
use cascade_bits::Bits;
use cascade_fpga::Board;
use cascade_verilog::typecheck::ParamEnv;

#[test]
fn declarations_parse_and_cover_all_names() {
    let mods = stdlib_modules();
    let names: Vec<_> = mods.iter().map(|m| m.name.as_str()).collect();
    for expected in crate::STDLIB_MODULE_NAMES {
        assert!(
            names.contains(expected),
            "missing declaration for {expected}"
        );
    }
}

#[test]
fn stdlib_name_predicate() {
    assert!(is_stdlib_module("Clock"));
    assert!(is_stdlib_module("FIFO"));
    assert!(!is_stdlib_module("Rol"));
}

#[test]
fn instantiate_by_name() {
    let board = Board::new();
    for name in ["Pad", "Led", "Reset", "GPIO", "Memory", "FIFO"] {
        assert!(
            instantiate(name, &ParamEnv::new(), &board).is_some(),
            "{name}"
        );
    }
    assert!(instantiate("Clock", &ParamEnv::new(), &board).is_none());
    assert!(instantiate("Rol", &ParamEnv::new(), &board).is_none());
}

#[test]
fn pad_reflects_board_buttons() {
    let board = Board::new();
    let mut pad = instantiate("Pad", &ParamEnv::new(), &board).unwrap();
    assert_eq!(pad.outputs()[0].1.to_u64(), 0);
    board.set_button(1, true);
    // Pads sample the board at end_step, not instantly.
    assert_eq!(pad.outputs()[0].1.to_u64(), 0);
    pad.end_step();
    assert_eq!(pad.outputs()[0].1.to_u64(), 0b0010);
}

#[test]
fn led_drives_board() {
    let board = Board::new();
    let mut led = instantiate("Led", &ParamEnv::new(), &board).unwrap();
    led.set_input("val", &Bits::from_u64(8, 0x81));
    assert_eq!(board.leds().to_u64(), 0x81);
}

#[test]
fn led_width_parameter() {
    let board = Board::new();
    let params = ParamEnv::from([("WIDTH".to_string(), Bits::from_u64(32, 4))]);
    let mut led = instantiate("Led", &params, &board).unwrap();
    led.set_input("val", &Bits::from_u64(8, 0xff));
    assert_eq!(board.leds().to_u64(), 0x0f, "masked to 4 bits");
}

#[test]
fn reset_follows_board() {
    let board = Board::new();
    let mut rst = instantiate("Reset", &ParamEnv::new(), &board).unwrap();
    assert!(!rst.outputs()[0].1.to_bool());
    board.set_reset(true);
    rst.end_step();
    assert!(rst.outputs()[0].1.to_bool());
}

#[test]
fn gpio_round_trip() {
    let board = Board::new();
    let mut gpio = instantiate("GPIO", &ParamEnv::new(), &board).unwrap();
    board.set_gpio(Bits::from_u64(32, 0x1234));
    gpio.end_step();
    let outs = gpio.outputs();
    assert_eq!(outs[0].1.to_u64(), 0x1234);
    gpio.set_input("out", &Bits::from_u64(32, 0x77));
    assert_eq!(board.gpio_out().to_u64(), 0x77);
}

#[test]
fn memory_sync_write_async_read() {
    let mut mem = crate::Memory::new(4, 8);
    mem.set_input("raddr", &Bits::from_u64(4, 3));
    assert_eq!(mem.outputs()[0].1.to_u64(), 0);
    mem.set_input("wen", &Bits::from_u64(1, 1));
    mem.set_input("waddr", &Bits::from_u64(4, 3));
    mem.set_input("wdata", &Bits::from_u64(8, 0xcd));
    // Write does not land until the clock edge.
    assert_eq!(mem.outputs()[0].1.to_u64(), 0);
    mem.posedge();
    assert_eq!(mem.outputs()[0].1.to_u64(), 0xcd);
}

#[test]
fn memory_state_transfer() {
    let mut a = crate::Memory::new(4, 8);
    a.set_input("wen", &Bits::from_u64(1, 1));
    a.set_input("waddr", &Bits::from_u64(4, 9));
    a.set_input("wdata", &Bits::from_u64(8, 0x42));
    a.posedge();
    let snap = a.get_state();
    let mut b = crate::Memory::new(4, 8);
    b.set_state(&snap);
    b.set_input("raddr", &Bits::from_u64(4, 9));
    assert_eq!(b.outputs()[0].1.to_u64(), 0x42);
}

#[test]
fn fifo_pop_commits_at_edge() {
    let board = Board::new();
    board.fifo_push(Bits::from_u64(8, 11));
    board.fifo_push(Bits::from_u64(8, 22));
    let mut fifo = crate::Fifo::new(board.clone(), 8);
    let empty = |f: &crate::Fifo| {
        f.outputs()
            .iter()
            .find(|(n, _)| n == "empty")
            .unwrap()
            .1
            .to_bool()
    };
    assert!(!empty(&fifo));
    fifo.set_input("rreq", &Bits::from_u64(1, 1));
    fifo.posedge();
    let rdata = fifo
        .outputs()
        .iter()
        .find(|(n, _)| n == "rdata")
        .unwrap()
        .1
        .clone();
    assert_eq!(rdata.to_u64(), 11);
    fifo.posedge();
    let rdata = fifo
        .outputs()
        .iter()
        .find(|(n, _)| n == "rdata")
        .unwrap()
        .1
        .clone();
    assert_eq!(rdata.to_u64(), 22);
    assert!(empty(&fifo));
    assert_eq!(board.fifo_pops(), 2);
}

#[test]
fn fifo_write_side() {
    let board = Board::new();
    let mut fifo = crate::Fifo::new(board.clone(), 8);
    fifo.set_input("wreq", &Bits::from_u64(1, 1));
    fifo.set_input("wdata", &Bits::from_u64(8, 0x5a));
    fifo.posedge();
    let out = board.fifo_out_drain();
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].to_u64(), 0x5a);
}

#[test]
fn fifo_holds_rdata_when_empty() {
    let board = Board::new();
    board.fifo_push(Bits::from_u64(8, 7));
    let mut fifo = crate::Fifo::new(board, 8);
    fifo.set_input("rreq", &Bits::from_u64(1, 1));
    fifo.posedge();
    fifo.posedge(); // empty now: rdata holds
    let rdata = fifo
        .outputs()
        .iter()
        .find(|(n, _)| n == "rdata")
        .unwrap()
        .1
        .clone();
    assert_eq!(rdata.to_u64(), 7);
}

#[test]
fn fifo_counts_bus_words() {
    let board = Board::new();
    board.fifo_push(Bits::from_u64(8, 1));
    board.fifo_push(Bits::from_u64(8, 2));
    let mut fifo = crate::Fifo::new(board.clone(), 8);
    assert_eq!(fifo.take_bus_words(), 0);
    fifo.set_input("rreq", &Bits::from_u64(1, 1));
    fifo.posedge();
    fifo.posedge();
    assert_eq!(fifo.take_bus_words(), 2, "one bus word per pop");
    assert_eq!(fifo.take_bus_words(), 0, "drained");
    fifo.set_input("rreq", &Bits::from_u64(1, 0));
    fifo.set_input("wreq", &Bits::from_u64(1, 1));
    fifo.set_input("wdata", &Bits::from_u64(8, 9));
    fifo.posedge();
    assert_eq!(fifo.take_bus_words(), 1, "pushes cross the bus too");
}

#[test]
fn pad_and_led_are_free_of_bus_cost() {
    let board = Board::new();
    let mut pad = crate::Pad::new(board.clone(), 4);
    let mut led = crate::Led::new(board, 8);
    pad.end_step();
    led.set_input("val", &Bits::from_u64(8, 3));
    assert_eq!(pad.take_bus_words(), 0);
    assert_eq!(led.take_bus_words(), 0);
}
