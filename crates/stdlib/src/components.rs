//! Concrete standard-library components.

use crate::Peripheral;
use cascade_bits::Bits;
use cascade_fpga::Board;
use std::collections::BTreeMap;

/// `Pad`: button inputs driven by the board.
#[derive(Debug)]
pub struct Pad {
    board: Board,
    width: u32,
    val: Bits,
}

impl Pad {
    /// Binds a pad bank of `width` buttons to the board.
    pub fn new(board: Board, width: u32) -> Self {
        let val = board.buttons().resize(width);
        Pad { board, width, val }
    }
}

impl Peripheral for Pad {
    fn module_name(&self) -> &'static str {
        "Pad"
    }

    fn outputs(&self) -> Vec<(String, Bits)> {
        vec![("val".to_string(), self.val.clone())]
    }

    fn set_input(&mut self, _port: &str, _value: &Bits) {}

    fn end_step(&mut self) {
        self.val = self.board.buttons().resize(self.width);
    }
}

/// `Led`: an output bank mirrored to the board.
#[derive(Debug)]
pub struct Led {
    board: Board,
    width: u32,
    val: Bits,
}

impl Led {
    /// Binds an LED bank of `width` lights to the board.
    pub fn new(board: Board, width: u32) -> Self {
        Led {
            board,
            width,
            val: Bits::zero(width),
        }
    }
}

impl Peripheral for Led {
    fn module_name(&self) -> &'static str {
        "Led"
    }

    fn outputs(&self) -> Vec<(String, Bits)> {
        Vec::new()
    }

    fn set_input(&mut self, port: &str, value: &Bits) {
        if port == "val" {
            self.val = value.resize(self.width);
            self.board.write_leds(self.val.clone());
        }
    }
}

/// `Reset`: the board's reset line.
#[derive(Debug)]
pub struct Reset {
    board: Board,
    val: bool,
}

impl Reset {
    /// Binds to the board's reset line.
    pub fn new(board: Board) -> Self {
        let val = board.reset();
        Reset { board, val }
    }
}

impl Peripheral for Reset {
    fn module_name(&self) -> &'static str {
        "Reset"
    }

    fn outputs(&self) -> Vec<(String, Bits)> {
        vec![("val".to_string(), Bits::from_bool(self.val))]
    }

    fn set_input(&mut self, _port: &str, _value: &Bits) {}

    fn end_step(&mut self) {
        self.val = self.board.reset();
    }
}

/// `GPIO`: general-purpose pins in both directions.
#[derive(Debug)]
pub struct Gpio {
    board: Board,
    width: u32,
    in_val: Bits,
}

impl Gpio {
    /// Binds a GPIO bank to the board.
    pub fn new(board: Board, width: u32) -> Self {
        let in_val = board.gpio_in().resize(width);
        Gpio {
            board,
            width,
            in_val,
        }
    }
}

impl Peripheral for Gpio {
    fn module_name(&self) -> &'static str {
        "GPIO"
    }

    fn outputs(&self) -> Vec<(String, Bits)> {
        vec![("in".to_string(), self.in_val.clone())]
    }

    fn set_input(&mut self, port: &str, value: &Bits) {
        if port == "out" {
            self.board.write_gpio(value.resize(self.width));
        }
    }

    fn end_step(&mut self) {
        self.in_val = self.board.gpio_in().resize(self.width);
    }
}

/// `Memory`: a synchronous-write, asynchronous-read RAM block.
#[derive(Debug)]
pub struct Memory {
    addr_width: u32,
    width: u32,
    words: Vec<Bits>,
    raddr: u64,
    wen: bool,
    waddr: u64,
    wdata: Bits,
}

impl Memory {
    /// Creates a RAM of `2^addr_width` words of `width` bits.
    pub fn new(addr_width: u32, width: u32) -> Self {
        let n = 1usize << addr_width.min(24);
        Memory {
            addr_width,
            width,
            words: vec![Bits::zero(width); n],
            raddr: 0,
            wen: false,
            waddr: 0,
            wdata: Bits::zero(width),
        }
    }
}

impl Peripheral for Memory {
    fn module_name(&self) -> &'static str {
        "Memory"
    }

    fn outputs(&self) -> Vec<(String, Bits)> {
        let rdata = self
            .words
            .get(self.raddr as usize)
            .cloned()
            .unwrap_or_else(|| Bits::zero(self.width));
        vec![("rdata".to_string(), rdata)]
    }

    fn set_input(&mut self, port: &str, value: &Bits) {
        match port {
            "raddr" => self.raddr = value.to_u64() & ((1 << self.addr_width.min(63)) - 1),
            "wen" => self.wen = value.to_bool(),
            "waddr" => self.waddr = value.to_u64() & ((1 << self.addr_width.min(63)) - 1),
            "wdata" => self.wdata = value.resize(self.width),
            _ => {}
        }
    }

    fn posedge(&mut self) {
        if self.wen {
            if let Some(slot) = self.words.get_mut(self.waddr as usize) {
                *slot = self.wdata.clone();
            }
        }
    }

    fn get_state(&self) -> BTreeMap<String, Vec<Bits>> {
        BTreeMap::from([("words".to_string(), self.words.clone())])
    }

    fn set_state(&mut self, state: &BTreeMap<String, Vec<Bits>>) {
        if let Some(words) = state.get("words") {
            for (dst, src) in self.words.iter_mut().zip(words) {
                *dst = src.resize(self.width);
            }
        }
    }
}

/// `FIFO`: the host-coupled queue used by the streaming benchmarks
/// (paper Sec. 6.2). Reads pop the board's host→FPGA queue; writes push to
/// the FPGA→host queue. Pops commit at the clock edge; `empty`/`full` are
/// combinational.
#[derive(Debug)]
pub struct Fifo {
    board: Board,
    width: u32,
    rreq: bool,
    wreq: bool,
    wdata: Bits,
    rdata: Bits,
    bus_words: u64,
}

impl Fifo {
    /// Binds a FIFO endpoint of `width`-bit tokens to the board.
    pub fn new(board: Board, width: u32) -> Self {
        Fifo {
            board,
            width,
            rreq: false,
            wreq: false,
            wdata: Bits::zero(width),
            rdata: Bits::zero(width),
            bus_words: 0,
        }
    }
}

impl Peripheral for Fifo {
    fn module_name(&self) -> &'static str {
        "FIFO"
    }

    fn outputs(&self) -> Vec<(String, Bits)> {
        vec![
            ("rdata".to_string(), self.rdata.clone()),
            (
                "empty".to_string(),
                Bits::from_bool(!self.board.fifo_nonempty()),
            ),
            ("full".to_string(), Bits::from_bool(self.board.fifo_full())),
        ]
    }

    fn set_input(&mut self, port: &str, value: &Bits) {
        match port {
            "rreq" => self.rreq = value.to_bool(),
            "wreq" => self.wreq = value.to_bool(),
            "wdata" => self.wdata = value.resize(self.width),
            _ => {}
        }
    }

    fn posedge(&mut self) {
        if self.rreq {
            if let Some(v) = self.board.fifo_pop() {
                self.rdata = v.resize(self.width);
                self.bus_words += 1;
            }
        }
        if self.wreq {
            self.board.fifo_out_push(self.wdata.clone());
            self.bus_words += 1;
        }
    }

    // The staged head token was already popped from the board, so it must
    // migrate (and roll back) with the engines: losing it across a swap or
    // checkpoint restore would silently drop one token from the stream.
    fn get_state(&self) -> BTreeMap<String, Vec<Bits>> {
        BTreeMap::from([("rdata".to_string(), vec![self.rdata.clone()])])
    }

    fn set_state(&mut self, state: &BTreeMap<String, Vec<Bits>>) {
        if let Some(r) = state.get("rdata").and_then(|v| v.first()) {
            self.rdata = r.resize(self.width);
        }
    }

    fn take_bus_words(&mut self) -> u64 {
        std::mem::take(&mut self.bus_words)
    }
}
