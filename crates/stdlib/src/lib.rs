//! Cascade's standard library (paper Sec. 3.2): IO peripherals and common
//! components exposed to Verilog as pre-declared module types.
//!
//! `Clock`, `Pad`, and `Led` are implicitly instantiated when the runtime
//! starts; `Reset`, `GPIO`, `Memory`, and `FIFO` may be instantiated at the
//! user's discretion. Each component is a [`Peripheral`]: a Rust object
//! bound to the virtual [`Board`] that both software-engine scheduling and
//! forwarded hardware-engine execution can drive. This is what makes IO
//! side effects visible in *every* compilation state — the portability and
//! interactivity story of the paper.

use cascade_bits::Bits;
use cascade_fpga::Board;
use cascade_verilog::ast::Module;
use cascade_verilog::typecheck::ParamEnv;
use std::collections::BTreeMap;
use std::fmt;

mod components;

pub use components::{Fifo, Gpio, Led, Memory, Pad, Reset};

/// The Verilog interface declarations for every standard-library module.
///
/// These are inserted into the runtime's module library at startup so user
/// code can reference `pad.val`, instantiate `FIFO #(8) f();`, and so on.
pub const STDLIB_DECLARATIONS: &str = r#"
module Clock(output wire val); endmodule

module Pad #(parameter WIDTH = 4)(output wire [WIDTH-1:0] val); endmodule

module Led #(parameter WIDTH = 8)(input wire [WIDTH-1:0] val); endmodule

module Reset(output wire val); endmodule

module GPIO #(parameter WIDTH = 32)(
  input wire [WIDTH-1:0] out,
  output wire [WIDTH-1:0] in
); endmodule

module Memory #(parameter ADDR = 8, parameter WIDTH = 8)(
  input wire [ADDR-1:0] raddr,
  output wire [WIDTH-1:0] rdata,
  input wire wen,
  input wire [ADDR-1:0] waddr,
  input wire [WIDTH-1:0] wdata
); endmodule

module FIFO #(parameter WIDTH = 8)(
  input wire rreq,
  output wire [WIDTH-1:0] rdata,
  output wire empty,
  input wire wreq,
  input wire [WIDTH-1:0] wdata,
  output wire full
); endmodule
"#;

/// Names of the standard-library module types.
pub const STDLIB_MODULE_NAMES: &[&str] =
    &["Clock", "Pad", "Led", "Reset", "GPIO", "Memory", "FIFO"];

/// Whether a module name belongs to the standard library.
pub fn is_stdlib_module(name: &str) -> bool {
    STDLIB_MODULE_NAMES.contains(&name)
}

/// Parses the standard-library declarations.
///
/// # Panics
///
/// Panics only on an internal syntax error, which the test suite guards.
pub fn stdlib_modules() -> Vec<Module> {
    let unit =
        cascade_verilog::parse(STDLIB_DECLARATIONS).expect("stdlib declarations always parse");
    unit.items
        .into_iter()
        .filter_map(|i| match i {
            cascade_verilog::ast::Item::Module(m) => Some(m),
            _ => None,
        })
        .collect()
}

/// A standard-library component instance: Rust-implemented behaviour behind
/// a Verilog port interface.
///
/// Components are *synchronous* where it matters (FIFO pops, memory writes
/// commit at the virtual clock's rising edge) and combinational elsewhere
/// (`empty`, `rdata` of Memory), mirroring ordinary vendor IP.
pub trait Peripheral: Send {
    /// The stdlib module type this instance implements.
    fn module_name(&self) -> &'static str;

    /// Current values of all output ports.
    fn outputs(&self) -> Vec<(String, Bits)>;

    /// Drives one input port.
    fn set_input(&mut self, port: &str, value: &Bits);

    /// Called at each rising edge of the virtual clock (synchronous
    /// behaviour such as FIFO pops).
    fn posedge(&mut self) {}

    /// Called at each observable state (poll external inputs).
    fn end_step(&mut self) {}

    /// Snapshot internal state for engine migration (memories).
    fn get_state(&self) -> BTreeMap<String, Vec<Bits>> {
        BTreeMap::new()
    }

    /// Restore internal state.
    fn set_state(&mut self, _state: &BTreeMap<String, Vec<Bits>>) {}

    /// Host-bus words moved since the last call. On-board pins (buttons,
    /// LEDs, GPIO) cost nothing; host-coupled components (the FIFO) cross
    /// the memory-mapped IO bus once per token — the bottleneck behind the
    /// paper's Fig. 12 rates.
    fn take_bus_words(&mut self) -> u64 {
        0
    }
}

impl fmt::Debug for dyn Peripheral {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Peripheral({})", self.module_name())
    }
}

/// Instantiates a peripheral by stdlib module name with resolved parameter
/// overrides, bound to `board`. Returns `None` for non-stdlib names and for
/// `Clock` (the clock is the runtime's tick source, not a peripheral).
pub fn instantiate(name: &str, params: &ParamEnv, board: &Board) -> Option<Box<dyn Peripheral>> {
    let width = |key: &str, default: u64| -> u32 {
        params
            .get(key)
            .map(|b| b.to_u64() as u32)
            .unwrap_or(default as u32)
    };
    Some(match name {
        "Pad" => Box::new(Pad::new(board.clone(), width("WIDTH", 4))),
        "Led" => Box::new(Led::new(board.clone(), width("WIDTH", 8))),
        "Reset" => Box::new(Reset::new(board.clone())),
        "GPIO" => Box::new(Gpio::new(board.clone(), width("WIDTH", 32))),
        "Memory" => Box::new(Memory::new(width("ADDR", 8), width("WIDTH", 8))),
        "FIFO" => Box::new(Fifo::new(board.clone(), width("WIDTH", 8))),
        _ => return None,
    })
}

#[cfg(test)]
mod tests;
