//! Backend dispatch for the software engine: the tree-walking
//! [`Simulator`] (the semantic oracle) or the bytecode [`CompiledSim`],
//! behind one enum so `SwEngine` and the runtime select a backend with a
//! config knob and everything downstream stays untouched.

use crate::elaborate::Design;
use crate::exec::CompiledSim;
use crate::rir::VarId;
use crate::sim::{SimError, SimEvent, Simulator};
use cascade_bits::Bits;
use std::sync::Arc;

/// A software simulation backend: same design, same observable semantics,
/// different execution strategy.
pub enum SwSim {
    /// The recursive tree-walking interpreter.
    Tree(Simulator),
    /// The compiled bytecode executor.
    Compiled(CompiledSim),
}

macro_rules! delegate {
    ($self:ident, $sim:ident => $body:expr) => {
        match $self {
            SwSim::Tree($sim) => $body,
            SwSim::Compiled($sim) => $body,
        }
    };
}

impl SwSim {
    /// Creates a backend of the requested flavor over `design`.
    pub fn new(design: Arc<Design>, compiled: bool) -> SwSim {
        if compiled {
            SwSim::Compiled(CompiledSim::new(design))
        } else {
            SwSim::Tree(Simulator::new(design))
        }
    }

    /// `"compiled"` or `"tree"` (stats and log lines).
    pub fn backend_name(&self) -> &'static str {
        match self {
            SwSim::Tree(_) => "tree",
            SwSim::Compiled(_) => "compiled",
        }
    }

    /// The compiled backend, if that is what this is.
    pub fn as_compiled_mut(&mut self) -> Option<&mut CompiledSim> {
        match self {
            SwSim::Compiled(c) => Some(c),
            SwSim::Tree(_) => None,
        }
    }

    /// Switches on execution profiling (compiled backend only; the tree
    /// interpreter has no bytecode to attribute and ignores this).
    pub fn enable_profiling(&mut self) {
        if let SwSim::Compiled(c) = self {
            c.enable_profiling();
        }
    }

    /// The collected execution profile, if profiling is enabled.
    pub fn profile_report(&self) -> Option<crate::SwProfileReport> {
        match self {
            SwSim::Compiled(c) => c.profile_report(),
            SwSim::Tree(_) => None,
        }
    }

    /// The design being simulated.
    pub fn design(&self) -> &Arc<Design> {
        delegate!(self, s => s.design())
    }

    /// Process activations so far (profiling; drives the cost model).
    pub fn activations(&self) -> u64 {
        delegate!(self, s => s.activations)
    }

    /// Statements executed so far (profiling; drives the cost model).
    pub fn statements(&self) -> u64 {
        delegate!(self, s => s.statements)
    }

    /// Current simulation time.
    pub fn time(&self) -> u64 {
        delegate!(self, s => s.time())
    }

    /// Whether `$finish` has executed.
    pub fn is_finished(&self) -> bool {
        delegate!(self, s => s.is_finished())
    }

    /// Runs `initial` blocks and settles time zero.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on combinational loops or runaway processes.
    pub fn initialize(&mut self) -> Result<(), SimError> {
        delegate!(self, s => s.initialize())
    }

    /// Re-settles combinational logic after [`SwSim::force`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on combinational loops.
    pub fn resettle(&mut self) -> Result<(), SimError> {
        delegate!(self, s => s.resettle())
    }

    /// Runs evaluation/update phases to a fixed point.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on combinational loops or runaway processes.
    pub fn settle(&mut self) -> Result<(), SimError> {
        delegate!(self, s => s.settle())
    }

    /// Runs one evaluation phase, leaving nonblocking updates pending.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on combinational loops or runaway processes.
    pub fn eval_phase(&mut self) -> Result<(), SimError> {
        delegate!(self, s => s.eval_phase())
    }

    /// Applies pending nonblocking updates.
    pub fn apply_updates(&mut self) {
        delegate!(self, s => s.apply_updates())
    }

    /// Whether evaluation events are active.
    pub fn has_evals(&self) -> bool {
        delegate!(self, s => s.has_evals())
    }

    /// Whether nonblocking updates are pending.
    pub fn has_updates(&self) -> bool {
        delegate!(self, s => s.has_updates())
    }

    /// Runs `$monitor` checks (end of a scheduler step).
    pub fn end_step(&mut self) {
        delegate!(self, s => s.end_step())
    }

    /// Advances logical time by one tick.
    pub fn advance_time(&mut self) {
        delegate!(self, s => s.advance_time())
    }

    /// One full clock cycle on `clk` by var id.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from settling.
    pub fn tick_id(&mut self, clk: VarId) -> Result<(), SimError> {
        delegate!(self, s => s.tick_id(clk))
    }

    /// Batched open-loop run: up to `max` cycles, stopping early at
    /// `$finish` or the first observable event. Returns completed cycles.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from settling.
    pub fn tick_n(&mut self, clk: VarId, max: u64) -> Result<u64, SimError> {
        match self {
            SwSim::Compiled(c) => c.tick_n(clk, max),
            SwSim::Tree(s) => {
                let mut done = 0;
                while done < max && !s.is_finished() {
                    s.tick_id(clk)?;
                    done += 1;
                    if s.has_events() {
                        break;
                    }
                }
                Ok(done)
            }
        }
    }

    /// Reads a variable by id.
    pub fn peek_id(&self, id: VarId) -> Bits {
        delegate!(self, s => s.peek_id(id))
    }

    /// Reads one word of a memory.
    pub fn peek_array(&self, id: VarId, index: u64) -> Bits {
        delegate!(self, s => s.peek_array(id, index))
    }

    /// Sets a variable by id, scheduling dependents on change.
    pub fn poke_id(&mut self, id: VarId, value: Bits) {
        delegate!(self, s => s.poke_id(id, value))
    }

    /// Writes a memory word without triggering events.
    pub fn poke_array(&mut self, id: VarId, index: u64, value: Bits) {
        delegate!(self, s => s.poke_array(id, index, value))
    }

    /// Forces a value without triggering events (state restoration).
    pub fn force(&mut self, id: VarId, value: Bits) {
        delegate!(self, s => s.force(id, value))
    }

    /// Drains accumulated side-effect events.
    pub fn drain_events(&mut self) -> Vec<SimEvent> {
        delegate!(self, s => s.drain_events())
    }

    /// Whether any events are pending.
    pub fn has_events(&self) -> bool {
        delegate!(self, s => s.has_events())
    }

    /// Seeds `$random`.
    pub fn seed_random(&mut self, seed: u64) {
        delegate!(self, s => s.seed_random(seed))
    }
}
