use crate::{elaborate, library_from_source, SimError, SimEvent, Simulator};
use cascade_bits::Bits;
use cascade_verilog::typecheck::ParamEnv;
use std::sync::Arc;

fn sim_of(src: &str, top: &str) -> Simulator {
    let lib = library_from_source(src).expect("parse");
    let design = elaborate(top, &lib, &ParamEnv::new()).expect("elaborate");
    let mut sim = Simulator::new(Arc::new(design));
    sim.initialize().expect("initialize");
    sim
}

#[test]
fn counter_counts() {
    let mut sim = sim_of(
        "module Count(input wire clk, output wire [7:0] o);\n\
         reg [7:0] c = 0;\n\
         always @(posedge clk) c <= c + 1;\n\
         assign o = c;\nendmodule",
        "Count",
    );
    for _ in 0..10 {
        sim.tick("clk").unwrap();
    }
    assert_eq!(sim.peek("o").to_u64(), 10);
    assert_eq!(sim.time(), 10);
}

#[test]
fn negedge_triggers() {
    let mut sim = sim_of(
        "module T(input wire clk, output wire [3:0] o);\n\
         reg [3:0] c = 0;\n\
         always @(negedge clk) c <= c + 1;\n\
         assign o = c;\nendmodule",
        "T",
    );
    sim.tick("clk").unwrap();
    assert_eq!(sim.peek("o").to_u64(), 1);
}

#[test]
fn running_example_rotates_and_pauses() {
    let mut sim = sim_of(cascade_verilog::corpus::RUNNING_EXAMPLE, "Main");
    assert_eq!(sim.peek("led").to_u64(), 1);
    sim.tick("clk").unwrap();
    assert_eq!(sim.peek("led").to_u64(), 2);
    for _ in 0..6 {
        sim.tick("clk").unwrap();
    }
    assert_eq!(sim.peek("led").to_u64(), 0x80);
    sim.tick("clk").unwrap();
    assert_eq!(sim.peek("led").to_u64(), 1, "rotation wraps");
    // Press a button: animation pauses, $display and $finish fire.
    sim.poke("pad", Bits::from_u64(4, 0b0001));
    sim.settle().unwrap();
    sim.tick("clk").unwrap();
    let events = sim.drain_events();
    assert!(events
        .iter()
        .any(|e| matches!(e, SimEvent::Display(s) if s == "1")));
    assert!(events.contains(&SimEvent::Finish));
    assert!(sim.is_finished());
}

#[test]
fn blocking_vs_nonblocking_swap() {
    // Classic swap: nonblocking swaps, blocking does not.
    let mut sim = sim_of(
        "module T(input wire clk, output wire [7:0] ao, output wire [7:0] bo);\n\
         reg [7:0] a = 1; reg [7:0] b = 2;\n\
         always @(posedge clk) begin a <= b; b <= a; end\n\
         assign ao = a; assign bo = b;\nendmodule",
        "T",
    );
    sim.tick("clk").unwrap();
    assert_eq!(sim.peek("ao").to_u64(), 2);
    assert_eq!(sim.peek("bo").to_u64(), 1);

    let mut sim2 = sim_of(
        "module T(input wire clk, output wire [7:0] ao, output wire [7:0] bo);\n\
         reg [7:0] a = 1; reg [7:0] b = 2;\n\
         always @(posedge clk) begin a = b; b = a; end\n\
         assign ao = a; assign bo = b;\nendmodule",
        "T",
    );
    sim2.tick("clk").unwrap();
    assert_eq!(sim2.peek("ao").to_u64(), 2);
    assert_eq!(sim2.peek("bo").to_u64(), 2, "blocking assignment chains");
}

#[test]
fn combinational_star_block() {
    let mut sim = sim_of(
        "module T(input wire [3:0] a, input wire [3:0] b, output wire [4:0] s);\n\
         reg [4:0] r;\n\
         always @(*) r = a + b;\n\
         assign s = r;\nendmodule",
        "T",
    );
    sim.poke("a", Bits::from_u64(4, 7));
    sim.poke("b", Bits::from_u64(4, 9));
    sim.settle().unwrap();
    assert_eq!(
        sim.peek("s").to_u64(),
        16,
        "carry preserved by 5-bit context"
    );
}

#[test]
fn hierarchy_and_port_connections() {
    let mut sim = sim_of(
        "module Add1(input wire [7:0] x, output wire [7:0] y);\n\
         assign y = x + 1;\nendmodule\n\
         module Top(input wire [7:0] i, output wire [7:0] o);\n\
         wire [7:0] mid;\n\
         Add1 a(.x(i), .y(mid));\n\
         Add1 b(.x(mid), .y(o));\nendmodule",
        "Top",
    );
    sim.poke("i", Bits::from_u64(8, 40));
    sim.settle().unwrap();
    assert_eq!(sim.peek("o").to_u64(), 42);
    // Hierarchical names are addressable.
    assert_eq!(sim.peek("a.y").to_u64(), 41);
}

#[test]
fn hierarchical_read_without_connection() {
    // The paper's Fig. 1 style: read a child's output via `r.y`.
    let mut sim = sim_of(
        "module Rol(input wire [7:0] x, output wire [7:0] y);\n\
         assign y = (x == 8'h80) ? 1 : (x<<1);\nendmodule\n\
         module Top(input wire clk, output wire [7:0] led);\n\
         reg [7:0] cnt = 1;\n\
         Rol r(.x(cnt));\n\
         always @(posedge clk) cnt <= r.y;\n\
         assign led = cnt;\nendmodule",
        "Top",
    );
    sim.tick("clk").unwrap();
    sim.tick("clk").unwrap();
    assert_eq!(sim.peek("led").to_u64(), 4);
}

#[test]
fn parameterized_instances() {
    let mut sim = sim_of(
        "module Inc #(parameter STEP = 1)(input wire [7:0] x, output wire [7:0] y);\n\
         assign y = x + STEP;\nendmodule\n\
         module Top(input wire [7:0] i, output wire [7:0] o);\n\
         wire [7:0] mid;\n\
         Inc #(10) a(.x(i), .y(mid));\n\
         Inc #(.STEP(5)) b(.x(mid), .y(o));\nendmodule",
        "Top",
    );
    sim.poke("i", Bits::from_u64(8, 1));
    sim.settle().unwrap();
    assert_eq!(sim.peek("o").to_u64(), 16);
}

#[test]
fn memory_read_write() {
    let mut sim = sim_of(
        "module Mem(input wire clk, input wire we, input wire [3:0] addr,\n\
                    input wire [7:0] din, output wire [7:0] dout);\n\
         reg [7:0] mem [0:15];\n\
         always @(posedge clk) if (we) mem[addr] <= din;\n\
         assign dout = mem[addr];\nendmodule",
        "Mem",
    );
    sim.poke("we", Bits::from_u64(1, 1));
    sim.poke("addr", Bits::from_u64(4, 5));
    sim.poke("din", Bits::from_u64(8, 0xab));
    sim.tick("clk").unwrap();
    assert_eq!(sim.peek("dout").to_u64(), 0xab);
    sim.poke("addr", Bits::from_u64(4, 6));
    sim.settle().unwrap();
    assert_eq!(sim.peek("dout").to_u64(), 0);
}

#[test]
fn for_loop_in_always() {
    let mut sim = sim_of(
        "module PopCount(input wire [7:0] x, output wire [3:0] n);\n\
         reg [3:0] acc; integer i;\n\
         always @(*) begin\n\
           acc = 0;\n\
           for (i = 0; i < 8; i = i + 1) acc = acc + x[i];\n\
         end\n\
         assign n = acc;\nendmodule",
        "PopCount",
    );
    sim.poke("x", Bits::from_u64(8, 0b1011_0110));
    sim.settle().unwrap();
    assert_eq!(sim.peek("n").to_u64(), 5);
}

#[test]
fn case_statements() {
    let mut sim = sim_of(
        "module Dec(input wire [1:0] s, output wire [3:0] o);\n\
         reg [3:0] r;\n\
         always @(*) case (s)\n\
           2'b00: r = 4'b0001;\n\
           2'b01: r = 4'b0010;\n\
           2'b10: r = 4'b0100;\n\
           default: r = 4'b1000;\n\
         endcase\n\
         assign o = r;\nendmodule",
        "Dec",
    );
    for (s, expect) in [(0u64, 1u64), (1, 2), (2, 4), (3, 8)] {
        sim.poke("s", Bits::from_u64(2, s));
        sim.settle().unwrap();
        assert_eq!(sim.peek("o").to_u64(), expect, "s={s}");
    }
}

#[test]
fn casez_wildcards_priority() {
    let mut sim = sim_of(
        "module Pri(input wire [3:0] req, output wire [1:0] grant);\n\
         reg [1:0] g;\n\
         always @(*) casez (req)\n\
           4'b1???: g = 3;\n\
           4'b01??: g = 2;\n\
           4'b001?: g = 1;\n\
           default: g = 0;\n\
         endcase\n\
         assign grant = g;\nendmodule",
        "Pri",
    );
    for (req, expect) in [
        (0b1000u64, 3u64),
        (0b1111, 3),
        (0b0101, 2),
        (0b0010, 1),
        (0b0001, 0),
    ] {
        sim.poke("req", Bits::from_u64(4, req));
        sim.settle().unwrap();
        assert_eq!(sim.peek("grant").to_u64(), expect, "req={req:04b}");
    }
}

#[test]
fn part_selects_and_concat() {
    let mut sim = sim_of(
        "module T(input wire [15:0] x, output wire [15:0] sw, output wire [7:0] mid);\n\
         assign sw = {x[7:0], x[15:8]};\n\
         assign mid = x[11 -: 8];\nendmodule",
        "T",
    );
    sim.poke("x", Bits::from_u64(16, 0xabcd));
    sim.settle().unwrap();
    assert_eq!(sim.peek("sw").to_u64(), 0xcdab);
    assert_eq!(sim.peek("mid").to_u64(), 0xbc);
}

#[test]
fn concat_lvalue_distributes() {
    let mut sim = sim_of(
        "module T(input wire [3:0] a, input wire [3:0] b, output wire c, output wire [3:0] s);\n\
         reg co; reg [3:0] sum;\n\
         always @(*) {co, sum} = a + b;\n\
         assign c = co; assign s = sum;\nendmodule",
        "T",
    );
    sim.poke("a", Bits::from_u64(4, 0xf));
    sim.poke("b", Bits::from_u64(4, 2));
    sim.settle().unwrap();
    assert_eq!(sim.peek("c").to_u64(), 1);
    assert_eq!(sim.peek("s").to_u64(), 1);
}

#[test]
fn dynamic_bit_write() {
    let mut sim = sim_of(
        "module T(input wire clk, input wire [2:0] sel, output wire [7:0] o);\n\
         reg [7:0] r = 0;\n\
         always @(posedge clk) r[sel] <= 1;\n\
         assign o = r;\nendmodule",
        "T",
    );
    sim.poke("sel", Bits::from_u64(3, 5));
    sim.tick("clk").unwrap();
    assert_eq!(sim.peek("o").to_u64(), 0b10_0000);
}

#[test]
fn ascending_range_mapping() {
    let mut sim = sim_of(
        "module T(input wire [0:7] x, output wire msb, output wire lsb);\n\
         assign msb = x[0];\n\
         assign lsb = x[7];\nendmodule",
        "T",
    );
    sim.poke("x", Bits::from_u64(8, 0x80));
    sim.settle().unwrap();
    assert_eq!(sim.peek("msb").to_u64(), 1);
    assert_eq!(sim.peek("lsb").to_u64(), 0);
}

#[test]
fn signed_comparisons() {
    let mut sim = sim_of(
        "module T(input wire signed [7:0] a, input wire signed [7:0] b, output wire lt);\n\
         assign lt = a < b;\nendmodule",
        "T",
    );
    sim.poke("a", Bits::from_u64(8, 0xff)); // -1
    sim.poke("b", Bits::from_u64(8, 1));
    sim.settle().unwrap();
    assert_eq!(sim.peek("lt").to_u64(), 1, "-1 < 1 signed");
}

#[test]
fn signed_shift_right() {
    let mut sim = sim_of(
        "module T(input wire signed [7:0] a, output wire signed [7:0] o);\n\
         assign o = a >>> 2;\nendmodule",
        "T",
    );
    sim.poke("a", Bits::from_u64(8, 0x80));
    sim.settle().unwrap();
    assert_eq!(sim.peek("o").to_u64(), 0xe0);
}

#[test]
fn display_formats() {
    let mut sim = sim_of(
        "module T(input wire clk);\n\
         reg [7:0] v = 8'hab;\n\
         always @(posedge clk) $display(\"d=%d h=%h b=%b o=%o pct=%% pad=%04d\", v, v, v, v, v);\n\
         endmodule",
        "T",
    );
    sim.tick("clk").unwrap();
    let ev = sim.drain_events();
    let SimEvent::Display(s) = &ev[0] else {
        panic!()
    };
    assert_eq!(s, "d=171 h=ab b=10101011 o=253 pct=% pad=0171");
}

#[test]
fn display_without_format_string() {
    let mut sim = sim_of(
        "module T(input wire clk);\n\
         reg [7:0] v = 7;\n\
         always @(posedge clk) $display(v);\n\
         endmodule",
        "T",
    );
    sim.tick("clk").unwrap();
    assert!(matches!(&sim.drain_events()[0], SimEvent::Display(s) if s == "7"));
}

#[test]
fn write_task_and_time() {
    let mut sim = sim_of(
        "module T(input wire clk);\n\
         always @(posedge clk) $write(\"t=%d\", $time);\n\
         endmodule",
        "T",
    );
    sim.tick("clk").unwrap();
    sim.tick("clk").unwrap();
    let ev = sim.drain_events();
    assert_eq!(
        ev,
        vec![SimEvent::Write("t=0".into()), SimEvent::Write("t=1".into())]
    );
}

#[test]
fn finish_stops_execution() {
    let mut sim = sim_of(
        "module T(input wire clk, output wire [7:0] o);\n\
         reg [7:0] c = 0;\n\
         always @(posedge clk) begin\n\
           c <= c + 1;\n\
           if (c == 3) $finish;\n\
         end\n\
         assign o = c;\nendmodule",
        "T",
    );
    for _ in 0..10 {
        if sim.is_finished() {
            break;
        }
        sim.tick("clk").unwrap();
    }
    assert!(sim.is_finished());
    assert!(sim.peek("o").to_u64() <= 4);
}

#[test]
fn initial_blocks_run_once() {
    let mut sim = sim_of(
        "module T(input wire clk, output wire [7:0] o);\n\
         reg [7:0] r;\n\
         initial begin r = 42; $display(\"init\"); end\n\
         assign o = r;\nendmodule",
        "T",
    );
    assert_eq!(sim.peek("o").to_u64(), 42);
    let ev = sim.drain_events();
    assert_eq!(ev.len(), 1);
    sim.tick("clk").unwrap();
    assert!(sim.drain_events().is_empty(), "initial must not rerun");
}

#[test]
fn wire_initializer_is_continuous() {
    let mut sim = sim_of(
        "module T(input wire [3:0] a, output wire [3:0] o);\n\
         wire [3:0] dbl = a + a;\n\
         assign o = dbl;\nendmodule",
        "T",
    );
    sim.poke("a", Bits::from_u64(4, 3));
    sim.settle().unwrap();
    assert_eq!(sim.peek("o").to_u64(), 6);
    sim.poke("a", Bits::from_u64(4, 5));
    sim.settle().unwrap();
    assert_eq!(sim.peek("o").to_u64(), 10);
}

#[test]
fn combinational_loop_detected() {
    let lib = library_from_source(
        "module Osc(output wire o);\n\
         wire a;\n\
         assign a = ~a;\n\
         assign o = a;\nendmodule",
    )
    .unwrap();
    let design = elaborate("Osc", &lib, &ParamEnv::new()).unwrap();
    let mut sim = Simulator::new(Arc::new(design));
    sim.set_activation_limit(10_000);
    match sim.initialize() {
        Err(SimError::Unstable { .. }) => {}
        other => panic!("expected oscillation detection, got {other:?}"),
    }
}

#[test]
fn runaway_loop_detected() {
    let lib = library_from_source(
        "module Hang(input wire clk);\n\
         reg [7:0] i;\n\
         always @(posedge clk) begin\n\
           i = 1;\n\
           while (i) i = 1;\n\
         end\nendmodule",
    )
    .unwrap();
    let design = elaborate("Hang", &lib, &ParamEnv::new()).unwrap();
    let mut sim = Simulator::new(Arc::new(design));
    sim.set_loop_limit(10_000);
    sim.initialize().unwrap();
    match sim.tick("clk") {
        Err(SimError::LoopLimit { .. }) => {}
        other => panic!("expected loop limit, got {other:?}"),
    }
}

#[test]
fn random_is_deterministic() {
    let src = "module T(input wire clk, output wire [31:0] o);\n\
         reg [31:0] r;\n\
         always @(posedge clk) r <= $random;\n\
         assign o = r;\nendmodule";
    let mut a = sim_of(src, "T");
    let mut b = sim_of(src, "T");
    a.seed_random(7);
    b.seed_random(7);
    a.tick("clk").unwrap();
    b.tick("clk").unwrap();
    assert_eq!(a.peek("o"), b.peek("o"));
    let first = a.peek("o");
    a.tick("clk").unwrap();
    assert_ne!(a.peek("o"), first, "stream advances");
}

#[test]
fn monitor_reports_changes() {
    let mut sim = sim_of(
        "module T(input wire clk, input wire [3:0] v);\n\
         initial $monitor(\"v=%d\", v);\n\
         endmodule",
        "T",
    );
    let ev = sim.drain_events();
    assert_eq!(ev, vec![SimEvent::Display("v=0".into())]);
    sim.poke("v", Bits::from_u64(4, 3));
    sim.settle().unwrap();
    assert_eq!(sim.drain_events(), vec![SimEvent::Display("v=3".into())]);
    sim.settle().unwrap();
    assert!(sim.drain_events().is_empty(), "no change, no output");
}

#[test]
fn state_bits_statistic() {
    let lib = library_from_source(
        "module T(input wire clk);\n\
         reg [7:0] a; reg [15:0] mem [0:3];\nendmodule",
    )
    .unwrap();
    let design = elaborate("T", &lib, &ParamEnv::new()).unwrap();
    assert_eq!(design.state_bits(), 8 + 16 * 4);
}

#[test]
fn repeat_statement() {
    let mut sim = sim_of(
        "module T(input wire clk, output wire [7:0] o);\n\
         reg [7:0] c = 0;\n\
         always @(posedge clk) repeat (3) c = c + 1;\n\
         assign o = c;\nendmodule",
        "T",
    );
    sim.tick("clk").unwrap();
    assert_eq!(sim.peek("o").to_u64(), 3);
}

#[test]
fn force_does_not_wake() {
    let mut sim = sim_of(
        "module T(input wire [3:0] a, output wire [3:0] o);\n\
         assign o = a;\nendmodule",
        "T",
    );
    let a = sim.design().var("a").unwrap();
    sim.force(a, Bits::from_u64(4, 9));
    // No settle needed to observe the forced input itself...
    assert_eq!(sim.peek("a").to_u64(), 9);
    // ...but dependents were not scheduled.
    assert_eq!(sim.peek("o").to_u64(), 0);
}

#[test]
fn vcd_writer_produces_header_and_changes() {
    let mut sim = sim_of(
        "module T(input wire clk, output wire [1:0] o);\n\
         reg [1:0] c = 0;\n\
         always @(posedge clk) c <= c + 1;\n\
         assign o = c;\nendmodule",
        "T",
    );
    let mut buf = Vec::new();
    {
        let mut vcd = crate::VcdWriter::new(&mut buf, sim.design(), &["clk", "o"]).unwrap();
        for _ in 0..3 {
            sim.tick("clk").unwrap();
            vcd.sample(&sim).unwrap();
        }
    }
    let text = String::from_utf8(buf).unwrap();
    assert!(text.contains("$enddefinitions"));
    assert!(text.contains("$var wire 2"));
    assert!(text.contains("b01"));
}

#[test]
fn functions_evaluate_via_inlining() {
    let mut sim = sim_of(
        "module T(input wire [7:0] a, input wire [7:0] b, output wire [7:0] mx, output wire [15:0] sq);\n\
         function [7:0] max2;\n\
           input [7:0] x; input [7:0] y;\n\
           max2 = (x > y) ? x : y;\n\
         endfunction\n\
         function [15:0] square;\n\
           input [7:0] x;\n\
           reg [15:0] t;\n\
           begin t = x; square = t * t; end\n\
         endfunction\n\
         assign mx = max2(a, b);\n\
         assign sq = square(max2(a, b));\n\
         endmodule",
        "T",
    );
    sim.poke("a", Bits::from_u64(8, 9));
    sim.poke("b", Bits::from_u64(8, 13));
    sim.settle().unwrap();
    assert_eq!(sim.peek("mx").to_u64(), 13);
    assert_eq!(sim.peek("sq").to_u64(), 169);
    sim.poke("a", Bits::from_u64(8, 200));
    sim.settle().unwrap();
    assert_eq!(sim.peek("mx").to_u64(), 200);
    assert_eq!(sim.peek("sq").to_u64(), 40000);
}

#[test]
fn function_in_clocked_block() {
    let mut sim = sim_of(
        "module T(input wire clk, output wire [7:0] o);\n\
         reg [7:0] c = 0;\n\
         function [7:0] gray;\n\
           input [7:0] x;\n\
           gray = x ^ (x >> 1);\n\
         endfunction\n\
         always @(posedge clk) c <= c + 1;\n\
         assign o = gray(c);\n\
         endmodule",
        "T",
    );
    for expect_c in 1..=5u64 {
        sim.tick("clk").unwrap();
        assert_eq!(sim.peek("o").to_u64(), expect_c ^ (expect_c >> 1));
    }
}

#[test]
fn function_input_width_truncates() {
    // Passing a 16-bit value into an 8-bit input truncates, exactly like
    // assigning to a reg of the input's width.
    let mut sim = sim_of(
        "module T(input wire [15:0] a, output wire [7:0] o);\n\
         function [7:0] low; input [7:0] x; low = x; endfunction\n\
         assign o = low(a);\n\
         endmodule",
        "T",
    );
    sim.poke("a", Bits::from_u64(16, 0xabcd));
    sim.settle().unwrap();
    assert_eq!(sim.peek("o").to_u64(), 0xcd);
}

#[test]
fn generate_for_with_instances() {
    // A parameterized ripple-carry adder built with generate (paper-era
    // idiomatic structural Verilog).
    let mut sim = sim_of(
        "module FullAdder(input wire a, input wire b, input wire cin,\n\
                          output wire s, output wire cout);\n\
           assign s = a ^ b ^ cin;\n\
           assign cout = (a & b) | (cin & (a ^ b));\n\
         endmodule\n\
         module Rca #(parameter N = 8)(input wire [N-1:0] a, input wire [N-1:0] b,\n\
                                       output wire [N-1:0] s, output wire cout);\n\
           wire [N:0] c;\n\
           assign c[0] = 0;\n\
           genvar i;\n\
           generate\n\
             for (i = 0; i < N; i = i + 1) begin : stage\n\
               FullAdder fa(.a(a[i]), .b(b[i]), .cin(c[i]), .s(s[i]), .cout(c[i + 1]));\n\
             end\n\
           endgenerate\n\
           assign cout = c[N];\n\
         endmodule",
        "Rca",
    );
    for (a, b) in [(0u64, 0u64), (3, 5), (200, 100), (255, 1)] {
        sim.poke("a", Bits::from_u64(8, a));
        sim.poke("b", Bits::from_u64(8, b));
        sim.settle().unwrap();
        let total = a + b;
        assert_eq!(sim.peek("s").to_u64(), total & 0xff, "{a}+{b}");
        assert_eq!(sim.peek("cout").to_u64(), total >> 8, "{a}+{b} carry");
    }
}

#[test]
fn generate_bounds_from_parameters() {
    let mut sim = sim_of(
        "module Par #(parameter N = 5)(input wire [N-1:0] x, output wire [N-1:0] o);\n\
           genvar k;\n\
           generate\n\
             for (k = 0; k < N; k = k + 1) begin : flip\n\
               assign o[k] = x[N - 1 - k];\n\
             end\n\
           endgenerate\n\
         endmodule",
        "Par",
    );
    sim.poke("x", Bits::from_u64(5, 0b11010));
    sim.settle().unwrap();
    assert_eq!(sim.peek("o").to_u64(), 0b01011);
}

// ---------------------------------------------------------------------
// Compiled backend (bytecode) vs the tree-walking oracle
// ---------------------------------------------------------------------

/// Runs `src` on both backends for `cycles` clock ticks, comparing every
/// variable, every rendered event, `$finish` timing, and `$time`.
fn diff_run(src: &str, top: &str, cycles: u32) {
    let lib = library_from_source(src).expect("parse");
    let design = Arc::new(elaborate(top, &lib, &ParamEnv::new()).expect("elaborate"));
    let mut tree = Simulator::new(Arc::clone(&design));
    let mut comp = crate::CompiledSim::new(Arc::clone(&design));
    tree.initialize().expect("tree initialize");
    comp.initialize().expect("compiled initialize");
    let compare = |tree: &mut Simulator, comp: &mut crate::CompiledSim, when: &str| {
        for (name, id) in design.iter_vars() {
            let info = design.info(id);
            if info.is_array() {
                for i in 0..info.array_len {
                    assert_eq!(
                        tree.peek_array(id, i),
                        comp.peek_array(id, i),
                        "{name}[{i}] diverged {when}"
                    );
                }
            } else {
                assert_eq!(tree.peek_id(id), comp.peek_id(id), "{name} diverged {when}");
            }
        }
        assert_eq!(
            tree.drain_events(),
            comp.drain_events(),
            "events diverged {when}"
        );
        assert_eq!(
            tree.is_finished(),
            comp.is_finished(),
            "$finish diverged {when}"
        );
        assert_eq!(tree.time(), comp.time(), "$time diverged {when}");
    };
    compare(&mut tree, &mut comp, "after initialize");
    let clk = design.var("clk");
    for cycle in 0..cycles {
        let Some(clk) = clk else { break };
        if tree.is_finished() {
            break;
        }
        tree.tick_id(clk).expect("tree tick");
        comp.tick_id(clk).expect("compiled tick");
        compare(&mut tree, &mut comp, &format!("at cycle {cycle}"));
    }
}

#[test]
fn compiled_matches_tree_on_counter() {
    diff_run(
        "module Count(input wire clk, output wire [7:0] o);\n\
         reg [7:0] c = 0;\n\
         always @(posedge clk) c <= c + 1;\n\
         assign o = c;\nendmodule",
        "Count",
        12,
    );
}

#[test]
fn compiled_matches_tree_on_running_example() {
    diff_run(cascade_verilog::corpus::RUNNING_EXAMPLE, "Main", 10);
}

#[test]
fn compiled_matches_tree_on_wide_values() {
    diff_run(
        "module W(input wire clk, output wire [7:0] o);\n\
         reg [95:0] acc = 96'h1;\n\
         reg [127:0] mix = 0;\n\
         always @(posedge clk) begin\n\
           acc <= (acc << 3) ^ (acc + 96'hdeadbeef01234567);\n\
           mix <= {acc[63:0], acc[95:32]} + mix;\n\
           if (acc[95:88] == 8'h5a) $display(\"hit %h\", mix);\n\
         end\n\
         assign o = acc[7:0] ^ mix[127:120];\nendmodule",
        "W",
        24,
    );
}

#[test]
fn compiled_matches_tree_on_signed_arith() {
    diff_run(
        "module S(input wire clk, output wire [31:0] o);\n\
         integer a = -7; integer b = 3; reg signed [15:0] s = -2;\n\
         always @(posedge clk) begin\n\
           a <= a * b - (a / b) + (a % b);\n\
           b <= (b <<< 1) + (s >>> 2) + (a > b ? 1 : -1);\n\
           s <= s - 1;\n\
         end\n\
         assign o = a ^ b;\nendmodule",
        "S",
        16,
    );
}

#[test]
fn compiled_matches_tree_on_arrays_and_parts() {
    diff_run(
        "module M(input wire clk, output wire [15:0] o);\n\
         reg [15:0] mem [0:7];\n\
         reg [2:0] wp = 0;\n\
         reg [15:0] x = 16'habcd;\n\
         integer i;\n\
         initial begin\n\
           for (i = 0; i < 8; i = i + 1) mem[i] = i * 17;\n\
         end\n\
         always @(posedge clk) begin\n\
           mem[wp] <= mem[wp] + x[7:0];\n\
           x[3:0] <= x[15:12];\n\
           x[15:8] <= mem[wp ^ 3][7:0];\n\
           wp <= wp + 1;\n\
         end\n\
         assign o = mem[wp] ^ x;\nendmodule",
        "M",
        20,
    );
}

#[test]
fn compiled_matches_tree_on_case_and_loops() {
    diff_run(
        "module C(input wire clk, output wire [7:0] o);\n\
         reg [7:0] st = 0; reg [7:0] acc = 1;\n\
         integer k;\n\
         always @(posedge clk) begin\n\
           case (st[1:0])\n\
             2'd0: acc <= acc + 1;\n\
             2'd1: begin for (k = 0; k < 3; k = k + 1) acc = acc ^ (k + 1); acc <= acc; end\n\
             2'd2: casez (acc)\n\
               8'b1???????: acc <= 8'h3c;\n\
               default: acc <= acc << 1;\n\
             endcase\n\
             default: begin\n\
               repeat (2) acc = acc + 3;\n\
               acc <= acc;\n\
             end\n\
           endcase\n\
           st <= st + 1;\n\
           if (st == 14) $finish;\n\
         end\n\
         assign o = acc;\nendmodule",
        "C",
        20,
    );
}

#[test]
fn compiled_matches_tree_on_random_and_monitor() {
    diff_run(
        "module R(input wire clk, output wire [31:0] o);\n\
         reg [31:0] r = 0; reg [7:0] n = 0;\n\
         initial $monitor(\"r=%d n=%h\", r, n);\n\
         always @(posedge clk) begin\n\
           r <= $random;\n\
           n <= n + 1;\n\
           if (n[2]) $display(\"t=%d r=%d\", $time, r);\n\
         end\n\
         assign o = r;\nendmodule",
        "R",
        14,
    );
}

#[test]
fn compiled_matches_tree_on_concat_lvalues() {
    diff_run(
        "module K(input wire clk, output wire [15:0] o);\n\
         reg [7:0] hi = 8'h12; reg [7:0] lo = 8'h34;\n\
         always @(posedge clk) begin\n\
           {hi, lo} <= {lo, hi} + 16'h0101;\n\
           {hi[3:0], lo[7:4]} <= hi + lo;\n\
         end\n\
         assign o = {hi, lo};\nendmodule",
        "K",
        12,
    );
}

#[test]
fn compiled_tick_n_stops_on_events_and_finish() {
    let src = "module B(input wire clk, output wire [7:0] o);\n\
               reg [7:0] c = 0;\n\
               always @(posedge clk) begin\n\
                 c <= c + 1;\n\
                 if (c == 5) $display(\"five\");\n\
                 if (c == 9) $finish;\n\
               end\n\
               assign o = c;\nendmodule";
    let lib = library_from_source(src).expect("parse");
    let design = Arc::new(elaborate("B", &lib, &ParamEnv::new()).expect("elaborate"));
    let clk = design.var("clk").unwrap();
    let mut comp = crate::CompiledSim::new(Arc::clone(&design));
    comp.initialize().unwrap();
    // Stops at the $display cycle, not the full batch.
    let done = comp.tick_n(clk, 100).unwrap();
    assert_eq!(done, 6, "batch halts on the first observable event");
    assert!(matches!(&comp.drain_events()[..], [SimEvent::Display(s)] if s == "five"));
    // Resumes and stops at $finish.
    let done = comp.tick_n(clk, 100).unwrap();
    assert!(comp.is_finished());
    assert_eq!(done, 4, "batch halts when $finish lands");
    // Finished engines run no further cycles.
    assert_eq!(comp.tick_n(clk, 100).unwrap(), 0);
}

#[test]
fn equality_if_chain_compiles_to_fused_branches() {
    // The DFA transition-row shape: `if (v == K) ... else if (v == K') ...`
    // must compile to single compare-and-branch ops, not Ld + Cmp + Jz
    // triples.
    let lib = library_from_source(
        "module T(input wire clk, input wire [7:0] b, output reg [7:0] y);\n\
         always @(*) begin\n\
           if (b == 8'd71) y = 1;\n\
           else if (b == 8'd72) y = 2;\n\
           else y = 0;\n\
         end\nendmodule",
    )
    .unwrap();
    let design = elaborate("T", &lib, &Default::default()).unwrap();
    let prog = crate::compile::SwProgram::compile(&design);
    let fused = prog
        .code
        .iter()
        .filter(|op| matches!(op, crate::compile::Op::JnCmpMI { .. }))
        .count();
    assert_eq!(fused, 2, "both equality guards fuse to JnCmpMI");
    assert!(
        !prog
            .code
            .iter()
            .any(|op| matches!(op, crate::compile::Op::Jz(..))),
        "no unfused conditional branches remain"
    );
}
