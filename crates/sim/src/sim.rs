//! The event-driven simulator: Verilog's reference scheduling algorithm
//! (paper Fig. 2) over an elaborated [`Design`].

use crate::elaborate::{collect_reads, Design};
use crate::rir::*;
use cascade_bits::Bits;
use cascade_verilog::ast::{BinaryOp, CaseKind, Edge, SystemTask, UnaryOp};
use std::cmp::Ordering;
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// An observable side effect produced by system tasks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimEvent {
    /// `$display` output (includes trailing newline semantics: one event per
    /// call).
    Display(String),
    /// `$write` output (no newline).
    Write(String),
    /// `$finish` was executed.
    Finish,
    /// `$fatal` was executed.
    Fatal(String),
}

/// A simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The design did not reach a fixed point (combinational loop).
    Unstable { activations: u64 },
    /// A single process exceeded its statement budget (runaway loop).
    LoopLimit { limit: u64 },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Unstable { activations } => {
                write!(
                    f,
                    "design did not stabilize after {activations} process activations"
                )
            }
            SimError::LoopLimit { limit } => {
                write!(f, "process exceeded {limit} statements per activation")
            }
        }
    }
}

impl Error for SimError {}

/// Default per-activation statement budget.
const DEFAULT_LOOP_LIMIT: u64 = 50_000_000;
/// Default per-settle activation budget.
const DEFAULT_ACTIVATION_LIMIT: u64 = 1_000_000;

/// A cycle-accurate event-driven simulator for one [`Design`].
///
/// # Examples
///
/// ```
/// use cascade_sim::{elaborate, library_from_source, Simulator};
///
/// let lib = library_from_source(
///     "module Count(input wire clk, output wire [7:0] o);\n\
///      reg [7:0] c = 0;\n\
///      always @(posedge clk) c <= c + 1;\n\
///      assign o = c;\nendmodule",
/// )?;
/// let design = elaborate("Count", &lib, &Default::default())?;
/// let mut sim = Simulator::new(design.into());
/// sim.initialize()?;
/// for _ in 0..5 { sim.tick("clk")?; }
/// assert_eq!(sim.peek("o").to_u64(), 5);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Simulator {
    design: Arc<Design>,
    /// Scalar values (arrays hold their words in `arrays`).
    values: Vec<Bits>,
    arrays: Vec<Vec<Bits>>,
    /// var → processes sensitive to it.
    sens_map: Vec<Vec<(ProcId, Option<Edge>)>>,
    active: VecDeque<ProcId>,
    queued: Vec<bool>,
    /// Pending nonblocking updates: (var, word index, bit offset, value).
    nb_updates: Vec<(VarId, u64, u32, Bits)>,
    events: Vec<SimEvent>,
    finished: bool,
    time: u64,
    rng: u64,
    loop_limit: u64,
    activation_limit: u64,
    /// Monitor statement state: (args, last rendering).
    monitors: Vec<(Vec<RTaskArg>, String)>,
    /// Count of process activations (profiling).
    pub activations: u64,
    /// Count of statements executed (profiling; drives the software-engine
    /// cost model).
    pub statements: u64,
    /// The process currently executing; self-writes do not rewake it
    /// (a process only reacts to events while suspended at its event
    /// control).
    current: Option<ProcId>,
}

impl fmt::Debug for Simulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulator")
            .field("top", &self.design.top)
            .field("time", &self.time)
            .field("finished", &self.finished)
            .finish_non_exhaustive()
    }
}

impl Simulator {
    /// Creates a simulator with all state at its declared initial values
    /// (zero when unspecified). Call [`Simulator::initialize`] to run
    /// `initial` blocks and settle combinational logic.
    pub fn new(design: Arc<Design>) -> Self {
        let n = design.vars.len();
        let mut values = Vec::with_capacity(n);
        let mut arrays = Vec::with_capacity(n);
        for info in &design.vars {
            if info.is_array() {
                values.push(Bits::zero(0));
                let init = Bits::zero(info.width);
                arrays.push(vec![init; info.array_len as usize]);
            } else {
                values.push(info.init.clone().unwrap_or_else(|| Bits::zero(info.width)));
                arrays.push(Vec::new());
            }
        }
        let mut sens_map: Vec<Vec<(ProcId, Option<Edge>)>> = vec![Vec::new(); n];
        for (i, p) in design.processes.iter().enumerate() {
            let pid = ProcId(i as u32);
            match p {
                Process::Assign { lhs, rhs } => {
                    let mut reads = Vec::new();
                    collect_reads(rhs, &mut reads);
                    lv_selector_reads(lhs, &mut reads);
                    reads.sort();
                    reads.dedup();
                    for v in reads {
                        sens_map[v.0 as usize].push((pid, None));
                    }
                }
                Process::Always { sens, .. } => {
                    for s in sens {
                        sens_map[s.var.0 as usize].push((pid, s.edge));
                    }
                }
                Process::Initial { .. } => {}
            }
        }
        Simulator {
            values,
            arrays,
            sens_map,
            active: VecDeque::new(),
            queued: vec![false; design.processes.len()],
            nb_updates: Vec::new(),
            events: Vec::new(),
            finished: false,
            time: 0,
            rng: 0x2545F4914F6CDD1D,
            loop_limit: DEFAULT_LOOP_LIMIT,
            activation_limit: DEFAULT_ACTIVATION_LIMIT,
            monitors: Vec::new(),
            design,
            activations: 0,
            statements: 0,
            current: None,
        }
    }

    /// The design being simulated.
    pub fn design(&self) -> &Arc<Design> {
        &self.design
    }

    /// Current simulation time (virtual clock ticks driven by [`tick`]).
    ///
    /// [`tick`]: Simulator::tick
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Whether `$finish` has executed.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Overrides the per-activation statement budget.
    pub fn set_loop_limit(&mut self, limit: u64) {
        self.loop_limit = limit;
    }

    /// Overrides the per-settle activation budget used for combinational
    /// loop detection.
    pub fn set_activation_limit(&mut self, limit: u64) {
        self.activation_limit = limit;
    }

    /// Seeds `$random`.
    pub fn seed_random(&mut self, seed: u64) {
        self.rng = seed | 1;
    }

    /// Runs all `initial` blocks and continuous assignments to a fixed point
    /// (time zero).
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on combinational loops or runaway processes.
    pub fn initialize(&mut self) -> Result<(), SimError> {
        // Activate all continuous assigns once so wires get defined values,
        // then all initial blocks.
        let design = Arc::clone(&self.design);
        for (i, p) in design.processes.iter().enumerate() {
            match p {
                Process::Assign { .. } | Process::Initial { .. } => self.schedule(ProcId(i as u32)),
                // Purely level-sensitive (combinational) blocks evaluate once
                // at time zero so their outputs are defined, matching
                // `always_comb` semantics and synthesized hardware.
                Process::Always { sens, .. } => {
                    if !sens.is_empty() && sens.iter().all(|s| s.edge.is_none()) {
                        self.schedule(ProcId(i as u32));
                    }
                }
            }
        }
        self.settle()
    }

    fn schedule(&mut self, pid: ProcId) {
        if !self.queued[pid.0 as usize] {
            self.queued[pid.0 as usize] = true;
            self.active.push_back(pid);
        }
    }

    /// Reads a scalar variable's current value.
    ///
    /// # Panics
    ///
    /// Panics if the name is unknown (use [`Design::var`] to test first).
    pub fn peek(&self, name: &str) -> Bits {
        let id = self
            .design
            .var(name)
            .unwrap_or_else(|| panic!("unknown variable `{name}`"));
        self.peek_id(id)
    }

    /// Reads a variable by id.
    pub fn peek_id(&self, id: VarId) -> Bits {
        self.values[id.0 as usize].clone()
    }

    /// Reads one word of a memory.
    pub fn peek_array(&self, id: VarId, index: u64) -> Bits {
        self.arrays[id.0 as usize]
            .get(index as usize)
            .cloned()
            .unwrap_or_else(|| Bits::zero(self.design.info(id).width))
    }

    /// Writes a memory word directly (used for state transfer and test
    /// setup); does not trigger events.
    pub fn poke_array(&mut self, id: VarId, index: u64, value: Bits) {
        let width = self.design.info(id).width;
        if let Some(slot) = self.arrays[id.0 as usize].get_mut(index as usize) {
            *slot = value.resize(width);
        }
    }

    /// Sets a variable and schedules its dependents (an external input
    /// change). Call [`Simulator::settle`] afterwards.
    pub fn poke(&mut self, name: &str, value: Bits) {
        let id = self
            .design
            .var(name)
            .unwrap_or_else(|| panic!("unknown variable `{name}`"));
        self.poke_id(id, value);
    }

    /// Sets a variable by id, scheduling dependents on change.
    pub fn poke_id(&mut self, id: VarId, value: Bits) {
        let width = self.design.info(id).width;
        self.write_word(id, 0, 0, &value.resize(width));
    }

    /// Forces a value without triggering events (state restoration).
    pub fn force(&mut self, id: VarId, value: Bits) {
        let width = self.design.info(id).width;
        self.values[id.0 as usize] = value.resize(width);
    }

    /// Drains accumulated side-effect events.
    pub fn drain_events(&mut self) -> Vec<SimEvent> {
        std::mem::take(&mut self.events)
    }

    /// Whether any events are pending.
    pub fn has_events(&self) -> bool {
        !self.events.is_empty()
    }

    /// Runs evaluation/update phases until the event queues are empty — one
    /// "observable state" of the reference scheduler.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Unstable`] if the activation budget is exhausted
    /// (combinational loop) or [`SimError::LoopLimit`] for runaway loops.
    pub fn settle(&mut self) -> Result<(), SimError> {
        let mut rounds: u64 = 0;
        loop {
            self.eval_phase()?;
            if self.finished || self.nb_updates.is_empty() {
                break;
            }
            self.apply_updates();
            rounds += 1;
            if rounds > self.activation_limit {
                return Err(SimError::Unstable {
                    activations: rounds,
                });
            }
        }
        // Monitors fire at observable states.
        self.run_monitors();
        Ok(())
    }

    /// Runs only the *evaluation* phase: active processes execute until the
    /// queue drains, but pending nonblocking updates are left unapplied.
    /// This is the `evaluate` half of the engine ABI (paper Fig. 7); pair
    /// it with [`Simulator::has_updates`] / [`Simulator::apply_updates`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on combinational loops or runaway processes.
    pub fn eval_phase(&mut self) -> Result<(), SimError> {
        let mut count: u64 = 0;
        while let Some(pid) = self.active.pop_front() {
            self.queued[pid.0 as usize] = false;
            count += 1;
            self.activations += 1;
            if count > self.activation_limit {
                return Err(SimError::Unstable { activations: count });
            }
            self.run_process(pid)?;
            if self.finished {
                self.active.clear();
                self.queued.iter_mut().for_each(|q| *q = false);
                self.nb_updates.clear();
                return Ok(());
            }
        }
        Ok(())
    }

    /// Whether nonblocking updates are pending (the `there_are_updates`
    /// half of the engine ABI).
    pub fn has_updates(&self) -> bool {
        !self.nb_updates.is_empty()
    }

    /// Whether any evaluation events are active.
    pub fn has_evals(&self) -> bool {
        !self.active.is_empty()
    }

    /// Applies all pending nonblocking updates, activating any processes
    /// sensitive to the changed values (the `update` ABI call).
    pub fn apply_updates(&mut self) {
        let updates = std::mem::take(&mut self.nb_updates);
        for (var, word, offset, value) in updates {
            self.apply_write(var, word, offset, &value);
        }
    }

    /// Runs monitor statements against the current observable state (call
    /// at the end of a time step when driving phases manually).
    pub fn end_step(&mut self) {
        self.run_monitors();
    }

    /// Advances logical time by one tick (used by external drivers such as
    /// Cascade's engine scheduler, which owns the clock).
    pub fn advance_time(&mut self) {
        self.time += 1;
    }

    /// Re-evaluates all combinational logic (continuous assignments and
    /// level-sensitive blocks) after state has been overwritten with
    /// [`Simulator::force`], without generating edge events.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on combinational loops.
    pub fn resettle(&mut self) -> Result<(), SimError> {
        let design = Arc::clone(&self.design);
        for (i, p) in design.processes.iter().enumerate() {
            match p {
                Process::Assign { .. } => self.schedule(ProcId(i as u32)),
                Process::Always { sens, .. } => {
                    if !sens.is_empty() && sens.iter().all(|s| s.edge.is_none()) {
                        self.schedule(ProcId(i as u32));
                    }
                }
                Process::Initial { .. } => {}
            }
        }
        self.settle()
    }

    /// Advances one virtual clock cycle: raise `clk`, settle, lower `clk`,
    /// settle, advance time. This mirrors the paper's definition of a
    /// virtual tick as two scheduler iterations.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from [`Simulator::settle`].
    pub fn tick(&mut self, clk: &str) -> Result<(), SimError> {
        let id = self
            .design
            .var(clk)
            .unwrap_or_else(|| panic!("unknown clock `{clk}`"));
        self.tick_id(id)
    }

    /// [`Simulator::tick`] by variable id.
    pub fn tick_id(&mut self, clk: VarId) -> Result<(), SimError> {
        self.poke_id(clk, Bits::from_u64(1, 1));
        self.settle()?;
        self.poke_id(clk, Bits::from_u64(1, 0));
        self.settle()?;
        self.time += 1;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Writes
    // ------------------------------------------------------------------

    fn write_word(&mut self, var: VarId, word: u64, offset: u32, value: &Bits) {
        self.apply_write(var, word, offset, value);
    }

    fn apply_write(&mut self, var: VarId, word: u64, offset: u32, value: &Bits) {
        let vi = var.0 as usize;
        let info = &self.design.vars[vi];
        if info.is_array() {
            let Some(slot) = self.arrays[vi].get_mut(word as usize) else {
                return;
            };
            let mut next = slot.clone();
            next.splice(offset, value);
            if next != *slot {
                *slot = next;
                // Array reads are level-sensitive through the owning var.
                self.wake(var, false, false);
            }
            return;
        }
        let old = &self.values[vi];
        let mut next = old.clone();
        next.splice(offset, value);
        if next != *old {
            let rising = !old.bit(0) && next.bit(0);
            let falling = old.bit(0) && !next.bit(0);
            self.values[vi] = next;
            self.wake(var, rising, falling);
        }
    }

    fn wake(&mut self, var: VarId, rising: bool, falling: bool) {
        let deps = std::mem::take(&mut self.sens_map[var.0 as usize]);
        for &(pid, edge) in &deps {
            if self.current == Some(pid) {
                continue;
            }
            let fire = match edge {
                None => true,
                Some(Edge::Pos) => rising,
                Some(Edge::Neg) => falling,
            };
            if fire {
                self.schedule(pid);
            }
        }
        self.sens_map[var.0 as usize] = deps;
    }

    // ------------------------------------------------------------------
    // Process execution
    // ------------------------------------------------------------------

    fn run_process(&mut self, pid: ProcId) -> Result<(), SimError> {
        // Cheap Arc clone detaches the process borrow from `self`.
        let design = Arc::clone(&self.design);

        match &design.processes[pid.0 as usize] {
            // Continuous assignments are *not* masked against self-wake:
            // `assign a = ~a;` is a genuine combinational loop and must be
            // detected as such.
            Process::Assign { lhs, rhs } => {
                let width = lhs.width(&design.vars);
                let value = self.eval(rhs, width);
                self.assign(lhs, &value, false);
                Ok(())
            }
            // Procedural blocks only react to events while suspended at
            // their event control, so their own blocking writes must not
            // rewake them.
            Process::Always { body, .. } | Process::Initial { body } => {
                self.current = Some(pid);
                let mut budget = self.loop_limit;
                let r = self.exec(body, &mut budget);
                self.current = None;
                r
            }
        }
    }

    fn exec(&mut self, s: &RStmt, budget: &mut u64) -> Result<(), SimError> {
        if *budget == 0 {
            return Err(SimError::LoopLimit {
                limit: self.loop_limit,
            });
        }
        *budget -= 1;
        self.statements += 1;
        if self.finished {
            return Ok(());
        }
        match s {
            RStmt::Block(stmts) => {
                for st in stmts {
                    self.exec(st, budget)?;
                }
            }
            RStmt::Blocking { lhs, rhs } => {
                let width = lhs.width(&self.design.vars);
                let value = self.eval(rhs, width);
                self.assign(lhs, &value, false);
            }
            RStmt::NonBlocking { lhs, rhs } => {
                let width = lhs.width(&self.design.vars);
                let value = self.eval(rhs, width);
                self.assign(lhs, &value, true);
            }
            RStmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                if self.eval(cond, 0).to_bool() {
                    self.exec(then_branch, budget)?;
                } else if let Some(e) = else_branch {
                    self.exec(e, budget)?;
                }
            }
            RStmt::Case {
                kind,
                scrutinee,
                arms,
                default,
            } => {
                let mut w = scrutinee.width;
                for arm in arms {
                    for l in &arm.labels {
                        w = w.max(l.value.width);
                    }
                }
                let scr = self.eval(scrutinee, w);
                let mut matched = false;
                'arms: for arm in arms {
                    for label in &arm.labels {
                        let lv = self.eval(&label.value, w);
                        let hit = match (&label.care, kind) {
                            (Some(care), CaseKind::Casez | CaseKind::Casex) => {
                                let care = care.resize(w);
                                scr.and(&care).eq_value(&lv.and(&care))
                            }
                            // A masked literal in a plain `case` never
                            // matches in two-state mode (x/z bits compare
                            // unequal to 0/1).
                            (Some(_), CaseKind::Case) => false,
                            (None, _) => scr.eq_value(&lv),
                        };
                        if hit {
                            self.exec(&arm.body, budget)?;
                            matched = true;
                            break 'arms;
                        }
                    }
                }
                if !matched {
                    if let Some(d) = default {
                        self.exec(d, budget)?;
                    }
                }
            }
            RStmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.exec(init, budget)?;
                while self.eval(cond, 0).to_bool() {
                    self.exec(body, budget)?;
                    self.exec(step, budget)?;
                    if *budget == 0 {
                        return Err(SimError::LoopLimit {
                            limit: self.loop_limit,
                        });
                    }
                    *budget -= 1;
                    if self.finished {
                        break;
                    }
                }
            }
            RStmt::While { cond, body } => {
                while self.eval(cond, 0).to_bool() {
                    self.exec(body, budget)?;
                    if *budget == 0 {
                        return Err(SimError::LoopLimit {
                            limit: self.loop_limit,
                        });
                    }
                    *budget -= 1;
                    if self.finished {
                        break;
                    }
                }
            }
            RStmt::Repeat { count, body } => {
                let n = self.eval(count, 0).to_u64();
                for _ in 0..n {
                    self.exec(body, budget)?;
                    if self.finished {
                        break;
                    }
                }
            }
            RStmt::SystemTask { task, args } => self.system_task(*task, args),
            RStmt::Null => {}
        }
        Ok(())
    }

    fn system_task(&mut self, task: SystemTask, args: &[RTaskArg]) {
        match task {
            SystemTask::Display => {
                let text = self.format_args(args);
                self.events.push(SimEvent::Display(text));
            }
            SystemTask::Write => {
                let text = self.format_args(args);
                self.events.push(SimEvent::Write(text));
            }
            SystemTask::Finish => {
                self.events.push(SimEvent::Finish);
                self.finished = true;
            }
            SystemTask::Fatal => {
                let text = self.format_args(args);
                self.events.push(SimEvent::Fatal(text));
                self.finished = true;
            }
            SystemTask::Monitor => {
                let rendered = self.format_args(args);
                self.events.push(SimEvent::Display(rendered.clone()));
                self.monitors.push((args.to_vec(), rendered));
            }
        }
    }

    fn run_monitors(&mut self) {
        if self.monitors.is_empty() {
            return;
        }
        let monitors = std::mem::take(&mut self.monitors);
        let mut next = Vec::with_capacity(monitors.len());
        for (args, last) in monitors {
            let now = self.format_args(&args);
            if now != last {
                self.events.push(SimEvent::Display(now.clone()));
            }
            next.push((args, now));
        }
        self.monitors = next;
    }

    /// Renders `$display`-style arguments: an optional leading format string
    /// followed by values.
    fn format_args(&mut self, args: &[RTaskArg]) -> String {
        match args.split_first() {
            None => String::new(),
            Some((RTaskArg::Str(fmt), rest)) => {
                let values: Vec<Bits> = rest
                    .iter()
                    .map(|a| match a {
                        RTaskArg::Expr(e) => self.eval(e, 0),
                        RTaskArg::Str(s) => {
                            // A bare string among values renders as itself.
                            let bytes = s.as_bytes();
                            let mut b = Bits::zero(bytes.len() as u32 * 8);
                            for (i, &byte) in bytes.iter().rev().enumerate() {
                                b.splice(i as u32 * 8, &Bits::from_u64(8, byte as u64));
                            }
                            b
                        }
                    })
                    .collect();
                format_verilog(fmt, &values)
            }
            Some(_) => {
                // No format string: print each value in decimal.
                args.iter()
                    .map(|a| match a {
                        RTaskArg::Expr(e) => {
                            let signed = e.signed;
                            let v = self.eval(e, 0);
                            if signed {
                                v.to_signed_decimal_string()
                            } else {
                                v.to_decimal_string()
                            }
                        }
                        RTaskArg::Str(s) => s.clone(),
                    })
                    .collect::<Vec<_>>()
                    .join(" ")
            }
        }
    }

    // ------------------------------------------------------------------
    // Assignment
    // ------------------------------------------------------------------

    fn assign(&mut self, lhs: &RLValue, value: &Bits, nonblocking: bool) {
        match lhs {
            RLValue::Var(var) => {
                let width = self.design.info(*var).width;
                self.emit_write(*var, 0, 0, value.resize(width), nonblocking);
            }
            RLValue::Range { var, offset, width } => {
                let off = self.eval(offset, 0).to_u64() as u32;
                self.emit_write(*var, 0, off, value.resize(*width), nonblocking);
            }
            RLValue::ArrayWord { var, index } => {
                let idx = self.eval(index, 0).to_u64();
                let width = self.design.info(*var).width;
                self.emit_write(*var, idx, 0, value.resize(width), nonblocking);
            }
            RLValue::ArrayWordRange {
                var,
                index,
                offset,
                width,
            } => {
                let idx = self.eval(index, 0).to_u64();
                let off = self.eval(offset, 0).to_u64() as u32;
                self.emit_write(*var, idx, off, value.resize(*width), nonblocking);
            }
            RLValue::Concat(parts) => {
                // Parts are MSB-first; distribute from the top.
                let total: u32 = parts.iter().map(|p| p.width(&self.design.vars)).sum();
                let mut hi = total;
                let parts = parts.clone();
                for p in &parts {
                    let w = p.width(&self.design.vars);
                    let piece = value.slice(hi - w, w);
                    self.assign(p, &piece, nonblocking);
                    hi -= w;
                }
            }
        }
    }

    fn emit_write(&mut self, var: VarId, word: u64, offset: u32, value: Bits, nonblocking: bool) {
        if nonblocking {
            self.nb_updates.push((var, word, offset, value));
        } else {
            self.apply_write(var, word, offset, &value);
        }
    }

    // ------------------------------------------------------------------
    // Expression evaluation
    // ------------------------------------------------------------------

    /// Evaluates `e` in a context of width `ctx` (0 = self-determined). The
    /// result has width `max(e.width, ctx)`.
    pub fn eval(&mut self, e: &RExpr, ctx: u32) -> Bits {
        let target = e.width.max(ctx);
        match &e.kind {
            RExprKind::Const(v) => extend(v, target, e.signed),
            RExprKind::Var(var) => {
                let v = &self.values[var.0 as usize];
                extend(v, target, e.signed)
            }
            RExprKind::ArrayWord { var, index } => {
                let idx = self.eval(index, 0).to_u64();
                let v = self.peek_array(*var, idx);
                extend(&v, target, e.signed)
            }
            RExprKind::Slice {
                base,
                offset,
                width,
            } => {
                let b = self.eval(base, 0);
                let off = self.eval(offset, 0).to_u64();
                let v = if off > u32::MAX as u64 {
                    Bits::zero(*width)
                } else {
                    b.slice(off as u32, *width)
                };
                extend(&v, target, false)
            }
            RExprKind::Unary { op, operand } => {
                // Narrow fast path for the width-preserving shapes: skip
                // the apply-then-extend allocation pair (`from_u64`
                // re-masks to `target`).
                if target > 0 && target <= 64 {
                    match op {
                        UnaryOp::Plus => return self.eval(operand, target),
                        UnaryOp::Neg => {
                            let v = self.eval(operand, target).to_u64();
                            return Bits::from_u64(target, v.wrapping_neg());
                        }
                        UnaryOp::BitNot => {
                            let v = self.eval(operand, target).to_u64();
                            return Bits::from_u64(target, !v);
                        }
                        _ => {}
                    }
                }
                let v = match op {
                    UnaryOp::Plus | UnaryOp::Neg | UnaryOp::BitNot => self.eval(operand, target),
                    _ => self.eval(operand, 0),
                };
                let r = cascade_verilog::typecheck::apply_unary(*op, &v);
                extend(&r, target, false)
            }
            RExprKind::Binary { op, lhs, rhs } => self.eval_binary(*op, lhs, rhs, target),
            RExprKind::Ternary {
                cond,
                then_expr,
                else_expr,
            } => {
                if self.eval(cond, 0).to_bool() {
                    self.eval(then_expr, target)
                } else {
                    self.eval(else_expr, target)
                }
            }
            RExprKind::Concat(parts) => {
                let mut acc = Bits::zero(0);
                for p in parts {
                    let v = self.eval(p, 0);
                    acc = acc.concat(&v);
                }
                extend(&acc, target, false)
            }
            RExprKind::Repeat { count, inner } => {
                let v = self.eval(inner, 0);
                extend(&v.repeat(*count), target, false)
            }
            RExprKind::Time => extend(&Bits::from_u64(64, self.time), target, false),
            RExprKind::Random => {
                // xorshift64*
                let mut x = self.rng;
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                self.rng = x;
                let v = x.wrapping_mul(0x2545F4914F6CDD1D) >> 32;
                extend(&Bits::from_u64(32, v), target, false)
            }
        }
    }

    fn eval_binary(&mut self, op: BinaryOp, lhs: &RExpr, rhs: &RExpr, target: u32) -> Bits {
        use BinaryOp::*;
        match op {
            Add | Sub | Mul | Div | Rem | And | Or | Xor | Xnor => {
                let l = self.eval(lhs, target);
                let r = self.eval(rhs, target);
                let signed = lhs.signed && rhs.signed;
                // Narrow fast path: wrapping word arithmetic with one
                // result allocation instead of the compute-then-resize
                // pair. `from_u64` re-masks to `target`, and division by
                // zero yields all-ones either way.
                if target > 0 && target <= 64 && !(signed && matches!(op, Div | Rem)) {
                    let a = l.to_u64();
                    let b = r.to_u64();
                    let v = match op {
                        Add => a.wrapping_add(b),
                        Sub => a.wrapping_sub(b),
                        Mul => a.wrapping_mul(b),
                        Div => a.checked_div(b).unwrap_or(u64::MAX),
                        Rem => a.checked_rem(b).unwrap_or(u64::MAX),
                        And => a & b,
                        Or => a | b,
                        Xor => a ^ b,
                        Xnor => !(a ^ b),
                        _ => unreachable!(),
                    };
                    return Bits::from_u64(target, v);
                }
                let v = if op == Div && signed {
                    signed_div(&l, &r)
                } else if op == Rem && signed {
                    signed_rem(&l, &r)
                } else {
                    cascade_verilog::typecheck::apply_binary(op, &l, &r)
                };
                v.resize(target)
            }
            Pow => {
                let l = self.eval(lhs, target);
                let r = self.eval(rhs, 0);
                l.pow(&r).resize(target)
            }
            Shl | AShl => {
                let l = self.eval(lhs, target);
                let amt = self.eval(rhs, 0).to_u64().min(u32::MAX as u64) as u32;
                l.shl(amt)
            }
            Shr => {
                let l = self.eval(lhs, target);
                let amt = self.eval(rhs, 0).to_u64().min(u32::MAX as u64) as u32;
                l.shr(amt)
            }
            AShr => {
                let l = self.eval(lhs, target);
                let amt = self.eval(rhs, 0).to_u64().min(u32::MAX as u64) as u32;
                if lhs.signed {
                    l.ashr(amt)
                } else {
                    l.shr(amt)
                }
            }
            LogicalAnd => {
                let l = self.eval(lhs, 0).to_bool();
                let r = self.eval(rhs, 0).to_bool();
                Bits::from_bool(l && r).resize(target.max(1))
            }
            LogicalOr => {
                let l = self.eval(lhs, 0).to_bool();
                let r = self.eval(rhs, 0).to_bool();
                Bits::from_bool(l || r).resize(target.max(1))
            }
            Eq | Ne | CaseEq | CaseNe | Lt | Le | Gt | Ge => {
                let w = lhs.width.max(rhs.width);
                let signed = lhs.signed && rhs.signed;
                let l = self.eval_extended(lhs, w, signed);
                let r = self.eval_extended(rhs, w, signed);
                let ord = if signed {
                    l.cmp_signed(&r)
                } else {
                    l.cmp_unsigned(&r)
                };
                let b = match op {
                    Eq | CaseEq => ord == Ordering::Equal,
                    Ne | CaseNe => ord != Ordering::Equal,
                    Lt => ord == Ordering::Less,
                    Le => ord != Ordering::Greater,
                    Gt => ord == Ordering::Greater,
                    Ge => ord != Ordering::Less,
                    _ => unreachable!(),
                };
                Bits::from_bool(b).resize(target.max(1))
            }
        }
    }

    fn eval_extended(&mut self, e: &RExpr, width: u32, signed: bool) -> Bits {
        let v = self.eval(e, 0);
        if signed && e.signed {
            v.resize_signed(width)
        } else {
            v.resize(width)
        }
    }
}

fn lv_selector_reads(lv: &RLValue, out: &mut Vec<VarId>) {
    match lv {
        RLValue::Var(_) => {}
        RLValue::Range { offset, .. } => collect_reads(offset, out),
        RLValue::ArrayWord { index, .. } => collect_reads(index, out),
        RLValue::ArrayWordRange { index, offset, .. } => {
            collect_reads(index, out);
            collect_reads(offset, out);
        }
        RLValue::Concat(parts) => {
            for p in parts {
                lv_selector_reads(p, out);
            }
        }
    }
}

pub(crate) fn extend(v: &Bits, target: u32, signed: bool) -> Bits {
    if target == 0 || target == v.width() {
        return v.clone();
    }
    if signed {
        v.resize_signed(target)
    } else {
        v.resize(target)
    }
}

pub(crate) fn signed_div(l: &Bits, r: &Bits) -> Bits {
    let w = l.width().max(r.width());
    if !r.to_bool() {
        return Bits::ones(w);
    }
    let ln = l.msb();
    let rn = r.msb();
    let la = if ln { l.neg() } else { l.clone() };
    let ra = if rn { r.neg() } else { r.clone() };
    let q = la.div(&ra);
    if ln ^ rn {
        q.neg()
    } else {
        q
    }
}

pub(crate) fn signed_rem(l: &Bits, r: &Bits) -> Bits {
    let w = l.width().max(r.width());
    if !r.to_bool() {
        return Bits::ones(w);
    }
    let ln = l.msb();
    let la = if ln { l.neg() } else { l.clone() };
    let ra = if r.msb() { r.neg() } else { r.clone() };
    let m = la.rem(&ra);
    if ln {
        m.neg()
    } else {
        m
    }
}

/// Formats values with Verilog `$display` conversion specifiers
/// (`%d %h %x %b %o %c %s %0d %t %%`).
pub fn format_verilog(fmt: &str, values: &[Bits]) -> String {
    let mut out = String::with_capacity(fmt.len() + 16);
    let mut vi = 0;
    let empty = Bits::default();
    let mut chars = fmt.chars().peekable();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        // Optional zero / width prefix, e.g. %0d, %08h.
        let mut pad = String::new();
        while matches!(chars.peek(), Some(d) if d.is_ascii_digit()) {
            pad.push(chars.next().expect("digit"));
        }
        let Some(spec) = chars.next() else {
            out.push('%');
            break;
        };
        if spec == '%' {
            out.push('%');
            continue;
        }
        let value = values.get(vi).unwrap_or(&empty);
        vi += 1;
        let rendered = match spec.to_ascii_lowercase() {
            'd' => value.to_decimal_string(),
            'h' | 'x' => value.to_hex_string(),
            'b' => value.to_binary_string(),
            'o' => value.to_octal_string(),
            't' => value.to_decimal_string(),
            'c' => char::from_u32(value.to_u64() as u32 & 0x7f)
                .unwrap_or('?')
                .to_string(),
            's' => {
                // Interpret as packed ASCII, MSB first.
                let mut s = String::new();
                let bytes = value.width().div_ceil(8);
                for i in (0..bytes).rev() {
                    let byte = value.slice(i * 8, 8).to_u64() as u8;
                    if byte != 0 {
                        s.push(byte as char);
                    }
                }
                s
            }
            other => {
                out.push('%');
                out.push(other);
                continue;
            }
        };
        // Apply zero padding if requested (e.g. %08h).
        if let Some(stripped) = pad.strip_prefix('0') {
            if let Ok(w) = stripped.parse::<usize>() {
                for _ in rendered.len()..w {
                    out.push('0');
                }
            }
        }
        out.push_str(&rendered);
    }
    out
}
