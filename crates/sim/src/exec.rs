//! The compiled software engine: executes [`SwProgram`] bytecode produced by
//! [`SwProgram::compile`] with the exact observable semantics of the
//! tree-walking [`Simulator`](crate::Simulator) — same values, same event
//! interleavings, same `$display` renderings, same `$finish` timing, same
//! `$random` stream.
//!
//! A process activation is a linear dispatch loop over flat opcodes reading
//! and writing a `u64` register file plus a word arena for design state, so
//! the per-node `Bits` allocation and recursion of the interpreter disappear
//! from the hot path. Values wider than 64 bits fall back to `Bits`-valued
//! registers driven by the same arithmetic helpers the interpreter uses.
//!
//! The only intentional divergence from the oracle: after `$finish`/`$fatal`
//! the compiled engine halts the activation immediately, while the
//! interpreter keeps charging its statement budget for the sibling
//! statements it unwinds through as no-ops. Observable state is identical;
//! only the profiling `statements` counter (which feeds the modeled cost
//! clock) differs microscopically on the final activation.

use crate::compile::{op_name, sext, wmask, ArgV, NOp, Op, RedKind, SwProgram, TaskOp, VStore};
use crate::elaborate::Design;
use crate::rir::{ProcId, VarId};
use crate::sim::{extend, format_verilog, signed_div, signed_rem, SimError, SimEvent};
use cascade_bits::Bits;
use cascade_verilog::ast::{BinaryOp, Edge, SystemTask};
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

/// Default per-activation statement budget (mirrors the interpreter).
const DEFAULT_LOOP_LIMIT: u64 = 50_000_000;
/// Default per-settle activation budget (mirrors the interpreter).
const DEFAULT_ACTIVATION_LIMIT: u64 = 1_000_000;

/// A pending nonblocking update value.
#[derive(Debug, Clone)]
enum NbVal {
    /// Narrow value `v`, `w` bits wide.
    N { v: u64, w: u32 },
    /// Wide value.
    W(Bits),
}

/// A pending nonblocking update: (var, word index, bit offset, value).
#[derive(Debug, Clone)]
struct NbUpd {
    var: VarId,
    word: u64,
    off: u32,
    val: NbVal,
}

/// The compiled counterpart of [`Simulator`](crate::Simulator): same design,
/// same public surface, same observable behavior, linear bytecode execution.
pub struct CompiledSim {
    design: Arc<Design>,
    prog: Arc<SwProgram>,
    /// Narrow design state: one canonical word per ≤64-bit scalar or array
    /// element.
    arena: Vec<u64>,
    /// Wide (>64-bit) scalar state.
    wide: Vec<Bits>,
    /// Wide array state.
    wide_arr: Vec<Vec<Bits>>,
    /// Narrow scratch registers (canonical at their static widths).
    regs: Vec<u64>,
    /// Wide scratch registers.
    wregs: Vec<Bits>,
    active: VecDeque<ProcId>,
    queued: Vec<bool>,
    nb_updates: Vec<NbUpd>,
    events: Vec<SimEvent>,
    finished: bool,
    time: u64,
    rng: u64,
    loop_limit: u64,
    activation_limit: u64,
    /// Monitor state: (pc of the `Task` op, last rendering).
    monitors: Vec<(u32, String)>,
    /// Count of process activations (profiling).
    pub activations: u64,
    /// Count of statements executed (profiling; drives the software-engine
    /// cost model).
    pub statements: u64,
    /// The process currently executing; self-writes do not rewake it.
    current: Option<ProcId>,
    /// Per-process activation counts; `None` (the default) keeps the
    /// dispatch path free of profiling work apart from one branch per
    /// activation.
    profile: Option<Box<[u64]>>,
}

/// Execution profile of the bytecode engine, attributed to Verilog source
/// processes and opcode mnemonics. Produced by
/// [`CompiledSim::profile_report`].
#[derive(Debug, Clone, Default)]
pub struct SwProfileReport {
    /// `(source label, activations)` per process, hottest first. Labels
    /// come from the elaborated design: `assign <name>`, `always @(...)`,
    /// or `initial`.
    pub procs: Vec<(String, u64)>,
    /// `(mnemonic, executions)` per opcode, hottest first. Estimated as
    /// each process's static op counts scaled by its activation count —
    /// exact for straight-line processes, an upper bound across branches.
    pub opcodes: Vec<(&'static str, u64)>,
}

impl fmt::Debug for CompiledSim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompiledSim")
            .field("top", &self.design.top)
            .field("time", &self.time)
            .field("finished", &self.finished)
            .finish_non_exhaustive()
    }
}

impl CompiledSim {
    /// Compiles `design` and creates an executor with all state at declared
    /// initial values. Call [`CompiledSim::initialize`] to run `initial`
    /// blocks and settle combinational logic.
    pub fn new(design: Arc<Design>) -> Self {
        let prog = Arc::new(SwProgram::compile(&design));
        Self::with_program(design, prog)
    }

    /// Creates an executor over an already-compiled program (allows sharing
    /// one compilation between instances).
    pub fn with_program(design: Arc<Design>, prog: Arc<SwProgram>) -> Self {
        let mut arena = vec![0u64; prog.arena_words as usize];
        let mut wide = vec![Bits::zero(0); prog.wide_slots as usize];
        let mut wide_arr: Vec<Vec<Bits>> = vec![Vec::new(); prog.wide_arrs as usize];
        for (vi, info) in design.vars.iter().enumerate() {
            // An elided alias shares its root's slot; only the root seeds it.
            if prog.aliased[vi] {
                continue;
            }
            match prog.vstore[vi] {
                VStore::Narrow { off, width } => {
                    arena[off as usize] = info
                        .init
                        .as_ref()
                        .map(|b| b.resize(width).to_u64())
                        .unwrap_or(0);
                }
                VStore::NarrowArr { .. } => {}
                VStore::Wide { idx, width } => {
                    wide[idx as usize] = info
                        .init
                        .as_ref()
                        .map(|b| b.resize(width))
                        .unwrap_or_else(|| Bits::zero(width));
                }
                VStore::WideArr { idx, len, width } => {
                    wide_arr[idx as usize] = vec![Bits::zero(width); len as usize];
                }
            }
        }
        let nprocs = prog.procs.len();
        CompiledSim {
            regs: vec![0u64; prog.nregs as usize],
            wregs: vec![Bits::zero(0); prog.nwregs as usize],
            arena,
            wide,
            wide_arr,
            active: VecDeque::new(),
            queued: vec![false; nprocs],
            nb_updates: Vec::new(),
            events: Vec::new(),
            finished: false,
            time: 0,
            rng: 0x2545F4914F6CDD1D,
            loop_limit: DEFAULT_LOOP_LIMIT,
            activation_limit: DEFAULT_ACTIVATION_LIMIT,
            monitors: Vec::new(),
            activations: 0,
            statements: 0,
            current: None,
            profile: None,
            design,
            prog,
        }
    }

    /// Switches on per-process activation profiling (idempotent). Costs
    /// one counter bump per activation while enabled and a single branch
    /// when it never was (the default).
    pub fn enable_profiling(&mut self) {
        if self.profile.is_none() {
            self.profile = Some(vec![0u64; self.prog.procs.len()].into_boxed_slice());
        }
    }

    /// Aggregated execution counters, or `None` when profiling was never
    /// enabled.
    pub fn profile_report(&self) -> Option<SwProfileReport> {
        let counts = self.profile.as_deref()?;
        // Process bodies are laid out contiguously: a body runs from its
        // entry to the next-higher entry (or the end of the program).
        let mut entries: Vec<u32> = self.prog.procs.iter().map(|p| p.entry).collect();
        entries.sort_unstable();
        let mut procs = Vec::new();
        let mut by_op: std::collections::BTreeMap<&'static str, u64> =
            std::collections::BTreeMap::new();
        for (pi, &n) in counts.iter().enumerate() {
            if n == 0 {
                continue;
            }
            procs.push((self.proc_label(pi), n));
            let entry = self.prog.procs[pi].entry;
            let end = entries
                .iter()
                .copied()
                .find(|&e| e > entry)
                .unwrap_or(self.prog.code.len() as u32);
            for op in &self.prog.code[entry as usize..end as usize] {
                *by_op.entry(op_name(op)).or_default() += n;
            }
        }
        procs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut opcodes: Vec<(&'static str, u64)> = by_op.into_iter().collect();
        opcodes.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        Some(SwProfileReport { procs, opcodes })
    }

    /// A short source-level label for process `pi` (ProcIds align with
    /// `design.processes`).
    fn proc_label(&self, pi: usize) -> String {
        use crate::rir::{Process, RLValue};
        fn root_var(lv: &RLValue) -> Option<VarId> {
            match lv {
                RLValue::Var(v)
                | RLValue::Range { var: v, .. }
                | RLValue::ArrayWord { var: v, .. }
                | RLValue::ArrayWordRange { var: v, .. } => Some(*v),
                RLValue::Concat(parts) => parts.first().and_then(root_var),
            }
        }
        match self.design.processes.get(pi) {
            Some(Process::Assign { lhs, .. }) => match root_var(lhs) {
                Some(v) => format!("assign {}", self.design.info(v).name),
                None => "assign".to_string(),
            },
            Some(Process::Always { sens, .. }) => {
                let terms: Vec<String> = sens
                    .iter()
                    .map(|s| {
                        let name = &self.design.info(s.var).name;
                        match s.edge {
                            Some(Edge::Pos) => format!("posedge {name}"),
                            Some(Edge::Neg) => format!("negedge {name}"),
                            None => name.clone(),
                        }
                    })
                    .collect();
                format!("always @({})", terms.join(", "))
            }
            Some(Process::Initial { .. }) => "initial".to_string(),
            None => format!("proc {pi}"),
        }
    }

    /// The design being simulated.
    pub fn design(&self) -> &Arc<Design> {
        &self.design
    }

    /// The compiled program (for sharing across instances and inspection).
    pub fn program(&self) -> &Arc<SwProgram> {
        &self.prog
    }

    /// Current simulation time.
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Whether `$finish` has executed.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Overrides the per-activation statement budget.
    pub fn set_loop_limit(&mut self, limit: u64) {
        self.loop_limit = limit;
    }

    /// Overrides the per-settle activation budget.
    pub fn set_activation_limit(&mut self, limit: u64) {
        self.activation_limit = limit;
    }

    /// Seeds `$random`.
    pub fn seed_random(&mut self, seed: u64) {
        self.rng = seed | 1;
    }

    /// Drains accumulated side-effect events.
    pub fn drain_events(&mut self) -> Vec<SimEvent> {
        std::mem::take(&mut self.events)
    }

    /// Whether any events are pending.
    pub fn has_events(&self) -> bool {
        !self.events.is_empty()
    }

    /// Whether nonblocking updates are pending.
    pub fn has_updates(&self) -> bool {
        !self.nb_updates.is_empty()
    }

    /// Whether any evaluation events are active.
    pub fn has_evals(&self) -> bool {
        !self.active.is_empty()
    }

    // ------------------------------------------------------------------
    // State access
    // ------------------------------------------------------------------

    /// Reads a scalar variable's current value.
    ///
    /// # Panics
    ///
    /// Panics if the name is unknown.
    pub fn peek(&self, name: &str) -> Bits {
        let id = self
            .design
            .var(name)
            .unwrap_or_else(|| panic!("unknown variable `{name}`"));
        self.peek_id(id)
    }

    /// Reads a variable by id.
    pub fn peek_id(&self, id: VarId) -> Bits {
        match self.prog.vstore[id.0 as usize] {
            VStore::Narrow { off, width } => Bits::from_u64(width, self.arena[off as usize]),
            VStore::Wide { idx, .. } => self.wide[idx as usize].clone(),
            // Arrays have no scalar value (mirrors the interpreter's
            // zero-width shadow slot).
            VStore::NarrowArr { .. } | VStore::WideArr { .. } => Bits::zero(0),
        }
    }

    /// Reads one word of a memory.
    pub fn peek_array(&self, id: VarId, index: u64) -> Bits {
        match self.prog.vstore[id.0 as usize] {
            VStore::NarrowArr { off, len, width } => {
                if index < len {
                    Bits::from_u64(width, self.arena[(off as u64 + index) as usize])
                } else {
                    Bits::zero(width)
                }
            }
            VStore::WideArr { idx, len, width } => {
                if index < len {
                    self.wide_arr[idx as usize][index as usize].clone()
                } else {
                    Bits::zero(width)
                }
            }
            VStore::Narrow { width, .. } | VStore::Wide { width, .. } => Bits::zero(width),
        }
    }

    /// Writes a memory word directly without triggering events.
    pub fn poke_array(&mut self, id: VarId, index: u64, value: Bits) {
        match self.prog.vstore[id.0 as usize] {
            VStore::NarrowArr { off, len, width } if index < len => {
                self.arena[(off as u64 + index) as usize] = value.resize(width).to_u64();
            }
            VStore::WideArr { idx, len, width } if index < len => {
                self.wide_arr[idx as usize][index as usize] = value.resize(width);
            }
            _ => {}
        }
    }

    /// Sets a variable and schedules its dependents. Call
    /// [`CompiledSim::settle`] afterwards.
    pub fn poke(&mut self, name: &str, value: Bits) {
        let id = self
            .design
            .var(name)
            .unwrap_or_else(|| panic!("unknown variable `{name}`"));
        self.poke_id(id, value);
    }

    /// Sets a variable by id, scheduling dependents on change.
    pub fn poke_id(&mut self, id: VarId, value: Bits) {
        match self.prog.vstore[id.0 as usize] {
            VStore::Narrow { width, .. } => {
                let v = value.resize(width).to_u64();
                self.apply_write_n(id, 0, 0, v, width);
            }
            VStore::Wide { width, .. } => {
                let v = value.resize(width);
                self.apply_write_w(id, 0, 0, &v);
            }
            _ => {}
        }
    }

    /// Forces a value without triggering events (state restoration).
    pub fn force(&mut self, id: VarId, value: Bits) {
        match self.prog.vstore[id.0 as usize] {
            VStore::Narrow { off, width } => {
                self.arena[off as usize] = value.resize(width).to_u64();
            }
            VStore::Wide { idx, width } => {
                self.wide[idx as usize] = value.resize(width);
            }
            _ => {}
        }
    }

    // ------------------------------------------------------------------
    // Scheduling (mirrors the interpreter phase for phase)
    // ------------------------------------------------------------------

    fn schedule(&mut self, pid: ProcId) {
        if !self.queued[pid.0 as usize] {
            self.queued[pid.0 as usize] = true;
            self.active.push_back(pid);
        }
    }

    /// Runs all `initial` blocks and continuous assignments to a fixed
    /// point (time zero).
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on combinational loops or runaway processes.
    pub fn initialize(&mut self) -> Result<(), SimError> {
        for i in 0..self.prog.procs.len() {
            if self.prog.procs[i].run_at_init {
                self.schedule(ProcId(i as u32));
            }
        }
        self.settle()
    }

    /// Re-evaluates all combinational logic after state has been
    /// overwritten with [`CompiledSim::force`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on combinational loops.
    pub fn resettle(&mut self) -> Result<(), SimError> {
        for i in 0..self.prog.procs.len() {
            if self.prog.procs[i].comb {
                self.schedule(ProcId(i as u32));
            }
        }
        self.settle()
    }

    /// Runs evaluation/update phases until the event queues are empty.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Unstable`] on combinational loops or
    /// [`SimError::LoopLimit`] for runaway loops.
    pub fn settle(&mut self) -> Result<(), SimError> {
        let mut rounds: u64 = 0;
        loop {
            self.eval_phase()?;
            if self.finished || self.nb_updates.is_empty() {
                break;
            }
            self.apply_updates();
            rounds += 1;
            if rounds > self.activation_limit {
                return Err(SimError::Unstable {
                    activations: rounds,
                });
            }
        }
        self.run_monitors();
        Ok(())
    }

    /// Runs only the evaluation phase, leaving nonblocking updates pending.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on combinational loops or runaway processes.
    pub fn eval_phase(&mut self) -> Result<(), SimError> {
        let mut count: u64 = 0;
        while let Some(pid) = self.active.pop_front() {
            self.queued[pid.0 as usize] = false;
            count += 1;
            self.activations += 1;
            if count > self.activation_limit {
                return Err(SimError::Unstable { activations: count });
            }
            self.run_process(pid)?;
            if self.finished {
                self.active.clear();
                self.queued.iter_mut().for_each(|q| *q = false);
                self.nb_updates.clear();
                return Ok(());
            }
        }
        Ok(())
    }

    /// Applies all pending nonblocking updates, activating processes
    /// sensitive to the changed values.
    pub fn apply_updates(&mut self) {
        // Move the queue out so writes can borrow `self`, then hand its
        // allocation back: this runs every delta round and must not churn
        // the allocator.
        let mut updates = std::mem::take(&mut self.nb_updates);
        for u in updates.drain(..) {
            match u.val {
                NbVal::N { v, w } => self.apply_write_n(u.var, u.word, u.off, v, w),
                NbVal::W(b) => self.apply_write_w(u.var, u.word, u.off, &b),
            }
        }
        // Applying updates only wakes processes; it cannot queue new ones.
        debug_assert!(self.nb_updates.is_empty());
        std::mem::swap(&mut self.nb_updates, &mut updates);
    }

    /// Runs monitor statements against the current observable state.
    pub fn end_step(&mut self) {
        self.run_monitors();
    }

    /// Advances logical time by one tick.
    pub fn advance_time(&mut self) {
        self.time += 1;
    }

    /// Advances one virtual clock cycle: raise `clk`, settle, lower `clk`,
    /// settle, advance time.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from [`CompiledSim::settle`].
    pub fn tick(&mut self, clk: &str) -> Result<(), SimError> {
        let id = self
            .design
            .var(clk)
            .unwrap_or_else(|| panic!("unknown clock `{clk}`"));
        self.tick_id(id)
    }

    /// [`CompiledSim::tick`] by variable id.
    pub fn tick_id(&mut self, clk: VarId) -> Result<(), SimError> {
        self.poke_bit(clk, 1);
        self.settle()?;
        self.poke_bit(clk, 0);
        // The falling edge usually wakes nothing (posedge-only designs);
        // a settle with empty queues would only re-run monitors.
        if !self.active.is_empty() || !self.nb_updates.is_empty() || !self.monitors.is_empty() {
            self.settle()?;
        }
        self.time += 1;
        Ok(())
    }

    /// Batched open-loop fast path: run up to `max` clock cycles back to
    /// back, stopping early at `$finish` or as soon as any observable event
    /// (a `$display`-family firing) is produced, so the caller can hand
    /// control back to the runtime exactly where the interpreter would
    /// have. Returns the number of completed cycles.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from [`CompiledSim::settle`].
    pub fn tick_n(&mut self, clk: VarId, max: u64) -> Result<u64, SimError> {
        let mut done = 0;
        while done < max && !self.finished {
            self.tick_id(clk)?;
            done += 1;
            if !self.events.is_empty() {
                break;
            }
        }
        Ok(done)
    }

    /// Narrow single-bit poke without constructing a `Bits` (the tick hot
    /// path).
    fn poke_bit(&mut self, id: VarId, v: u64) {
        match self.prog.vstore[id.0 as usize] {
            VStore::Narrow { width, .. } => {
                self.apply_write_n(id, 0, 0, v & wmask(width), width);
            }
            _ => self.poke_id(id, Bits::from_u64(1, v)),
        }
    }

    // ------------------------------------------------------------------
    // Writes
    // ------------------------------------------------------------------

    /// Narrow splice: writes the `w`-bit value `v` into `[off, off+w)` of a
    /// `vw`-bit word, discarding bits that fall outside (mirrors
    /// `Bits::splice`).
    #[inline]
    fn nsplice(old: u64, vw: u32, off: u32, v: u64, w: u32) -> u64 {
        if off >= vw || w == 0 {
            return old;
        }
        // off < vw ≤ 64, so all shifts are in range; bits of the mask above
        // the word boundary drop out naturally.
        let m = (wmask(w) << off) & wmask(vw);
        (old & !m) | ((v << off) & m)
    }

    fn apply_write_n(&mut self, var: VarId, word: u64, off: u32, v: u64, w: u32) {
        match self.prog.vstore[var.0 as usize] {
            VStore::Narrow { off: aoff, width } => {
                let old = self.arena[aoff as usize];
                // Full-width writes (the common case: every scalar
                // nonblocking assign) skip the splice arithmetic.
                let next = if off == 0 && w == width {
                    v
                } else {
                    Self::nsplice(old, width, off, v, w)
                };
                if next != old {
                    let rising = (old & 1) == 0 && (next & 1) == 1;
                    let falling = (old & 1) == 1 && (next & 1) == 0;
                    self.arena[aoff as usize] = next;
                    self.wake(var, rising, falling);
                }
            }
            VStore::NarrowArr {
                off: aoff,
                len,
                width,
            } => {
                if word >= len {
                    return;
                }
                let slot = (aoff as u64 + word) as usize;
                let old = self.arena[slot];
                let next = Self::nsplice(old, width, off, v, w);
                if next != old {
                    self.arena[slot] = next;
                    // Array reads are level-sensitive through the owning var.
                    self.wake(var, false, false);
                }
            }
            // A narrow-valued store can target a wide variable via a
            // part-select; route through the Bits path.
            VStore::Wide { .. } | VStore::WideArr { .. } => {
                let b = Bits::from_u64(w, v);
                self.apply_write_w(var, word, off, &b);
            }
        }
    }

    fn apply_write_w(&mut self, var: VarId, word: u64, off: u32, value: &Bits) {
        match self.prog.vstore[var.0 as usize] {
            VStore::Wide { idx, .. } => {
                let slot = idx as usize;
                let old = &self.wide[slot];
                let mut next = old.clone();
                next.splice(off, value);
                if next != *old {
                    let rising = !old.bit(0) && next.bit(0);
                    let falling = old.bit(0) && !next.bit(0);
                    self.wide[slot] = next;
                    self.wake(var, rising, falling);
                }
            }
            VStore::WideArr { idx, len, .. } => {
                if word >= len {
                    return;
                }
                let slot = &mut self.wide_arr[idx as usize][word as usize];
                let mut next = slot.clone();
                next.splice(off, value);
                if next != *slot {
                    *slot = next;
                    self.wake(var, false, false);
                }
            }
            VStore::Narrow { .. } | VStore::NarrowArr { .. } => {
                let v = value.to_u64();
                self.apply_write_n(var, word, off, v, value.width().min(64));
            }
        }
    }

    #[inline]
    fn wake(&mut self, var: VarId, rising: bool, falling: bool) {
        // SAFETY: `self.prog` is assigned once at construction and never
        // replaced, and the sensitivity index is immutable after compile;
        // reborrowing through a raw pointer lets the loop call `schedule`
        // (`&mut self`) without re-indexing per watcher. Writes are the
        // hottest path in the engine and this runs for every changed value.
        let sens: &[(ProcId, Option<Edge>)] =
            unsafe { &*(self.prog.sens[var.0 as usize].as_slice() as *const _) };
        for &(pid, edge) in sens {
            if self.current == Some(pid) {
                continue;
            }
            let fire = match edge {
                None => true,
                Some(Edge::Pos) => rising,
                Some(Edge::Neg) => falling,
            };
            if fire {
                self.schedule(pid);
            }
        }
    }

    // ------------------------------------------------------------------
    // Bytecode execution
    // ------------------------------------------------------------------

    fn run_process(&mut self, pid: ProcId) -> Result<(), SimError> {
        if let Some(p) = &mut self.profile {
            p[pid.0 as usize] += 1;
        }
        let info = self.prog.procs[pid.0 as usize];
        if info.is_assign {
            // Continuous assignments have no loops and are not masked
            // against self-wake (`assign a = ~a;` must loop-detect).
            let mut budget = u64::MAX;
            self.exec_from(info.entry, &mut budget)
        } else {
            self.current = Some(pid);
            let mut budget = self.loop_limit;
            let r = self.exec_from(info.entry, &mut budget);
            self.current = None;
            r
        }
    }

    fn exec_from(&mut self, entry: u32, budget: &mut u64) -> Result<(), SimError> {
        self.exec_range(entry, u32::MAX, budget)
    }

    /// Narrow register read. SAFETY: register indices are allocated at
    /// compile time strictly below `nregs`, and the register file is sized
    /// to exactly `nregs`; skipping the bounds branch keeps the dispatch
    /// loop lean (same discipline as the netlist evaluator's arena).
    #[inline(always)]
    fn r(&self, i: u16) -> u64 {
        debug_assert!((i as usize) < self.regs.len());
        unsafe { *self.regs.get_unchecked(i as usize) }
    }

    /// Narrow register write. SAFETY: see [`CompiledSim::r`].
    #[inline(always)]
    fn set_r(&mut self, i: u16, v: u64) {
        debug_assert!((i as usize) < self.regs.len());
        unsafe { *self.regs.get_unchecked_mut(i as usize) = v };
    }

    /// Arena word read. SAFETY: scalar offsets come from the storage layout,
    /// which allocates every slot below `arena_words`, the exact arena size.
    #[inline(always)]
    fn aw(&self, off: u32) -> u64 {
        debug_assert!((off as usize) < self.arena.len());
        unsafe { *self.arena.get_unchecked(off as usize) }
    }

    /// The dispatch loop: executes ops from `entry` until a `Halt`, a
    /// terminal task, or (for monitor fragments) the pc reaches `end`.
    fn exec_range(&mut self, entry: u32, end: u32, budget: &mut u64) -> Result<(), SimError> {
        // SAFETY: `self.prog` is assigned once at construction and never
        // replaced, and `SwProgram` has no interior mutability, so the code
        // slice is immutable and outlives this call even while op handlers
        // take `&mut self`. Reborrowing through a raw pointer instead of
        // cloning the `Arc` drops a refcount round-trip from every process
        // activation, the engine's hottest fixed cost.
        let code: &[Op] = unsafe { &*(self.prog.code.as_slice() as *const [Op]) };
        let end = (end as usize).min(code.len());
        let mut pc = entry as usize;
        while pc < end {
            let op = &code[pc];
            pc += 1;
            match *op {
                Op::Step(n) => {
                    let n = n as u64;
                    if *budget < n {
                        return Err(SimError::LoopLimit {
                            limit: self.loop_limit,
                        });
                    }
                    *budget -= n;
                    self.statements += n;
                }
                Op::Guard => {
                    if *budget == 0 {
                        return Err(SimError::LoopLimit {
                            limit: self.loop_limit,
                        });
                    }
                    *budget -= 1;
                }
                Op::Jmp(t) => pc = t as usize,
                Op::Jz(r, t) => {
                    if self.r(r) == 0 {
                        pc = t as usize;
                    }
                }
                Op::Jnz(r, t) => {
                    if self.r(r) != 0 {
                        pc = t as usize;
                    }
                }
                Op::Switch {
                    a,
                    base,
                    ref table,
                    default_t,
                } => {
                    let i = self.r(a).wrapping_sub(base);
                    pc = table.get(i as usize).copied().unwrap_or(default_t) as usize;
                }
                Op::JnRange { a, lo, hi, t } => {
                    let v = self.r(a);
                    if v < lo || hi < v {
                        pc = t as usize;
                    }
                }
                Op::JnRangeM { off, lo, hi, t } => {
                    let v = self.aw(off);
                    if v < lo || hi < v {
                        pc = t as usize;
                    }
                }
                Op::JnCmpI { cc, a, imm, t } => {
                    if !cc.test(self.r(a).cmp(&imm)) {
                        pc = t as usize;
                    }
                }
                Op::JnCmpMI { cc, off, imm, t } => {
                    if !cc.test(self.aw(off).cmp(&imm)) {
                        pc = t as usize;
                    }
                }
                Op::Halt => return Ok(()),
                Op::MovC(d, v) => self.set_r(d, v),
                Op::Mov(d, s) => self.set_r(d, self.r(s)),
                Op::Ld(d, off) => self.set_r(d, self.aw(off)),
                Op::LdSx { dst, off, fw, tw } => {
                    let v = self.aw(off);
                    self.set_r(dst, (sext(v, fw) as u64) & wmask(tw));
                }
                Op::LdArr { dst, var, idx } => {
                    let i = self.r(idx);
                    let v = match self.prog.vstore[var as usize] {
                        VStore::NarrowArr { off, len, .. } if i < len => {
                            self.aw((off as u64 + i) as u32)
                        }
                        VStore::Narrow { off, .. } if i == 0 => self.aw(off),
                        _ => 0,
                    };
                    self.set_r(dst, v);
                }
                Op::Sext { dst, src, fw, tw } => {
                    let v = self.r(src);
                    self.set_r(dst, (sext(v, fw) as u64) & wmask(tw));
                }
                Op::Mask { dst, src, w } => {
                    self.set_r(dst, self.r(src) & wmask(w));
                }
                Op::Bin { op, dst, a, b, w } => {
                    let (a, b) = (self.r(a), self.r(b));
                    self.set_r(dst, nbin(op, a, b, w));
                }
                Op::BinImm { op, dst, a, imm, w } => {
                    let a = self.r(a);
                    self.set_r(dst, nbin(op, a, imm, w));
                }
                Op::DivS {
                    dst,
                    a,
                    b,
                    lw,
                    rw,
                    w,
                } => {
                    let la = sext(self.r(a), lw) as i128;
                    let rb = sext(self.r(b), rw) as i128;
                    let v = if rb == 0 {
                        wmask(w)
                    } else {
                        ((la / rb) as u64) & wmask(w)
                    };
                    self.set_r(dst, v);
                }
                Op::RemS {
                    dst,
                    a,
                    b,
                    lw,
                    rw,
                    w,
                } => {
                    let la = sext(self.r(a), lw) as i128;
                    let rb = sext(self.r(b), rw) as i128;
                    let v = if rb == 0 {
                        wmask(w)
                    } else {
                        ((la % rb) as u64) & wmask(w)
                    };
                    self.set_r(dst, v);
                }
                Op::AShr { dst, a, amt, w } => {
                    let amt = self.r(amt);
                    self.set_r(dst, nashr(self.r(a), amt, w));
                }
                Op::AShrImm { dst, a, amt, w } => {
                    self.set_r(dst, nashr(self.r(a), amt, w));
                }
                Op::CmpU { cc, dst, a, b } => {
                    let ord = self.r(a).cmp(&self.r(b));
                    self.set_r(dst, cc.test(ord) as u64);
                }
                Op::CmpUI { cc, dst, a, imm } => {
                    let ord = self.r(a).cmp(&imm);
                    self.set_r(dst, cc.test(ord) as u64);
                }
                Op::CmpRange { dst, a, lo, hi } => {
                    let v = self.r(a);
                    self.set_r(dst, (lo <= v && v <= hi) as u64);
                }
                Op::CmpS { cc, dst, a, b, w } => {
                    let ord = sext(self.r(a), w).cmp(&sext(self.r(b), w));
                    self.set_r(dst, cc.test(ord) as u64);
                }
                Op::CmpSI { cc, dst, a, imm, w } => {
                    let ord = sext(self.r(a), w).cmp(&imm);
                    self.set_r(dst, cc.test(ord) as u64);
                }
                Op::Not { dst, a, w } => {
                    self.set_r(dst, !self.r(a) & wmask(w));
                }
                Op::Neg { dst, a, w } => {
                    self.set_r(dst, self.r(a).wrapping_neg() & wmask(w));
                }
                Op::Red { kind, dst, a, w } => {
                    let v = self.r(a);
                    let r = match kind {
                        RedKind::And => (v == wmask(w)) as u64,
                        RedKind::Or => (v != 0) as u64,
                        RedKind::Xor => (v.count_ones() & 1) as u64,
                        RedKind::Nand => (v != wmask(w)) as u64,
                        RedKind::Nor => (v == 0) as u64,
                        RedKind::Xnor => ((v.count_ones() & 1) ^ 1) as u64,
                        RedKind::LogNot => (v == 0) as u64,
                    };
                    self.set_r(dst, r);
                }
                Op::Bool(d, a) => {
                    self.set_r(d, (self.r(a) != 0) as u64);
                }
                Op::SliceC { dst, a, off, w } => {
                    self.set_r(dst, (self.r(a) >> off) & wmask(w));
                }
                Op::SliceR { dst, a, off, w } => {
                    let off = self.r(off);
                    let v = if off >= 64 {
                        0
                    } else {
                        (self.r(a) >> off) & wmask(w)
                    };
                    self.set_r(dst, v);
                }
                Op::Concat2 { dst, hi, lo, lw } => {
                    let lo = self.r(lo);
                    let v = if lw >= 64 {
                        lo
                    } else {
                        (self.r(hi) << lw) | lo
                    };
                    self.set_r(dst, v);
                }
                Op::Rotl { dst, a, k, w } => {
                    let v = self.r(a);
                    self.set_r(dst, ((v << k) | (v >> (w - k))) & wmask(w));
                }
                Op::Select { dst, c, t, f } => {
                    let v = if self.r(c) != 0 { self.r(t) } else { self.r(f) };
                    self.set_r(dst, v);
                }
                Op::CmpSel {
                    dst,
                    cc,
                    signed,
                    w,
                    a,
                    b,
                    t,
                    f,
                } => {
                    let ord = if signed {
                        sext(self.r(a), w).cmp(&sext(self.r(b), w))
                    } else {
                        self.r(a).cmp(&self.r(b))
                    };
                    let v = if cc.test(ord) { self.r(t) } else { self.r(f) };
                    self.set_r(dst, v);
                }
                Op::Time(d) => self.set_r(d, self.time),
                Op::Random(d) => {
                    let mut x = self.rng;
                    x ^= x >> 12;
                    x ^= x << 25;
                    x ^= x >> 27;
                    self.rng = x;
                    self.set_r(d, x.wrapping_mul(0x2545F4914F6CDD1D) >> 32);
                }
                Op::WMovC(d, ref b) => self.wregs[d as usize] = (**b).clone(),
                Op::WLd { dst, var } => {
                    self.wregs[dst as usize] = match self.prog.vstore[var as usize] {
                        VStore::Wide { idx, .. } => self.wide[idx as usize].clone(),
                        _ => Bits::zero(0),
                    };
                }
                Op::WLdArr { dst, var, idx } => {
                    let i = self.r(idx);
                    self.wregs[dst as usize] = match self.prog.vstore[var as usize] {
                        VStore::WideArr {
                            idx: ai,
                            len,
                            width,
                        } => {
                            if i < len {
                                self.wide_arr[ai as usize][i as usize].clone()
                            } else {
                                Bits::zero(width)
                            }
                        }
                        VStore::Wide { idx: ai, width } => {
                            if i == 0 {
                                self.wide[ai as usize].clone()
                            } else {
                                Bits::zero(width)
                            }
                        }
                        _ => Bits::zero(0),
                    };
                }
                Op::WExt {
                    dst,
                    src,
                    w,
                    signed,
                } => {
                    let v = &self.wregs[src as usize];
                    self.wregs[dst as usize] = if signed {
                        v.resize_signed(w)
                    } else {
                        v.resize(w)
                    };
                }
                Op::WFromR {
                    dst,
                    src,
                    sw,
                    w,
                    signed,
                } => {
                    let b = Bits::from_u64(sw, self.r(src));
                    self.wregs[dst as usize] = if w == sw {
                        b
                    } else if signed {
                        b.resize_signed(w)
                    } else {
                        b.resize(w)
                    };
                }
                Op::RFromW { dst, src } => {
                    self.set_r(dst, self.wregs[src as usize].to_u64());
                }
                Op::RBoolFromW { dst, src } => {
                    self.set_r(dst, self.wregs[src as usize].to_bool() as u64);
                }
                Op::WBin {
                    op,
                    dst,
                    a,
                    b,
                    w,
                    sdiv,
                } => {
                    let l = &self.wregs[a as usize];
                    let r = &self.wregs[b as usize];
                    let v = if sdiv && op == BinaryOp::Div {
                        signed_div(l, r)
                    } else if sdiv && op == BinaryOp::Rem {
                        signed_rem(l, r)
                    } else {
                        cascade_verilog::typecheck::apply_binary(op, l, r)
                    };
                    self.wregs[dst as usize] = v.resize(w);
                }
                Op::WShift {
                    op,
                    dst,
                    a,
                    amt,
                    arith,
                } => {
                    let amt = self.r(amt).min(u32::MAX as u64) as u32;
                    let l = &self.wregs[a as usize];
                    self.wregs[dst as usize] = match op {
                        BinaryOp::Shl | BinaryOp::AShl => l.shl(amt),
                        BinaryOp::Shr => l.shr(amt),
                        BinaryOp::AShr => {
                            if arith {
                                l.ashr(amt)
                            } else {
                                l.shr(amt)
                            }
                        }
                        _ => unreachable!("non-shift op in WShift"),
                    };
                }
                Op::WPow { dst, a, b, w } => {
                    let v = self.wregs[a as usize].pow(&self.wregs[b as usize]);
                    self.wregs[dst as usize] = v.resize(w);
                }
                Op::WUn { op, dst, a, w } => {
                    let r = cascade_verilog::typecheck::apply_unary(op, &self.wregs[a as usize]);
                    self.wregs[dst as usize] = extend(&r, w, false);
                }
                Op::WCmp {
                    cc,
                    dst,
                    a,
                    b,
                    signed,
                } => {
                    let l = &self.wregs[a as usize];
                    let r = &self.wregs[b as usize];
                    let ord = if signed {
                        l.cmp_signed(r)
                    } else {
                        l.cmp_unsigned(r)
                    };
                    self.set_r(dst, cc.test(ord) as u64);
                }
                Op::WConcat2 { dst, hi, lo } => {
                    let v = self.wregs[hi as usize].concat(&self.wregs[lo as usize]);
                    self.wregs[dst as usize] = v;
                }
                Op::WRepeat { dst, src, count } => {
                    self.wregs[dst as usize] = self.wregs[src as usize].repeat(count);
                }
                Op::WSliceN { dst, a, off, w } => {
                    let off = self.r(off);
                    let v = if off > u32::MAX as u64 {
                        0
                    } else {
                        self.wregs[a as usize].slice(off as u32, w).to_u64()
                    };
                    self.set_r(dst, v);
                }
                Op::WSliceW { dst, a, off, w } => {
                    let off = self.r(off);
                    self.wregs[dst as usize] = if off > u32::MAX as u64 {
                        Bits::zero(w)
                    } else {
                        self.wregs[a as usize].slice(off as u32, w)
                    };
                }
                Op::St { var, off, src } => {
                    let v = self.r(src);
                    let old = self.aw(off);
                    if v != old {
                        let rising = (old & 1) == 0 && (v & 1) == 1;
                        let falling = (old & 1) == 1 && (v & 1) == 0;
                        self.arena[off as usize] = v;
                        self.wake(VarId(var), rising, falling);
                    }
                }
                Op::StQ { off, src } => {
                    let v = self.r(src);
                    self.arena[off as usize] = v;
                }
                Op::NbSt { var, src } => {
                    let v = self.r(src);
                    let w = self.prog.vstore[var as usize].width();
                    self.nb_updates.push(NbUpd {
                        var: VarId(var),
                        word: 0,
                        off: 0,
                        val: NbVal::N { v, w },
                    });
                }
                Op::StoreGen {
                    var,
                    src,
                    w,
                    idx,
                    off,
                    nb,
                } => {
                    let v = self.r(src);
                    let word = idx.map(|r| self.r(r)).unwrap_or(0);
                    // The interpreter computes the bit offset with a wrapping
                    // `as u32` truncation of the selector value.
                    let off = off.map(|r| self.r(r) as u32).unwrap_or(0);
                    if nb {
                        self.nb_updates.push(NbUpd {
                            var: VarId(var),
                            word,
                            off,
                            val: NbVal::N { v, w },
                        });
                    } else {
                        self.apply_write_n(VarId(var), word, off, v, w);
                    }
                }
                Op::WStore {
                    var,
                    src,
                    idx,
                    off,
                    nb,
                    ..
                } => {
                    let word = idx.map(|r| self.r(r)).unwrap_or(0);
                    let off = off.map(|r| self.r(r) as u32).unwrap_or(0);
                    if nb {
                        let b = self.wregs[src as usize].clone();
                        self.nb_updates.push(NbUpd {
                            var: VarId(var),
                            word,
                            off,
                            val: NbVal::W(b),
                        });
                    } else {
                        let b = self.wregs[src as usize].clone();
                        self.apply_write_w(VarId(var), word, off, &b);
                    }
                }
                Op::Task(ref t) => {
                    self.fire_task(t, pc as u32 - 1);
                    if self.finished {
                        return Ok(());
                    }
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // System tasks and monitors
    // ------------------------------------------------------------------

    fn fire_task(&mut self, t: &TaskOp, pc: u32) {
        match t.kind {
            SystemTask::Display => {
                let text = self.render_task(t);
                self.events.push(SimEvent::Display(text));
            }
            SystemTask::Write => {
                let text = self.render_task(t);
                self.events.push(SimEvent::Write(text));
            }
            SystemTask::Finish => {
                self.events.push(SimEvent::Finish);
                self.finished = true;
            }
            SystemTask::Fatal => {
                let text = self.render_task(t);
                self.events.push(SimEvent::Fatal(text));
                self.finished = true;
            }
            SystemTask::Monitor => {
                let rendered = self.render_task(t);
                self.events.push(SimEvent::Display(rendered.clone()));
                self.monitors.push((pc, rendered));
            }
        }
    }

    /// Renders a task's arguments from the current register contents.
    fn render_task(&self, t: &TaskOp) -> String {
        match &t.fmt {
            Some(fmt) => {
                let values: Vec<Bits> = t
                    .vals
                    .iter()
                    .map(|a| match a {
                        ArgV::N { r, w, .. } => Bits::from_u64(*w, self.regs[*r as usize]),
                        ArgV::W { wr, .. } => self.wregs[*wr as usize].clone(),
                        ArgV::Lit { packed, .. } => packed.clone(),
                    })
                    .collect();
                format_verilog(fmt, &values)
            }
            None => t
                .vals
                .iter()
                .map(|a| match a {
                    ArgV::N { r, w, signed } => {
                        let b = Bits::from_u64(*w, self.regs[*r as usize]);
                        if *signed {
                            b.to_signed_decimal_string()
                        } else {
                            b.to_decimal_string()
                        }
                    }
                    ArgV::W { wr, signed } => {
                        let b = &self.wregs[*wr as usize];
                        if *signed {
                            b.to_signed_decimal_string()
                        } else {
                            b.to_decimal_string()
                        }
                    }
                    ArgV::Lit { s, .. } => s.clone(),
                })
                .collect::<Vec<_>>()
                .join(" "),
        }
    }

    fn run_monitors(&mut self) {
        if self.monitors.is_empty() {
            return;
        }
        let monitors = std::mem::take(&mut self.monitors);
        let mut next = Vec::with_capacity(monitors.len());
        let prog = Arc::clone(&self.prog);
        for (pc, last) in monitors {
            let Op::Task(ref t) = prog.code[pc as usize] else {
                unreachable!("monitor pc does not point at a Task op");
            };
            // Re-execute the argument fragment (pure ops plus `$random`
            // stream effects, matching the interpreter's re-evaluation),
            // then re-render.
            self.exec_frag(t.frag.0, t.frag.1);
            let now = self.render_task(t);
            if now != last {
                self.events.push(SimEvent::Display(now.clone()));
            }
            next.push((pc, now));
        }
        self.monitors = next;
    }

    /// Executes the op range `[start, end)` (a task's argument fragment).
    /// Fragments contain only value-computing ops and internal forward
    /// jumps from branching ternaries — no `Step`/`Guard`/store/`Task` —
    /// so with a saturated budget this cannot error or mutate design state
    /// beyond the `$random` stream.
    fn exec_frag(&mut self, start: u32, end: u32) {
        if start < end {
            let mut budget = u64::MAX;
            self.exec_range(start, end, &mut budget)
                .expect("pure task-argument fragment cannot fail");
        }
    }
}

/// Narrow binary ALU evaluation: operands are canonical `w`-bit values, the
/// result is canonical at `w`. Mirrors `Bits` arithmetic exactly for widths
/// ≤ 64 (wrapping ring ops commute with truncation; division/remainder act
/// on the canonical values; x/0 and x%0 yield all-ones like `Bits::div`).
pub(crate) fn nbin(op: NOp, a: u64, b: u64, w: u32) -> u64 {
    let m = wmask(w);
    match op {
        NOp::Add => a.wrapping_add(b) & m,
        NOp::Sub => a.wrapping_sub(b) & m,
        NOp::Mul => a.wrapping_mul(b) & m,
        NOp::DivU => a.checked_div(b).unwrap_or(m),
        NOp::RemU => a.checked_rem(b).unwrap_or(m),
        NOp::And => a & b,
        NOp::Or => a | b,
        NOp::Xor => a ^ b,
        NOp::Xnor => !(a ^ b) & m,
        NOp::Shl => {
            if b >= w as u64 {
                0
            } else {
                (a << b) & m
            }
        }
        NOp::Shr => {
            if b >= 64 {
                0
            } else {
                a >> b
            }
        }
        NOp::Pow => npow(a, b, w),
    }
}

/// `base ** exp` wrapping at width `w` (binary exponentiation mod 2^64,
/// then masked — multiplication mod 2^w is a quotient ring of mod 2^64, so
/// this equals `Bits::pow`'s per-step wrap at the base width).
fn npow(mut base: u64, mut exp: u64, w: u32) -> u64 {
    let mut acc: u64 = 1;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = acc.wrapping_mul(base);
        }
        base = base.wrapping_mul(base);
        exp >>= 1;
    }
    acc & wmask(w)
}

/// Arithmetic shift right of the canonical `w`-bit value `a` by `amt`,
/// masked back to `w` (mirrors `Bits::ashr` incl. the ≥width saturation).
fn nashr(a: u64, amt: u64, w: u32) -> u64 {
    if w == 0 {
        return 0;
    }
    let s = sext(a, w);
    let shift = amt.min(63) as u32;
    ((s >> shift) as u64) & wmask(w)
}
