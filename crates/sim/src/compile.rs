//! Bytecode compiler for the software engine: lowers [`RStmt`]/[`RExpr`]
//! process bodies into the flat register program executed by
//! [`CompiledSim`](crate::CompiledSim).
//!
//! The lowering mirrors [`Simulator`](crate::Simulator)'s tree walk
//! node-for-node: every opcode computes exactly the value the interpreter's
//! `eval(e, ctx)` would produce (context-determined width `max(e.width,
//! ctx)`, per-node sign extension, Verilog's self-determined shift amounts
//! and division-by-zero rules), and `Step`/`Guard` opcodes reproduce the
//! interpreter's statement counter and per-activation loop budget. Values
//! whose width fits a machine word live in a register file of canonical
//! (mask-invariant) `u64`s; anything wider falls back to `Bits`-valued wide
//! registers driven by the same helpers the interpreter uses.
//!
//! Register allocation is a nested stack discipline: each statement resets
//! the high-water mark it entered with, and loop counters are pinned in the
//! enclosing frame so the body cannot clobber them.

use crate::elaborate::{collect_reads, Design};
use crate::rir::*;
use cascade_bits::Bits;
use cascade_verilog::ast::{BinaryOp, CaseKind, Edge, SystemTask, UnaryOp};

/// Index of a narrow (≤64-bit) scratch register.
pub(crate) type Reg = u16;
/// Index of a wide (`Bits`) scratch register.
pub(crate) type WReg = u16;

/// Mask covering the low `w` bits of a word (`w ≤ 64`).
#[inline]
pub(crate) fn wmask(w: u32) -> u64 {
    if w >= 64 {
        u64::MAX
    } else {
        (1u64 << w) - 1
    }
}

/// Sign-extends the canonical `w`-bit value `v` to 64 bits.
#[inline]
pub(crate) fn sext(v: u64, w: u32) -> i64 {
    if w == 0 || w >= 64 {
        v as i64
    } else {
        ((v << (64 - w)) as i64) >> (64 - w)
    }
}

/// Narrow ALU operations (operands and result are canonical `u64`s).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum NOp {
    Add,
    Sub,
    Mul,
    DivU,
    RemU,
    And,
    Or,
    Xor,
    Xnor,
    Shl,
    Shr,
    Pow,
}

/// Comparison conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Cc {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl Cc {
    #[inline]
    pub(crate) fn test(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            Cc::Eq => ord == Equal,
            Cc::Ne => ord != Equal,
            Cc::Lt => ord == Less,
            Cc::Le => ord != Greater,
            Cc::Gt => ord == Greater,
            Cc::Ge => ord != Less,
        }
    }
}

/// Unary reductions producing a 0/1 result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RedKind {
    And,
    Or,
    Xor,
    Nand,
    Nor,
    Xnor,
    LogNot,
}

/// How a `$display`-family argument is materialized at fire time.
#[derive(Debug, Clone)]
pub(crate) enum ArgV {
    /// Narrow expression value: register, width, signedness (the latter only
    /// matters in the no-format-string rendering mode).
    N { r: Reg, w: u32, signed: bool },
    /// Wide expression value.
    W { wr: WReg, signed: bool },
    /// A literal string among the values: renders as itself without a format
    /// string, or as packed ASCII under one.
    Lit { s: String, packed: Bits },
}

/// A compiled system task: argument sources plus the op range that computes
/// them (re-executed when a `$monitor` re-renders).
#[derive(Debug, Clone)]
pub(crate) struct TaskOp {
    pub kind: SystemTask,
    /// `Some` when the first argument is a format string.
    pub fmt: Option<String>,
    pub vals: Box<[ArgV]>,
    /// `[start, end)` op range that loads the argument registers.
    pub frag: (u32, u32),
}

/// Where a variable's value lives at run time.
#[derive(Debug, Clone, Copy)]
pub(crate) enum VStore {
    /// Narrow scalar: one arena word.
    Narrow { off: u32, width: u32 },
    /// Narrow array: `len` consecutive arena words.
    NarrowArr { off: u32, len: u64, width: u32 },
    /// Wide scalar: a `Bits` slot.
    Wide { idx: u32, width: u32 },
    /// Wide array: a `Vec<Bits>` slot.
    WideArr { idx: u32, len: u64, width: u32 },
}

impl VStore {
    pub(crate) fn width(&self) -> u32 {
        match *self {
            VStore::Narrow { width, .. }
            | VStore::NarrowArr { width, .. }
            | VStore::Wide { width, .. }
            | VStore::WideArr { width, .. } => width,
        }
    }
}

/// One bytecode instruction.
///
/// Every value-producing op writes a canonical result: narrow destinations
/// are masked to their static width, wide destinations carry exact-width
/// [`Bits`]. Jump targets are absolute op indices.
#[derive(Debug, Clone)]
pub(crate) enum Op {
    // -- control ------------------------------------------------------
    /// Statement boundary: charges the loop budget and statement counter
    /// exactly like the interpreter's `exec` prologue. Consecutive
    /// statements in straight-line code share one op charging `n` at the
    /// head of the run, so the totals per activation match the interpreter
    /// while the dispatch loop sees one op instead of `n`.
    Step(u32),
    /// Loop back-edge budget charge (no statement count), mirroring the
    /// per-iteration decrement in `For`/`While`.
    Guard,
    Jmp(u32),
    Jz(Reg, u32),
    Jnz(Reg, u32),
    /// Dense `case` dispatch: jump to `table[a - base]` when the index is in
    /// range, else to `default_t`.
    Switch {
        a: Reg,
        base: u64,
        table: Box<[u32]>,
        default_t: u32,
    },
    /// Fused compare-and-branch (an `if` whose condition is one unsigned
    /// compare): jump to `t` when the predicate is FALSE. The `M` variants
    /// additionally fold the operand load, testing `arena[off]` directly —
    /// the shape of a DFA transition row, where one byte is tested against
    /// a chain of ranges and the three-op `Ld`/`CmpRange`/`Jz` sequence per
    /// link collapses to a single dispatch.
    JnRange {
        a: Reg,
        lo: u64,
        hi: u64,
        t: u32,
    },
    JnRangeM {
        off: u32,
        lo: u64,
        hi: u64,
        t: u32,
    },
    JnCmpI {
        cc: Cc,
        a: Reg,
        imm: u64,
        t: u32,
    },
    JnCmpMI {
        cc: Cc,
        off: u32,
        imm: u64,
        t: u32,
    },
    /// End of a process body.
    Halt,
    // -- narrow values ------------------------------------------------
    MovC(Reg, u64),
    Mov(Reg, Reg),
    /// Load a narrow scalar from `arena[off]`.
    Ld(Reg, u32),
    /// Load + sign-extend from the variable's width to `tw`.
    LdSx {
        dst: Reg,
        off: u32,
        fw: u32,
        tw: u32,
    },
    /// Narrow array word read; out-of-range indices read zero.
    LdArr {
        dst: Reg,
        var: u32,
        idx: Reg,
    },
    Sext {
        dst: Reg,
        src: Reg,
        fw: u32,
        tw: u32,
    },
    Mask {
        dst: Reg,
        src: Reg,
        w: u32,
    },
    Bin {
        op: NOp,
        dst: Reg,
        a: Reg,
        b: Reg,
        w: u32,
    },
    BinImm {
        op: NOp,
        dst: Reg,
        a: Reg,
        imm: u64,
        w: u32,
    },
    /// Signed division/remainder: operands sign-extended at their own
    /// widths, result truncated toward zero and masked to `w`.
    DivS {
        dst: Reg,
        a: Reg,
        b: Reg,
        lw: u32,
        rw: u32,
        w: u32,
    },
    RemS {
        dst: Reg,
        a: Reg,
        b: Reg,
        lw: u32,
        rw: u32,
        w: u32,
    },
    /// Arithmetic shift right of the sign-extended `w`-bit value in `a`.
    AShr {
        dst: Reg,
        a: Reg,
        amt: Reg,
        w: u32,
    },
    AShrImm {
        dst: Reg,
        a: Reg,
        amt: u64,
        w: u32,
    },
    CmpU {
        cc: Cc,
        dst: Reg,
        a: Reg,
        b: Reg,
    },
    CmpUI {
        cc: Cc,
        dst: Reg,
        a: Reg,
        imm: u64,
    },
    /// Fused unsigned range test: `dst = (lo <= a && a <= hi)`.
    CmpRange {
        dst: Reg,
        a: Reg,
        lo: u64,
        hi: u64,
    },
    CmpS {
        cc: Cc,
        dst: Reg,
        a: Reg,
        b: Reg,
        w: u32,
    },
    CmpSI {
        cc: Cc,
        dst: Reg,
        a: Reg,
        imm: i64,
        w: u32,
    },
    Not {
        dst: Reg,
        a: Reg,
        w: u32,
    },
    Neg {
        dst: Reg,
        a: Reg,
        w: u32,
    },
    /// Reduction over the canonical `w`-bit value in `a`; 1-bit result.
    Red {
        kind: RedKind,
        dst: Reg,
        a: Reg,
        w: u32,
    },
    /// `dst = (a != 0)`.
    Bool(Reg, Reg),
    /// Static part-select `a[off +: w]`.
    SliceC {
        dst: Reg,
        a: Reg,
        off: u32,
        w: u32,
    },
    /// Dynamic part-select; offsets ≥ the word size read zero.
    SliceR {
        dst: Reg,
        a: Reg,
        off: Reg,
        w: u32,
    },
    /// `{hi, lo}` where `lo` is `lw` bits wide.
    Concat2 {
        dst: Reg,
        hi: Reg,
        lo: Reg,
        lw: u32,
    },
    /// Fused rotate-left by `k` of the `w`-bit value in `a`.
    Rotl {
        dst: Reg,
        a: Reg,
        k: u32,
        w: u32,
    },
    /// `dst = c != 0 ? t : f` (branch-free ternary over pure operands).
    Select {
        dst: Reg,
        c: Reg,
        t: Reg,
        f: Reg,
    },
    /// Fused compare-and-select.
    CmpSel {
        dst: Reg,
        cc: Cc,
        signed: bool,
        w: u32,
        a: Reg,
        b: Reg,
        t: Reg,
        f: Reg,
    },
    /// `$time` (full 64-bit counter).
    Time(Reg),
    /// `$random` (xorshift64*, shared with the interpreter's stream).
    Random(Reg),
    // -- wide values --------------------------------------------------
    WMovC(WReg, Box<Bits>),
    /// Load a wide scalar.
    WLd {
        dst: WReg,
        var: u32,
    },
    /// Wide array word read; out-of-range indices read zero.
    WLdArr {
        dst: WReg,
        var: u32,
        idx: Reg,
    },
    /// Resize (zero- or sign-extending) to `w`.
    WExt {
        dst: WReg,
        src: WReg,
        w: u32,
        signed: bool,
    },
    /// Widen a narrow canonical value of width `sw` to a `w`-bit `Bits`.
    WFromR {
        dst: WReg,
        src: Reg,
        sw: u32,
        w: u32,
        signed: bool,
    },
    /// Low 64 bits of a wide value (`Bits::to_u64`).
    RFromW {
        dst: Reg,
        src: WReg,
    },
    /// Verilog truthiness of a wide value.
    RBoolFromW {
        dst: Reg,
        src: WReg,
    },
    /// Add-family binary op on wide operands, resized to `w`; `sdiv` routes
    /// `Div`/`Rem` through the signed helpers.
    WBin {
        op: BinaryOp,
        dst: WReg,
        a: WReg,
        b: WReg,
        w: u32,
        sdiv: bool,
    },
    /// Shift of a wide value by a self-determined narrow amount.
    WShift {
        op: BinaryOp,
        dst: WReg,
        a: WReg,
        amt: Reg,
        arith: bool,
    },
    WPow {
        dst: WReg,
        a: WReg,
        b: WReg,
        w: u32,
    },
    WUn {
        op: UnaryOp,
        dst: WReg,
        a: WReg,
        w: u32,
    },
    WCmp {
        cc: Cc,
        dst: Reg,
        a: WReg,
        b: WReg,
        signed: bool,
    },
    WConcat2 {
        dst: WReg,
        hi: WReg,
        lo: WReg,
    },
    WRepeat {
        dst: WReg,
        src: WReg,
        count: u32,
    },
    /// Narrow slice of a wide base.
    WSliceN {
        dst: Reg,
        a: WReg,
        off: Reg,
        w: u32,
    },
    /// Wide slice of a wide base.
    WSliceW {
        dst: WReg,
        a: WReg,
        off: Reg,
        w: u32,
    },
    // -- stores -------------------------------------------------------
    /// Blocking full-width store of a narrow scalar (the hot shape).
    St {
        var: u32,
        off: u32,
        src: Reg,
    },
    /// Blocking store to a narrow scalar no other process watches (after
    /// masking the writer's own self-wake): a plain arena write with no
    /// change detection or wake scan.
    StQ {
        off: u32,
        src: Reg,
    },
    /// Nonblocking full-width store of a narrow scalar.
    NbSt {
        var: u32,
        src: Reg,
    },
    /// General narrow store: optional array index and bit offset.
    StoreGen {
        var: u32,
        src: Reg,
        w: u32,
        idx: Option<Reg>,
        off: Option<Reg>,
        nb: bool,
    },
    /// General wide store.
    WStore {
        var: u32,
        src: WReg,
        idx: Option<Reg>,
        off: Option<Reg>,
        nb: bool,
    },
    /// A `$display`-family call; `Finish`/`Fatal` end the activation.
    Task(Box<TaskOp>),
}

/// Mnemonic for one opcode (profiling attribution).
pub(crate) fn op_name(op: &Op) -> &'static str {
    match op {
        Op::Step(_) => "step",
        Op::Guard => "guard",
        Op::Jmp(_) => "jmp",
        Op::Jz(..) => "jz",
        Op::Jnz(..) => "jnz",
        Op::Switch { .. } => "switch",
        Op::JnRange { .. } => "jn_range",
        Op::JnRangeM { .. } => "jn_range_m",
        Op::JnCmpI { .. } => "jn_cmp_i",
        Op::JnCmpMI { .. } => "jn_cmp_mi",
        Op::Halt => "halt",
        Op::MovC(..) => "mov_c",
        Op::Mov(..) => "mov",
        Op::Ld(..) => "ld",
        Op::LdSx { .. } => "ld_sx",
        Op::LdArr { .. } => "ld_arr",
        Op::Sext { .. } => "sext",
        Op::Mask { .. } => "mask",
        Op::Bin { .. } => "bin",
        Op::BinImm { .. } => "bin_imm",
        Op::DivS { .. } => "div_s",
        Op::RemS { .. } => "rem_s",
        Op::AShr { .. } => "ashr",
        Op::AShrImm { .. } => "ashr_imm",
        Op::CmpU { .. } => "cmp_u",
        Op::CmpUI { .. } => "cmp_ui",
        Op::CmpRange { .. } => "cmp_range",
        Op::CmpS { .. } => "cmp_s",
        Op::CmpSI { .. } => "cmp_si",
        Op::Not { .. } => "not",
        Op::Neg { .. } => "neg",
        Op::Red { .. } => "red",
        Op::Bool(..) => "bool",
        Op::SliceC { .. } => "slice_c",
        Op::SliceR { .. } => "slice_r",
        Op::Concat2 { .. } => "concat2",
        Op::Rotl { .. } => "rotl",
        Op::Select { .. } => "select",
        Op::CmpSel { .. } => "cmp_sel",
        Op::Time(_) => "time",
        Op::Random(_) => "random",
        Op::WMovC(..) => "wmov_c",
        Op::WLd { .. } => "wld",
        Op::WLdArr { .. } => "wld_arr",
        Op::WExt { .. } => "wext",
        Op::WFromR { .. } => "wfrom_r",
        Op::RFromW { .. } => "rfrom_w",
        Op::RBoolFromW { .. } => "rbool_from_w",
        Op::WBin { .. } => "wbin",
        Op::WShift { .. } => "wshift",
        Op::WPow { .. } => "wpow",
        Op::WUn { .. } => "wun",
        Op::WCmp { .. } => "wcmp",
        Op::WConcat2 { .. } => "wconcat2",
        Op::WRepeat { .. } => "wrepeat",
        Op::WSliceN { .. } => "wslice_n",
        Op::WSliceW { .. } => "wslice_w",
        Op::St { .. } => "st",
        Op::StQ { .. } => "st_q",
        Op::NbSt { .. } => "nb_st",
        Op::StoreGen { .. } => "store_gen",
        Op::WStore { .. } => "wstore",
        Op::Task(_) => "task",
    }
}

/// Entry point and shape of one compiled process.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ProcInfo {
    pub entry: u32,
    /// Continuous assignments run without a budget, a statement charge, or
    /// self-wake masking.
    pub is_assign: bool,
    /// Whether the process is scheduled by `initialize` (assigns, initials,
    /// purely level-sensitive always blocks).
    pub run_at_init: bool,
    /// Whether the process is scheduled by `resettle` (assigns and purely
    /// level-sensitive always blocks).
    pub comb: bool,
}

/// A compiled design: bytecode, storage layout, and the inverted
/// sensitivity index (var → watching processes).
#[derive(Debug)]
pub struct SwProgram {
    pub(crate) code: Vec<Op>,
    pub(crate) procs: Vec<ProcInfo>,
    pub(crate) vstore: Vec<VStore>,
    pub(crate) arena_words: u32,
    pub(crate) wide_slots: u32,
    pub(crate) wide_arrs: u32,
    pub(crate) nregs: u32,
    pub(crate) nwregs: u32,
    /// var → processes sensitive to it (same construction and ordering as
    /// the interpreter's `sens_map`, so activation order is identical).
    pub(crate) sens: Vec<Vec<(ProcId, Option<Edge>)>>,
    /// Variables whose `assign x = y` copy was compiled away; they read and
    /// write their root's storage slot and must not re-seed it at reset.
    pub(crate) aliased: Vec<bool>,
}

/// Compiled-program size profile (bench and stats reporting).
#[derive(Debug, Clone, Copy)]
pub struct SwProgramStats {
    /// Total bytecode operations.
    pub ops: usize,
    /// Compiled processes (assigns, always, initial).
    pub procs: usize,
    /// `u64` words backing narrow variables and array words.
    pub arena_words: u32,
    /// Narrow virtual registers.
    pub regs: u32,
    /// Wide (`Bits`) virtual registers.
    pub wide_regs: u32,
}

impl SwProgram {
    /// Size profile of the compiled program.
    pub fn stats(&self) -> SwProgramStats {
        SwProgramStats {
            ops: self.code.len(),
            procs: self.procs.len(),
            arena_words: self.arena_words,
            regs: self.nregs,
            wide_regs: self.nwregs,
        }
    }
    /// Compiles every process of `design` into bytecode.
    pub fn compile(design: &Design) -> SwProgram {
        let (alias, elided) = alias_elision(design);
        let resolve = |mut v: VarId| -> VarId {
            while let Some(n) = alias[v.0 as usize] {
                v = n;
            }
            v
        };

        let mut vstore: Vec<Option<VStore>> = vec![None; design.vars.len()];
        let mut arena_words = 0u32;
        let mut wide_slots = 0u32;
        let mut wide_arrs = 0u32;
        for (vi, info) in design.vars.iter().enumerate() {
            if alias[vi].is_some() {
                continue;
            }
            let vs = if info.is_array() {
                if info.width <= 64 {
                    let off = arena_words;
                    arena_words += info.array_len as u32;
                    VStore::NarrowArr {
                        off,
                        len: info.array_len,
                        width: info.width,
                    }
                } else {
                    let idx = wide_arrs;
                    wide_arrs += 1;
                    VStore::WideArr {
                        idx,
                        len: info.array_len,
                        width: info.width,
                    }
                }
            } else if info.width <= 64 {
                let off = arena_words;
                arena_words += 1;
                VStore::Narrow {
                    off,
                    width: info.width,
                }
            } else {
                let idx = wide_slots;
                wide_slots += 1;
                VStore::Wide {
                    idx,
                    width: info.width,
                }
            };
            vstore[vi] = Some(vs);
        }
        // An elided variable shares its root's slot (alias_elision
        // guarantees equal widths along the chain).
        for vi in 0..design.vars.len() {
            if alias[vi].is_some() {
                vstore[vi] = vstore[resolve(VarId(vi as u32)).0 as usize];
            }
        }
        let vstore: Vec<VStore> = vstore
            .into_iter()
            .map(|v| v.expect("slot assigned"))
            .collect();

        // Watchers register against the storage root, so a write to the
        // driving variable wakes readers of every elided copy directly.
        let mut sens: Vec<Vec<(ProcId, Option<Edge>)>> = vec![Vec::new(); design.vars.len()];
        for (i, p) in design.processes.iter().enumerate() {
            if elided[i] {
                continue;
            }
            let pid = ProcId(i as u32);
            match p {
                Process::Assign { lhs, rhs } => {
                    let mut reads = Vec::new();
                    collect_reads(rhs, &mut reads);
                    lv_selector_reads(lhs, &mut reads);
                    for v in &mut reads {
                        *v = resolve(*v);
                    }
                    reads.sort();
                    reads.dedup();
                    for v in reads {
                        sens[v.0 as usize].push((pid, None));
                    }
                }
                Process::Always { sens: ss, .. } => {
                    for s in ss {
                        sens[resolve(s.var).0 as usize].push((pid, s.edge));
                    }
                }
                Process::Initial { .. } => {}
            }
        }

        let mut c = Compiler {
            design,
            vstore: &vstore,
            sens: &sens,
            cur_pid: 0,
            cur_masked: false,
            code: Vec::new(),
            regs: RegAlloc::default(),
            wregs: RegAlloc::default(),
            open_step: None,
        };
        let mut procs = Vec::with_capacity(design.processes.len());
        for (i, p) in design.processes.iter().enumerate() {
            c.open_step = None;
            c.cur_pid = i as u32;
            c.cur_masked = !matches!(p, Process::Assign { .. });
            let entry = c.code.len() as u32;
            if elided[i] {
                // The copy lives in the storage layout now; keep the slot in
                // `procs` so ProcIds stay aligned with `design.processes`,
                // but nothing ever schedules it.
                c.code.push(Op::Halt);
                procs.push(ProcInfo {
                    entry,
                    is_assign: true,
                    run_at_init: false,
                    comb: false,
                });
                continue;
            }
            match p {
                Process::Assign { lhs, rhs } => {
                    let w = lhs.width(&design.vars);
                    let val = c.expr(rhs, w);
                    let val = c.coerce(val, w, false);
                    c.store(lhs, val, false);
                    c.code.push(Op::Halt);
                    c.regs.reset(0);
                    c.wregs.reset(0);
                    procs.push(ProcInfo {
                        entry,
                        is_assign: true,
                        run_at_init: true,
                        comb: true,
                    });
                }
                Process::Always { sens: ss, body } => {
                    c.stmt(body);
                    c.code.push(Op::Halt);
                    c.regs.reset(0);
                    c.wregs.reset(0);
                    let comb = !ss.is_empty() && ss.iter().all(|s| s.edge.is_none());
                    procs.push(ProcInfo {
                        entry,
                        is_assign: false,
                        run_at_init: comb,
                        comb,
                    });
                }
                Process::Initial { body } => {
                    c.stmt(body);
                    c.code.push(Op::Halt);
                    c.regs.reset(0);
                    c.wregs.reset(0);
                    procs.push(ProcInfo {
                        entry,
                        is_assign: false,
                        run_at_init: true,
                        comb: false,
                    });
                }
            }
        }
        let nregs = c.regs.max.max(1);
        let nwregs = c.wregs.max.max(1);
        let code = c.code;
        SwProgram {
            code,
            procs,
            vstore,
            arena_words,
            wide_slots,
            wide_arrs,
            nregs,
            nwregs,
            sens,
            aliased: alias.iter().map(|a| a.is_some()).collect(),
        }
    }
}

/// Finds continuous assignments that are pure full-width variable copies
/// (`assign x = y;` — the shape every lowered port connection takes) and
/// maps each such `x` onto `y`'s storage.
///
/// Left as processes, these copies cost an activation and a delta round per
/// change of `y`, and they split one value wavefront across rounds: a
/// reader of both `y` and `x` runs once with the fresh `y` and a stale `x`,
/// then again when the copy lands. Compiling the copy into the storage
/// layout removes the round and the re-run.
///
/// Returns `(alias, elided)`: per-variable direct alias target (follow
/// transitively for the storage root) and per-process elision flags.
///
/// `x` must be a scalar wire with this assignment as its only driver and
/// must not be a root input (pokes write roots). `y` must be a scalar of
/// the same width with no blocking procedural writer: a same-round reader
/// of `x` would otherwise observe a blocking write one delta round earlier
/// than the interpreter shows it.
fn alias_elision(design: &Design) -> (Vec<Option<VarId>>, Vec<bool>) {
    let nvars = design.vars.len();
    let mut writers = vec![0u32; nvars];
    let mut blocking = vec![false; nvars];
    for p in &design.processes {
        match p {
            Process::Assign { lhs, .. } => lv_write(lhs, &mut writers, &mut |_| {}),
            Process::Always { body, .. } | Process::Initial { body } => {
                collect_writes(body, &mut writers, &mut blocking);
            }
        }
    }

    let mut alias: Vec<Option<VarId>> = vec![None; nvars];
    let mut elided = vec![false; design.processes.len()];
    for (i, p) in design.processes.iter().enumerate() {
        let Process::Assign {
            lhs: RLValue::Var(x),
            rhs,
        } = p
        else {
            continue;
        };
        let RExprKind::Var(y) = &rhs.kind else {
            continue;
        };
        let (x, y) = (*x, *y);
        let (xi, yi) = (x.0 as usize, y.0 as usize);
        let xv = &design.vars[xi];
        let yv = &design.vars[yi];
        if xv.class != VarClass::Wire || xv.is_input || writers[xi] != 1 {
            continue;
        }
        if xv.is_array() || yv.is_array() || xv.width != yv.width || rhs.width != xv.width {
            continue;
        }
        if blocking[yi] {
            continue;
        }
        // `x` must not already be `y`'s storage root (mutual assigns).
        let mut root = y;
        while let Some(n) = alias[root.0 as usize] {
            root = n;
        }
        if root == x {
            continue;
        }
        alias[xi] = Some(y);
        elided[i] = true;
    }
    (alias, elided)
}

/// Counts `lv`'s base variable as written; `blocking(var)` is called too so
/// statement walks can mark blocking writers.
fn lv_write(lv: &RLValue, writers: &mut [u32], blocking: &mut impl FnMut(usize)) {
    match lv {
        RLValue::Var(v)
        | RLValue::Range { var: v, .. }
        | RLValue::ArrayWord { var: v, .. }
        | RLValue::ArrayWordRange { var: v, .. } => {
            writers[v.0 as usize] += 1;
            blocking(v.0 as usize);
        }
        RLValue::Concat(parts) => {
            for part in parts {
                lv_write(part, writers, blocking);
            }
        }
    }
}

/// Walks a process body recording which variables it writes and which of
/// those writes are blocking.
fn collect_writes(stmt: &RStmt, writers: &mut [u32], blocking: &mut [bool]) {
    match stmt {
        RStmt::Block(stmts) => {
            for s in stmts {
                collect_writes(s, writers, blocking);
            }
        }
        RStmt::Blocking { lhs, .. } => lv_write(lhs, writers, &mut |v| blocking[v] = true),
        RStmt::NonBlocking { lhs, .. } => lv_write(lhs, writers, &mut |_| {}),
        RStmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            collect_writes(then_branch, writers, blocking);
            if let Some(e) = else_branch {
                collect_writes(e, writers, blocking);
            }
        }
        RStmt::Case { arms, default, .. } => {
            for arm in arms {
                collect_writes(&arm.body, writers, blocking);
            }
            if let Some(d) = default {
                collect_writes(d, writers, blocking);
            }
        }
        RStmt::For {
            init, step, body, ..
        } => {
            collect_writes(init, writers, blocking);
            collect_writes(step, writers, blocking);
            collect_writes(body, writers, blocking);
        }
        RStmt::While { body, .. } | RStmt::Repeat { body, .. } => {
            collect_writes(body, writers, blocking);
        }
        RStmt::SystemTask { .. } | RStmt::Null => {}
    }
}

fn lv_selector_reads(lv: &RLValue, out: &mut Vec<VarId>) {
    match lv {
        RLValue::Var(_) => {}
        RLValue::Range { offset, .. } => collect_reads(offset, out),
        RLValue::ArrayWord { index, .. } => collect_reads(index, out),
        RLValue::ArrayWordRange { index, offset, .. } => {
            collect_reads(index, out);
            collect_reads(offset, out);
        }
        RLValue::Concat(parts) => {
            for p in parts {
                lv_selector_reads(p, out);
            }
        }
    }
}

/// Whether evaluating `e` has a side effect (`$random` advances the RNG),
/// which forbids eager evaluation of untaken ternary branches.
fn has_random(e: &RExpr) -> bool {
    match &e.kind {
        RExprKind::Random => true,
        RExprKind::Const(_) | RExprKind::Var(_) | RExprKind::Time => false,
        RExprKind::ArrayWord { index, .. } => has_random(index),
        RExprKind::Slice { base, offset, .. } => has_random(base) || has_random(offset),
        RExprKind::Unary { operand, .. } => has_random(operand),
        RExprKind::Binary { lhs, rhs, .. } => has_random(lhs) || has_random(rhs),
        RExprKind::Ternary {
            cond,
            then_expr,
            else_expr,
        } => has_random(cond) || has_random(then_expr) || has_random(else_expr),
        RExprKind::Concat(parts) => parts.iter().any(has_random),
        RExprKind::Repeat { inner, .. } => has_random(inner),
    }
}

/// Structural equality for the rotate-fusion pattern (conservative: only
/// plain variable reads are considered equal).
fn same_var(a: &RExpr, b: &RExpr) -> Option<VarId> {
    match (&a.kind, &b.kind) {
        (RExprKind::Var(x), RExprKind::Var(y)) if x == y && a.width == b.width => Some(*x),
        _ => None,
    }
}

/// Stack-disciplined scratch register allocator.
#[derive(Default)]
struct RegAlloc {
    next: u32,
    max: u32,
}

impl RegAlloc {
    fn alloc(&mut self) -> u16 {
        let r = self.next;
        self.next += 1;
        self.max = self.max.max(self.next);
        assert!(r <= u16::MAX as u32, "register file overflow");
        r as u16
    }
    fn mark(&self) -> u32 {
        self.next
    }
    fn reset(&mut self, mark: u32) {
        self.next = mark;
    }
}

/// A compiled expression value with its static width.
#[derive(Debug, Clone, Copy)]
enum Val {
    /// Compile-time constant (≤64 bits, canonical).
    C { v: u64, w: u32 },
    /// Narrow register (canonical at `w`).
    N { r: Reg, w: u32 },
    /// Wide register (`Bits` of width `w`).
    W { wr: WReg, w: u32 },
}

impl Val {
    fn width(&self) -> u32 {
        match *self {
            Val::C { w, .. } | Val::N { w, .. } | Val::W { w, .. } => w,
        }
    }
}

struct Compiler<'a> {
    design: &'a Design,
    vstore: &'a [VStore],
    /// Post-grafting sensitivity index; lets stores that provably wake no
    /// one compile to bare arena writes.
    sens: &'a [Vec<(ProcId, Option<Edge>)>],
    /// Process being compiled.
    cur_pid: u32,
    /// Whether the current process masks its own self-wake (`always` /
    /// `initial`; continuous assigns do not, so `assign a = ~a` loops).
    cur_masked: bool,
    code: Vec<Op>,
    regs: RegAlloc,
    wregs: RegAlloc,
    /// Index of the still-open `Op::Step` batching the current
    /// straight-line run, if control cannot have branched since it was
    /// emitted.
    open_step: Option<usize>,
}

impl<'a> Compiler<'a> {
    // ------------------------------------------------------------------
    // Emission helpers
    // ------------------------------------------------------------------

    fn emit(&mut self, op: Op) {
        // Control transfers end the straight-line run an open `Step` is
        // batching; later statements must charge on their own op.
        if matches!(
            op,
            Op::Jmp(_) | Op::Jz(..) | Op::Jnz(..) | Op::Switch { .. } | Op::Halt | Op::Guard
        ) {
            self.open_step = None;
        }
        self.code.push(op);
    }

    /// Charges one statement, extending the open `Step` batch when control
    /// provably reaches it from the batch head (no branch emitted or
    /// patched in since).
    fn step(&mut self) {
        if let Some(i) = self.open_step {
            if let Op::Step(n) = &mut self.code[i] {
                *n += 1;
                return;
            }
        }
        self.open_step = Some(self.code.len());
        self.code.push(Op::Step(1));
    }

    fn here(&self) -> u32 {
        self.code.len() as u32
    }

    /// Emits a forward jump with a placeholder target; patch with `patch`.
    fn emit_jmp(&mut self) -> usize {
        self.open_step = None;
        self.code.push(Op::Jmp(u32::MAX));
        self.code.len() - 1
    }

    fn emit_jz(&mut self, r: Reg) -> usize {
        self.open_step = None;
        self.code.push(Op::Jz(r, u32::MAX));
        self.code.len() - 1
    }

    fn emit_jnz(&mut self, r: Reg) -> usize {
        self.open_step = None;
        self.code.push(Op::Jnz(r, u32::MAX));
        self.code.len() - 1
    }

    fn patch(&mut self, at: usize) {
        // The current position becomes a jump target: a path reaches it
        // without passing any `Step` opened earlier.
        self.open_step = None;
        let target = self.here();
        match &mut self.code[at] {
            Op::Jmp(t)
            | Op::Jz(_, t)
            | Op::Jnz(_, t)
            | Op::JnRange { t, .. }
            | Op::JnRangeM { t, .. }
            | Op::JnCmpI { t, .. }
            | Op::JnCmpMI { t, .. } => *t = target,
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    /// Emits a branch taken when `cv` is false and returns the site to
    /// `patch` with the false target. When the condition was just computed
    /// by a fusible compare (its destination is a dead temporary by
    /// construction: the branch is the sole consumer), the compare — and
    /// the `Ld` feeding it, when it directly precedes — is popped and
    /// re-emitted as one fused compare-and-branch op.
    fn branch_if_false(&mut self, cv: Val) -> usize {
        if let Val::N { r, .. } = cv {
            // The expression frame discipline may have compacted the
            // compare result to the frame floor with a trailing `Mov`;
            // look through it (the Mov is popped along with the compare).
            let mut cmp_r = r;
            let mut movs = 0usize;
            if let Some(&Op::Mov(d, s)) = self.code.last() {
                if d == r {
                    cmp_r = s;
                    movs = 1;
                }
            }
            let at = self.code.len().wrapping_sub(1 + movs);
            match self.code.get(at) {
                Some(&Op::CmpRange { dst, a, lo, hi }) if dst == cmp_r => {
                    self.code.truncate(at);
                    if let Some(&Op::Ld(la, off)) = self.code.last() {
                        if la == a {
                            self.code.pop();
                            return self.emit_branch(Op::JnRangeM {
                                off,
                                lo,
                                hi,
                                t: u32::MAX,
                            });
                        }
                    }
                    return self.emit_branch(Op::JnRange {
                        a,
                        lo,
                        hi,
                        t: u32::MAX,
                    });
                }
                Some(&Op::CmpUI { cc, dst, a, imm }) if dst == cmp_r => {
                    self.code.truncate(at);
                    if let Some(&Op::Ld(la, off)) = self.code.last() {
                        if la == a {
                            self.code.pop();
                            return self.emit_branch(Op::JnCmpMI {
                                cc,
                                off,
                                imm,
                                t: u32::MAX,
                            });
                        }
                    }
                    return self.emit_branch(Op::JnCmpI {
                        cc,
                        a,
                        imm,
                        t: u32::MAX,
                    });
                }
                _ => {}
            }
            // `Jz` already tests the canonical value against zero; no
            // `Bool` normalization needed for a branch.
            return self.emit_jz(r);
        }
        let c = self.bool_reg_of(cv);
        self.emit_jz(c)
    }

    fn emit_branch(&mut self, op: Op) -> usize {
        self.open_step = None;
        self.code.push(op);
        self.code.len() - 1
    }

    /// Whether a blocking write to `var` can wake any process other than
    /// the (self-wake-masked) writer itself.
    fn observed(&self, var: u32) -> bool {
        self.sens[var as usize]
            .iter()
            .any(|&(p, _)| !(self.cur_masked && p.0 == self.cur_pid))
    }

    /// Materializes a value into a narrow register.
    fn reg_of(&mut self, v: Val) -> Reg {
        match v {
            Val::N { r, .. } => r,
            Val::C { v, .. } => {
                let r = self.regs.alloc();
                self.emit(Op::MovC(r, v));
                r
            }
            Val::W { .. } => unreachable!("wide value where narrow register expected"),
        }
    }

    /// Materializes a value into a wide register of its own width.
    fn wreg_of(&mut self, v: Val) -> WReg {
        match v {
            Val::W { wr, .. } => wr,
            Val::N { r, w } => {
                let wr = self.wregs.alloc();
                self.emit(Op::WFromR {
                    dst: wr,
                    src: r,
                    sw: w,
                    w,
                    signed: false,
                });
                wr
            }
            Val::C { v, w } => {
                let wr = self.wregs.alloc();
                self.emit(Op::WMovC(wr, Box::new(Bits::from_u64(w, v))));
                wr
            }
        }
    }

    /// The low-64-bit unsigned value of `v` in a narrow register (the
    /// interpreter's `.to_u64()` on a self-determined operand).
    fn u64_reg_of(&mut self, v: Val) -> Reg {
        match v {
            Val::N { r, .. } => r,
            Val::C { v, .. } => {
                let r = self.regs.alloc();
                self.emit(Op::MovC(r, v));
                r
            }
            Val::W { wr, .. } => {
                let r = self.regs.alloc();
                self.emit(Op::RFromW { dst: r, src: wr });
                r
            }
        }
    }

    /// A 0/1 truthiness register for `v`.
    fn bool_reg_of(&mut self, v: Val) -> Reg {
        match v {
            // A canonical 1-bit value is already 0/1.
            Val::N { r, w: 1 } => r,
            Val::N { r, w: _ } => {
                let d = self.regs.alloc();
                self.emit(Op::Bool(d, r));
                d
            }
            Val::C { v, .. } => {
                let d = self.regs.alloc();
                self.emit(Op::MovC(d, (v != 0) as u64));
                d
            }
            Val::W { wr, .. } => {
                let d = self.regs.alloc();
                self.emit(Op::RBoolFromW { dst: d, src: wr });
                d
            }
        }
    }

    /// Adjusts `v` to width `to` with the interpreter's `extend` semantics
    /// (truncate, or zero-/sign-extend by `signed`).
    fn coerce(&mut self, v: Val, to: u32, signed: bool) -> Val {
        let from = v.width();
        if to == from {
            // Normalize ≤64-bit values into the narrow register file even
            // when no width change is needed, so callers can rely on narrow
            // results being `Val::N`/`Val::C`.
            if let Val::W { wr, w } = v {
                if w <= 64 {
                    let d = self.regs.alloc();
                    self.emit(Op::RFromW { dst: d, src: wr });
                    return Val::N { r: d, w };
                }
            }
            return v;
        }
        match v {
            Val::C { v: cv, w } => {
                let b = Bits::from_u64(w, cv);
                let ext = if signed {
                    b.resize_signed(to)
                } else {
                    b.resize(to)
                };
                if to <= 64 {
                    Val::C {
                        v: ext.to_u64(),
                        w: to,
                    }
                } else {
                    let wr = self.wregs.alloc();
                    self.emit(Op::WMovC(wr, Box::new(ext)));
                    Val::W { wr, w: to }
                }
            }
            Val::N { r, w } => {
                if to <= 64 {
                    if to < w {
                        let d = self.regs.alloc();
                        self.emit(Op::Mask {
                            dst: d,
                            src: r,
                            w: to,
                        });
                        Val::N { r: d, w: to }
                    } else if signed {
                        let d = self.regs.alloc();
                        self.emit(Op::Sext {
                            dst: d,
                            src: r,
                            fw: w,
                            tw: to,
                        });
                        Val::N { r: d, w: to }
                    } else {
                        // Zero extension of a canonical value is free.
                        Val::N { r, w: to }
                    }
                } else {
                    let wr = self.wregs.alloc();
                    self.emit(Op::WFromR {
                        dst: wr,
                        src: r,
                        sw: w,
                        w: to,
                        signed,
                    });
                    Val::W { wr, w: to }
                }
            }
            Val::W { wr, w: _ } => {
                if to <= 64 {
                    // Truncation of a wide value to a narrow one: resize is a
                    // plain low-bits mask.
                    let d = self.regs.alloc();
                    self.emit(Op::RFromW { dst: d, src: wr });
                    if to < 64 {
                        let m = self.regs.alloc();
                        self.emit(Op::Mask {
                            dst: m,
                            src: d,
                            w: to,
                        });
                        Val::N { r: m, w: to }
                    } else {
                        Val::N { r: d, w: to }
                    }
                } else {
                    let d = self.wregs.alloc();
                    self.emit(Op::WExt {
                        dst: d,
                        src: wr,
                        w: to,
                        signed,
                    });
                    Val::W { wr: d, w: to }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    /// Compiles `e` in a context of width `ctx`; the result has width
    /// `max(e.width, ctx)` exactly like `Simulator::eval`.
    fn expr(&mut self, e: &RExpr, ctx: u32) -> Val {
        let target = e.width.max(ctx);
        match &e.kind {
            RExprKind::Const(v) => {
                let ext = extend(v, target, e.signed);
                if ext.width() <= 64 {
                    Val::C {
                        v: ext.to_u64(),
                        w: ext.width(),
                    }
                } else {
                    let wr = self.wregs.alloc();
                    let w = ext.width();
                    self.emit(Op::WMovC(wr, Box::new(ext)));
                    Val::W { wr, w }
                }
            }
            RExprKind::Var(var) => {
                let vs = self.vstore[var.0 as usize];
                let vw = vs.width();
                match vs {
                    VStore::Narrow { off, .. } | VStore::NarrowArr { off, .. } => {
                        // Reading a whole array variable is not produced by
                        // elaboration; treat it as its first word like the
                        // interpreter's zero-width scalar shadow would not
                        // occur. Narrow scalar is the hot case.
                        let eff_target = if target == 0 { vw } else { target };
                        if eff_target <= 64 {
                            if eff_target > vw && e.signed {
                                let d = self.regs.alloc();
                                self.emit(Op::LdSx {
                                    dst: d,
                                    off,
                                    fw: vw,
                                    tw: eff_target,
                                });
                                Val::N {
                                    r: d,
                                    w: eff_target,
                                }
                            } else {
                                let d = self.regs.alloc();
                                self.emit(Op::Ld(d, off));
                                let v = Val::N { r: d, w: vw };
                                self.coerce(v, eff_target, e.signed)
                            }
                        } else {
                            let d = self.regs.alloc();
                            self.emit(Op::Ld(d, off));
                            self.coerce(Val::N { r: d, w: vw }, eff_target, e.signed)
                        }
                    }
                    VStore::Wide { .. } | VStore::WideArr { .. } => {
                        let wr = self.wregs.alloc();
                        self.emit(Op::WLd {
                            dst: wr,
                            var: var.0,
                        });
                        self.coerce(Val::W { wr, w: vw }, target.max(vw), e.signed)
                    }
                }
            }
            RExprKind::ArrayWord { var, index } => {
                let m = self.regs.mark();
                let wm = self.wregs.mark();
                let iv = self.expr(index, 0);
                let idx = self.u64_reg_of(iv);
                let vs = self.vstore[var.0 as usize];
                let vw = vs.width();
                let out = match vs {
                    VStore::Narrow { .. } | VStore::NarrowArr { .. } => {
                        let d = self.regs.alloc();
                        self.emit(Op::LdArr {
                            dst: d,
                            var: var.0,
                            idx,
                        });
                        Val::N { r: d, w: vw }
                    }
                    VStore::Wide { .. } | VStore::WideArr { .. } => {
                        let wr = self.wregs.alloc();
                        self.emit(Op::WLdArr {
                            dst: wr,
                            var: var.0,
                            idx,
                        });
                        Val::W { wr, w: vw }
                    }
                };
                let out = self.coerce(out, target, e.signed);
                self.retain(out, m, wm)
            }
            RExprKind::Slice {
                base,
                offset,
                width,
            } => {
                let m = self.regs.mark();
                let wm = self.wregs.mark();
                let b = self.expr(base, 0);
                let off = self.expr(offset, 0);
                let sliced = self.slice_val(b, off, *width);
                let out = self.coerce(sliced, target, false);
                self.retain(out, m, wm)
            }
            RExprKind::Unary { op, operand } => {
                let m = self.regs.mark();
                let wm = self.wregs.mark();
                let out = self.unary(*op, operand, target, e.signed);
                self.retain(out, m, wm)
            }
            RExprKind::Binary { op, lhs, rhs } => {
                let m = self.regs.mark();
                let wm = self.wregs.mark();
                let out = self.binary(*op, lhs, rhs, target);
                self.retain(out, m, wm)
            }
            RExprKind::Ternary {
                cond,
                then_expr,
                else_expr,
            } => {
                let m = self.regs.mark();
                let wm = self.wregs.mark();
                let out = self.ternary(cond, then_expr, else_expr, target);
                self.retain(out, m, wm)
            }
            RExprKind::Concat(parts) => {
                let m = self.regs.mark();
                let wm = self.wregs.mark();
                let total: u32 = parts.iter().map(|p| p.width).sum();
                let out = if total <= 64 {
                    let mut acc: Option<Val> = None;
                    for p in parts {
                        let v = self.expr(p, 0);
                        acc = Some(match acc {
                            None => v,
                            Some(a) => {
                                let hi = self.reg_of(a);
                                let lo = self.reg_of(v);
                                let d = self.regs.alloc();
                                self.emit(Op::Concat2 {
                                    dst: d,
                                    hi,
                                    lo,
                                    lw: v.width(),
                                });
                                Val::N {
                                    r: d,
                                    w: a.width() + v.width(),
                                }
                            }
                        });
                    }
                    acc.unwrap_or(Val::C { v: 0, w: 0 })
                } else {
                    let mut acc: Option<Val> = None;
                    for p in parts {
                        let v = self.expr(p, 0);
                        acc = Some(match acc {
                            None => v,
                            Some(a) => {
                                let aw = a.width();
                                let vw = v.width();
                                let hi = self.wreg_of(a);
                                let lo = self.wreg_of(v);
                                let d = self.wregs.alloc();
                                self.emit(Op::WConcat2 { dst: d, hi, lo });
                                Val::W { wr: d, w: aw + vw }
                            }
                        });
                    }
                    acc.unwrap_or(Val::C { v: 0, w: 0 })
                };
                let out = self.coerce(out, target, false);
                self.retain(out, m, wm)
            }
            RExprKind::Repeat { count, inner } => {
                let m = self.regs.mark();
                let wm = self.wregs.mark();
                let v = self.expr(inner, 0);
                let iw = v.width();
                let total = iw * count;
                let out = if total <= 64 {
                    let mut acc = v;
                    let first = self.reg_of(v);
                    let mut acc_r = first;
                    for _ in 1..*count {
                        let d = self.regs.alloc();
                        self.emit(Op::Concat2 {
                            dst: d,
                            hi: acc_r,
                            lo: first,
                            lw: iw,
                        });
                        acc_r = d;
                        acc = Val::N {
                            r: d,
                            w: acc.width() + iw,
                        };
                    }
                    if *count == 0 {
                        Val::C { v: 0, w: 0 }
                    } else {
                        Val::N { r: acc_r, w: total }
                    }
                } else {
                    let src = self.wreg_of(v);
                    let d = self.wregs.alloc();
                    self.emit(Op::WRepeat {
                        dst: d,
                        src,
                        count: *count,
                    });
                    Val::W { wr: d, w: total }
                };
                let out = self.coerce(out, target, false);
                self.retain(out, m, wm)
            }
            RExprKind::Time => {
                let d = self.regs.alloc();
                self.emit(Op::Time(d));
                self.coerce(Val::N { r: d, w: 64 }, target.max(64), false)
            }
            RExprKind::Random => {
                let d = self.regs.alloc();
                self.emit(Op::Random(d));
                self.coerce(Val::N { r: d, w: 32 }, target.max(32), false)
            }
        }
    }

    /// Frees scratch registers above the marks while keeping `out` live
    /// (moving it down if it would be freed).
    fn retain(&mut self, out: Val, m: u32, wm: u32) -> Val {
        match out {
            Val::C { .. } => {
                self.regs.reset(m);
                self.wregs.reset(wm);
                out
            }
            Val::N { r, w } => {
                self.regs.reset(m);
                self.wregs.reset(wm);
                if (r as u32) >= m {
                    let d = self.regs.alloc();
                    if d != r {
                        self.emit(Op::Mov(d, r));
                    } else {
                        // Reclaimed the same slot; value already there.
                        debug_assert_eq!(d, r);
                    }
                    Val::N { r: d, w }
                } else {
                    out
                }
            }
            Val::W { wr, w } => {
                self.regs.reset(m);
                self.wregs.reset(wm);
                if (wr as u32) >= wm {
                    let d = self.wregs.alloc();
                    if d != wr {
                        self.emit(Op::WExt {
                            dst: d,
                            src: wr,
                            w,
                            signed: false,
                        });
                    }
                    Val::W { wr: d, w }
                } else {
                    out
                }
            }
        }
    }

    /// `base[off +: w]` with the interpreter's out-of-range semantics.
    fn slice_val(&mut self, base: Val, off: Val, w: u32) -> Val {
        match base {
            Val::C { v, w: bw } => match off {
                Val::C { v: o, .. } => {
                    let b = Bits::from_u64(bw, v);
                    let sliced = if o > u32::MAX as u64 {
                        Bits::zero(w)
                    } else {
                        b.slice(o as u32, w)
                    };
                    if w <= 64 {
                        Val::C {
                            v: sliced.to_u64(),
                            w,
                        }
                    } else {
                        let wr = self.wregs.alloc();
                        self.emit(Op::WMovC(wr, Box::new(sliced)));
                        Val::W { wr, w }
                    }
                }
                _ => {
                    let br = self.reg_of(base);
                    let or = self.u64_reg_of(off);
                    let d = self.regs.alloc();
                    self.emit(Op::SliceR {
                        dst: d,
                        a: br,
                        off: or,
                        w,
                    });
                    // A narrow base can only produce a narrow slice value; a
                    // wider requested width zero-fills.
                    if w <= 64 {
                        Val::N { r: d, w }
                    } else {
                        let wr = self.wregs.alloc();
                        self.emit(Op::WFromR {
                            dst: wr,
                            src: d,
                            sw: 64.min(w),
                            w,
                            signed: false,
                        });
                        Val::W { wr, w }
                    }
                }
            },
            Val::N { r, .. } => match off {
                Val::C { v: o, .. } => {
                    if o > u32::MAX as u64 || o >= 64 {
                        return self.zero_val(w);
                    }
                    if w <= 64 {
                        let d = self.regs.alloc();
                        self.emit(Op::SliceC {
                            dst: d,
                            a: r,
                            off: o as u32,
                            w: w.min(64),
                        });
                        Val::N { r: d, w }
                    } else {
                        let d = self.regs.alloc();
                        self.emit(Op::SliceC {
                            dst: d,
                            a: r,
                            off: o as u32,
                            w: 64,
                        });
                        let wr = self.wregs.alloc();
                        self.emit(Op::WFromR {
                            dst: wr,
                            src: d,
                            sw: 64,
                            w,
                            signed: false,
                        });
                        Val::W { wr, w }
                    }
                }
                _ => {
                    let or = self.u64_reg_of(off);
                    let d = self.regs.alloc();
                    self.emit(Op::SliceR {
                        dst: d,
                        a: r,
                        off: or,
                        w: w.min(64),
                    });
                    if w <= 64 {
                        Val::N { r: d, w }
                    } else {
                        let wr = self.wregs.alloc();
                        self.emit(Op::WFromR {
                            dst: wr,
                            src: d,
                            sw: 64,
                            w,
                            signed: false,
                        });
                        Val::W { wr, w }
                    }
                }
            },
            Val::W { wr, .. } => {
                let or = self.u64_reg_of(off);
                if w <= 64 {
                    let d = self.regs.alloc();
                    self.emit(Op::WSliceN {
                        dst: d,
                        a: wr,
                        off: or,
                        w,
                    });
                    Val::N { r: d, w }
                } else {
                    let d = self.wregs.alloc();
                    self.emit(Op::WSliceW {
                        dst: d,
                        a: wr,
                        off: or,
                        w,
                    });
                    Val::W { wr: d, w }
                }
            }
        }
    }

    fn zero_val(&mut self, w: u32) -> Val {
        if w <= 64 {
            Val::C { v: 0, w }
        } else {
            let wr = self.wregs.alloc();
            self.emit(Op::WMovC(wr, Box::new(Bits::zero(w))));
            Val::W { wr, w }
        }
    }

    fn unary(&mut self, op: UnaryOp, operand: &RExpr, target: u32, _signed: bool) -> Val {
        match op {
            UnaryOp::Plus => {
                let v = self.expr(operand, target);
                self.coerce(v, target, false)
            }
            UnaryOp::Neg | UnaryOp::BitNot => {
                let v = self.expr(operand, target);
                let vw = v.width();
                if vw <= 64 && target <= 64 {
                    let r = self.reg_of(v);
                    let d = self.regs.alloc();
                    // Negation/complement at the operand width then truncation
                    // to `target` equals doing it at `target` directly.
                    if op == UnaryOp::Neg {
                        self.emit(Op::Neg {
                            dst: d,
                            a: r,
                            w: target,
                        });
                    } else {
                        self.emit(Op::Not {
                            dst: d,
                            a: r,
                            w: target,
                        });
                    }
                    Val::N { r: d, w: target }
                } else {
                    let a = self.wreg_of(v);
                    let d = self.wregs.alloc();
                    self.emit(Op::WUn {
                        op,
                        dst: d,
                        a,
                        w: target,
                    });
                    if target <= 64 {
                        self.coerce(Val::W { wr: d, w: target }, target, false)
                    } else {
                        Val::W { wr: d, w: target }
                    }
                }
            }
            UnaryOp::LogicalNot
            | UnaryOp::ReduceAnd
            | UnaryOp::ReduceOr
            | UnaryOp::ReduceXor
            | UnaryOp::ReduceNand
            | UnaryOp::ReduceNor
            | UnaryOp::ReduceXnor => {
                let v = self.expr(operand, 0);
                let vw = v.width();
                let kind = match op {
                    UnaryOp::LogicalNot => RedKind::LogNot,
                    UnaryOp::ReduceAnd => RedKind::And,
                    UnaryOp::ReduceOr => RedKind::Or,
                    UnaryOp::ReduceXor => RedKind::Xor,
                    UnaryOp::ReduceNand => RedKind::Nand,
                    UnaryOp::ReduceNor => RedKind::Nor,
                    UnaryOp::ReduceXnor => RedKind::Xnor,
                    _ => unreachable!(),
                };
                let bit = match v {
                    Val::W { wr, .. } => {
                        // Route wide reductions through the interpreter's
                        // helpers for exactness.
                        let d = self.wregs.alloc();
                        self.emit(Op::WUn {
                            op,
                            dst: d,
                            a: wr,
                            w: 1,
                        });
                        let r = self.regs.alloc();
                        self.emit(Op::RFromW { dst: r, src: d });
                        r
                    }
                    _ => {
                        let r = self.reg_of(v);
                        let d = self.regs.alloc();
                        self.emit(Op::Red {
                            kind,
                            dst: d,
                            a: r,
                            w: vw,
                        });
                        d
                    }
                };
                self.coerce(Val::N { r: bit, w: 1 }, target.max(1), false)
            }
        }
    }

    fn binary(&mut self, op: BinaryOp, lhs: &RExpr, rhs: &RExpr, target: u32) -> Val {
        use BinaryOp::*;
        // Fused rotate: (x << k) | (x >> (w-k)) over the same variable.
        if op == Or && target <= 64 {
            if let Some(v) = self.try_rotate(lhs, rhs, target) {
                return v;
            }
        }
        match op {
            Add | Sub | Mul | Div | Rem | And | Or | Xor | Xnor => {
                let l = self.expr(lhs, target);
                let r = self.expr(rhs, target);
                let lw = l.width();
                let rw = r.width();
                if lw <= 64 && rw <= 64 && target <= 64 {
                    let sdiv = matches!(op, Div | Rem) && lhs.signed && rhs.signed;
                    if sdiv {
                        let a = self.reg_of(l);
                        let b = self.reg_of(r);
                        let d = self.regs.alloc();
                        if op == Div {
                            self.emit(Op::DivS {
                                dst: d,
                                a,
                                b,
                                lw,
                                rw,
                                w: target,
                            });
                        } else {
                            self.emit(Op::RemS {
                                dst: d,
                                a,
                                b,
                                lw,
                                rw,
                                w: target,
                            });
                        }
                        return Val::N { r: d, w: target };
                    }
                    let nop = match op {
                        Add => NOp::Add,
                        Sub => NOp::Sub,
                        Mul => NOp::Mul,
                        Div => NOp::DivU,
                        Rem => NOp::RemU,
                        And => NOp::And,
                        Or => NOp::Or,
                        Xor => NOp::Xor,
                        Xnor => NOp::Xnor,
                        _ => unreachable!(),
                    };
                    // Constant-fold / immediate forms.
                    if let (Val::C { v: a, .. }, Val::C { v: b, .. }) = (l, r) {
                        return Val::C {
                            v: nbin_const(nop, a, b, target, lw, rw),
                            w: target,
                        };
                    }
                    if let Val::C { v: b, .. } = r {
                        let a = self.reg_of(l);
                        let d = self.regs.alloc();
                        self.emit(Op::BinImm {
                            op: nop,
                            dst: d,
                            a,
                            imm: b,
                            w: target,
                        });
                        return Val::N { r: d, w: target };
                    }
                    let a = self.reg_of(l);
                    let b = self.reg_of(r);
                    let d = self.regs.alloc();
                    self.emit(Op::Bin {
                        op: nop,
                        dst: d,
                        a,
                        b,
                        w: target,
                    });
                    Val::N { r: d, w: target }
                } else {
                    let sdiv = matches!(op, Div | Rem) && lhs.signed && rhs.signed;
                    let a = self.wreg_of(l);
                    let b = self.wreg_of(r);
                    let d = self.wregs.alloc();
                    self.emit(Op::WBin {
                        op,
                        dst: d,
                        a,
                        b,
                        w: target,
                        sdiv,
                    });
                    let out = Val::W { wr: d, w: target };
                    if target <= 64 {
                        self.coerce(out, target, false)
                    } else {
                        out
                    }
                }
            }
            Pow => {
                let l = self.expr(lhs, target);
                let r = self.expr(rhs, 0);
                let lw = l.width();
                if lw <= 64 && target <= 64 && !matches!(r, Val::W { .. }) {
                    let a = self.reg_of(l);
                    if let Val::C { v: b, .. } = r {
                        let d = self.regs.alloc();
                        self.emit(Op::BinImm {
                            op: NOp::Pow,
                            dst: d,
                            a,
                            imm: b,
                            w: target,
                        });
                        return Val::N { r: d, w: target };
                    }
                    let b = self.reg_of(r);
                    let d = self.regs.alloc();
                    self.emit(Op::Bin {
                        op: NOp::Pow,
                        dst: d,
                        a,
                        b,
                        w: target,
                    });
                    Val::N { r: d, w: target }
                } else {
                    let a = self.wreg_of(l);
                    let b = self.wreg_of(r);
                    let d = self.wregs.alloc();
                    self.emit(Op::WPow {
                        dst: d,
                        a,
                        b,
                        w: target,
                    });
                    let out = Val::W { wr: d, w: target };
                    if target <= 64 {
                        self.coerce(out, target, false)
                    } else {
                        out
                    }
                }
            }
            Shl | AShl | Shr | AShr => {
                let l = self.expr(lhs, target);
                let amt = self.expr(rhs, 0);
                let lw = l.width();
                if lw <= 64 {
                    let arith = op == AShr && lhs.signed;
                    let a = self.reg_of(l);
                    if let Val::C { v: k, .. } = amt {
                        let d = self.regs.alloc();
                        if arith {
                            self.emit(Op::AShrImm {
                                dst: d,
                                a,
                                amt: k,
                                w: lw,
                            });
                        } else {
                            let nop = if matches!(op, Shl | AShl) {
                                NOp::Shl
                            } else {
                                NOp::Shr
                            };
                            self.emit(Op::BinImm {
                                op: nop,
                                dst: d,
                                a,
                                imm: k,
                                w: lw,
                            });
                        }
                        return Val::N { r: d, w: lw };
                    }
                    let b = self.u64_reg_of(amt);
                    let d = self.regs.alloc();
                    if arith {
                        self.emit(Op::AShr {
                            dst: d,
                            a,
                            amt: b,
                            w: lw,
                        });
                    } else {
                        let nop = if matches!(op, Shl | AShl) {
                            NOp::Shl
                        } else {
                            NOp::Shr
                        };
                        self.emit(Op::Bin {
                            op: nop,
                            dst: d,
                            a,
                            b,
                            w: lw,
                        });
                    }
                    Val::N { r: d, w: lw }
                } else {
                    let a = self.wreg_of(l);
                    let b = self.u64_reg_of(amt);
                    let d = self.wregs.alloc();
                    self.emit(Op::WShift {
                        op,
                        dst: d,
                        a,
                        amt: b,
                        arith: op == AShr && lhs.signed,
                    });
                    Val::W { wr: d, w: lw }
                }
            }
            LogicalAnd | LogicalOr => {
                if op == LogicalAnd {
                    if let Some(v) = self.try_cmp_range(lhs, rhs, target) {
                        return v;
                    }
                }
                // The interpreter evaluates both sides unconditionally.
                let l = self.expr(lhs, 0);
                let lb = self.bool_reg_of(l);
                let r = self.expr(rhs, 0);
                let rb = self.bool_reg_of(r);
                let d = self.regs.alloc();
                let nop = if op == LogicalAnd { NOp::And } else { NOp::Or };
                self.emit(Op::Bin {
                    op: nop,
                    dst: d,
                    a: lb,
                    b: rb,
                    w: 1,
                });
                self.coerce(Val::N { r: d, w: 1 }, target.max(1), false)
            }
            Eq | Ne | CaseEq | CaseNe | Lt | Le | Gt | Ge => {
                let w = lhs.width.max(rhs.width);
                let signed = lhs.signed && rhs.signed;
                let cc = match op {
                    Eq | CaseEq => Cc::Eq,
                    Ne | CaseNe => Cc::Ne,
                    Lt => Cc::Lt,
                    Le => Cc::Le,
                    Gt => Cc::Gt,
                    Ge => Cc::Ge,
                    _ => unreachable!(),
                };
                let d = self.compare(cc, signed, w, lhs, rhs);
                self.coerce(Val::N { r: d, w: 1 }, target.max(1), false)
            }
        }
    }

    /// Fuses `(v >= lo) && (v <= hi)` over one narrow unsigned variable and
    /// constant bounds — the shape a compiled DFA's transition rows take —
    /// into a single range-test op. All operands are pure, so evaluating
    /// `v` once instead of twice is unobservable.
    fn try_cmp_range(&mut self, lhs: &RExpr, rhs: &RExpr, target: u32) -> Option<Val> {
        let RExprKind::Binary {
            op: BinaryOp::Ge,
            lhs: gl,
            rhs: gr,
        } = &lhs.kind
        else {
            return None;
        };
        let RExprKind::Binary {
            op: BinaryOp::Le,
            lhs: ll,
            rhs: lr,
        } = &rhs.kind
        else {
            return None;
        };
        let (RExprKind::Var(vg), RExprKind::Var(vl)) = (&gl.kind, &ll.kind) else {
            return None;
        };
        let (RExprKind::Const(lo), RExprKind::Const(hi)) = (&gr.kind, &lr.kind) else {
            return None;
        };
        if vg != vl || gl.width > 64 || gr.width > 64 || lr.width > 64 {
            return None;
        }
        // Unsigned comparisons only: the canonical value at the variable's
        // width zero-extends to any compare width, so the `u64` range test
        // is exact.
        if (gl.signed && gr.signed) || (ll.signed && lr.signed) {
            return None;
        }
        let v = self.expr(gl, 0);
        let a = self.reg_of(v);
        let d = self.regs.alloc();
        self.emit(Op::CmpRange {
            dst: d,
            a,
            lo: lo.to_u64(),
            hi: hi.to_u64(),
        });
        Some(self.coerce(Val::N { r: d, w: 1 }, target.max(1), false))
    }

    /// Compiles a comparison at width `w`, returning a 0/1 register.
    fn compare(&mut self, cc: Cc, signed: bool, w: u32, lhs: &RExpr, rhs: &RExpr) -> Reg {
        let l = self.expr(lhs, 0);
        let l = self.coerce_cmp(l, w, signed && lhs.signed);
        let r = self.expr(rhs, 0);
        let r = self.coerce_cmp(r, w, signed && rhs.signed);
        if w <= 64 {
            match (l, r) {
                (l, Val::C { v, .. }) => {
                    let a = self.reg_of(l);
                    let d = self.regs.alloc();
                    if signed {
                        self.emit(Op::CmpSI {
                            cc,
                            dst: d,
                            a,
                            imm: sext(v, w),
                            w,
                        });
                    } else {
                        self.emit(Op::CmpUI {
                            cc,
                            dst: d,
                            a,
                            imm: v,
                        });
                    }
                    d
                }
                (l, r) => {
                    let a = self.reg_of(l);
                    let b = self.reg_of(r);
                    let d = self.regs.alloc();
                    if signed {
                        self.emit(Op::CmpS {
                            cc,
                            dst: d,
                            a,
                            b,
                            w,
                        });
                    } else {
                        self.emit(Op::CmpU { cc, dst: d, a, b });
                    }
                    d
                }
            }
        } else {
            let a = self.wreg_of(l);
            let b = self.wreg_of(r);
            let d = self.regs.alloc();
            self.emit(Op::WCmp {
                cc,
                dst: d,
                a,
                b,
                signed,
            });
            d
        }
    }

    /// `eval_extended` mirror: resize to `w`, sign-extending only when both
    /// the comparison and this operand are signed.
    fn coerce_cmp(&mut self, v: Val, w: u32, sext_this: bool) -> Val {
        self.coerce(v, w, sext_this)
    }

    fn try_rotate(&mut self, lhs: &RExpr, rhs: &RExpr, target: u32) -> Option<Val> {
        let (shl, shr) = match (&lhs.kind, &rhs.kind) {
            (
                RExprKind::Binary {
                    op: BinaryOp::Shl, ..
                },
                RExprKind::Binary {
                    op: BinaryOp::Shr, ..
                },
            ) => (lhs, rhs),
            (
                RExprKind::Binary {
                    op: BinaryOp::Shr, ..
                },
                RExprKind::Binary {
                    op: BinaryOp::Shl, ..
                },
            ) => (rhs, lhs),
            _ => return None,
        };
        let (
            RExprKind::Binary {
                lhs: sl_v,
                rhs: sl_k,
                ..
            },
            RExprKind::Binary {
                lhs: sr_v,
                rhs: sr_k,
                ..
            },
        ) = (&shl.kind, &shr.kind)
        else {
            return None;
        };
        let var = same_var(sl_v, sr_v)?;
        let (RExprKind::Const(k1), RExprKind::Const(k2)) = (&sl_k.kind, &sr_k.kind) else {
            return None;
        };
        if !k1.fits_u64() || !k2.fits_u64() {
            return None;
        }
        let (k1, k2) = (k1.to_u64(), k2.to_u64());
        let vs = self.vstore[var.0 as usize];
        let vw = vs.width() as u64;
        // All widths must agree for the fused form to be exact, and the Or's
        // operands must be exactly the two shifts at the common width.
        if vw == 0
            || vw > 64
            || target as u64 != vw
            || sl_v.width as u64 != vw
            || sr_v.width as u64 != vw
            || shl.width as u64 != vw
            || shr.width as u64 != vw
            || k1 == 0
            || k2 == 0
            || k1 + k2 != vw
            || sl_v.signed
            || sr_v.signed
        {
            return None;
        }
        let VStore::Narrow { off, .. } = vs else {
            return None;
        };
        let s = self.regs.alloc();
        self.emit(Op::Ld(s, off));
        let d = self.regs.alloc();
        self.emit(Op::Rotl {
            dst: d,
            a: s,
            k: k1 as u32,
            w: vw as u32,
        });
        Some(Val::N { r: d, w: target })
    }

    fn ternary(&mut self, cond: &RExpr, t: &RExpr, f: &RExpr, target: u32) -> Val {
        let eager = target <= 64
            && t.width.max(target) <= 64
            && f.width.max(target) <= 64
            && !has_random(t)
            && !has_random(f);
        if eager {
            // Fused compare-and-select when the condition is a narrow
            // comparison.
            if let RExprKind::Binary { op, lhs, rhs } = &cond.kind {
                use BinaryOp::*;
                if matches!(op, Eq | Ne | CaseEq | CaseNe | Lt | Le | Gt | Ge) {
                    let w = lhs.width.max(rhs.width);
                    if w <= 64 && !has_random(cond) {
                        let signed = lhs.signed && rhs.signed;
                        let cc = match op {
                            Eq | CaseEq => Cc::Eq,
                            Ne | CaseNe => Cc::Ne,
                            Lt => Cc::Lt,
                            Le => Cc::Le,
                            Gt => Cc::Gt,
                            Ge => Cc::Ge,
                            _ => unreachable!(),
                        };
                        let l = self.expr(lhs, 0);
                        let l = self.coerce(l, w, signed && lhs.signed);
                        let r = self.expr(rhs, 0);
                        let r = self.coerce(r, w, signed && rhs.signed);
                        let a = self.reg_of(l);
                        let b = self.reg_of(r);
                        let tv = self.expr(t, target);
                        let tv = self.coerce(tv, target, false);
                        let tr = self.reg_of(tv);
                        let fv = self.expr(f, target);
                        let fv = self.coerce(fv, target, false);
                        let fr = self.reg_of(fv);
                        let d = self.regs.alloc();
                        self.emit(Op::CmpSel {
                            dst: d,
                            cc,
                            signed,
                            w,
                            a,
                            b,
                            t: tr,
                            f: fr,
                        });
                        return Val::N { r: d, w: target };
                    }
                }
            }
            let cv = self.expr(cond, 0);
            let c = self.bool_reg_of(cv);
            let tv = self.expr(t, target);
            let tv = self.coerce(tv, target, false);
            let tr = self.reg_of(tv);
            let fv = self.expr(f, target);
            let fv = self.coerce(fv, target, false);
            let fr = self.reg_of(fv);
            let d = self.regs.alloc();
            self.emit(Op::Select {
                dst: d,
                c,
                t: tr,
                f: fr,
            });
            return Val::N { r: d, w: target };
        }
        // Branching form: both arms write the same destination.
        let cv = self.expr(cond, 0);
        let c = self.bool_reg_of(cv);
        if target <= 64 {
            let d = self.regs.alloc();
            let jz = self.emit_jz(c);
            let m = self.regs.mark();
            let wm = self.wregs.mark();
            let tv = self.expr(t, target);
            let tv = self.coerce(tv, target, false);
            match tv {
                Val::C { v, .. } => self.emit(Op::MovC(d, v)),
                Val::N { r, .. } => self.emit(Op::Mov(d, r)),
                Val::W { .. } => unreachable!(),
            }
            self.regs.reset(m);
            self.wregs.reset(wm);
            let jend = self.emit_jmp();
            self.patch(jz);
            let fv = self.expr(f, target);
            let fv = self.coerce(fv, target, false);
            match fv {
                Val::C { v, .. } => self.emit(Op::MovC(d, v)),
                Val::N { r, .. } => self.emit(Op::Mov(d, r)),
                Val::W { .. } => unreachable!(),
            }
            self.regs.reset(m);
            self.wregs.reset(wm);
            self.patch(jend);
            Val::N { r: d, w: target }
        } else {
            let d = self.wregs.alloc();
            let jz = self.emit_jz(c);
            let m = self.regs.mark();
            let wm = self.wregs.mark();
            let tv = self.expr(t, target);
            let tv = self.coerce(tv, target, false);
            let src = self.wreg_of(tv);
            self.emit(Op::WExt {
                dst: d,
                src,
                w: target,
                signed: false,
            });
            self.regs.reset(m);
            self.wregs.reset(wm);
            let jend = self.emit_jmp();
            self.patch(jz);
            let fv = self.expr(f, target);
            let fv = self.coerce(fv, target, false);
            let src = self.wreg_of(fv);
            self.emit(Op::WExt {
                dst: d,
                src,
                w: target,
                signed: false,
            });
            self.regs.reset(m);
            self.wregs.reset(wm);
            self.patch(jend);
            Val::W { wr: d, w: target }
        }
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn stmt(&mut self, s: &RStmt) {
        self.step();
        let m = self.regs.mark();
        let wm = self.wregs.mark();
        match s {
            RStmt::Block(stmts) => {
                for st in stmts {
                    self.stmt(st);
                }
            }
            RStmt::Blocking { lhs, rhs } => {
                let w = lhs.width(&self.design.vars);
                let v = self.expr(rhs, w);
                let v = self.coerce(v, w, false);
                self.store(lhs, v, false);
            }
            RStmt::NonBlocking { lhs, rhs } => {
                let w = lhs.width(&self.design.vars);
                let v = self.expr(rhs, w);
                let v = self.coerce(v, w, false);
                self.store(lhs, v, true);
            }
            RStmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let cv = self.expr(cond, 0);
                let jz = self.branch_if_false(cv);
                self.regs.reset(m);
                self.wregs.reset(wm);
                self.stmt(then_branch);
                if let Some(e) = else_branch {
                    let jend = self.emit_jmp();
                    self.patch(jz);
                    self.stmt(e);
                    self.patch(jend);
                } else {
                    self.patch(jz);
                }
            }
            RStmt::Case {
                kind,
                scrutinee,
                arms,
                default,
            } => self.case(*kind, scrutinee, arms, default.as_deref()),
            RStmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.stmt(init);
                let top = self.here();
                let cm = self.regs.mark();
                let cwm = self.wregs.mark();
                let cv = self.expr(cond, 0);
                let jz = self.branch_if_false(cv);
                self.regs.reset(cm);
                self.wregs.reset(cwm);
                self.stmt(body);
                self.stmt(step);
                self.emit(Op::Guard);
                self.emit(Op::Jmp(top));
                self.patch(jz);
            }
            RStmt::While { cond, body } => {
                let top = self.here();
                let cm = self.regs.mark();
                let cwm = self.wregs.mark();
                let cv = self.expr(cond, 0);
                let jz = self.branch_if_false(cv);
                self.regs.reset(cm);
                self.wregs.reset(cwm);
                self.stmt(body);
                self.emit(Op::Guard);
                self.emit(Op::Jmp(top));
                self.patch(jz);
            }
            RStmt::Repeat { count, body } => {
                let cv = self.expr(count, 0);
                // Pin the down-counter in this frame so the body cannot
                // clobber it.
                let n = match cv {
                    Val::N { r, .. } if (r as u32) == self.regs.mark() - 1 => r,
                    other => {
                        let src = self.u64_reg_of(other);
                        let d = self.regs.alloc();
                        self.emit(Op::Mov(d, src));
                        d
                    }
                };
                let top = self.here();
                let jz = self.emit_jz(n);
                self.stmt(body);
                self.emit(Op::BinImm {
                    op: NOp::Sub,
                    dst: n,
                    a: n,
                    imm: 1,
                    w: 64,
                });
                self.emit(Op::Jmp(top));
                self.patch(jz);
            }
            RStmt::SystemTask { task, args } => self.task(*task, args),
            RStmt::Null => {}
        }
        self.regs.reset(m);
        self.wregs.reset(wm);
    }

    fn case(
        &mut self,
        kind: CaseKind,
        scrutinee: &RExpr,
        arms: &[RCaseArm],
        default: Option<&RStmt>,
    ) {
        let mut w = scrutinee.width;
        for arm in arms {
            for l in &arm.labels {
                w = w.max(l.value.width);
            }
        }
        if self.try_switch(kind, scrutinee, arms, default, w) {
            return;
        }
        let m = self.regs.mark();
        let wm = self.wregs.mark();
        // `expr(scrutinee, w)` already yields width `w`, extending by the
        // scrutinee's own signedness exactly like `eval(scrutinee, w)`.
        let scr = self.expr(scrutinee, w);
        let mut arm_jumps: Vec<(usize, usize)> = Vec::new(); // (arm idx, jump site)
        let mut end_jumps: Vec<usize> = Vec::new();
        for (ai, arm) in arms.iter().enumerate() {
            for label in &arm.labels {
                let lm = self.regs.mark();
                let lwm = self.wregs.mark();
                let hit = self.case_label_hit(kind, scr, label, w);
                if let Some(hit) = hit {
                    let j = self.emit_jnz(hit);
                    arm_jumps.push((ai, j));
                }
                self.regs.reset(lm);
                self.wregs.reset(lwm);
            }
        }
        // No label matched: default (if any), then done.
        if let Some(d) = default {
            self.stmt(d);
        }
        let after_default = self.emit_jmp();
        end_jumps.push(after_default);
        // Arm bodies.
        let mut arm_entries: Vec<Option<u32>> = vec![None; arms.len()];
        for (ai, arm) in arms.iter().enumerate() {
            if !arm_jumps.iter().any(|(a, _)| *a == ai) {
                continue;
            }
            arm_entries[ai] = Some(self.here());
            self.stmt(&arm.body);
            end_jumps.push(self.emit_jmp());
        }
        // Patch label hits to their arm entries.
        let here = self.here();
        for (ai, site) in arm_jumps {
            let target = arm_entries[ai].unwrap_or(here);
            match &mut self.code[site] {
                Op::Jnz(_, t) => *t = target,
                _ => unreachable!(),
            }
        }
        for site in end_jumps {
            self.patch(site);
        }
        self.regs.reset(m);
        self.wregs.reset(wm);
    }

    /// Dense jump-table dispatch for a plain `case` over narrow constant
    /// labels (the shape a lowered FSM takes): one indexed jump replaces the
    /// linear compare-and-branch chain. Labels are pure constants, so
    /// skipping their evaluation is unobservable. Returns false when the
    /// case doesn't fit (wide, masked or non-constant labels, sparse or
    /// tiny label sets) and the generic chain should be emitted.
    fn try_switch(
        &mut self,
        kind: CaseKind,
        scrutinee: &RExpr,
        arms: &[RCaseArm],
        default: Option<&RStmt>,
        w: u32,
    ) -> bool {
        if kind != CaseKind::Case || w > 64 {
            return false;
        }
        let mut labels: Vec<(u64, usize)> = Vec::new(); // (value, arm idx)
        for (ai, arm) in arms.iter().enumerate() {
            for l in &arm.labels {
                if l.care.is_some() {
                    return false;
                }
                let RExprKind::Const(b) = &l.value.kind else {
                    return false;
                };
                if l.value.signed && l.value.width < w {
                    return false; // sign-extended label; keep the chain
                }
                labels.push((b.to_u64(), ai));
            }
        }
        let (Some(&(min, _)), Some(&(max, _))) = (
            labels.iter().min_by_key(|(v, _)| *v),
            labels.iter().max_by_key(|(v, _)| *v),
        ) else {
            return false;
        };
        let span = max - min;
        if labels.len() < 4 || span >= 1024 {
            return false;
        }
        let tlen = span as usize + 1;

        let m = self.regs.mark();
        let wm = self.wregs.mark();
        let scr = self.expr(scrutinee, w);
        let a = self.reg_of(scr);
        let site = self.here() as usize;
        self.emit(Op::Switch {
            a,
            base: min,
            table: vec![0u32; tlen].into_boxed_slice(),
            default_t: 0,
        });
        // The scrutinee is consumed at dispatch; arms start from a clean
        // frame.
        self.regs.reset(m);
        self.wregs.reset(wm);
        let default_entry = self.here();
        if let Some(d) = default {
            self.stmt(d);
        }
        let mut end_jumps = vec![self.emit_jmp()];
        let mut arm_entries: Vec<Option<u32>> = vec![None; arms.len()];
        for (ai, arm) in arms.iter().enumerate() {
            if !labels.iter().any(|(_, la)| *la == ai) {
                continue;
            }
            arm_entries[ai] = Some(self.here());
            self.stmt(&arm.body);
            end_jumps.push(self.emit_jmp());
        }
        let Op::Switch {
            table, default_t, ..
        } = &mut self.code[site]
        else {
            unreachable!()
        };
        *default_t = default_entry;
        table.fill(default_entry);
        let mut filled = vec![false; tlen];
        for (v, ai) in labels {
            let idx = (v - min) as usize;
            // First matching arm wins, as in the compare chain.
            if !filled[idx] {
                filled[idx] = true;
                table[idx] = arm_entries[ai].expect("labeled arm was emitted");
            }
        }
        for site in end_jumps {
            self.patch(site);
        }
        self.regs.reset(m);
        self.wregs.reset(wm);
        true
    }

    /// Emits the hit test for one case label; returns `None` when the label
    /// statically never matches (masked literal in a plain `case`).
    fn case_label_hit(
        &mut self,
        kind: CaseKind,
        scr: Val,
        label: &RCaseLabel,
        w: u32,
    ) -> Option<Reg> {
        match (&label.care, kind) {
            (Some(_), CaseKind::Case) => {
                // A masked literal never matches in a plain `case`, but the
                // interpreter still evaluates the label expression before
                // noticing; keep `$random` stream effects identical.
                if has_random(&label.value) {
                    // Scratch is reclaimed by the enclosing statement's
                    // register-mark reset.
                    let _ = self.expr(&label.value, w);
                }
                None
            }
            (Some(care), CaseKind::Casez | CaseKind::Casex) => {
                let care = care.resize(w);
                let lv = self.expr(&label.value, w);
                let lv = self.coerce(lv, w, false);
                if w <= 64 {
                    let cm = care.to_u64();
                    let s = self.reg_of(scr);
                    let sm = self.regs.alloc();
                    self.emit(Op::BinImm {
                        op: NOp::And,
                        dst: sm,
                        a: s,
                        imm: cm,
                        w,
                    });
                    match lv {
                        Val::C { v, .. } => {
                            let d = self.regs.alloc();
                            self.emit(Op::CmpUI {
                                cc: Cc::Eq,
                                dst: d,
                                a: sm,
                                imm: v & cm,
                            });
                            Some(d)
                        }
                        _ => {
                            let lr = self.reg_of(lv);
                            let lmsk = self.regs.alloc();
                            self.emit(Op::BinImm {
                                op: NOp::And,
                                dst: lmsk,
                                a: lr,
                                imm: cm,
                                w,
                            });
                            let d = self.regs.alloc();
                            self.emit(Op::CmpU {
                                cc: Cc::Eq,
                                dst: d,
                                a: sm,
                                b: lmsk,
                            });
                            Some(d)
                        }
                    }
                } else {
                    let s = self.wreg_of(scr);
                    let cw = self.wregs.alloc();
                    self.emit(Op::WMovC(cw, Box::new(care)));
                    let sm = self.wregs.alloc();
                    self.emit(Op::WBin {
                        op: BinaryOp::And,
                        dst: sm,
                        a: s,
                        b: cw,
                        w,
                        sdiv: false,
                    });
                    let lr = self.wreg_of(lv);
                    let lm = self.wregs.alloc();
                    self.emit(Op::WBin {
                        op: BinaryOp::And,
                        dst: lm,
                        a: lr,
                        b: cw,
                        w,
                        sdiv: false,
                    });
                    let d = self.regs.alloc();
                    self.emit(Op::WCmp {
                        cc: Cc::Eq,
                        dst: d,
                        a: sm,
                        b: lm,
                        signed: false,
                    });
                    Some(d)
                }
            }
            (None, _) => {
                let lv = self.expr(&label.value, w);
                let lv = self.coerce(lv, w, false);
                if w <= 64 {
                    let s = self.reg_of(scr);
                    match lv {
                        Val::C { v, .. } => {
                            let d = self.regs.alloc();
                            self.emit(Op::CmpUI {
                                cc: Cc::Eq,
                                dst: d,
                                a: s,
                                imm: v,
                            });
                            Some(d)
                        }
                        _ => {
                            let lr = self.reg_of(lv);
                            let d = self.regs.alloc();
                            self.emit(Op::CmpU {
                                cc: Cc::Eq,
                                dst: d,
                                a: s,
                                b: lr,
                            });
                            Some(d)
                        }
                    }
                } else {
                    let s = self.wreg_of(scr);
                    let lr = self.wreg_of(lv);
                    let d = self.regs.alloc();
                    self.emit(Op::WCmp {
                        cc: Cc::Eq,
                        dst: d,
                        a: s,
                        b: lr,
                        signed: false,
                    });
                    Some(d)
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Stores
    // ------------------------------------------------------------------

    /// Compiles a store of `val` (already coerced to the lvalue's width)
    /// into `lhs`. Selector expressions evaluate here, after the RHS, in
    /// the interpreter's order.
    fn store(&mut self, lhs: &RLValue, val: Val, nb: bool) {
        match lhs {
            RLValue::Var(var) => {
                let vs = self.vstore[var.0 as usize];
                let vw = vs.width();
                let val = self.coerce(val, vw, false);
                match vs {
                    VStore::Narrow { off, .. } => {
                        let src = self.reg_of(val);
                        if nb {
                            self.emit(Op::NbSt { var: var.0, src });
                        } else if self.observed(var.0) {
                            self.emit(Op::St {
                                var: var.0,
                                off,
                                src,
                            });
                        } else {
                            self.emit(Op::StQ { off, src });
                        }
                    }
                    _ => {
                        let src = self.wreg_of(val);
                        self.emit(Op::WStore {
                            var: var.0,
                            src,
                            idx: None,
                            off: None,
                            nb,
                        });
                    }
                }
            }
            RLValue::Range { var, offset, width } => {
                let val = self.coerce(val, *width, false);
                let ov = self.expr(offset, 0);
                let off = self.u64_reg_of(ov);
                self.emit_part_store(*var, val, *width, None, Some(off), nb);
            }
            RLValue::ArrayWord { var, index } => {
                let vs = self.vstore[var.0 as usize];
                let vw = vs.width();
                let val = self.coerce(val, vw, false);
                let iv = self.expr(index, 0);
                let idx = self.u64_reg_of(iv);
                self.emit_part_store(*var, val, vw, Some(idx), None, nb);
            }
            RLValue::ArrayWordRange {
                var,
                index,
                offset,
                width,
            } => {
                let val = self.coerce(val, *width, false);
                let iv = self.expr(index, 0);
                let idx = self.u64_reg_of(iv);
                let ov = self.expr(offset, 0);
                let off = self.u64_reg_of(ov);
                self.emit_part_store(*var, val, *width, Some(idx), Some(off), nb);
            }
            RLValue::Concat(parts) => {
                let total: u32 = parts.iter().map(|p| p.width(&self.design.vars)).sum();
                let mut hi = total;
                for p in parts {
                    let w = p.width(&self.design.vars);
                    let off = Val::C {
                        v: (hi - w) as u64,
                        w: 64,
                    };
                    let m = self.regs.mark();
                    let wm = self.wregs.mark();
                    let piece = self.slice_val(val, off, w);
                    self.store(p, piece, nb);
                    self.regs.reset(m);
                    self.wregs.reset(wm);
                    hi -= w;
                }
            }
        }
    }

    fn emit_part_store(
        &mut self,
        var: VarId,
        val: Val,
        w: u32,
        idx: Option<Reg>,
        off: Option<Reg>,
        nb: bool,
    ) {
        let vs = self.vstore[var.0 as usize];
        let narrow_var = matches!(vs, VStore::Narrow { .. } | VStore::NarrowArr { .. });
        if narrow_var && w <= 64 {
            let src = self.reg_of(val);
            self.emit(Op::StoreGen {
                var: var.0,
                src,
                w,
                idx,
                off,
                nb,
            });
        } else {
            let src = self.wreg_of(val);
            self.emit(Op::WStore {
                var: var.0,
                src,
                idx,
                off,
                nb,
            });
        }
    }

    // ------------------------------------------------------------------
    // System tasks
    // ------------------------------------------------------------------

    fn task(&mut self, task: SystemTask, args: &[RTaskArg]) {
        let frag_start = self.here();
        let (fmt, specs) = match args.split_first() {
            Some((RTaskArg::Str(f), rest)) => {
                let mut vals = Vec::with_capacity(rest.len());
                for a in rest {
                    vals.push(self.task_arg(a));
                }
                (Some(f.clone()), vals)
            }
            _ => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.task_arg(a));
                }
                (None, vals)
            }
        };
        let frag_end = self.here();
        self.emit(Op::Task(Box::new(TaskOp {
            kind: task,
            fmt,
            vals: specs.into_boxed_slice(),
            frag: (frag_start, frag_end),
        })));
    }

    fn task_arg(&mut self, a: &RTaskArg) -> ArgV {
        match a {
            RTaskArg::Str(s) => {
                let bytes = s.as_bytes();
                let mut b = Bits::zero(bytes.len() as u32 * 8);
                for (i, &byte) in bytes.iter().rev().enumerate() {
                    b.splice(i as u32 * 8, &Bits::from_u64(8, byte as u64));
                }
                ArgV::Lit {
                    s: s.clone(),
                    packed: b,
                }
            }
            RTaskArg::Expr(e) => {
                let v = self.expr(e, 0);
                match v {
                    Val::W { wr, .. } => ArgV::W {
                        wr,
                        signed: e.signed,
                    },
                    other => {
                        let r = self.reg_of(other);
                        ArgV::N {
                            r,
                            w: other.width(),
                            signed: e.signed,
                        }
                    }
                }
            }
        }
    }
}

/// Compile-time constant evaluation of a narrow binary op (used for
/// folding); delegates to the executor's `nbin` so folding and runtime
/// evaluation cannot diverge.
fn nbin_const(op: NOp, a: u64, b: u64, w: u32, _lw: u32, _rw: u32) -> u64 {
    crate::exec::nbin(op, a, b, w)
}

pub(crate) use crate::sim::extend;
