//! Minimal VCD (value change dump) writer for waveform inspection.

use crate::elaborate::Design;
use crate::rir::VarId;
use crate::sim::Simulator;
use cascade_bits::Bits;
use std::io::{self, Write};

/// Streams value changes for a chosen set of variables into VCD format.
///
/// # Examples
///
/// ```no_run
/// # use cascade_sim::{Simulator, VcdWriter};
/// # fn demo(sim: &mut Simulator) -> std::io::Result<()> {
/// let mut out = Vec::new();
/// let mut vcd = VcdWriter::new(&mut out, sim.design(), &["clk", "cnt"])?;
/// for _ in 0..8 {
///     sim.tick("clk").unwrap();
///     vcd.sample(sim)?;
/// }
/// # Ok(()) }
/// ```
pub struct VcdWriter<W: Write> {
    out: W,
    tracked: Vec<(VarId, String)>,
    last: Vec<Option<Bits>>,
    time: u64,
}

impl<W: Write> VcdWriter<W> {
    /// Writes the VCD header and variable declarations.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the underlying writer.
    pub fn new(mut out: W, design: &Design, names: &[&str]) -> io::Result<Self> {
        writeln!(out, "$timescale 1ns $end")?;
        writeln!(out, "$scope module {} $end", design.top)?;
        let mut tracked = Vec::new();
        for (i, name) in names.iter().enumerate() {
            let Some(id) = design.var(name) else { continue };
            let code = code_for(i);
            let width = design.info(id).width;
            writeln!(out, "$var wire {width} {code} {name} $end")?;
            tracked.push((id, code));
        }
        writeln!(out, "$upscope $end")?;
        writeln!(out, "$enddefinitions $end")?;
        let last = vec![None; tracked.len()];
        Ok(VcdWriter {
            out,
            tracked,
            last,
            time: 0,
        })
    }

    /// Records any changed values at the next timestamp.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the underlying writer.
    pub fn sample(&mut self, sim: &Simulator) -> io::Result<()> {
        let mut wrote_time = false;
        for (i, (id, code)) in self.tracked.iter().enumerate() {
            let v = sim.peek_id(*id);
            if self.last[i].as_ref() == Some(&v) {
                continue;
            }
            if !wrote_time {
                writeln!(self.out, "#{}", self.time)?;
                wrote_time = true;
            }
            if v.width() == 1 {
                writeln!(self.out, "{}{}", if v.to_bool() { 1 } else { 0 }, code)?;
            } else {
                writeln!(self.out, "b{} {}", v.to_binary_string(), code)?;
            }
            self.last[i] = Some(v);
        }
        self.time += 1;
        Ok(())
    }
}

fn code_for(i: usize) -> String {
    // Printable identifier codes: ! " # ... per the VCD convention.
    let mut n = i;
    let mut s = String::new();
    loop {
        s.push((33 + (n % 94)) as u8 as char);
        n /= 94;
        if n == 0 {
            break;
        }
    }
    s
}
