//! Minimal VCD (value change dump) writer for waveform inspection.

use crate::elaborate::Design;
use crate::rir::VarId;
use crate::sim::Simulator;
use cascade_bits::Bits;
use std::io::{self, Write};

/// Streams value changes for a chosen set of variables into VCD format.
///
/// # Examples
///
/// ```no_run
/// # use cascade_sim::{Simulator, VcdWriter};
/// # fn demo(sim: &mut Simulator) -> std::io::Result<()> {
/// let mut out = Vec::new();
/// let mut vcd = VcdWriter::new(&mut out, sim.design(), &["clk", "cnt"])?;
/// for _ in 0..8 {
///     sim.tick("clk").unwrap();
///     vcd.sample(sim)?;
/// }
/// # Ok(()) }
/// ```
pub struct VcdWriter<W: Write> {
    out: W,
    tracked: Vec<(VarId, String)>,
    last: Vec<Option<Bits>>,
    time: u64,
}

impl<W: Write> VcdWriter<W> {
    /// Writes the VCD header and variable declarations.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the underlying writer.
    pub fn new(mut out: W, design: &Design, names: &[&str]) -> io::Result<Self> {
        writeln!(out, "$timescale 1ns $end")?;
        writeln!(out, "$scope module {} $end", design.top)?;
        let mut tracked = Vec::new();
        for (i, name) in names.iter().enumerate() {
            let Some(id) = design.var(name) else { continue };
            let code = code_for(i);
            let width = design.info(id).width;
            writeln!(out, "$var wire {width} {code} {name} $end")?;
            tracked.push((id, code));
        }
        writeln!(out, "$upscope $end")?;
        writeln!(out, "$enddefinitions $end")?;
        let last = vec![None; tracked.len()];
        Ok(VcdWriter {
            out,
            tracked,
            last,
            time: 0,
        })
    }

    /// Records any changed values at the next timestamp.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the underlying writer.
    pub fn sample(&mut self, sim: &Simulator) -> io::Result<()> {
        let mut wrote_time = false;
        for (i, (id, code)) in self.tracked.iter().enumerate() {
            let v = sim.peek_id(*id);
            if self.last[i].as_ref() == Some(&v) {
                continue;
            }
            if !wrote_time {
                writeln!(self.out, "#{}", self.time)?;
                wrote_time = true;
            }
            if v.width() == 1 {
                writeln!(self.out, "{}{}", if v.to_bool() { 1 } else { 0 }, code)?;
            } else {
                writeln!(self.out, "b{} {}", v.to_binary_string(), code)?;
            }
            self.last[i] = Some(v);
        }
        self.time += 1;
        Ok(())
    }
}

/// A VCD writer over arbitrary named signals, not tied to a
/// [`Simulator`]: the caller supplies each sample as a slice of values
/// aligned with the ports declared at construction. The Cascade runtime
/// uses this to stream waveforms from whatever engine currently executes
/// the program (interpreter, bytecode, or virtual hardware).
///
/// # Examples
///
/// ```
/// use cascade_bits::Bits;
/// use cascade_sim::PortVcd;
///
/// let mut out = Vec::new();
/// let mut vcd = PortVcd::new(&mut out, "main", &[("cnt".to_string(), 8)])?;
/// vcd.sample(&[Some(Bits::from_u64(8, 1))])?;
/// vcd.sample(&[Some(Bits::from_u64(8, 2))])?;
/// let text = String::from_utf8(out).unwrap();
/// assert!(text.contains("$var wire 8"));
/// assert!(text.contains("#1"));
/// # Ok::<(), std::io::Error>(())
/// ```
pub struct PortVcd<W: Write> {
    out: W,
    codes: Vec<String>,
    last: Vec<Option<Bits>>,
    time: u64,
}

impl<W: Write> PortVcd<W> {
    /// Writes the VCD header, declaring one wire per `(name, width)`.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the underlying writer.
    pub fn new(mut out: W, module: &str, ports: &[(String, u32)]) -> io::Result<Self> {
        writeln!(out, "$timescale 1ns $end")?;
        writeln!(out, "$scope module {module} $end")?;
        let mut codes = Vec::new();
        for (i, (name, width)) in ports.iter().enumerate() {
            let code = code_for(i);
            // Dots are scope separators in VCD identifiers; flatten them.
            let flat = name.replace('.', "_");
            writeln!(out, "$var wire {width} {code} {flat} $end")?;
            codes.push(code);
        }
        writeln!(out, "$upscope $end")?;
        writeln!(out, "$enddefinitions $end")?;
        Ok(PortVcd {
            out,
            last: vec![None; codes.len()],
            codes,
            time: 0,
        })
    }

    /// Records changed values at the next timestamp. `values` aligns with
    /// the ports declared at construction; `None` entries (signals the
    /// current engine cannot see) are skipped.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the underlying writer.
    pub fn sample(&mut self, values: &[Option<Bits>]) -> io::Result<()> {
        let mut wrote_time = false;
        for (i, v) in values.iter().enumerate().take(self.codes.len()) {
            let Some(v) = v else { continue };
            if self.last[i].as_ref() == Some(v) {
                continue;
            }
            if !wrote_time {
                writeln!(self.out, "#{}", self.time)?;
                wrote_time = true;
            }
            let code = &self.codes[i];
            if v.width() == 1 {
                writeln!(self.out, "{}{}", if v.to_bool() { 1 } else { 0 }, code)?;
            } else {
                writeln!(self.out, "b{} {}", v.to_binary_string(), code)?;
            }
            self.last[i] = Some(v.clone());
        }
        self.time += 1;
        Ok(())
    }

    /// Flushes the underlying writer (call when the dump ends).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the underlying writer.
    pub fn finish(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

fn code_for(i: usize) -> String {
    // Printable identifier codes: ! " # ... per the VCD convention.
    let mut n = i;
    let mut s = String::new();
    loop {
        s.push((33 + (n % 94)) as u8 as char);
        n /= 94;
        if n == 0 {
            break;
        }
    }
    s
}
