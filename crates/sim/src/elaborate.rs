//! Elaboration: AST + module library → executable [`Design`].
//!
//! Elaboration instantiates the module hierarchy (recursively resolving
//! parameters), assigns every net a [`VarId`] under its full hierarchical
//! name, lowers port connections to continuous assignments, and rewrites all
//! bit/part/array selects into zero-based LSB offsets.

use crate::rir::*;
use cascade_bits::Bits;
use cascade_verilog::ast::{
    Expr, Item, LValue, ModuleItem, NetKind, PortDir, Sensitivity, Stmt, SystemFunction,
};
use cascade_verilog::typecheck::{
    check_module, const_eval, CheckedModule, ModuleLibrary, ParamEnv, Symbol, SymbolKind,
};
use cascade_verilog::{Diagnostic, FrontendResult, Phase, Span};
use std::collections::BTreeMap;

/// A fully elaborated, flat design ready for simulation.
#[derive(Debug, Clone)]
pub struct Design {
    /// Variable table; indices are [`VarId`]s.
    pub vars: Vec<VarInfo>,
    /// Executable processes.
    pub processes: Vec<Process>,
    /// Hierarchical name → variable.
    pub by_name: BTreeMap<String, VarId>,
    /// Name of the top module.
    pub top: String,
}

impl Design {
    /// Looks up a variable by hierarchical name (without the top-module
    /// prefix: `cnt`, `r.y`).
    pub fn var(&self, name: &str) -> Option<VarId> {
        self.by_name.get(name).copied()
    }

    /// Variable metadata.
    pub fn info(&self, id: VarId) -> &VarInfo {
        &self.vars[id.0 as usize]
    }

    /// Iterates over `(name, id)` pairs.
    pub fn iter_vars(&self) -> impl Iterator<Item = (&str, VarId)> {
        self.by_name.iter().map(|(n, &id)| (n.as_str(), id))
    }

    /// The root input variables (top-module input ports).
    pub fn inputs(&self) -> Vec<VarId> {
        (0..self.vars.len() as u32)
            .map(VarId)
            .filter(|id| self.info(*id).is_input)
            .collect()
    }

    /// Total number of state bits (registers and memories), a rough area
    /// statistic.
    pub fn state_bits(&self) -> u64 {
        self.vars
            .iter()
            .filter(|v| v.class == VarClass::Reg)
            .map(|v| v.width as u64 * v.array_len)
            .sum()
    }
}

/// Builds a module library from parsed source text.
///
/// # Errors
///
/// Returns the first parse diagnostic.
pub fn library_from_source(src: &str) -> FrontendResult<ModuleLibrary> {
    let unit = cascade_verilog::parse(src)?;
    let mut lib = ModuleLibrary::new();
    for item in unit.items {
        if let Item::Module(m) = item {
            lib.insert(m);
        }
    }
    Ok(lib)
}

/// Elaborates `top` against `lib` with root parameter `overrides`.
///
/// # Errors
///
/// Returns a [`Diagnostic`] for unknown modules, type errors, unsupported
/// constructs (`inout`, non-constant part-select bounds), or recursive
/// instantiation deeper than 64 levels.
pub fn elaborate(top: &str, lib: &ModuleLibrary, overrides: &ParamEnv) -> FrontendResult<Design> {
    let mut el = Elaborator {
        lib,
        vars: Vec::new(),
        processes: Vec::new(),
        by_name: BTreeMap::new(),
    };
    let scope = el.instantiate(top, "", overrides, 0)?;
    el.lower_scope(&scope)?;
    Ok(Design {
        vars: el.vars,
        processes: el.processes,
        by_name: el.by_name,
        top: top.to_string(),
    })
}

/// Elaborates a single already-checked module with no instances (the form
/// Cascade's runtime produces for subprogram engines).
///
/// # Errors
///
/// Returns a [`Diagnostic`] if the module still contains instantiations or
/// unsupported constructs.
pub fn elaborate_leaf(checked: &CheckedModule) -> FrontendResult<Design> {
    if !checked.instances.is_empty() {
        return Err(err(format!(
            "module `{}` still contains instances; inline before leaf elaboration",
            checked.module.name
        )));
    }
    let lib = ModuleLibrary::new();
    let mut el = Elaborator {
        lib: &lib,
        vars: Vec::new(),
        processes: Vec::new(),
        by_name: BTreeMap::new(),
    };
    let scope = el.build_scope(checked.clone(), "", 0)?;
    el.lower_scope(&scope)?;
    Ok(Design {
        vars: el.vars,
        processes: el.processes,
        by_name: el.by_name,
        top: checked.module.name.clone(),
    })
}

fn err(msg: impl Into<String>) -> Diagnostic {
    Diagnostic::new(Phase::Elaborate, msg, Span::synthetic())
}

/// One instantiated module scope.
struct Scope {
    #[allow(dead_code)]
    prefix: String,
    checked: CheckedModule,
    names: BTreeMap<String, VarId>,
    children: BTreeMap<String, Scope>,
    /// Depth 0 = root (its input ports are externally poked).
    #[allow(dead_code)]
    depth: usize,
}

struct Elaborator<'a> {
    lib: &'a ModuleLibrary,
    vars: Vec<VarInfo>,
    processes: Vec<Process>,
    by_name: BTreeMap<String, VarId>,
}

impl<'a> Elaborator<'a> {
    fn fresh_var(&mut self, name: String, info: VarInfo) -> VarId {
        let id = VarId(self.vars.len() as u32);
        self.vars.push(info);
        self.by_name.insert(name, id);
        id
    }

    fn instantiate(
        &mut self,
        module_name: &str,
        prefix: &str,
        overrides: &ParamEnv,
        depth: usize,
    ) -> FrontendResult<Scope> {
        if depth > 64 {
            return Err(err("instantiation depth exceeds 64 (recursive modules?)"));
        }
        let mut module = self
            .lib
            .get(module_name)
            .ok_or_else(|| err(format!("unknown module `{module_name}`")))?
            .clone();
        if cascade_verilog::has_generates(&module) {
            let params = cascade_verilog::typecheck::resolve_params(&module, overrides)?;
            module = cascade_verilog::expand_generates(&module, &params)?;
        }
        if cascade_verilog::has_functions(&module) {
            module = cascade_verilog::inline_functions(&module)?;
        }
        let checked = check_module(&module, overrides, self.lib).map_err(|mut ds| {
            ds.pop()
                .unwrap_or_else(|| err(format!("type errors in `{module_name}`")))
        })?;
        self.build_scope(checked, prefix, depth)
    }

    fn build_scope(
        &mut self,
        checked: CheckedModule,
        prefix: &str,
        depth: usize,
    ) -> FrontendResult<Scope> {
        let mut names = BTreeMap::new();
        // Declare variables for every non-parameter symbol.
        for (name, sym) in &checked.symbols {
            if sym.kind == SymbolKind::Parameter {
                continue;
            }
            let qual = if prefix.is_empty() {
                name.clone()
            } else {
                format!("{prefix}.{name}")
            };
            // Only state elements take declaration initializers; a wire's
            // `= expr` is a continuous assignment lowered later.
            let init = match &sym.init {
                Some(e) if sym.kind.is_variable() => Some(
                    const_eval(e, &checked.params)
                        .map(|v| v.resize(sym.width()))
                        .map_err(|d| err(format!("initializer for `{qual}`: {}", d.message)))?,
                ),
                _ => None,
            };
            let class = if sym.kind.is_variable() {
                VarClass::Reg
            } else {
                VarClass::Wire
            };
            let is_input = depth == 0 && sym.port == Some(PortDir::Input);
            let is_output = depth == 0 && sym.port == Some(PortDir::Output);
            if sym.port == Some(PortDir::Inout) {
                return Err(err(format!("inout port `{qual}` is not supported")));
            }
            let id = self.fresh_var(
                qual,
                VarInfo {
                    name: if prefix.is_empty() {
                        name.clone()
                    } else {
                        format!("{prefix}.{name}")
                    },
                    class,
                    width: sym.width(),
                    signed: sym.signed,
                    array_len: sym.array_len(),
                    init,
                    is_input,
                    is_output,
                },
            );
            names.insert(name.clone(), id);
        }
        // Instantiate children.
        let mut children = BTreeMap::new();
        let instances = checked.instances.clone();
        for ri in &instances {
            let child_prefix = if prefix.is_empty() {
                ri.inst_name.clone()
            } else {
                format!("{prefix}.{}", ri.inst_name)
            };
            let child = self.instantiate(&ri.module_name, &child_prefix, &ri.params, depth + 1)?;
            children.insert(ri.inst_name.clone(), child);
        }
        Ok(Scope {
            prefix: prefix.to_string(),
            checked,
            names,
            children,
            depth,
        })
    }

    /// Lowers a scope's items (and recursively its children's) to processes.
    fn lower_scope(&mut self, scope: &Scope) -> FrontendResult<()> {
        for child in scope.children.values() {
            self.lower_scope(child)?;
        }
        // Port connections.
        for ri in &scope.checked.instances {
            let child = &scope.children[&ri.inst_name];
            for (port_name, expr) in &ri.connections {
                let Some(expr) = expr else { continue };
                let port = child
                    .checked
                    .module
                    .port(port_name)
                    .ok_or_else(|| err(format!("no port `{port_name}`")))?
                    .clone();
                let child_var = child.names[port_name];
                match port.dir {
                    PortDir::Input => {
                        let rhs = self.expr(scope, expr)?;
                        self.processes.push(Process::Assign {
                            lhs: RLValue::Var(child_var),
                            rhs,
                        });
                    }
                    PortDir::Output => {
                        let lhs = self.expr_as_lvalue(scope, expr)?;
                        let info = &self.vars[child_var.0 as usize];
                        let rhs = RExpr {
                            width: info.width,
                            signed: info.signed,
                            kind: RExprKind::Var(child_var),
                        };
                        self.processes.push(Process::Assign { lhs, rhs });
                    }
                    PortDir::Inout => {
                        return Err(err(format!("inout port `{port_name}` is not supported")));
                    }
                }
            }
        }
        // Module items.
        let items = scope.checked.module.items.clone();
        for item in &items {
            match item {
                ModuleItem::Net(decl) => {
                    // `wire x = expr;` is a continuous assignment.
                    if decl.kind == NetKind::Wire {
                        for d in &decl.decls {
                            if let Some(init) = &d.init {
                                let lhs = RLValue::Var(scope.names[&d.name]);
                                let rhs = self.expr(scope, init)?;
                                self.processes.push(Process::Assign { lhs, rhs });
                            }
                        }
                    }
                }
                ModuleItem::Param(_) | ModuleItem::Instance(_) => {}
                ModuleItem::Function(f) => {
                    return Err(err(format!(
                        "function `{}` survived inlining (internal error)",
                        f.name
                    )));
                }
                ModuleItem::Genvar(_) => {}
                ModuleItem::GenerateFor(_) => {
                    return Err(err("generate block survived expansion (internal error)"));
                }
                ModuleItem::Assign(a) => {
                    let lhs = self.lvalue(scope, &a.lhs)?;
                    let rhs = self.expr(scope, &a.rhs)?;
                    self.processes.push(Process::Assign { lhs, rhs });
                }
                ModuleItem::Always(a) => {
                    let body = self.stmt(scope, &a.body)?;
                    let sens = match &a.sensitivity {
                        Sensitivity::Star => {
                            let mut vars = Vec::new();
                            collect_reads_stmt(&body, &mut vars);
                            vars.sort();
                            vars.dedup();
                            vars.into_iter()
                                .map(|v| Sens { var: v, edge: None })
                                .collect()
                        }
                        Sensitivity::List(items) => {
                            let mut out = Vec::new();
                            for it in items {
                                let e = self.expr(scope, &it.expr)?;
                                let mut vars = Vec::new();
                                collect_reads(&e, &mut vars);
                                if vars.is_empty() {
                                    return Err(err("sensitivity item reads no variable"));
                                }
                                for v in vars {
                                    out.push(Sens {
                                        var: v,
                                        edge: it.edge,
                                    });
                                }
                            }
                            out
                        }
                    };
                    self.processes.push(Process::Always { sens, body });
                }
                ModuleItem::Initial(i) => {
                    let body = self.stmt(scope, &i.body)?;
                    self.processes.push(Process::Initial { body });
                }
                ModuleItem::Statement(s) => {
                    // REPL-injected root statements execute once, like an
                    // initial block appended to the root module.
                    let body = self.stmt(scope, s)?;
                    self.processes.push(Process::Initial { body });
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Name resolution
    // ------------------------------------------------------------------

    fn resolve_path<'s>(
        &self,
        scope: &'s Scope,
        path: &[String],
    ) -> FrontendResult<(VarId, &'s Scope, String)> {
        let mut cur = scope;
        for (i, part) in path.iter().enumerate() {
            let last = i == path.len() - 1;
            if last {
                let id = cur.names.get(part).copied().ok_or_else(|| {
                    err(format!(
                        "unknown variable `{}` in `{}`",
                        part, cur.checked.module.name
                    ))
                })?;
                return Ok((id, cur, part.clone()));
            }
            cur = cur.children.get(part).ok_or_else(|| {
                err(format!(
                    "unknown instance `{part}` in `{}`",
                    cur.checked.module.name
                ))
            })?;
        }
        Err(err("empty hierarchical path"))
    }

    fn symbol<'s>(&self, scope: &'s Scope, name: &str) -> FrontendResult<&'s Symbol> {
        scope
            .checked
            .symbols
            .get(name)
            .ok_or_else(|| err(format!("unknown symbol `{name}`")))
    }

    fn var_expr(&self, id: VarId) -> RExpr {
        let info = &self.vars[id.0 as usize];
        RExpr {
            width: info.width,
            signed: info.signed,
            kind: RExprKind::Var(id),
        }
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    fn expr(&mut self, scope: &Scope, e: &Expr) -> FrontendResult<RExpr> {
        use cascade_verilog::ast::{BinaryOp, UnaryOp};
        // Selects into parameters (`SEQ_A[i +: 2]`) are constants; fold them
        // here so the select machinery only ever sees runtime variables.
        if matches!(
            e,
            Expr::Index { .. } | Expr::Part { .. } | Expr::IndexedPart { .. }
        ) {
            if let Ok(v) = const_eval(e, &scope.checked.params) {
                return Ok(RExpr::constant(v));
            }
        }
        Ok(match e {
            Expr::Literal { value, sized } => RExpr {
                width: value.width(),
                // Unsized decimal literals are signed in Verilog.
                signed: !sized,
                kind: RExprKind::Const(value.clone()),
            },
            Expr::MaskedLiteral { value, .. } => RExpr::constant(value.clone()),
            Expr::Str(_) => return Err(err("string literal outside system task arguments")),
            Expr::Ident(name) => {
                let sym = self.symbol(scope, name)?;
                if sym.kind == SymbolKind::Parameter {
                    let v = sym
                        .value
                        .clone()
                        .ok_or_else(|| err(format!("parameter `{name}` has no value")))?;
                    RExpr::constant(v)
                } else {
                    let id = scope.names[name];
                    self.var_expr(id)
                }
            }
            Expr::Hier(path) => {
                let (id, _, _) = self.resolve_path(scope, path)?;
                self.var_expr(id)
            }
            Expr::Unary { op, operand } => {
                let inner = self.expr(scope, operand)?;
                let (width, signed) = match op {
                    UnaryOp::Plus | UnaryOp::Neg | UnaryOp::BitNot => (inner.width, inner.signed),
                    _ => (1, false),
                };
                RExpr {
                    width,
                    signed,
                    kind: RExprKind::Unary {
                        op: *op,
                        operand: Box::new(inner),
                    },
                }
            }
            Expr::Binary { op, lhs, rhs } => {
                let l = self.expr(scope, lhs)?;
                let r = self.expr(scope, rhs)?;
                let (width, signed) = match op {
                    BinaryOp::Add
                    | BinaryOp::Sub
                    | BinaryOp::Mul
                    | BinaryOp::Div
                    | BinaryOp::Rem
                    | BinaryOp::And
                    | BinaryOp::Or
                    | BinaryOp::Xor
                    | BinaryOp::Xnor => (l.width.max(r.width), l.signed && r.signed),
                    BinaryOp::Pow
                    | BinaryOp::Shl
                    | BinaryOp::Shr
                    | BinaryOp::AShl
                    | BinaryOp::AShr => (l.width, l.signed),
                    _ => (1, false),
                };
                RExpr {
                    width,
                    signed,
                    kind: RExprKind::Binary {
                        op: *op,
                        lhs: Box::new(l),
                        rhs: Box::new(r),
                    },
                }
            }
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
            } => {
                let c = self.expr(scope, cond)?;
                let t = self.expr(scope, then_expr)?;
                let f = self.expr(scope, else_expr)?;
                RExpr {
                    width: t.width.max(f.width),
                    signed: t.signed && f.signed,
                    kind: RExprKind::Ternary {
                        cond: Box::new(c),
                        then_expr: Box::new(t),
                        else_expr: Box::new(f),
                    },
                }
            }
            Expr::Index { base, index } => self.index_expr(scope, base, index)?,
            Expr::Part { base, msb, lsb } => {
                let (var, elem_index) = self.select_base(scope, base)?;
                let sym = self.base_symbol(scope, base)?;
                let m = const_eval(msb, &scope.checked.params)
                    .map_err(|d| err(format!("part-select bound: {}", d.message)))?
                    .to_i64();
                let l = const_eval(lsb, &scope.checked.params)
                    .map_err(|d| err(format!("part-select bound: {}", d.message)))?
                    .to_i64();
                let off_m = sym
                    .bit_offset(m)
                    .ok_or_else(|| err(format!("part-select bound {m} out of range")))?;
                let off_l = sym
                    .bit_offset(l)
                    .ok_or_else(|| err(format!("part-select bound {l} out of range")))?;
                let lo = off_m.min(off_l);
                let width = off_m.abs_diff(off_l) + 1;
                let base_expr = self.word_expr(var, elem_index);
                RExpr {
                    width,
                    signed: false,
                    kind: RExprKind::Slice {
                        base: Box::new(base_expr),
                        offset: Box::new(RExpr::constant(Bits::from_u64(32, lo as u64))),
                        width,
                    },
                }
            }
            Expr::IndexedPart {
                base,
                offset,
                width,
                ascending,
            } => {
                let (var, elem_index) = self.select_base(scope, base)?;
                let sym = self.base_symbol(scope, base)?;
                let w = const_eval(width, &scope.checked.params)
                    .map_err(|d| err(format!("part-select width: {}", d.message)))?
                    .to_u64() as u32;
                let off_expr = self.expr(scope, offset)?;
                let lsb_index = if *ascending {
                    off_expr
                } else {
                    // x[i -: w] selects [i, i-w+1]; LSB index = i - (w-1).
                    binary_sub(off_expr, w - 1)
                };
                let mapped = self.map_bit_offset(sym, lsb_index);
                let base_expr = self.word_expr(var, elem_index);
                RExpr {
                    width: w,
                    signed: false,
                    kind: RExprKind::Slice {
                        base: Box::new(base_expr),
                        offset: Box::new(mapped),
                        width: w,
                    },
                }
            }
            Expr::Concat(parts) => {
                let rs: Vec<RExpr> = parts
                    .iter()
                    .map(|p| self.expr(scope, p))
                    .collect::<Result<_, _>>()?;
                let width = rs.iter().map(|r| r.width).sum();
                RExpr {
                    width,
                    signed: false,
                    kind: RExprKind::Concat(rs),
                }
            }
            Expr::Replicate { count, inner } => {
                let c = const_eval(count, &scope.checked.params)
                    .map_err(|d| err(format!("replication count: {}", d.message)))?
                    .to_u64() as u32;
                let i = self.expr(scope, inner)?;
                RExpr {
                    width: i.width * c,
                    signed: false,
                    kind: RExprKind::Repeat {
                        count: c,
                        inner: Box::new(i),
                    },
                }
            }
            Expr::FnCall { name, .. } => {
                return Err(err(format!(
                    "call to `{name}` survived function inlining (internal error)"
                )));
            }
            Expr::SystemCall { func, args } => match func {
                SystemFunction::Time => RExpr {
                    width: 64,
                    signed: false,
                    kind: RExprKind::Time,
                },
                SystemFunction::Random => RExpr {
                    width: 32,
                    signed: true,
                    kind: RExprKind::Random,
                },
                SystemFunction::Signed | SystemFunction::Unsigned => {
                    let a = args
                        .first()
                        .ok_or_else(|| err(format!("{} needs an argument", func.as_str())))?;
                    let mut inner = self.expr(scope, a)?;
                    inner.signed = *func == SystemFunction::Signed;
                    inner
                }
                SystemFunction::Clog2 => {
                    let a = args
                        .first()
                        .ok_or_else(|| err("$clog2 needs an argument"))?;
                    let v = const_eval(a, &scope.checked.params)
                        .map_err(|d| err(format!("$clog2: {}", d.message)))?;
                    RExpr::constant(Bits::from_u64(32, cascade_verilog::typecheck::clog2(&v)))
                }
            },
        })
    }

    /// Resolves the base of a select to `(var, optional array index expr)`.
    fn select_base(
        &mut self,
        scope: &Scope,
        base: &Expr,
    ) -> FrontendResult<(VarId, Option<RExpr>)> {
        match base {
            Expr::Ident(name) => {
                if self.symbol(scope, name)?.kind == SymbolKind::Parameter {
                    return Err(err(format!("cannot select into parameter `{name}`")));
                }
                Ok((scope.names[name], None))
            }
            Expr::Hier(path) => {
                let (id, _, _) = self.resolve_path(scope, path)?;
                Ok((id, None))
            }
            Expr::Index { base: inner, index } => {
                // `mem[i]` as the base of a further select.
                let (var, prior) = self.select_base(scope, inner)?;
                if prior.is_some() {
                    return Err(err("multi-dimensional arrays are not supported"));
                }
                let info = &self.vars[var.0 as usize];
                if !info.is_array() {
                    return Err(err(format!(
                        "`{}` is not an array; nested select is invalid",
                        info.name
                    )));
                }
                let sym = self.base_symbol(scope, inner)?;
                let idx = self.expr(scope, index)?;
                let mapped = self.map_array_offset(sym, idx);
                Ok((var, Some(mapped)))
            }
            _ => Err(err("unsupported select base expression")),
        }
    }

    /// The frontend symbol for a select base (for range mapping).
    fn base_symbol<'s>(&self, scope: &'s Scope, base: &Expr) -> FrontendResult<&'s Symbol> {
        match base {
            Expr::Ident(name) => self.symbol(scope, name),
            Expr::Hier(path) => {
                let (_, owner, leaf) = self.resolve_path(scope, path)?;
                owner
                    .checked
                    .symbols
                    .get(&leaf)
                    .ok_or_else(|| err(format!("unknown symbol `{leaf}`")))
            }
            Expr::Index { base: inner, .. } => self.base_symbol(scope, inner),
            _ => Err(err("unsupported select base expression")),
        }
    }

    fn word_expr(&self, var: VarId, elem_index: Option<RExpr>) -> RExpr {
        let info = &self.vars[var.0 as usize];
        match elem_index {
            None => RExpr {
                width: info.width,
                signed: info.signed,
                kind: RExprKind::Var(var),
            },
            Some(index) => RExpr {
                width: info.width,
                signed: info.signed,
                kind: RExprKind::ArrayWord {
                    var,
                    index: Box::new(index),
                },
            },
        }
    }

    fn index_expr(&mut self, scope: &Scope, base: &Expr, index: &Expr) -> FrontendResult<RExpr> {
        let (var, elem_index) = self.select_base(scope, base)?;
        let info = self.vars[var.0 as usize].clone();
        let sym = self.base_symbol(scope, base)?;
        if info.is_array() && elem_index.is_none() {
            // Array word read.
            let idx = self.expr(scope, index)?;
            let mapped = self.map_array_offset(sym, idx);
            return Ok(RExpr {
                width: info.width,
                signed: info.signed,
                kind: RExprKind::ArrayWord {
                    var,
                    index: Box::new(mapped),
                },
            });
        }
        // Bit select (possibly of an array word).
        let idx = self.expr(scope, index)?;
        let mapped = self.map_bit_offset(sym, idx);
        let base_expr = self.word_expr(var, elem_index);
        Ok(RExpr {
            width: 1,
            signed: false,
            kind: RExprKind::Slice {
                base: Box::new(base_expr),
                offset: Box::new(mapped),
                width: 1,
            },
        })
    }

    /// Maps a source bit index to a zero-based LSB offset.
    fn map_bit_offset(&self, sym: &Symbol, index: RExpr) -> RExpr {
        if sym.msb >= sym.lsb {
            if sym.lsb == 0 {
                index
            } else {
                binary_sub(index, sym.lsb as u32)
            }
        } else {
            // Ascending range [lsb-declared-as-msb..]: offset = lsb - index.
            binary_rsub(sym.lsb as u64, index)
        }
    }

    /// Maps a source array index to a zero-based word offset.
    fn map_array_offset(&self, sym: &Symbol, index: RExpr) -> RExpr {
        let Some((a, b)) = sym.array else {
            return index;
        };
        let lo = a.min(b);
        if lo == 0 {
            index
        } else {
            binary_sub(index, lo as u32)
        }
    }

    fn expr_as_lvalue(&mut self, scope: &Scope, e: &Expr) -> FrontendResult<RLValue> {
        let lv = match e {
            Expr::Ident(name) => LValue::Ident(name.clone()),
            Expr::Index { base, index } => match base.as_ref() {
                Expr::Ident(name) => LValue::Index {
                    base: name.clone(),
                    index: (**index).clone(),
                },
                _ => return Err(err("connection target must be a simple name or select")),
            },
            Expr::Part { base, msb, lsb } => match base.as_ref() {
                Expr::Ident(name) => LValue::Part {
                    base: name.clone(),
                    msb: (**msb).clone(),
                    lsb: (**lsb).clone(),
                },
                _ => return Err(err("connection target must be a simple name or select")),
            },
            Expr::Concat(parts) => {
                let mut lvs = Vec::new();
                for p in parts {
                    lvs.push(self.expr_as_lvalue(scope, p)?);
                }
                return Ok(RLValue::Concat(lvs));
            }
            _ => return Err(err("output connection target is not assignable")),
        };
        self.lvalue(scope, &lv)
    }

    // ------------------------------------------------------------------
    // LValues
    // ------------------------------------------------------------------

    fn lvalue(&mut self, scope: &Scope, lv: &LValue) -> FrontendResult<RLValue> {
        Ok(match lv {
            LValue::Ident(name) => RLValue::Var(scope.names[name]),
            LValue::Hier(path) => {
                let (id, _, _) = self.resolve_path(scope, path)?;
                RLValue::Var(id)
            }
            LValue::Index { base, index } => {
                let var = scope.names[base];
                let is_array = self.vars[var.0 as usize].is_array();
                let idx = self.expr(scope, index)?;
                let sym = self.symbol(scope, base)?;
                if is_array {
                    let mapped = self.map_array_offset(sym, idx);
                    RLValue::ArrayWord { var, index: mapped }
                } else {
                    let mapped = self.map_bit_offset(sym, idx);
                    RLValue::Range {
                        var,
                        offset: mapped,
                        width: 1,
                    }
                }
            }
            LValue::Part { base, msb, lsb } => {
                let sym = self.symbol(scope, base)?;
                let var = scope.names[base];
                let m = const_eval(msb, &scope.checked.params)
                    .map_err(|d| err(format!("part-select bound: {}", d.message)))?
                    .to_i64();
                let l = const_eval(lsb, &scope.checked.params)
                    .map_err(|d| err(format!("part-select bound: {}", d.message)))?
                    .to_i64();
                let off_m = sym
                    .bit_offset(m)
                    .ok_or_else(|| err(format!("part-select bound {m} out of range")))?;
                let off_l = sym
                    .bit_offset(l)
                    .ok_or_else(|| err(format!("part-select bound {l} out of range")))?;
                let lo = off_m.min(off_l);
                RLValue::Range {
                    var,
                    offset: RExpr::constant(Bits::from_u64(32, lo as u64)),
                    width: off_m.abs_diff(off_l) + 1,
                }
            }
            LValue::IndexedPart {
                base,
                offset,
                width,
                ascending,
            } => {
                let sym = self.symbol(scope, base)?;
                let var = scope.names[base];
                let w = const_eval(width, &scope.checked.params)
                    .map_err(|d| err(format!("part-select width: {}", d.message)))?
                    .to_u64() as u32;
                let off = self.expr(scope, offset)?;
                let lsb_index = if *ascending {
                    off
                } else {
                    binary_sub(off, w - 1)
                };
                let sym2 = self.symbol(scope, base)?;
                let mapped = self.map_bit_offset(sym2, lsb_index);
                let _ = sym;
                RLValue::Range {
                    var,
                    offset: mapped,
                    width: w,
                }
            }
            LValue::Concat(parts) => {
                let rs: Vec<RLValue> = parts
                    .iter()
                    .map(|p| self.lvalue(scope, p))
                    .collect::<Result<_, _>>()?;
                RLValue::Concat(rs)
            }
            LValue::IndexThenPart {
                base,
                index,
                msb,
                lsb,
            } => {
                let sym = self.symbol(scope, base)?;
                let var = scope.names[base];
                let idx = self.expr(scope, index)?;
                let m = const_eval(msb, &scope.checked.params)
                    .map_err(|d| err(format!("part-select bound: {}", d.message)))?
                    .to_i64();
                let l = const_eval(lsb, &scope.checked.params)
                    .map_err(|d| err(format!("part-select bound: {}", d.message)))?
                    .to_i64();
                let off_m = sym
                    .bit_offset(m)
                    .ok_or_else(|| err(format!("part-select bound {m} out of range")))?;
                let off_l = sym
                    .bit_offset(l)
                    .ok_or_else(|| err(format!("part-select bound {l} out of range")))?;
                let lo = off_m.min(off_l);
                let sym2 = self.symbol(scope, base)?;
                let mapped = self.map_array_offset(sym2, idx);
                RLValue::ArrayWordRange {
                    var,
                    index: mapped,
                    offset: RExpr::constant(Bits::from_u64(32, lo as u64)),
                    width: off_m.abs_diff(off_l) + 1,
                }
            }
        })
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn stmt(&mut self, scope: &Scope, s: &Stmt) -> FrontendResult<RStmt> {
        Ok(match s {
            Stmt::Block { stmts, .. } => RStmt::Block(
                stmts
                    .iter()
                    .map(|st| self.stmt(scope, st))
                    .collect::<Result<_, _>>()?,
            ),
            Stmt::Blocking { lhs, rhs, .. } => RStmt::Blocking {
                lhs: self.lvalue(scope, lhs)?,
                rhs: self.expr(scope, rhs)?,
            },
            Stmt::NonBlocking { lhs, rhs, .. } => RStmt::NonBlocking {
                lhs: self.lvalue(scope, lhs)?,
                rhs: self.expr(scope, rhs)?,
            },
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => RStmt::If {
                cond: self.expr(scope, cond)?,
                then_branch: Box::new(self.stmt(scope, then_branch)?),
                else_branch: match else_branch {
                    Some(e) => Some(Box::new(self.stmt(scope, e)?)),
                    None => None,
                },
            },
            Stmt::Case {
                kind,
                scrutinee,
                arms,
                default,
                ..
            } => RStmt::Case {
                kind: *kind,
                scrutinee: self.expr(scope, scrutinee)?,
                arms: arms
                    .iter()
                    .map(|arm| {
                        let labels = arm
                            .labels
                            .iter()
                            .map(|l| {
                                Ok(match l {
                                    Expr::MaskedLiteral { value, care } => RCaseLabel {
                                        value: RExpr::constant(value.clone()),
                                        care: Some(care.clone()),
                                    },
                                    other => RCaseLabel {
                                        value: self.expr(scope, other)?,
                                        care: None,
                                    },
                                })
                            })
                            .collect::<FrontendResult<Vec<_>>>()?;
                        Ok(RCaseArm {
                            labels,
                            body: self.stmt(scope, &arm.body)?,
                        })
                    })
                    .collect::<FrontendResult<Vec<_>>>()?,
                default: match default {
                    Some(d) => Some(Box::new(self.stmt(scope, d)?)),
                    None => None,
                },
            },
            Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => RStmt::For {
                init: Box::new(self.stmt(scope, init)?),
                cond: self.expr(scope, cond)?,
                step: Box::new(self.stmt(scope, step)?),
                body: Box::new(self.stmt(scope, body)?),
            },
            Stmt::While { cond, body, .. } => RStmt::While {
                cond: self.expr(scope, cond)?,
                body: Box::new(self.stmt(scope, body)?),
            },
            Stmt::Repeat { count, body, .. } => RStmt::Repeat {
                count: self.expr(scope, count)?,
                body: Box::new(self.stmt(scope, body)?),
            },
            Stmt::Forever { .. } => {
                return Err(err(
                    "`forever` requires delay control, which the virtual-clock model does not support",
                ));
            }
            Stmt::SystemTask { task, args, .. } => RStmt::SystemTask {
                task: *task,
                args: args
                    .iter()
                    .map(|a| match a {
                        Expr::Str(s) => Ok(RTaskArg::Str(s.clone())),
                        other => Ok(RTaskArg::Expr(self.expr(scope, other)?)),
                    })
                    .collect::<FrontendResult<Vec<_>>>()?,
            },
            Stmt::Null => RStmt::Null,
        })
    }
}

/// `expr - k` as a 32-bit-or-wider subtraction.
fn binary_sub(e: RExpr, k: u32) -> RExpr {
    let w = e.width.max(32);
    RExpr {
        width: w,
        signed: false,
        kind: RExprKind::Binary {
            op: cascade_verilog::ast::BinaryOp::Sub,
            lhs: Box::new(e),
            rhs: Box::new(RExpr::constant(Bits::from_u64(w, k as u64))),
        },
    }
}

/// `k - expr`.
fn binary_rsub(k: u64, e: RExpr) -> RExpr {
    let w = e.width.max(32);
    RExpr {
        width: w,
        signed: false,
        kind: RExprKind::Binary {
            op: cascade_verilog::ast::BinaryOp::Sub,
            lhs: Box::new(RExpr::constant(Bits::from_u64(w, k))),
            rhs: Box::new(e),
        },
    }
}

/// Collects variables read by an expression.
pub fn collect_reads(e: &RExpr, out: &mut Vec<VarId>) {
    match &e.kind {
        RExprKind::Const(_) | RExprKind::Time | RExprKind::Random => {}
        RExprKind::Var(v) => out.push(*v),
        RExprKind::ArrayWord { var, index } => {
            out.push(*var);
            collect_reads(index, out);
        }
        RExprKind::Slice { base, offset, .. } => {
            collect_reads(base, out);
            collect_reads(offset, out);
        }
        RExprKind::Unary { operand, .. } => collect_reads(operand, out),
        RExprKind::Binary { lhs, rhs, .. } => {
            collect_reads(lhs, out);
            collect_reads(rhs, out);
        }
        RExprKind::Ternary {
            cond,
            then_expr,
            else_expr,
        } => {
            collect_reads(cond, out);
            collect_reads(then_expr, out);
            collect_reads(else_expr, out);
        }
        RExprKind::Concat(parts) => {
            for p in parts {
                collect_reads(p, out);
            }
        }
        RExprKind::Repeat { inner, .. } => collect_reads(inner, out),
    }
}

/// Collects variables read anywhere in a statement (including selector
/// expressions of lvalues).
pub fn collect_reads_stmt(s: &RStmt, out: &mut Vec<VarId>) {
    fn lv_reads(lv: &RLValue, out: &mut Vec<VarId>) {
        match lv {
            RLValue::Var(_) => {}
            RLValue::Range { offset, .. } => collect_reads(offset, out),
            RLValue::ArrayWord { index, .. } => collect_reads(index, out),
            RLValue::ArrayWordRange { index, offset, .. } => {
                collect_reads(index, out);
                collect_reads(offset, out);
            }
            RLValue::Concat(parts) => {
                for p in parts {
                    lv_reads(p, out);
                }
            }
        }
    }
    match s {
        RStmt::Block(stmts) => {
            for st in stmts {
                collect_reads_stmt(st, out);
            }
        }
        RStmt::Blocking { lhs, rhs } | RStmt::NonBlocking { lhs, rhs } => {
            lv_reads(lhs, out);
            collect_reads(rhs, out);
        }
        RStmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            collect_reads(cond, out);
            collect_reads_stmt(then_branch, out);
            if let Some(e) = else_branch {
                collect_reads_stmt(e, out);
            }
        }
        RStmt::Case {
            scrutinee,
            arms,
            default,
            ..
        } => {
            collect_reads(scrutinee, out);
            for arm in arms {
                for l in &arm.labels {
                    collect_reads(&l.value, out);
                }
                collect_reads_stmt(&arm.body, out);
            }
            if let Some(d) = default {
                collect_reads_stmt(d, out);
            }
        }
        RStmt::For {
            init,
            cond,
            step,
            body,
        } => {
            collect_reads_stmt(init, out);
            collect_reads(cond, out);
            collect_reads_stmt(step, out);
            collect_reads_stmt(body, out);
        }
        RStmt::While { cond, body } => {
            collect_reads(cond, out);
            collect_reads_stmt(body, out);
        }
        RStmt::Repeat { count, body } => {
            collect_reads(count, out);
            collect_reads_stmt(body, out);
        }
        RStmt::SystemTask { args, .. } => {
            for a in args {
                if let RTaskArg::Expr(e) = a {
                    collect_reads(e, out);
                }
            }
        }
        RStmt::Null => {}
    }
}
