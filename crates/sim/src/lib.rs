//! Event-driven Verilog simulator implementing the reference scheduling
//! algorithm (Cascade paper Fig. 2).
//!
//! This crate is two things at once:
//!
//! 1. the substrate for Cascade's **software engines** — a subprogram's AST
//!    is elaborated and interpreted here while the FPGA toolchain compiles
//!    in the background, and
//! 2. the **iVerilog-style baseline** measured in the paper's Fig. 11 — a
//!    full hierarchical design can be elaborated and simulated directly.
//!
//! # Examples
//!
//! ```
//! use cascade_sim::{elaborate, library_from_source, SimEvent, Simulator};
//!
//! let lib = library_from_source(
//!     "module Blink(input wire clk, output wire led);\n\
//!      reg state = 0;\n\
//!      always @(posedge clk) begin\n\
//!        state <= ~state;\n\
//!        $display(\"tick %d\", $time);\n\
//!      end\n\
//!      assign led = state;\nendmodule",
//! )?;
//! let design = elaborate("Blink", &lib, &Default::default())?;
//! let mut sim = Simulator::new(design.into());
//! sim.initialize()?;
//! sim.tick("clk")?;
//! assert!(sim.peek("led").to_bool());
//! assert!(matches!(&sim.drain_events()[0], SimEvent::Display(s) if s == "tick 0"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod compile;
mod elaborate;
mod exec;
mod rir;
#[allow(clippy::module_inception)]
mod sim;
mod swsim;
mod vcd;

pub use compile::{SwProgram, SwProgramStats};
pub use elaborate::{
    collect_reads, collect_reads_stmt, elaborate, elaborate_leaf, library_from_source, Design,
};
pub use exec::{CompiledSim, SwProfileReport};
pub use rir::{
    Process, RCaseArm, RCaseLabel, RExpr, RExprKind, RLValue, RStmt, RTaskArg, Sens, VarClass,
    VarId, VarInfo,
};
pub use sim::{format_verilog, SimError, SimEvent, Simulator};
pub use swsim::SwSim;
pub use vcd::{PortVcd, VcdWriter};

#[cfg(test)]
mod tests;
