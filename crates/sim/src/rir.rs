//! The resolved IR the simulator executes.
//!
//! Elaboration lowers the frontend AST into this form: every name is a
//! [`VarId`], every select is rewritten into zero-based LSB offsets, every
//! parameter is a constant, and every expression node carries its
//! self-determined width and signedness (the two attributes Verilog's
//! context-determined sizing rules need).

use cascade_bits::Bits;
use cascade_verilog::ast::{BinaryOp, CaseKind, Edge, SystemTask, UnaryOp};

/// Index of a variable in a [`Design`](crate::Design)'s variable table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

/// Index of a process in a design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcId(pub u32);

/// Storage class of a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarClass {
    /// Driven by continuous assignment or port connection.
    Wire,
    /// Procedural state (reg / integer).
    Reg,
}

/// A resolved variable.
#[derive(Debug, Clone)]
pub struct VarInfo {
    /// Fully qualified hierarchical name, e.g. `main.r.y`.
    pub name: String,
    pub class: VarClass,
    pub width: u32,
    pub signed: bool,
    /// Number of array words; 1 for scalars.
    pub array_len: u64,
    /// Initial value for state elements.
    pub init: Option<Bits>,
    /// Whether this variable is a root-level input (externally poked).
    pub is_input: bool,
    /// Whether this variable is a root-level output port.
    pub is_output: bool,
}

impl VarInfo {
    /// Whether this variable is a memory (array).
    pub fn is_array(&self) -> bool {
        self.array_len > 1
    }
}

/// A resolved expression with precomputed width/sign attributes.
#[derive(Debug, Clone)]
pub struct RExpr {
    /// Self-determined width in bits.
    pub width: u32,
    /// Whether the expression is signed under Verilog's propagation rules.
    pub signed: bool,
    pub kind: RExprKind,
}

/// Expression node kinds.
#[derive(Debug, Clone)]
pub enum RExprKind {
    Const(Bits),
    Var(VarId),
    /// `mem[index]` where the variable is an array; `index` is a zero-based
    /// word offset expression.
    ArrayWord {
        var: VarId,
        index: Box<RExpr>,
    },
    /// Bit-range extraction at a zero-based LSB `offset`.
    Slice {
        base: Box<RExpr>,
        offset: Box<RExpr>,
        width: u32,
    },
    Unary {
        op: UnaryOp,
        operand: Box<RExpr>,
    },
    Binary {
        op: BinaryOp,
        lhs: Box<RExpr>,
        rhs: Box<RExpr>,
    },
    Ternary {
        cond: Box<RExpr>,
        then_expr: Box<RExpr>,
        else_expr: Box<RExpr>,
    },
    Concat(Vec<RExpr>),
    Repeat {
        count: u32,
        inner: Box<RExpr>,
    },
    /// `$time` (the simulator's step counter).
    Time,
    /// `$random` (deterministic LCG).
    Random,
}

impl RExpr {
    /// A constant node.
    pub fn constant(value: Bits) -> RExpr {
        RExpr {
            width: value.width(),
            signed: false,
            kind: RExprKind::Const(value),
        }
    }
}

/// A resolved assignment target.
#[derive(Debug, Clone)]
pub enum RLValue {
    /// The whole variable.
    Var(VarId),
    /// A bit range at a dynamic zero-based offset.
    Range {
        var: VarId,
        offset: RExpr,
        width: u32,
    },
    /// An array word.
    ArrayWord { var: VarId, index: RExpr },
    /// A bit range of an array word.
    ArrayWordRange {
        var: VarId,
        index: RExpr,
        offset: RExpr,
        width: u32,
    },
    /// `{a, b} = ...` — parts listed MSB-first as written.
    Concat(Vec<RLValue>),
}

impl RLValue {
    /// Total width of the target in bits (array words use element width).
    pub fn width(&self, vars: &[VarInfo]) -> u32 {
        match self {
            RLValue::Var(v) => vars[v.0 as usize].width,
            RLValue::Range { width, .. } | RLValue::ArrayWordRange { width, .. } => *width,
            RLValue::ArrayWord { var, .. } => vars[var.0 as usize].width,
            RLValue::Concat(parts) => parts.iter().map(|p| p.width(vars)).sum(),
        }
    }

    /// The variables written by this lvalue.
    pub fn targets(&self) -> Vec<VarId> {
        match self {
            RLValue::Var(v)
            | RLValue::Range { var: v, .. }
            | RLValue::ArrayWord { var: v, .. }
            | RLValue::ArrayWordRange { var: v, .. } => vec![*v],
            RLValue::Concat(parts) => parts.iter().flat_map(|p| p.targets()).collect(),
        }
    }
}

/// A case label: value plus care mask for `casez`/`casex` wildcards.
#[derive(Debug, Clone)]
pub struct RCaseLabel {
    pub value: RExpr,
    /// `None` for exact match.
    pub care: Option<Bits>,
}

/// A resolved case arm.
#[derive(Debug, Clone)]
pub struct RCaseArm {
    pub labels: Vec<RCaseLabel>,
    pub body: RStmt,
}

/// Resolved statements.
#[derive(Debug, Clone)]
pub enum RStmt {
    Block(Vec<RStmt>),
    /// Blocking assignment: takes effect immediately.
    Blocking {
        lhs: RLValue,
        rhs: RExpr,
    },
    /// Nonblocking assignment: scheduled as an update event.
    NonBlocking {
        lhs: RLValue,
        rhs: RExpr,
    },
    If {
        cond: RExpr,
        then_branch: Box<RStmt>,
        else_branch: Option<Box<RStmt>>,
    },
    Case {
        kind: CaseKind,
        scrutinee: RExpr,
        arms: Vec<RCaseArm>,
        default: Option<Box<RStmt>>,
    },
    For {
        init: Box<RStmt>,
        cond: RExpr,
        step: Box<RStmt>,
        body: Box<RStmt>,
    },
    While {
        cond: RExpr,
        body: Box<RStmt>,
    },
    Repeat {
        count: RExpr,
        body: Box<RStmt>,
    },
    SystemTask {
        task: SystemTask,
        args: Vec<RTaskArg>,
    },
    Null,
}

/// A `$display`-family argument: a format string or an expression.
#[derive(Debug, Clone)]
pub enum RTaskArg {
    Str(String),
    Expr(RExpr),
}

/// Sensitivity of a process to one variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sens {
    pub var: VarId,
    /// `None` = level sensitive (any change).
    pub edge: Option<Edge>,
}

/// An executable process.
#[derive(Debug, Clone)]
pub enum Process {
    /// A continuous assignment (or lowered port connection).
    Assign { lhs: RLValue, rhs: RExpr },
    /// An `always @(...)` block.
    Always { sens: Vec<Sens>, body: RStmt },
    /// An `initial` block (runs once at time zero).
    Initial { body: RStmt },
}
