//! A small in-tree CDCL SAT solver.
//!
//! The workspace is dependency-free, so the bounded equivalence checker
//! carries its own solver: two-watched-literal propagation, first-UIP
//! conflict learning with activity-ordered (VSIDS-style) decisions,
//! geometric restarts, and a conflict budget so a pathological miter
//! degrades to "unknown" instead of hanging the test suite. No clause
//! deletion — BMC instances here are bounded and short-lived.
//!
//! Literals are DIMACS-style non-zero `i32`s: variable `v` is `v`
//! (positive) or `-v` (negated). Variables are 1-based.

/// A DIMACS-style literal.
pub type Lit = i32;

/// Solver outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable; query the model with [`Solver::model_value`].
    Sat,
    /// Proven unsatisfiable.
    Unsat,
    /// Conflict budget exhausted.
    Unknown,
}

/// Search counters, exposed for benchmark reporting.
#[derive(Debug, Clone, Copy, Default)]
pub struct SatStats {
    pub decisions: u64,
    pub conflicts: u64,
    pub propagations: u64,
    pub learned: u64,
}

const UNASSIGNED: i8 = 0;

/// Watch-list index of a literal (2v for positive, 2v+1 for negative).
fn widx(l: Lit) -> usize {
    let v = l.unsigned_abs() as usize;
    2 * v + usize::from(l < 0)
}

pub struct Solver {
    nvars: usize,
    /// All clauses, original then learned.
    clauses: Vec<Vec<Lit>>,
    /// For each literal, the clauses watching it.
    watches: Vec<Vec<u32>>,
    /// Variable assignment: 0 unknown, 1 true, -1 false.
    assign: Vec<i8>,
    /// Decision level of each variable.
    level: Vec<u32>,
    /// Clause that implied each variable (`u32::MAX` for decisions).
    reason: Vec<u32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    /// VSIDS activity per variable, with a simple lazy max-scan order.
    activity: Vec<f64>,
    act_inc: f64,
    /// Saved phase per variable.
    phase: Vec<bool>,
    seen: Vec<bool>,
    /// Set when an empty clause is added.
    unsat: bool,
    pub stats: SatStats,
}

impl Solver {
    pub fn new() -> Self {
        Solver {
            nvars: 0,
            clauses: Vec::new(),
            watches: vec![Vec::new(); 2],
            assign: vec![UNASSIGNED],
            level: vec![0],
            reason: vec![u32::MAX],
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: vec![0.0],
            act_inc: 1.0,
            phase: vec![false],
            seen: vec![false],
            unsat: false,
            stats: SatStats::default(),
        }
    }

    /// Allocates a fresh variable, returning its positive literal.
    pub fn new_var(&mut self) -> Lit {
        self.nvars += 1;
        self.assign.push(UNASSIGNED);
        self.level.push(0);
        self.reason.push(u32::MAX);
        self.activity.push(0.0);
        self.phase.push(false);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.nvars as Lit
    }

    pub fn num_vars(&self) -> usize {
        self.nvars
    }

    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    fn value(&self, l: Lit) -> i8 {
        let v = self.assign[l.unsigned_abs() as usize];
        if l < 0 {
            -v
        } else {
            v
        }
    }

    /// Adds a clause. Must be called before `solve` (no incremental use).
    pub fn add_clause(&mut self, lits: &[Lit]) {
        if self.unsat {
            return;
        }
        // Dedupe and drop tautologies.
        let mut c: Vec<Lit> = Vec::with_capacity(lits.len());
        for &l in lits {
            debug_assert!(l != 0 && l.unsigned_abs() as usize <= self.nvars);
            if c.contains(&-l) {
                return; // tautology
            }
            if !c.contains(&l) {
                c.push(l);
            }
        }
        match c.len() {
            0 => self.unsat = true,
            1 => {
                match self.value(c[0]) {
                    -1 => self.unsat = true,
                    0 => self.enqueue(c[0], u32::MAX),
                    _ => {}
                };
            }
            _ => {
                let ci = self.clauses.len() as u32;
                self.watches[widx(c[0])].push(ci);
                self.watches[widx(c[1])].push(ci);
                self.clauses.push(c);
            }
        }
    }

    fn enqueue(&mut self, l: Lit, reason: u32) {
        let v = l.unsigned_abs() as usize;
        self.assign[v] = if l > 0 { 1 } else { -1 };
        self.level[v] = self.trail_lim.len() as u32;
        self.reason[v] = reason;
        self.phase[v] = l > 0;
        self.trail.push(l);
    }

    /// Unit propagation; returns a conflicting clause index or `None`.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = -p;
            let mut ws = std::mem::take(&mut self.watches[widx(false_lit)]);
            let mut i = 0;
            while i < ws.len() {
                let ci = ws[i];
                // Normalize: the falsified watch goes to slot 1.
                if self.clauses[ci as usize][0] == false_lit {
                    self.clauses[ci as usize].swap(0, 1);
                }
                let first = self.clauses[ci as usize][0];
                if self.value(first) == 1 {
                    i += 1;
                    continue; // already satisfied
                }
                // Look for a new literal to watch.
                let mut moved = false;
                for k in 2..self.clauses[ci as usize].len() {
                    let lk = self.clauses[ci as usize][k];
                    if self.value(lk) != -1 {
                        self.clauses[ci as usize].swap(1, k);
                        self.watches[widx(lk)].push(ci);
                        ws.swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                if self.value(first) == -1 {
                    // Conflict: restore the list wholesale. Processed
                    // entries come back too — every entry still watches
                    // false_lit except those already moved away.
                    self.watches[widx(false_lit)].append(&mut ws);
                    return Some(ci);
                }
                // Unit: imply `first`.
                self.enqueue(first, ci);
                i += 1;
            }
            self.watches[widx(false_lit)] = ws;
        }
        None
    }

    fn bump(&mut self, v: usize) {
        self.activity[v] += self.act_inc;
        if self.activity[v] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.act_inc *= 1e-100;
        }
    }

    /// First-UIP learning. Returns (learnt clause, backjump level); the
    /// asserting literal is `learnt[0]`.
    fn analyze(&mut self, mut confl: u32) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![0]; // slot 0 for the asserting lit
        let mut counter = 0usize;
        let mut p: Lit = 0;
        let mut idx = self.trail.len();
        let cur_level = self.trail_lim.len() as u32;
        loop {
            let start = usize::from(p != 0);
            for k in start..self.clauses[confl as usize].len() {
                let q = self.clauses[confl as usize][k];
                let v = q.unsigned_abs() as usize;
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump(v);
                    if self.level[v] >= cur_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Pick the next trail literal seen in the conflict.
            loop {
                idx -= 1;
                p = self.trail[idx];
                if self.seen[p.unsigned_abs() as usize] {
                    break;
                }
            }
            let v = p.unsigned_abs() as usize;
            self.seen[v] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = -p;
                break;
            }
            confl = self.reason[v];
        }
        for &l in &learnt {
            self.seen[l.unsigned_abs() as usize] = false;
        }
        let bj = learnt[1..]
            .iter()
            .map(|l| self.level[l.unsigned_abs() as usize])
            .max()
            .unwrap_or(0);
        // Watch an asserting-level literal in slot 1.
        if learnt.len() > 1 {
            let pos = 1 + learnt[1..]
                .iter()
                .position(|l| self.level[l.unsigned_abs() as usize] == bj)
                .expect("backjump literal");
            learnt.swap(1, pos);
        }
        (learnt, bj)
    }

    fn cancel_until(&mut self, lvl: u32) {
        while self.trail_lim.len() as u32 > lvl {
            let lim = self.trail_lim.pop().expect("level");
            for &l in &self.trail[lim..] {
                let v = l.unsigned_abs() as usize;
                self.assign[v] = UNASSIGNED;
            }
            self.trail.truncate(lim);
        }
        self.qhead = self.trail.len();
    }

    fn decide(&mut self) -> Option<Lit> {
        let mut best = 0usize;
        let mut best_act = -1.0f64;
        for v in 1..=self.nvars {
            if self.assign[v] == UNASSIGNED && self.activity[v] > best_act {
                best = v;
                best_act = self.activity[v];
            }
        }
        if best == 0 {
            return None;
        }
        Some(if self.phase[best] {
            best as Lit
        } else {
            -(best as Lit)
        })
    }

    /// Solves with a conflict budget (`0` = unlimited).
    pub fn solve(&mut self, max_conflicts: u64) -> SatResult {
        if self.unsat {
            return SatResult::Unsat;
        }
        if self.propagate().is_some() {
            return SatResult::Unsat;
        }
        let mut restart_at = 100u64;
        let mut conflicts_here = 0u64;
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_here += 1;
                if max_conflicts > 0 && self.stats.conflicts >= max_conflicts {
                    return SatResult::Unknown;
                }
                if self.trail_lim.is_empty() {
                    return SatResult::Unsat;
                }
                let (learnt, bj) = self.analyze(confl);
                self.cancel_until(bj);
                self.stats.learned += 1;
                if learnt.len() == 1 {
                    self.enqueue(learnt[0], u32::MAX);
                } else {
                    let ci = self.clauses.len() as u32;
                    self.watches[widx(learnt[0])].push(ci);
                    self.watches[widx(learnt[1])].push(ci);
                    let assert_lit = learnt[0];
                    self.clauses.push(learnt);
                    self.enqueue(assert_lit, ci);
                }
                self.act_inc *= 1.0 / 0.95;
            } else if conflicts_here >= restart_at {
                conflicts_here = 0;
                restart_at = restart_at + restart_at / 2;
                self.cancel_until(0);
            } else {
                match self.decide() {
                    None => return SatResult::Sat,
                    Some(l) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(l, u32::MAX);
                    }
                }
            }
        }
    }

    /// Model value of a literal after `Sat` (unassigned vars read false).
    pub fn model_value(&self, l: Lit) -> bool {
        self.value(l) == 1
    }
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars(s: &mut Solver, n: usize) -> Vec<Lit> {
        (0..n).map(|_| s.new_var()).collect()
    }

    #[test]
    fn simple_sat_and_model() {
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        s.add_clause(&[v[0], v[1]]);
        s.add_clause(&[-v[0], v[2]]);
        s.add_clause(&[-v[1]]);
        assert_eq!(s.solve(0), SatResult::Sat);
        // v1 false forces v0, which forces v2.
        assert!(s.model_value(v[0]));
        assert!(!s.model_value(v[1]));
        assert!(s.model_value(v[2]));
    }

    #[test]
    fn simple_unsat() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        s.add_clause(&[v[0], v[1]]);
        s.add_clause(&[v[0], -v[1]]);
        s.add_clause(&[-v[0], v[1]]);
        s.add_clause(&[-v[0], -v[1]]);
        assert_eq!(s.solve(0), SatResult::Unsat);
    }

    /// Pigeonhole: 4 pigeons, 3 holes. Small but requires real search.
    #[test]
    fn pigeonhole_unsat() {
        let mut s = Solver::new();
        const P: usize = 4;
        const H: usize = 3;
        let mut x = [[0 as Lit; H]; P];
        for p in x.iter_mut() {
            for h in p.iter_mut() {
                *h = s.new_var();
            }
        }
        for p in &x {
            s.add_clause(&p[..]); // each pigeon in some hole
        }
        for p1 in 0..P {
            for p2 in p1 + 1..P {
                for (&a, &b) in x[p1].iter().zip(&x[p2]) {
                    s.add_clause(&[-a, -b]);
                }
            }
        }
        assert_eq!(s.solve(0), SatResult::Unsat);
    }

    /// XOR chain satisfiable instance exercises learning + restarts.
    #[test]
    fn xor_chain_sat() {
        let mut s = Solver::new();
        let v = vars(&mut s, 24);
        // v[i] ^ v[i+1] = 1 for all i (alternating assignment exists).
        for i in 0..v.len() - 1 {
            s.add_clause(&[v[i], v[i + 1]]);
            s.add_clause(&[-v[i], -v[i + 1]]);
        }
        assert_eq!(s.solve(0), SatResult::Sat);
        for i in 0..v.len() - 1 {
            assert!(s.model_value(v[i]) != s.model_value(v[i + 1]));
        }
    }
}
