//! Seeded design specifications: the fuzzer's structured representation of
//! a synthesizable Verilog module.
//!
//! The fuzzer does not mutate source text. It generates, mutates, and
//! shrinks a [`DesignSpec`] — a small AST over the RIR subset every engine
//! supports (16-bit regs, wires, one clocked block with `if`/`case`,
//! arithmetic/compare/shift expressions, an 8-word memory, a FIFO-style
//! submodule instance, `$display`, `$finish`) — and renders it to Verilog
//! on demand. Structure makes the mutation operators type-correct by
//! construction and lets the delta-debugging shrinker delete statements
//! and hoist subexpressions without ever producing an unparseable file.
//!
//! The grammar deliberately stresses the shapes the compiled backends
//! specialize: narrow `case` scrutinees (Lookup cones), compare-feeding
//! muxes (compare/select fusion), shift/or pairs (rotate fusion), and
//! per-lane input-dependent `$finish` (batch commit-skip masks).

use cascade_bits::Prng;

/// Binary operators in the synthesizable tier (no division: the BMC
/// bit-blaster and the netlist grammar both exclude it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Eq,
    Lt,
}

impl BinOp {
    /// All operators, for generation and mutation.
    pub const ALL: [BinOp; 10] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Shl,
        BinOp::Shr,
        BinOp::Eq,
        BinOp::Lt,
    ];

    fn sym(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::And => "&",
            BinOp::Or => "|",
            BinOp::Xor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::Eq => "==",
            BinOp::Lt => "<",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    Not,
    Neg,
    RedXor,
    LogNot,
}

impl UnOp {
    pub const ALL: [UnOp; 4] = [UnOp::Not, UnOp::Neg, UnOp::RedXor, UnOp::LogNot];

    fn sym(self) -> &'static str {
        match self {
            UnOp::Not => "~",
            UnOp::Neg => "-",
            UnOp::RedXor => "^",
            UnOp::LogNot => "!",
        }
    }
}

/// A leaf that can legally be bit-sliced (Verilog slices identifiers, not
/// arbitrary expressions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Leaf {
    InputA,
    InputB,
    Cc,
    Reg(usize),
}

impl Leaf {
    fn render(self) -> String {
        match self {
            Leaf::InputA => "a".into(),
            Leaf::InputB => "b".into(),
            Leaf::Cc => "cc".into(),
            Leaf::Reg(i) => format!("r{i}"),
        }
    }

    /// Width of the leaf as declared.
    fn width(self) -> u32 {
        match self {
            Leaf::Cc => 8,
            _ => 16,
        }
    }
}

/// An expression over the module's live state.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Lit {
        width: u32,
        value: u64,
    },
    Leaf(Leaf),
    Wire(usize),
    /// FIFO submodule data output (only valid when `fifo` is on).
    FifoDout,
    /// FIFO submodule occupancy (only valid when `fifo` is on).
    FifoCount,
    /// `m[<leaf>[2:0]]` (only valid when `mem` is on).
    MemRead(Leaf),
    /// `<leaf>[hi:lo]`.
    Slice {
        leaf: Leaf,
        hi: u32,
        lo: u32,
    },
    Un(UnOp, Box<Expr>),
    Bin(BinOp, Box<Expr>, Box<Expr>),
    Mux(Box<Expr>, Box<Expr>, Box<Expr>),
    Concat(Box<Expr>, Box<Expr>),
    Repl(u32, Box<Expr>),
}

impl Expr {
    fn render(&self) -> String {
        match self {
            Expr::Lit { width, value } => format!("{width}'h{value:x}"),
            Expr::Leaf(l) => l.render(),
            Expr::Wire(i) => format!("w{i}"),
            Expr::FifoDout => "fd".into(),
            Expr::FifoCount => "fcnt".into(),
            Expr::MemRead(addr) => format!("m[{}[2:0]]", addr.render()),
            Expr::Slice { leaf, hi, lo } => format!("{}[{hi}:{lo}]", leaf.render()),
            Expr::Un(op, e) => format!("({}{})", op.sym(), e.render()),
            Expr::Bin(op, l, r) => format!("({} {} {})", l.render(), op.sym(), r.render()),
            Expr::Mux(c, t, f) => {
                format!("({} ? {} : {})", c.render(), t.render(), f.render())
            }
            Expr::Concat(l, r) => format!("{{{}, {}}}", l.render(), r.render()),
            Expr::Repl(n, e) => format!("{{{n}{{{}}}}}", e.render()),
        }
    }

    /// Calls `f` on every node (including `self`), depth-first.
    pub fn walk_mut(&mut self, f: &mut impl FnMut(&mut Expr)) {
        f(self);
        match self {
            Expr::Un(_, e) | Expr::Repl(_, e) => e.walk_mut(f),
            Expr::Bin(_, l, r) | Expr::Concat(l, r) => {
                l.walk_mut(f);
                r.walk_mut(f);
            }
            Expr::Mux(c, t, e) => {
                c.walk_mut(f);
                t.walk_mut(f);
                e.walk_mut(f);
            }
            _ => {}
        }
    }

    /// Direct children, for the shrinker's hoist pass.
    pub fn children(&self) -> Vec<&Expr> {
        match self {
            Expr::Un(_, e) | Expr::Repl(_, e) => vec![e],
            Expr::Bin(_, l, r) | Expr::Concat(l, r) => vec![l, r],
            Expr::Mux(c, t, e) => vec![c, t, e],
            _ => Vec::new(),
        }
    }
}

/// One statement inside the clocked block.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `r<i> <= rhs;`
    Assign { reg: usize, rhs: Expr },
    /// `r<i>[hi:lo] <= rhs;`
    SliceAssign {
        reg: usize,
        hi: u32,
        lo: u32,
        rhs: Expr,
    },
    /// `m[<addr>[2:0]] <= rhs;` (only valid when `mem` is on).
    MemWrite { addr: Leaf, rhs: Expr },
    If {
        cond: Expr,
        then_: Vec<Stmt>,
        else_: Vec<Stmt>,
    },
    /// `case (<scr>[1:0]) 2'd0 / 2'd1 / default`.
    Case {
        scr: Leaf,
        arm0: Vec<Stmt>,
        arm1: Vec<Stmt>,
        default: Vec<Stmt>,
    },
}

impl Stmt {
    fn render(&self, out: &mut Vec<String>, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            Stmt::Assign { reg, rhs } => out.push(format!("{pad}r{reg} <= {};", rhs.render())),
            Stmt::SliceAssign { reg, hi, lo, rhs } => {
                out.push(format!("{pad}r{reg}[{hi}:{lo}] <= {};", rhs.render()));
            }
            Stmt::MemWrite { addr, rhs } => {
                out.push(format!(
                    "{pad}m[{}[2:0]] <= {};",
                    addr.render(),
                    rhs.render()
                ));
            }
            Stmt::If { cond, then_, else_ } => {
                out.push(format!("{pad}if ({}) begin", cond.render()));
                for s in then_ {
                    s.render(out, indent + 1);
                }
                if else_.is_empty() {
                    out.push(format!("{pad}end"));
                } else {
                    out.push(format!("{pad}end else begin"));
                    for s in else_ {
                        s.render(out, indent + 1);
                    }
                    out.push(format!("{pad}end"));
                }
            }
            Stmt::Case {
                scr,
                arm0,
                arm1,
                default,
            } => {
                out.push(format!("{pad}case ({}[1:0])", scr.render()));
                for (label, arm) in [("2'd0", arm0), ("2'd1", arm1), ("default", default)] {
                    out.push(format!("{pad}  {label}: begin"));
                    for s in arm {
                        s.render(out, indent + 2);
                    }
                    out.push(format!("{pad}  end"));
                }
                out.push(format!("{pad}endcase"));
            }
        }
    }
}

/// When the design pulls `$finish`.
#[derive(Debug, Clone, PartialEq)]
pub enum Finish {
    Never,
    /// `if (cc == n) $finish;` — the same edge on every engine and lane.
    At(u64),
    /// `if (cc >= min && fsel[bit]) $finish;` where `fsel = a ^ b` — the
    /// edge depends on stimulus, so batch lanes finish at different times.
    InputAt {
        min: u64,
        bit: u32,
    },
}

/// A complete generated design plus the stimulus that drives it.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignSpec {
    /// Number of 16-bit registers `r0..` (each is also an output `o<i>`).
    pub nregs: usize,
    /// Initial values for the registers.
    pub reg_init: Vec<u64>,
    /// Combinational wires `w<i>`; wire `i` may reference wires `< i`.
    pub wires: Vec<Expr>,
    /// An 8-word × 16-bit memory `m`, observed through output `om`.
    pub mem: bool,
    /// A FIFO-style submodule instance (`VFifo`), observed through `of`.
    pub fifo: bool,
    /// FIFO drive expressions: data-in, push bit source, pop bit source.
    pub fifo_din: Expr,
    pub fifo_push: Leaf,
    pub fifo_pop: Leaf,
    /// Clocked statements (after the implicit `cc <= cc + 1`).
    pub body: Vec<Stmt>,
    /// `if (<cond>) $display("s=%d %h", r0, cc);`
    pub display: Option<Expr>,
    pub finish: Finish,
    /// Stimulus cycles the differential runner drives.
    pub cycles: u32,
    /// Seed for the per-cycle input vectors.
    pub stim_seed: u64,
}

/// Depth bound for generated expressions.
const MAX_DEPTH: u32 = 2;

/// Statement-count bound enforced by [`DesignSpec::sanitize`] (mutation
/// can otherwise grow bodies without limit across generations).
const MAX_STMTS: usize = 24;

impl DesignSpec {
    /// Generates a fresh random spec.
    pub fn generate(rng: &mut Prng) -> DesignSpec {
        let nregs = rng.range(1, 3) as usize;
        let mem = rng.chance(1, 3);
        let fifo = rng.chance(1, 4);
        let mut spec = DesignSpec {
            nregs,
            reg_init: (0..nregs).map(|i| (i as u64 * 7 + 1) & 0xffff).collect(),
            wires: Vec::new(),
            mem,
            fifo,
            fifo_din: Expr::Leaf(Leaf::InputA),
            fifo_push: Leaf::InputA,
            fifo_pop: Leaf::InputB,
            body: Vec::new(),
            display: None,
            finish: Finish::Never,
            cycles: rng.range(12, 24) as u32,
            stim_seed: rng.next_u64(),
        };
        let nwires = rng.below(3) as usize;
        for _ in 0..nwires {
            let e = spec.gen_expr(rng, MAX_DEPTH);
            spec.wires.push(e);
        }
        if fifo {
            spec.fifo_din = spec.gen_expr(rng, 1);
            spec.fifo_push = spec.gen_leaf(rng);
            spec.fifo_pop = spec.gen_leaf(rng);
        }
        let nstmts = rng.range(2, 5);
        for _ in 0..nstmts {
            let s = spec.gen_stmt(rng, MAX_DEPTH);
            spec.body.push(s);
        }
        if rng.chance(3, 4) {
            let cond = Expr::Slice {
                leaf: Leaf::Reg(rng.below(nregs as u64) as usize),
                hi: rng.below(4) as u32,
                lo: 0,
            };
            spec.display = Some(Expr::Bin(
                BinOp::Eq,
                Box::new(cond),
                Box::new(Expr::Lit { width: 1, value: 1 }),
            ));
        }
        spec.finish = match rng.below(4) {
            0 | 1 => Finish::At(rng.range(3, 12)),
            2 => Finish::InputAt {
                min: rng.range(3, 8),
                bit: rng.below(4) as u32,
            },
            _ => Finish::Never,
        };
        spec.sanitize();
        spec
    }

    /// A leaf valid for this spec.
    fn gen_leaf(&self, rng: &mut Prng) -> Leaf {
        match rng.below(4) {
            0 => Leaf::InputA,
            1 => Leaf::InputB,
            2 => Leaf::Cc,
            _ => Leaf::Reg(rng.below(self.nregs.max(1) as u64) as usize),
        }
    }

    /// A fresh random expression referencing only declared state.
    pub fn gen_expr(&self, rng: &mut Prng, depth: u32) -> Expr {
        if depth == 0 {
            return match rng.below(10) {
                0 | 1 => {
                    let width = rng.range(1, 16) as u32;
                    Expr::Lit {
                        width,
                        value: rng.next_u64() & ((1u64 << width) - 1),
                    }
                }
                2 => Expr::Leaf(Leaf::InputA),
                3 => Expr::Leaf(Leaf::InputB),
                4 => Expr::Leaf(Leaf::Cc),
                5 if !self.wires.is_empty() => {
                    Expr::Wire(rng.below(self.wires.len() as u64) as usize)
                }
                6 if self.mem => Expr::MemRead(self.gen_leaf(rng)),
                7 if self.fifo => {
                    if rng.chance(1, 2) {
                        Expr::FifoDout
                    } else {
                        Expr::FifoCount
                    }
                }
                8 => {
                    let leaf = self.gen_leaf(rng);
                    let hi = rng.below(leaf.width() as u64) as u32;
                    let lo = rng.below(hi as u64 + 1) as u32;
                    Expr::Slice { leaf, hi, lo }
                }
                _ => Expr::Leaf(Leaf::Reg(rng.below(self.nregs.max(1) as u64) as usize)),
            };
        }
        match rng.below(8) {
            0..=2 => Expr::Bin(
                *rng.pick(&BinOp::ALL),
                Box::new(self.gen_expr(rng, depth - 1)),
                Box::new(self.gen_expr(rng, depth - 1)),
            ),
            3 => Expr::Mux(
                Box::new(self.gen_expr(rng, depth - 1)),
                Box::new(self.gen_expr(rng, depth - 1)),
                Box::new(self.gen_expr(rng, depth - 1)),
            ),
            4 => Expr::Un(
                *rng.pick(&UnOp::ALL),
                Box::new(self.gen_expr(rng, depth - 1)),
            ),
            5 => Expr::Concat(
                Box::new(self.gen_expr(rng, depth - 1)),
                Box::new(self.gen_expr(rng, depth - 1)),
            ),
            6 => Expr::Repl(
                rng.range(2, 3) as u32,
                Box::new(self.gen_expr(rng, depth - 1)),
            ),
            _ => self.gen_expr(rng, 0),
        }
    }

    /// A fresh random statement referencing only declared state.
    pub fn gen_stmt(&self, rng: &mut Prng, depth: u32) -> Stmt {
        let assign = |spec: &DesignSpec, rng: &mut Prng| {
            let reg = rng.below(spec.nregs.max(1) as u64) as usize;
            match rng.below(8) {
                0 if spec.mem => Stmt::MemWrite {
                    addr: spec.gen_leaf(rng),
                    rhs: spec.gen_expr(rng, 2),
                },
                1 => {
                    let hi = rng.range(4, 15) as u32;
                    let lo = rng.below(hi as u64) as u32;
                    Stmt::SliceAssign {
                        reg,
                        hi,
                        lo,
                        rhs: spec.gen_expr(rng, 1),
                    }
                }
                _ => Stmt::Assign {
                    reg,
                    rhs: spec.gen_expr(rng, 2),
                },
            }
        };
        if depth == 0 {
            return assign(self, rng);
        }
        match rng.below(7) {
            0..=2 => assign(self, rng),
            3 | 4 => Stmt::If {
                cond: self.gen_expr(rng, 1),
                then_: vec![self.gen_stmt(rng, depth - 1)],
                else_: if rng.chance(1, 2) {
                    vec![self.gen_stmt(rng, depth - 1)]
                } else {
                    Vec::new()
                },
            },
            5 => Stmt::Case {
                scr: self.gen_leaf(rng),
                arm0: vec![self.gen_stmt(rng, depth - 1)],
                arm1: vec![self.gen_stmt(rng, depth - 1)],
                default: vec![self.gen_stmt(rng, depth - 1)],
            },
            _ => assign(self, rng),
        }
    }

    /// Applies one random mutation, then re-establishes invariants.
    pub fn mutate(&mut self, rng: &mut Prng) {
        match rng.below(10) {
            // Replace a random statement with a fresh one.
            0 | 1 => {
                let fresh = self.gen_stmt(rng, 1);
                let n = count_stmts(&self.body);
                if n > 0 {
                    let mut target = rng.below(n as u64) as usize;
                    let mut slot = Some(fresh);
                    replace_stmt_at(&mut self.body, &mut target, &mut slot);
                }
            }
            // Insert a fresh statement at a random top-level position.
            2 => {
                let depth = rng.below(3) as u32;
                let fresh = self.gen_stmt(rng, depth);
                let at = rng.below(self.body.len() as u64 + 1) as usize;
                self.body.insert(at, fresh);
            }
            // Delete a random top-level statement.
            3 => {
                if !self.body.is_empty() {
                    let at = rng.below(self.body.len() as u64) as usize;
                    self.body.remove(at);
                }
            }
            // Mutate one expression site in place.
            4..=6 => {
                let n = self.count_exprs();
                if n > 0 {
                    let target = rng.below(n as u64) as usize;
                    let replacement_seed = rng.next_u64();
                    let choice = rng.below(4);
                    let snapshot = self.clone();
                    let mut idx = 0usize;
                    self.for_each_expr_mut(&mut |e| {
                        if idx == target {
                            let mut sub = Prng::new(replacement_seed);
                            *e = match (choice, e.clone()) {
                                (0, Expr::Bin(_, l, r)) => Expr::Bin(*sub.pick(&BinOp::ALL), l, r),
                                (1, Expr::Bin(op, l, r)) => Expr::Bin(op, r, l),
                                (2, old) => Expr::Un(*sub.pick(&UnOp::ALL), Box::new(old)),
                                _ => snapshot.gen_expr(&mut sub, 1),
                            };
                        }
                        idx += 1;
                    });
                }
            }
            // Structural toggles.
            7 => {
                self.mem = !self.mem;
                self.fifo = rng.chance(1, 4);
            }
            // Re-aim the run: finish point, display, cycles, stimulus.
            8 => {
                self.finish = match rng.below(4) {
                    0 | 1 => Finish::At(rng.range(3, 12)),
                    2 => Finish::InputAt {
                        min: rng.range(3, 8),
                        bit: rng.below(4) as u32,
                    },
                    _ => Finish::Never,
                };
                self.cycles = rng.range(12, 24) as u32;
            }
            _ => {
                self.stim_seed = rng.next_u64();
                if rng.chance(1, 2) {
                    let at = rng.below(self.reg_init.len() as u64) as usize;
                    self.reg_init[at] = rng.next_u64() & 0xffff;
                }
            }
        }
        self.sanitize();
    }

    /// Re-establishes representation invariants after mutation/shrinking:
    /// reg indices in range, mem/fifo references gated on the flags, at
    /// least one register, bounded body size.
    pub fn sanitize(&mut self) {
        if self.nregs == 0 {
            self.nregs = 1;
        }
        self.nregs = self.nregs.min(3);
        self.reg_init.resize(self.nregs, 1);
        for v in &mut self.reg_init {
            *v &= 0xffff;
        }
        while count_stmts(&self.body) as usize > MAX_STMTS && !self.body.is_empty() {
            self.body.pop();
        }
        let nregs = self.nregs;
        let nwires = self.wires.len();
        let mem = self.mem;
        let fifo = self.fifo;
        let fix_leaf = |l: &mut Leaf| {
            if let Leaf::Reg(i) = l {
                *i %= nregs;
            }
        };
        let fix_expr = move |e: &mut Expr| match e {
            Expr::Leaf(l) => fix_leaf(l),
            Expr::Wire(_) if nwires == 0 => *e = Expr::Leaf(Leaf::InputA),
            Expr::Wire(i) => *i %= nwires,
            Expr::MemRead(addr) if mem => fix_leaf(addr),
            Expr::MemRead(_) => *e = Expr::Leaf(Leaf::InputB),
            Expr::FifoDout | Expr::FifoCount if !fifo => {
                *e = Expr::Leaf(Leaf::Cc);
            }
            Expr::Slice { leaf, hi, lo } => {
                fix_leaf(leaf);
                *hi = (*hi).min(leaf.width() - 1);
                *lo = (*lo).min(*hi);
            }
            Expr::Repl(n, _) => *n = (*n).clamp(1, 4),
            Expr::Lit { width, value } => {
                *width = (*width).clamp(1, 16);
                *value &= (1u64 << *width) - 1;
            }
            _ => {}
        };
        // Wire i may only reference wires < i (acyclic combinational).
        for i in 0..self.wires.len() {
            let mut w = std::mem::replace(&mut self.wires[i], Expr::Leaf(Leaf::InputA));
            w.walk_mut(&mut |e| {
                fix_expr(e);
                if let Expr::Wire(j) = e {
                    if *j >= i {
                        *e = Expr::Leaf(Leaf::InputA);
                    }
                }
            });
            self.wires[i] = w;
        }
        for s in &mut self.body {
            fix_stmt_rec(s, &fix_expr, nregs, mem);
        }
        self.fifo_din.walk_mut(&mut |e| fix_expr(e));
        fix_leaf(&mut self.fifo_push);
        fix_leaf(&mut self.fifo_pop);
        if let Some(d) = &mut self.display {
            d.walk_mut(&mut |e| fix_expr(e));
        }
        self.cycles = self.cycles.clamp(2, 64);
    }

    /// Number of expression sites reachable by [`Self::for_each_expr_mut`].
    pub fn count_exprs(&self) -> usize {
        let mut n = 0;
        let mut probe = self.clone();
        probe.for_each_expr_mut(&mut |_| n += 1);
        n
    }

    /// Visits every expression node in the body, wires, FIFO drive, and
    /// display condition.
    pub fn for_each_expr_mut(&mut self, f: &mut impl FnMut(&mut Expr)) {
        for w in &mut self.wires {
            w.walk_mut(f);
        }
        for s in &mut self.body {
            walk_stmt_exprs(s, f);
        }
        self.fifo_din.walk_mut(f);
        if let Some(d) = &mut self.display {
            d.walk_mut(f);
        }
    }

    /// Renders the spec to Verilog source (top module `T`, plus the
    /// `VFifo` submodule when enabled).
    pub fn render(&self) -> String {
        let mut lines: Vec<String> = Vec::new();
        let mut ports = vec![
            "input wire clk".to_string(),
            "input wire [15:0] a".to_string(),
            "input wire [15:0] b".to_string(),
        ];
        for i in 0..self.nregs {
            ports.push(format!("output wire [15:0] o{i}"));
        }
        if self.mem {
            ports.push("output wire [15:0] om".to_string());
        }
        if self.fifo {
            ports.push("output wire [15:0] of".to_string());
        }
        lines.push(format!("module T({});", ports.join(", ")));
        for i in 0..self.nregs {
            lines.push(format!("  reg [15:0] r{i} = {};", self.reg_init[i]));
        }
        lines.push("  reg [7:0] cc = 0;".to_string());
        if self.mem {
            lines.push("  reg [15:0] m [0:7];".to_string());
        }
        for (i, w) in self.wires.iter().enumerate() {
            lines.push(format!("  wire [15:0] w{i}; assign w{i} = {};", w.render()));
        }
        if self.fifo {
            lines.push("  wire [15:0] fd; wire [3:0] fcnt;".to_string());
            lines.push(format!(
                "  VFifo vf(.clk(clk), .din({}), .push({}[0]), .pop({}[0]), .dout(fd), .count(fcnt));",
                self.fifo_din.render(),
                self.fifo_push.render(),
                self.fifo_pop.render()
            ));
        }
        if matches!(self.finish, Finish::InputAt { .. }) {
            lines.push("  wire [15:0] fsel; assign fsel = a ^ b;".to_string());
        }
        lines.push("  always @(posedge clk) begin".to_string());
        lines.push("    cc <= cc + 1;".to_string());
        for s in &self.body {
            s.render(&mut lines, 2);
        }
        if let Some(cond) = &self.display {
            lines.push(format!(
                "    if ({}) $display(\"s=%d %h\", r0, cc);",
                cond.render()
            ));
        }
        match &self.finish {
            Finish::Never => {}
            Finish::At(n) => lines.push(format!("    if (cc == {n}) $finish;")),
            Finish::InputAt { min, bit } => {
                lines.push(format!("    if (cc >= {min} && fsel[{bit}]) $finish;"));
            }
        }
        lines.push("  end".to_string());
        for i in 0..self.nregs {
            lines.push(format!("  assign o{i} = r{i};"));
        }
        if self.mem {
            lines.push("  assign om = m[cc[2:0]];".to_string());
        }
        if self.fifo {
            lines.push("  assign of = fd + fcnt;".to_string());
        }
        lines.push("endmodule".to_string());
        if self.fifo {
            lines.push(String::new());
            lines.extend(VFIFO_SRC.lines().map(str::to_string));
        }
        lines.join("\n")
    }

    /// The output port names the differential runner compares.
    pub fn outputs(&self) -> Vec<String> {
        let mut outs: Vec<String> = (0..self.nregs).map(|i| format!("o{i}")).collect();
        if self.mem {
            outs.push("om".to_string());
        }
        if self.fifo {
            outs.push("of".to_string());
        }
        outs
    }

    /// Line count of the rendered top module (the shrinker's size metric;
    /// excludes the fixed `VFifo` library module).
    pub fn top_lines(&self) -> usize {
        match self.render().split("\n\nmodule VFifo").next() {
            Some(top) => top.lines().count(),
            None => self.render().lines().count(),
        }
    }

    /// Structural features contributing to the coverage signal.
    pub fn features(&self) -> Vec<String> {
        let mut f = Vec::new();
        if self.mem {
            f.push("spec:mem".to_string());
        }
        if self.fifo {
            f.push("spec:fifo".to_string());
        }
        if self.display.is_some() {
            f.push("spec:display".to_string());
        }
        match self.finish {
            Finish::Never => {}
            Finish::At(_) => f.push("spec:finish_at".to_string()),
            Finish::InputAt { .. } => f.push("spec:finish_input".to_string()),
        }
        f.push(format!(
            "spec:stmts_log2:{}",
            32 - count_stmts(&self.body).leading_zeros()
        ));
        f
    }
}

/// The FIFO-style library submodule generated designs may instantiate: an
/// 8-deep queue with occupancy tracking — memory write ports, wrap-around
/// pointers, and cross-coupled conditional updates, the stdlib-peripheral
/// shape in one synthesizable module.
pub const VFIFO_SRC: &str = "\
module VFifo(input wire clk, input wire [15:0] din, input wire push, input wire pop,
             output wire [15:0] dout, output wire [3:0] count);
  reg [15:0] q [0:7];
  reg [2:0] rd = 0;
  reg [2:0] wr = 0;
  reg [3:0] cnt = 0;
  always @(posedge clk) begin
    if (push && (cnt < 8) && !(pop && (cnt > 0))) begin
      q[wr[2:0]] <= din; wr <= wr + 1; cnt <= cnt + 1;
    end
    if (pop && (cnt > 0) && !(push && (cnt < 8))) begin
      rd <= rd + 1; cnt <= cnt - 1;
    end
    if (push && (cnt < 8) && pop && (cnt > 0)) begin
      q[wr[2:0]] <= din; wr <= wr + 1; rd <= rd + 1;
    end
  end
  assign dout = q[rd[2:0]];
  assign count = cnt;
endmodule";

fn fix_stmt_rec(s: &mut Stmt, fix_expr: &impl Fn(&mut Expr), nregs: usize, mem: bool) {
    match s {
        Stmt::Assign { reg, rhs } => {
            *reg %= nregs;
            rhs.walk_mut(&mut |e| fix_expr(e));
        }
        Stmt::SliceAssign { reg, hi, lo, rhs } => {
            *reg %= nregs;
            *hi = (*hi).min(15);
            *lo = (*lo).min(*hi);
            rhs.walk_mut(&mut |e| fix_expr(e));
        }
        Stmt::MemWrite { addr, rhs } => {
            if !mem {
                // Demote to a register assign so the statement stays legal.
                let mut r = Expr::Leaf(Leaf::InputA);
                std::mem::swap(&mut r, rhs);
                *s = Stmt::Assign { reg: 0, rhs: r };
                fix_stmt_rec(s, fix_expr, nregs, mem);
                return;
            }
            if let Leaf::Reg(i) = addr {
                *i %= nregs;
            }
            rhs.walk_mut(&mut |e| fix_expr(e));
        }
        Stmt::If { cond, then_, else_ } => {
            cond.walk_mut(&mut |e| fix_expr(e));
            for st in then_.iter_mut().chain(else_.iter_mut()) {
                fix_stmt_rec(st, fix_expr, nregs, mem);
            }
        }
        Stmt::Case {
            scr,
            arm0,
            arm1,
            default,
        } => {
            if let Leaf::Reg(i) = scr {
                *i %= nregs;
            }
            for st in arm0
                .iter_mut()
                .chain(arm1.iter_mut())
                .chain(default.iter_mut())
            {
                fix_stmt_rec(st, fix_expr, nregs, mem);
            }
        }
    }
}

/// Visits every expression in a statement tree.
pub fn walk_stmt_exprs(s: &mut Stmt, f: &mut impl FnMut(&mut Expr)) {
    match s {
        Stmt::Assign { rhs, .. } | Stmt::SliceAssign { rhs, .. } | Stmt::MemWrite { rhs, .. } => {
            rhs.walk_mut(f);
        }
        Stmt::If { cond, then_, else_ } => {
            cond.walk_mut(f);
            for st in then_.iter_mut().chain(else_.iter_mut()) {
                walk_stmt_exprs(st, f);
            }
        }
        Stmt::Case {
            arm0,
            arm1,
            default,
            ..
        } => {
            for st in arm0
                .iter_mut()
                .chain(arm1.iter_mut())
                .chain(default.iter_mut())
            {
                walk_stmt_exprs(st, f);
            }
        }
    }
}

/// Total statements in a body, recursively.
pub fn count_stmts(body: &[Stmt]) -> u32 {
    body.iter()
        .map(|s| match s {
            Stmt::If { then_, else_, .. } => 1 + count_stmts(then_) + count_stmts(else_),
            Stmt::Case {
                arm0,
                arm1,
                default,
                ..
            } => 1 + count_stmts(arm0) + count_stmts(arm1) + count_stmts(default),
            _ => 1,
        })
        .sum()
}

/// Replaces the `target`-th statement (preorder) with `fresh`. Returns
/// whether the target was found.
pub fn replace_stmt_at(body: &mut [Stmt], target: &mut usize, fresh: &mut Option<Stmt>) -> bool {
    for s in body.iter_mut() {
        if *target == 0 {
            if let Some(f) = fresh.take() {
                *s = f;
            }
            return true;
        }
        *target -= 1;
        let found = match s {
            Stmt::If { then_, else_, .. } => {
                replace_stmt_at(then_, target, fresh) || replace_stmt_at(else_, target, fresh)
            }
            Stmt::Case {
                arm0,
                arm1,
                default,
                ..
            } => {
                replace_stmt_at(arm0, target, fresh)
                    || replace_stmt_at(arm1, target, fresh)
                    || replace_stmt_at(default, target, fresh)
            }
            _ => false,
        };
        if found {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use cascade_sim::{elaborate, library_from_source};

    /// Every generated spec renders to source that parses, elaborates,
    /// and synthesizes.
    #[test]
    fn generated_specs_elaborate_and_synthesize() {
        let mut synth_ok = 0;
        for seed in 0..64 {
            let mut rng = Prng::new(seed);
            let spec = DesignSpec::generate(&mut rng);
            let src = spec.render();
            let lib = library_from_source(&src)
                .unwrap_or_else(|e| panic!("seed {seed} failed to parse: {e:?}\n{src}"));
            let design = elaborate("T", &lib, &Default::default())
                .unwrap_or_else(|e| panic!("seed {seed} failed to elaborate: {e:?}\n{src}"));
            if cascade_netlist::synthesize(&design).is_ok() {
                synth_ok += 1;
            }
        }
        assert!(
            synth_ok >= 56,
            "only {synth_ok}/64 generated specs synthesized"
        );
    }

    /// Mutation keeps specs valid: after many mutations the spec still
    /// renders to elaboratable source.
    #[test]
    fn mutated_specs_stay_valid() {
        for seed in 0..24 {
            let mut rng = Prng::new(seed + 100);
            let mut spec = DesignSpec::generate(&mut rng);
            for step in 0..20 {
                spec.mutate(&mut rng);
                let src = spec.render();
                let lib = library_from_source(&src).unwrap_or_else(|e| {
                    panic!("seed {seed} step {step} failed to parse: {e:?}\n{src}")
                });
                elaborate("T", &lib, &Default::default()).unwrap_or_else(|e| {
                    panic!("seed {seed} step {step} failed to elaborate: {e:?}\n{src}")
                });
            }
        }
    }

    /// A minimal spec renders comfortably under the 15-line repro target.
    #[test]
    fn minimal_spec_is_small() {
        let spec = DesignSpec {
            nregs: 1,
            reg_init: vec![1],
            wires: Vec::new(),
            mem: false,
            fifo: false,
            fifo_din: Expr::Leaf(Leaf::InputA),
            fifo_push: Leaf::InputA,
            fifo_pop: Leaf::InputB,
            body: vec![Stmt::Assign {
                reg: 0,
                rhs: Expr::Leaf(Leaf::InputA),
            }],
            display: None,
            finish: Finish::Never,
            cycles: 4,
            stim_seed: 0,
        };
        assert!(spec.top_lines() <= 9, "{}", spec.render());
    }
}
