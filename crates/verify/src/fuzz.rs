//! The coverage-guided fuzzing loop.
//!
//! Classic corpus-based feedback: generate or mutate a [`DesignSpec`],
//! run it through the differential engine stack, and keep specs that
//! light up new `(key, log2-bucket)` coverage pairs — kernel kinds and
//! levels from the arena evaluator's profile, opcodes from the bytecode
//! engine's, structural features of the spec itself. Divergences are
//! shrunk on the spot ([`crate::shrink`]) to a minimal design that still
//! reproduces the same `(engine, kind)` divergence class, and written as
//! a self-contained `.v` repro the corpus replayer
//! ([`replay_repro`]) can re-run without the spec.

use crate::coverage::CoverageMap;
use crate::diff::{run_differential, run_differential_src, DiffConfig, DiffOutcome, Divergence};
use crate::shrink::shrink;
use crate::spec::DesignSpec;
use cascade_bits::Prng;
use std::path::PathBuf;

/// Fuzzing-loop configuration.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Master seed: the whole campaign is deterministic in it.
    pub seed: u64,
    /// Designs to execute.
    pub iterations: u32,
    /// Differential-runner settings shared by every candidate.
    pub diff: DiffConfig,
    /// Where to write shrunk `.v` repros (skipped when `None`).
    pub corpus_dir: Option<PathBuf>,
    /// Live in-memory corpus bound; oldest entries are evicted.
    pub max_corpus: usize,
    /// Fraction (out of 4) of iterations that generate fresh specs
    /// instead of mutating a corpus entry.
    pub fresh_in_4: u64,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 1,
            iterations: 200,
            diff: DiffConfig::default(),
            corpus_dir: None,
            max_corpus: 64,
            fresh_in_4: 1,
        }
    }
}

/// A shrunk, confirmed divergence.
#[derive(Debug, Clone)]
pub struct Repro {
    pub divergence: Divergence,
    pub spec: DesignSpec,
    /// Path the `.v` was written to, when a corpus dir was configured.
    pub path: Option<PathBuf>,
}

/// Campaign counters.
#[derive(Debug, Clone, Default)]
pub struct FuzzStats {
    pub executed: u32,
    pub agreed: u32,
    pub skipped: u32,
    pub diverged: u32,
    pub cycles_total: u64,
    pub coverage_keys: usize,
    pub coverage_points: u32,
    pub corpus_len: usize,
}

/// The fuzzer: owns the RNG, the coverage map, and the live corpus.
pub struct Fuzzer {
    cfg: FuzzConfig,
    rng: Prng,
    coverage: CoverageMap,
    corpus: Vec<DesignSpec>,
    stats: FuzzStats,
    repros: Vec<Repro>,
    serial: u32,
}

impl Fuzzer {
    pub fn new(cfg: FuzzConfig) -> Self {
        let rng = Prng::new(cfg.seed);
        Fuzzer {
            cfg,
            rng,
            coverage: CoverageMap::new(),
            corpus: Vec::new(),
            stats: FuzzStats::default(),
            repros: Vec::new(),
            serial: 0,
        }
    }

    pub fn stats(&self) -> &FuzzStats {
        &self.stats
    }

    pub fn repros(&self) -> &[Repro] {
        &self.repros
    }

    pub fn coverage(&self) -> &CoverageMap {
        &self.coverage
    }

    /// Runs the configured number of iterations, returning final stats.
    pub fn run(&mut self) -> FuzzStats {
        for _ in 0..self.cfg.iterations {
            self.step();
        }
        self.stats.clone()
    }

    /// Executes one candidate: pick, run, feed back, shrink on failure.
    pub fn step(&mut self) -> Option<&Repro> {
        let spec = self.next_candidate();
        self.stats.executed += 1;
        match run_differential(&spec, &self.cfg.diff) {
            DiffOutcome::Agree {
                cycles_run,
                coverage,
            } => {
                self.stats.agreed += 1;
                self.stats.cycles_total += u64::from(cycles_run);
                let novel = self.coverage.record(&coverage);
                if novel > 0 {
                    self.corpus.push(spec);
                    if self.corpus.len() > self.cfg.max_corpus {
                        self.corpus.remove(0);
                    }
                }
                self.sync_stats();
                None
            }
            DiffOutcome::Skipped(_) => {
                self.stats.skipped += 1;
                self.sync_stats();
                None
            }
            DiffOutcome::Diverged(div) => {
                self.stats.diverged += 1;
                let repro = self.shrink_and_record(spec, div);
                self.repros.push(repro);
                self.sync_stats();
                self.repros.last()
            }
        }
    }

    fn sync_stats(&mut self) {
        self.stats.coverage_keys = self.coverage.keys();
        self.stats.coverage_points = self.coverage.points();
        self.stats.corpus_len = self.corpus.len();
    }

    /// Fresh generation or corpus mutation, per config ratio.
    fn next_candidate(&mut self) -> DesignSpec {
        if self.corpus.is_empty() || self.rng.chance(self.cfg.fresh_in_4, 4) {
            DesignSpec::generate(&mut self.rng)
        } else {
            let at = self.rng.below(self.corpus.len() as u64) as usize;
            let mut spec = self.corpus[at].clone();
            for _ in 0..self.rng.range(1, 3) {
                spec.mutate(&mut self.rng);
            }
            spec
        }
    }

    /// Shrinks a diverging spec to the same `(engine, kind)` class and
    /// writes the `.v` repro if a corpus dir is configured.
    fn shrink_and_record(&mut self, spec: DesignSpec, div: Divergence) -> Repro {
        let class = div.class();
        let cfg = self.cfg.diff.clone();
        let small = shrink(&spec, &mut |cand| {
            matches!(
                run_differential(cand, &cfg),
                DiffOutcome::Diverged(d) if d.class() == class
            )
        });
        // Re-run the shrunk spec for the divergence at its final shape.
        let final_div = match run_differential(&small, &cfg) {
            DiffOutcome::Diverged(d) => d,
            _ => div,
        };
        let mut path = None;
        if let Some(dir) = &self.cfg.corpus_dir {
            let name = format!(
                "div_{}_{:?}_{:04}.v",
                final_div.engine.name(),
                final_div.kind,
                self.serial
            )
            .to_lowercase();
            self.serial += 1;
            let file = dir.join(name);
            if std::fs::create_dir_all(dir).is_ok()
                && std::fs::write(&file, render_repro(&small, &final_div)).is_ok()
            {
                path = Some(file);
            }
        }
        Repro {
            divergence: final_div,
            spec: small,
            path,
        }
    }
}

// ---------------------------------------------------------------------
// Repro files: self-contained `.v` with a replay header.
// ---------------------------------------------------------------------

/// Renders a shrunk divergence as a standalone corpus file. The header
/// carries everything the replayer needs — no spec required.
pub fn render_repro(spec: &DesignSpec, div: &Divergence) -> String {
    format!(
        "// cascade-verify regression\n\
         // found: engine={} kind={:?} cycle={} detail={}\n\
         // replay: outputs={} cycles={} stim_seed={:#018x}\n\
         {}\n",
        div.engine.name(),
        div.kind,
        div.cycle,
        div.detail.replace('\n', " "),
        spec.outputs().join(","),
        spec.cycles,
        spec.stim_seed,
        spec.render()
    )
}

/// Parsed replay parameters from a repro file header.
#[derive(Debug, Clone, PartialEq)]
pub struct ReproHeader {
    pub outputs: Vec<String>,
    pub cycles: u32,
    pub stim_seed: u64,
}

/// Extracts the `// replay:` header. Returns `None` when the file is not
/// a cascade-verify repro.
pub fn parse_repro(text: &str) -> Option<ReproHeader> {
    let line = text
        .lines()
        .find_map(|l| l.trim().strip_prefix("// replay:"))?;
    let mut outputs = Vec::new();
    let mut cycles = None;
    let mut stim_seed = None;
    for field in line.split_whitespace() {
        if let Some(v) = field.strip_prefix("outputs=") {
            outputs = v
                .split(',')
                .filter(|s| !s.is_empty())
                .map(str::to_string)
                .collect();
        } else if let Some(v) = field.strip_prefix("cycles=") {
            cycles = v.parse().ok();
        } else if let Some(v) = field.strip_prefix("stim_seed=") {
            let v = v.strip_prefix("0x").unwrap_or(v);
            stim_seed = u64::from_str_radix(v, 16).ok();
        }
    }
    Some(ReproHeader {
        outputs,
        cycles: cycles?,
        stim_seed: stim_seed?,
    })
}

/// Replays a corpus file through the full engine stack. Used by the
/// tier-1 regression test over `corpus/` — every checked-in repro must
/// agree (the bugs they captured are fixed and must stay fixed).
pub fn replay_repro(text: &str, cfg: &DiffConfig) -> Option<DiffOutcome> {
    let header = parse_repro(text)?;
    Some(run_differential_src(
        text,
        &header.outputs,
        header.cycles,
        header.stim_seed,
        cfg,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A short campaign executes, accumulates coverage, and finds no
    /// divergences between the real engines.
    #[test]
    fn short_campaign_is_clean_and_covers() {
        let mut fuzzer = Fuzzer::new(FuzzConfig {
            seed: 7,
            iterations: 40,
            ..Default::default()
        });
        let stats = fuzzer.run();
        assert_eq!(stats.executed, 40);
        assert_eq!(
            stats.diverged,
            0,
            "real engine divergence: {:?}",
            fuzzer.repros()
        );
        assert!(stats.agreed >= 30, "{stats:?}");
        assert!(stats.coverage_keys >= 10, "{stats:?}");
        assert!(stats.corpus_len > 0, "{stats:?}");
        // Coverage spans all three signal families.
        assert!(fuzzer.coverage().keys_with_prefix("nl:").next().is_some());
        assert!(fuzzer.coverage().keys_with_prefix("sw:").next().is_some());
        assert!(fuzzer.coverage().keys_with_prefix("spec:").next().is_some());
    }

    /// Mutation testing of the verifier itself: with an artificial bug
    /// seeded into an engine's observation stream, the fuzzer must find a
    /// divergence and the shrinker must reduce it to a tiny module. Three
    /// bug shapes cover the three divergence kinds (outputs, tasks,
    /// finish).
    #[test]
    fn seeded_bugs_are_found_and_shrunk_small() {
        use crate::diff::{set_seeded_bug, EngineId, SeededBug};
        let bugs = [
            SeededBug::CorruptOutput {
                engine: EngineId::CompiledSim,
                mask: 0x5a,
            },
            SeededBug::DropTasks {
                engine: EngineId::NetlistSim,
            },
            SeededBug::EarlyFinish {
                engine: EngineId::BatchLane0,
                at: 1,
            },
        ];
        for (i, bug) in bugs.into_iter().enumerate() {
            set_seeded_bug(Some(bug));
            let mut fuzzer = Fuzzer::new(FuzzConfig {
                seed: 100 + i as u64,
                iterations: 200,
                ..Default::default()
            });
            let mut found = None;
            for _ in 0..200 {
                if let Some(repro) = fuzzer.step() {
                    found = Some(repro.spec.clone());
                    break;
                }
            }
            set_seeded_bug(None);
            let spec = found.unwrap_or_else(|| panic!("seeded bug {bug:?} was never caught"));
            assert!(
                spec.top_lines() <= 15,
                "seeded bug {bug:?} shrunk only to {} lines:\n{}",
                spec.top_lines(),
                spec.render()
            );
        }
    }

    /// Repro round-trip: render → parse → replay agrees for a clean spec.
    #[test]
    fn repro_files_round_trip() {
        let mut rng = cascade_bits::Prng::new(3);
        let cfg = DiffConfig::default();
        let spec = loop {
            let s = DesignSpec::generate(&mut rng);
            if matches!(run_differential(&s, &cfg), DiffOutcome::Agree { .. }) {
                break s;
            }
        };
        let div = Divergence {
            engine: crate::diff::EngineId::NetlistSim,
            kind: crate::diff::DivKind::Output,
            cycle: 0,
            detail: "placeholder".into(),
        };
        let text = render_repro(&spec, &div);
        let header = parse_repro(&text).expect("header parses");
        assert_eq!(header.outputs, spec.outputs());
        assert_eq!(header.cycles, spec.cycles);
        assert_eq!(header.stim_seed, spec.stim_seed);
        match replay_repro(&text, &cfg) {
            Some(DiffOutcome::Agree { .. }) => {}
            other => panic!("replay failed: {other:?}"),
        }
    }
}
