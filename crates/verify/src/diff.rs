//! The differential runner: one generated design, every engine, cycle-by-
//! cycle transcript equality.
//!
//! A design is driven through six independent execution paths —
//!
//! 1. the tree-walking event [`Simulator`] (the oracle),
//! 2. the bytecode-compiled [`CompiledSim`],
//! 3. the interpretive netlist walker [`ReferenceSim`],
//! 4. the compiled word-arena [`NetlistSim`] (peephole passes on),
//! 5. lane 0 of a [`BatchHarness`] (lane-group batch kernels, with the
//!    other lanes fed *different* stimulus so per-lane commit-skip masks
//!    and task routing are live), and
//! 6. a [`NetlistSim`] with a forced-parallel [`EvalPool`] attached
//!    (`CASCADE_NETLIST_FORCE_PAR=1`, worker threads on every level)
//!
//! — with identical per-cycle input vectors derived from the spec's
//! stimulus seed. Every cycle compares output values, rendered
//! `$display`/`$finish` task text, and the finish flag. The first
//! mismatch is returned as a structured [`Divergence`]; agreement returns
//! the coverage observations the fuzzer feeds back into generation.
//!
//! [`EvalPool`]: cascade_netlist::NetlistSim::set_eval_threads

use crate::spec::DesignSpec;
use cascade_bits::{Bits, Prng};
use cascade_netlist::{synthesize, BatchHarness, NetlistSim, ReferenceSim, TaskKind};
use cascade_sim::{elaborate, library_from_source, CompiledSim, SimEvent, Simulator};
use std::sync::Arc;

/// Which engine a transcript (or a divergence) belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineId {
    TreeWalker,
    CompiledSim,
    ReferenceNetlist,
    NetlistSim,
    BatchLane0,
    ForcedParallel,
}

impl EngineId {
    /// Engines compared against the tree-walker oracle.
    pub const CHECKED: [EngineId; 5] = [
        EngineId::CompiledSim,
        EngineId::ReferenceNetlist,
        EngineId::NetlistSim,
        EngineId::BatchLane0,
        EngineId::ForcedParallel,
    ];

    /// Short stable name used in reports and corpus file names.
    pub fn name(self) -> &'static str {
        match self {
            EngineId::TreeWalker => "sim",
            EngineId::CompiledSim => "swc",
            EngineId::ReferenceNetlist => "refnl",
            EngineId::NetlistSim => "netlist",
            EngineId::BatchLane0 => "batch0",
            EngineId::ForcedParallel => "par",
        }
    }
}

/// What diverged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivKind {
    Output,
    Tasks,
    Finish,
}

/// A cycle-accurate mismatch between one engine and the oracle.
#[derive(Debug, Clone)]
pub struct Divergence {
    pub engine: EngineId,
    pub kind: DivKind,
    pub cycle: u32,
    /// Human-readable `expected vs got` detail.
    pub detail: String,
}

impl Divergence {
    /// The class key used to decide whether a shrunk candidate still
    /// reproduces "the same" bug.
    pub fn class(&self) -> (EngineId, DivKind) {
        (self.engine, self.kind)
    }
}

/// Differential-run configuration.
#[derive(Debug, Clone)]
pub struct DiffConfig {
    /// Batch harness width (lane 0 is compared; ≥2 keeps other lanes
    /// live on divergent stimulus). 0 disables the batch engine.
    pub batch_lanes: u32,
    /// Worker threads for the forced-parallel engine. 0 disables it.
    pub par_threads: u32,
    /// Collect per-kernel / per-opcode coverage observations.
    pub profile: bool,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            batch_lanes: 2,
            par_threads: 2,
            profile: true,
        }
    }
}

/// Result of one differential run.
#[derive(Debug)]
pub enum DiffOutcome {
    /// All engines agreed for the full stimulus.
    Agree {
        cycles_run: u32,
        /// `(key, count)` coverage observations for the feedback loop.
        coverage: Vec<(String, u64)>,
    },
    /// An engine disagreed with the oracle.
    Diverged(Divergence),
    /// The design could not be taken through every engine (synthesis
    /// rejected it, elaboration failed, ...). Not a bug by itself; the
    /// fuzzer tracks the skip rate.
    Skipped(String),
}

/// One engine's observation of one cycle.
#[derive(Debug, Clone, PartialEq)]
struct CycleObs {
    outs: Vec<Bits>,
    tasks: Vec<String>,
    finished: bool,
}

fn render_events(events: Vec<SimEvent>) -> Vec<String> {
    events
        .into_iter()
        .map(|e| match e {
            SimEvent::Display(s) | SimEvent::Write(s) | SimEvent::Fatal(s) => s,
            SimEvent::Finish => "$finish".into(),
        })
        .collect()
}

fn render_fires(fires: Vec<cascade_netlist::TaskFire>) -> Vec<String> {
    fires
        .into_iter()
        .map(|f| match f.kind {
            TaskKind::Finish => "$finish".into(),
            _ => f.text,
        })
        .collect()
}

/// Forces the level-parallel pool onto every settle (the generated designs
/// are far too small to clear the activity cutover naturally). Set once,
/// process-wide — it only affects evaluators that have a pool attached.
fn ensure_force_par() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| std::env::set_var("CASCADE_NETLIST_FORCE_PAR", "1"));
}

// ---------------------------------------------------------------------
// Seeded-bug hook: mutation testing for the verifier itself.
// ---------------------------------------------------------------------

/// An artificial engine bug injected at the observation layer, used by the
/// test suite to prove the fuzzer *finds* divergences and the shrinker
/// reduces them. Compiled only under `cfg(test)`.
#[cfg(test)]
#[derive(Debug, Clone, Copy)]
pub enum SeededBug {
    /// XOR the first output of `engine` with `mask` on every cycle.
    CorruptOutput { engine: EngineId, mask: u64 },
    /// Suppress `engine`'s task stream (divergence only surfaces when a
    /// `$display`/`$finish` actually fires — spec-dependent).
    DropTasks { engine: EngineId },
    /// Report `engine` finished from cycle `at` onward (divergence only
    /// surfaces on runs that reach `at`).
    EarlyFinish { engine: EngineId, at: u32 },
}

#[cfg(test)]
thread_local! {
    static SEEDED_BUG: std::cell::Cell<Option<SeededBug>> =
        const { std::cell::Cell::new(None) };
}

/// Installs (or clears) the seeded bug for this thread.
#[cfg(test)]
pub fn set_seeded_bug(bug: Option<SeededBug>) {
    SEEDED_BUG.with(|b| b.set(bug));
}

#[cfg(test)]
fn apply_seeded_bug(engine: EngineId, cycle: u32, obs: &mut CycleObs) {
    let Some(bug) = SEEDED_BUG.with(|b| b.get()) else {
        return;
    };
    match bug {
        SeededBug::CorruptOutput { engine: e, mask } if e == engine => {
            if let Some(first) = obs.outs.first_mut() {
                let w = first.width();
                *first = Bits::from_u64(w, first.to_u64() ^ (mask & ((1u64 << w.min(63)) - 1)));
            }
        }
        SeededBug::DropTasks { engine: e } if e == engine => obs.tasks.clear(),
        SeededBug::EarlyFinish { engine: e, at } if e == engine && cycle >= at => {
            obs.finished = true;
        }
        _ => {}
    }
}

#[cfg(not(test))]
fn apply_seeded_bug(_engine: EngineId, _cycle: u32, _obs: &mut CycleObs) {}

// ---------------------------------------------------------------------
// The runner.
// ---------------------------------------------------------------------

/// Runs `spec` differentially across every engine. See the module docs
/// for the exact engine set and comparison contract.
pub fn run_differential(spec: &DesignSpec, cfg: &DiffConfig) -> DiffOutcome {
    let out = run_differential_src(
        &spec.render(),
        &spec.outputs(),
        spec.cycles,
        spec.stim_seed,
        cfg,
    );
    match out {
        DiffOutcome::Agree {
            cycles_run,
            mut coverage,
        } => {
            if cfg.profile {
                for feature in spec.features() {
                    coverage.push((feature, 1));
                }
            }
            DiffOutcome::Agree {
                cycles_run,
                coverage,
            }
        }
        other => other,
    }
}

/// Source-level entry point: drives Verilog text (top module `T`) through
/// every engine with stimulus derived from `stim_seed`. Used directly by
/// the corpus replayer, which has a `.v` file rather than a spec.
pub fn run_differential_src(
    src: &str,
    outs: &[String],
    cycles: u32,
    stim_seed: u64,
    cfg: &DiffConfig,
) -> DiffOutcome {
    let lib = match library_from_source(src) {
        Ok(l) => l,
        Err(e) => return DiffOutcome::Skipped(format!("parse: {e:?}")),
    };
    let design = match elaborate("T", &lib, &Default::default()) {
        Ok(d) => Arc::new(d),
        Err(e) => return DiffOutcome::Skipped(format!("elaborate: {e:?}")),
    };
    let nl = match synthesize(&design) {
        Ok(n) => Arc::new(n),
        Err(e) => return DiffOutcome::Skipped(format!("synthesize: {e}")),
    };

    // --- construct engines -------------------------------------------
    let mut sim = Simulator::new(Arc::clone(&design));
    if sim.initialize().is_err() {
        return DiffOutcome::Skipped("oracle initialize failed".into());
    }
    let mut swc = CompiledSim::new(Arc::clone(&design));
    if cfg.profile {
        swc.enable_profiling();
    }
    if swc.initialize().is_err() {
        return DiffOutcome::Skipped("compiled-sim initialize failed".into());
    }
    let mut init_oracle = CycleObs {
        outs: Vec::new(),
        tasks: render_events(sim.drain_events()),
        finished: sim.is_finished(),
    };
    let mut init_swc = CycleObs {
        outs: Vec::new(),
        tasks: render_events(swc.drain_events()),
        finished: swc.is_finished(),
    };
    apply_seeded_bug(EngineId::TreeWalker, 0, &mut init_oracle);
    apply_seeded_bug(EngineId::CompiledSim, 0, &mut init_swc);
    if init_oracle != init_swc {
        return DiffOutcome::Diverged(Divergence {
            engine: EngineId::CompiledSim,
            kind: DivKind::Tasks,
            cycle: 0,
            detail: format!(
                "init events {:?} vs {:?}",
                init_oracle.tasks, init_swc.tasks
            ),
        });
    }

    let mut refnl = match ReferenceSim::new(Arc::clone(&nl)) {
        Ok(s) => s,
        Err(e) => return DiffOutcome::Skipped(format!("levelize: {e:?}")),
    };
    let mut hw = NetlistSim::new(Arc::clone(&nl)).expect("levelize agreed with ReferenceSim");
    if cfg.profile {
        hw.enable_profiling();
    }
    let mut batch = if cfg.batch_lanes >= 1 {
        Some(BatchHarness::new(Arc::clone(&nl), cfg.batch_lanes.max(2)).expect("levelize"))
    } else {
        None
    };
    let mut par = if cfg.par_threads >= 1 {
        ensure_force_par();
        let mut p = NetlistSim::new(Arc::clone(&nl)).expect("levelize");
        p.set_eval_threads(cfg.par_threads.max(2));
        Some(p)
    } else {
        None
    };

    let mut stim = Prng::new(stim_seed);
    let mut alt = Prng::new(stim_seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let mut coverage: Vec<(String, u64)> = Vec::new();
    let mut cycles_run = 0u32;

    for cycle in 0..cycles {
        if sim.is_finished() {
            break;
        }
        let a = Bits::from_u64(16, stim.next_u64() & 0xffff);
        let b = Bits::from_u64(16, stim.next_u64() & 0xffff);

        // Oracle: poke, settle, tick, observe.
        sim.poke("a", a.clone());
        sim.poke("b", b.clone());
        if sim.settle().is_err() {
            return DiffOutcome::Skipped("oracle settle failed".into());
        }
        if sim.tick("clk").is_err() {
            return DiffOutcome::Skipped("oracle tick failed".into());
        }
        let mut oracle_obs = CycleObs {
            outs: outs.iter().map(|o| sim.peek(o)).collect(),
            tasks: render_events(sim.drain_events()),
            finished: sim.is_finished(),
        };
        apply_seeded_bug(EngineId::TreeWalker, cycle, &mut oracle_obs);

        // Each checked engine produces its own observation of the cycle.
        let check = |engine: EngineId, mut obs: CycleObs| -> Option<Divergence> {
            apply_seeded_bug(engine, cycle, &mut obs);
            if obs.outs != oracle_obs.outs {
                let i = obs
                    .outs
                    .iter()
                    .zip(&oracle_obs.outs)
                    .position(|(g, e)| g != e)
                    .unwrap_or(0);
                return Some(Divergence {
                    engine,
                    kind: DivKind::Output,
                    cycle,
                    detail: format!(
                        "{}: oracle {} vs {}",
                        outs.get(i).map(String::as_str).unwrap_or("?"),
                        oracle_obs.outs.get(i).map(|b| b.to_u64()).unwrap_or(0),
                        obs.outs.get(i).map(|b| b.to_u64()).unwrap_or(0),
                    ),
                });
            }
            if obs.tasks != oracle_obs.tasks {
                return Some(Divergence {
                    engine,
                    kind: DivKind::Tasks,
                    cycle,
                    detail: format!("oracle {:?} vs {:?}", oracle_obs.tasks, obs.tasks),
                });
            }
            if obs.finished != oracle_obs.finished {
                return Some(Divergence {
                    engine,
                    kind: DivKind::Finish,
                    cycle,
                    detail: format!(
                        "oracle finished={} vs {}",
                        oracle_obs.finished, obs.finished
                    ),
                });
            }
            None
        };

        // Bytecode-compiled software engine. Settle before the edge, as
        // the oracle does: `tick` raises clk and settles once, so without
        // it the pending comb activations from the pokes race the edge
        // processes — a multi-level assign chain feeding a clocked reg
        // loses that race and captures a stale value (found by this very
        // harness fuzzing itself: the oracle was settled, swc was not).
        swc.poke("a", a.clone());
        swc.poke("b", b.clone());
        if swc.settle().is_err() {
            return DiffOutcome::Skipped("compiled-sim settle failed".into());
        }
        if swc.tick("clk").is_err() {
            return DiffOutcome::Skipped("compiled-sim tick failed".into());
        }
        let obs = CycleObs {
            outs: outs.iter().map(|o| swc.peek(o)).collect(),
            tasks: render_events(swc.drain_events()),
            finished: swc.is_finished(),
        };
        if let Some(d) = check(EngineId::CompiledSim, obs) {
            return DiffOutcome::Diverged(d);
        }

        // Interpretive netlist walker.
        refnl.set_by_name("a", a.clone());
        refnl.set_by_name("b", b.clone());
        refnl.step_clock(0);
        let obs = CycleObs {
            outs: outs
                .iter()
                .map(|o| refnl.get_by_name(o).unwrap_or_else(|| Bits::zero(16)))
                .collect(),
            tasks: render_fires(refnl.drain_tasks()),
            finished: refnl.is_finished(),
        };
        if let Some(d) = check(EngineId::ReferenceNetlist, obs) {
            return DiffOutcome::Diverged(d);
        }

        // Compiled word-arena evaluator.
        hw.set_by_name("a", a.clone());
        hw.set_by_name("b", b.clone());
        hw.step_clock(0);
        let obs = CycleObs {
            outs: outs
                .iter()
                .map(|o| hw.get_by_name(o).unwrap_or_else(|| Bits::zero(16)))
                .collect(),
            tasks: render_fires(hw.drain_tasks()),
            finished: hw.is_finished(),
        };
        if let Some(d) = check(EngineId::NetlistSim, obs) {
            return DiffOutcome::Diverged(d);
        }

        // Batch harness, lane 0 (other lanes on independent stimulus).
        if let Some(batch) = batch.as_mut() {
            batch.set_lane_by_name("a", 0, a.clone());
            batch.set_lane_by_name("b", 0, b.clone());
            for lane in 1..batch.lanes() {
                batch.set_lane_by_name("a", lane, Bits::from_u64(16, alt.next_u64() & 0xffff));
                batch.set_lane_by_name("b", lane, Bits::from_u64(16, alt.next_u64() & 0xffff));
            }
            batch.step_clock(0);
            let tasks: Vec<String> = render_fires(
                batch
                    .drain_tasks()
                    .into_iter()
                    .filter(|(lane, _)| *lane == 0)
                    .map(|(_, f)| f)
                    .collect(),
            );
            let obs = CycleObs {
                outs: outs
                    .iter()
                    .map(|o| {
                        batch
                            .get_lane_by_name(o, 0)
                            .unwrap_or_else(|| Bits::zero(16))
                    })
                    .collect(),
                tasks,
                finished: batch.is_finished(0),
            };
            if let Some(d) = check(EngineId::BatchLane0, obs) {
                return DiffOutcome::Diverged(d);
            }
        }

        // Forced-parallel arena evaluator.
        if let Some(par) = par.as_mut() {
            par.set_by_name("a", a.clone());
            par.set_by_name("b", b.clone());
            par.step_clock(0);
            let obs = CycleObs {
                outs: outs
                    .iter()
                    .map(|o| par.get_by_name(o).unwrap_or_else(|| Bits::zero(16)))
                    .collect(),
                tasks: render_fires(par.drain_tasks()),
                finished: par.is_finished(),
            };
            if let Some(d) = check(EngineId::ForcedParallel, obs) {
                return DiffOutcome::Diverged(d);
            }
        }

        cycles_run += 1;
    }

    // --- coverage -----------------------------------------------------
    if cfg.profile {
        if let Some(report) = hw.profile_report() {
            for (kernel, count) in report.kernels {
                coverage.push((format!("nl:{kernel}"), count));
            }
            for (level, count) in report.levels {
                coverage.push((format!("lvl:{level}"), count));
            }
        }
        if let Some(report) = swc.profile_report() {
            for (op, count) in report.opcodes {
                coverage.push((format!("sw:{op}"), count));
            }
        }
    }

    DiffOutcome::Agree {
        cycles_run,
        coverage,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Generated specs agree across all six engines (when they didn't,
    /// that was a real engine bug — this is the fuzzer's core check).
    #[test]
    fn generated_specs_agree_across_engines() {
        let cfg = DiffConfig::default();
        let mut agreed = 0;
        for seed in 0..48 {
            let mut rng = Prng::new(seed + 9000);
            let spec = DesignSpec::generate(&mut rng);
            match run_differential(&spec, &cfg) {
                DiffOutcome::Agree { .. } => agreed += 1,
                DiffOutcome::Diverged(d) => panic!(
                    "seed {seed} diverged on {} ({:?}) at cycle {}: {}\n{}",
                    d.engine.name(),
                    d.kind,
                    d.cycle,
                    d.detail,
                    spec.render()
                ),
                DiffOutcome::Skipped(_) => {}
            }
        }
        assert!(agreed >= 40, "only {agreed}/48 specs ran to agreement");
    }

    /// The seeded-bug hook produces a detectable divergence of the right
    /// class, and clearing it restores agreement.
    #[test]
    fn seeded_bug_is_detected_and_clearable() {
        let cfg = DiffConfig::default();
        let mut rng = Prng::new(42);
        let spec = loop {
            let s = DesignSpec::generate(&mut rng);
            if matches!(run_differential(&s, &cfg), DiffOutcome::Agree { .. }) {
                break s;
            }
        };
        set_seeded_bug(Some(SeededBug::CorruptOutput {
            engine: EngineId::NetlistSim,
            mask: 1,
        }));
        let out = run_differential(&spec, &cfg);
        set_seeded_bug(None);
        match out {
            DiffOutcome::Diverged(d) => {
                assert_eq!(d.engine, EngineId::NetlistSim);
                assert_eq!(d.kind, DivKind::Output);
            }
            other => panic!("seeded bug not detected: {other:?}"),
        }
        assert!(matches!(
            run_differential(&spec, &cfg),
            DiffOutcome::Agree { .. }
        ));
    }
}
