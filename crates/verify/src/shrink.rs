//! Delta-debugging shrinker: reduce a diverging [`DesignSpec`] to a
//! minimal reproducing design.
//!
//! The shrinker is greedy over a strictly-decreasing complexity metric:
//! each round it enumerates candidate reductions from biggest win to
//! smallest (drop the memory/FIFO/display, clear wires, delete statements,
//! flatten `if`/`case` bodies into their parents, hoist subexpressions,
//! collapse subtrees to literals, halve the cycle count), accepts the
//! first candidate the caller's predicate still confirms, and restarts.
//! Because every accepted step lowers the metric, termination is
//! structural — no fuel counter needed, though one bounds pathological
//! predicates anyway.
//!
//! The predicate is a black box. The fuzzer passes "still diverges with
//! the same engine and divergence kind", but the same machinery shrinks
//! any property (e.g. "still fails to synthesize").

use crate::spec::{count_stmts, DesignSpec, Expr, Finish, Leaf, Stmt};

/// Scalar complexity: strictly decreases on every accepted shrink step.
fn complexity(spec: &DesignSpec) -> u64 {
    let mut nodes: u64 = 0;
    let mut probe = spec.clone();
    probe.for_each_expr_mut(&mut |_| nodes += 1);
    let mut c = u64::from(count_stmts(&spec.body)) * 1_000;
    c += nodes * 10;
    c += spec.wires.len() as u64 * 500;
    c += spec.nregs as u64 * 200;
    if spec.mem {
        c += 2_000;
    }
    if spec.fifo {
        c += 4_000;
    }
    if spec.display.is_some() {
        c += 800;
    }
    if spec.finish != Finish::Never {
        c += 400;
    }
    c += u64::from(spec.cycles);
    c
}

/// Deletes the `target`-th statement (preorder) from a body tree.
fn remove_stmt_at(body: &mut Vec<Stmt>, target: &mut usize) -> bool {
    let mut i = 0;
    while i < body.len() {
        if *target == 0 {
            body.remove(i);
            return true;
        }
        *target -= 1;
        let done = match &mut body[i] {
            Stmt::If { then_, else_, .. } => {
                remove_stmt_at(then_, target) || remove_stmt_at(else_, target)
            }
            Stmt::Case {
                arm0,
                arm1,
                default,
                ..
            } => {
                remove_stmt_at(arm0, target)
                    || remove_stmt_at(arm1, target)
                    || remove_stmt_at(default, target)
            }
            _ => false,
        };
        if done {
            return true;
        }
        i += 1;
    }
    false
}

/// Replaces the `target`-th statement, if it is an `if`/`case`, with the
/// concatenation of its child statements (dropping the condition).
fn flatten_stmt_at(body: &mut Vec<Stmt>, target: &mut usize) -> bool {
    let mut i = 0;
    while i < body.len() {
        if *target == 0 {
            let kids = match &mut body[i] {
                Stmt::If { then_, else_, .. } => {
                    let mut k = std::mem::take(then_);
                    k.append(else_);
                    k
                }
                Stmt::Case {
                    arm0,
                    arm1,
                    default,
                    ..
                } => {
                    let mut k = std::mem::take(arm0);
                    k.append(arm1);
                    k.append(default);
                    k
                }
                _ => return true, // leaf statement: nothing to flatten
            };
            body.splice(i..=i, kids);
            return true;
        }
        *target -= 1;
        let done = match &mut body[i] {
            Stmt::If { then_, else_, .. } => {
                flatten_stmt_at(then_, target) || flatten_stmt_at(else_, target)
            }
            Stmt::Case {
                arm0,
                arm1,
                default,
                ..
            } => {
                flatten_stmt_at(arm0, target)
                    || flatten_stmt_at(arm1, target)
                    || flatten_stmt_at(default, target)
            }
            _ => false,
        };
        if done {
            return true;
        }
        i += 1;
    }
    false
}

/// Rewrites the `target`-th expression site with `make(old)`.
fn rewrite_expr_at(spec: &mut DesignSpec, target: usize, make: impl Fn(&Expr) -> Option<Expr>) {
    let mut idx = 0usize;
    spec.for_each_expr_mut(&mut |e| {
        if idx == target {
            if let Some(n) = make(e) {
                *e = n;
            }
        }
        idx += 1;
    });
}

/// Candidate reductions of `spec`, biggest wins first. Every candidate is
/// already sanitized.
fn candidates(spec: &DesignSpec) -> Vec<DesignSpec> {
    let mut out = Vec::new();
    let mut push = |mut c: DesignSpec| {
        c.sanitize();
        out.push(c);
    };

    // Structural drops: whole features at a time.
    if spec.fifo {
        let mut c = spec.clone();
        c.fifo = false;
        c.fifo_din = Expr::Leaf(Leaf::InputA);
        push(c);
    }
    if spec.mem {
        let mut c = spec.clone();
        c.mem = false;
        push(c);
    }
    if !spec.wires.is_empty() {
        let mut c = spec.clone();
        c.wires.clear();
        push(c);
        for i in (0..spec.wires.len()).rev() {
            let mut c = spec.clone();
            c.wires.remove(i);
            push(c);
        }
    }
    if spec.display.is_some() {
        let mut c = spec.clone();
        c.display = None;
        push(c);
    }
    if spec.finish != Finish::Never {
        let mut c = spec.clone();
        c.finish = Finish::Never;
        push(c);
    }
    if spec.nregs > 1 {
        let mut c = spec.clone();
        c.nregs -= 1;
        push(c);
    }

    // Statement deletion (last first: later statements often shadow
    // earlier ones, so dropping from the tail keeps more runs alive).
    let nstmts = count_stmts(&spec.body) as usize;
    for i in (0..nstmts).rev() {
        let mut c = spec.clone();
        let mut target = i;
        remove_stmt_at(&mut c.body, &mut target);
        push(c);
    }
    // Flatten compound statements into their parents.
    for i in 0..nstmts {
        let mut c = spec.clone();
        let mut target = i;
        if flatten_stmt_at(&mut c.body, &mut target) {
            push(c);
        }
    }

    // Expression hoists: replace a node with each of its children, or —
    // for non-trivial subtrees — with a literal zero.
    let nexprs = spec.count_exprs();
    for i in 0..nexprs {
        // Probe the site's child count without mutating.
        let mut arity = 0usize;
        {
            let mut idx = 0usize;
            let mut probe = spec.clone();
            probe.for_each_expr_mut(&mut |e| {
                if idx == i {
                    arity = e.children().len();
                }
                idx += 1;
            });
        }
        for k in 0..arity {
            let mut c = spec.clone();
            rewrite_expr_at(&mut c, i, |e| e.children().get(k).map(|c| (*c).clone()));
            push(c);
        }
        if arity > 0 {
            let mut c = spec.clone();
            rewrite_expr_at(&mut c, i, |_| {
                Some(Expr::Lit {
                    width: 16,
                    value: 0,
                })
            });
            push(c);
        }
    }

    // Shorten the run.
    if spec.cycles > 2 {
        let mut c = spec.clone();
        c.cycles = (spec.cycles / 2).max(2);
        push(c);
    }

    out
}

/// Greedily shrinks `spec` while `still_fails` keeps returning `true`.
///
/// Returns the smallest confirmed-failing spec found. The input spec is
/// assumed to fail (callers verify before shrinking); if nothing smaller
/// reproduces, the input is returned unchanged.
pub fn shrink(spec: &DesignSpec, still_fails: &mut dyn FnMut(&DesignSpec) -> bool) -> DesignSpec {
    let mut best = spec.clone();
    let mut best_score = complexity(&best);
    // Complexity strictly decreases on acceptance, so this terminates;
    // the fuel bound just caps predicate invocations on huge specs.
    let mut fuel: u32 = 4_000;
    'outer: loop {
        for cand in candidates(&best) {
            if fuel == 0 {
                break 'outer;
            }
            let score = complexity(&cand);
            if score >= best_score {
                continue;
            }
            fuel -= 1;
            if still_fails(&cand) {
                best = cand;
                best_score = score;
                continue 'outer;
            }
        }
        break;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use cascade_bits::Prng;

    /// Shrinking against an always-true predicate collapses any generated
    /// spec to (near-)nothing — and the result stays renderable.
    #[test]
    fn shrink_to_trivial_under_permissive_predicate() {
        for seed in 0..12 {
            let mut rng = Prng::new(seed + 500);
            let spec = DesignSpec::generate(&mut rng);
            let small = shrink(&spec, &mut |_| true);
            assert!(
                count_stmts(&small.body) == 0,
                "seed {seed}: {} stmts left\n{}",
                count_stmts(&small.body),
                small.render()
            );
            assert!(!small.mem && !small.fifo && small.wires.is_empty());
            assert!(small.top_lines() <= 9, "{}", small.render());
        }
    }

    /// A predicate keyed on a specific feature keeps exactly that feature.
    #[test]
    fn shrink_preserves_the_failing_feature() {
        let mut rng = Prng::new(77);
        let mut spec = DesignSpec::generate(&mut rng);
        spec.mem = true;
        spec.sanitize();
        let small = shrink(&spec, &mut |s| s.mem);
        assert!(small.mem);
        assert!(!small.fifo && small.wires.is_empty() && small.display.is_none());
        assert_eq!(count_stmts(&small.body), 0);
    }

    /// The statement remover and flattener agree with `count_stmts`
    /// preorder numbering.
    #[test]
    fn stmt_tree_surgery_is_preorder() {
        let body = vec![
            Stmt::Assign {
                reg: 0,
                rhs: Expr::Leaf(Leaf::InputA),
            },
            Stmt::If {
                cond: Expr::Leaf(Leaf::InputB),
                then_: vec![Stmt::Assign {
                    reg: 0,
                    rhs: Expr::Leaf(Leaf::Cc),
                }],
                else_: vec![],
            },
        ];
        // Deleting index 2 (the nested assign) keeps the if.
        let mut b = body.clone();
        let mut t = 2;
        assert!(remove_stmt_at(&mut b, &mut t));
        assert_eq!(count_stmts(&b), 2);
        assert!(matches!(&b[1], Stmt::If { then_, .. } if then_.is_empty()));
        // Flattening index 1 (the if) splices its child up.
        let mut b = body.clone();
        let mut t = 1;
        assert!(flatten_stmt_at(&mut b, &mut t));
        assert_eq!(count_stmts(&b), 2);
        assert!(matches!(&b[1], Stmt::Assign { .. }));
    }
}
