//! Coverage feedback for the fuzzer.
//!
//! Observations come out of a differential run as `(key, count)` pairs:
//! `nl:<kernel>` and `lvl:<level>` from the arena evaluator's profile
//! report, `sw:<opcode>` from the bytecode engine's, and `spec:<feature>`
//! structural features of the generated design itself. Raw counts are
//! collapsed into log2 buckets (the classic AFL trick) so "this kernel ran
//! 900 times instead of 800" is not novelty but "this kernel ran at all"
//! and "this kernel ran 10× more than ever before" both are.

use std::collections::BTreeMap;

/// Log2 bucket of a hit count: 0 stays 0, otherwise `1 + floor(log2 n)`
/// clamped to 16 buckets.
fn bucket(count: u64) -> u8 {
    if count == 0 {
        0
    } else {
        (64 - count.leading_zeros()).min(16) as u8
    }
}

/// The global coverage map: for every key, the set of log2 buckets ever
/// observed (as a bitmask — bucket b sets bit b).
#[derive(Debug, Default, Clone)]
pub struct CoverageMap {
    seen: BTreeMap<String, u32>,
}

impl CoverageMap {
    pub fn new() -> Self {
        Self::default()
    }

    /// Merges one run's observations; returns how many `(key, bucket)`
    /// pairs were new. A positive return means the run was novel and its
    /// spec is worth keeping in the corpus.
    pub fn record(&mut self, observations: &[(String, u64)]) -> u32 {
        let mut new_pairs = 0;
        for (key, count) in observations {
            let bit = 1u32 << bucket(*count);
            let entry = self.seen.entry(key.clone()).or_insert(0);
            if *entry & bit == 0 {
                *entry |= bit;
                new_pairs += 1;
            }
        }
        new_pairs
    }

    /// Distinct keys ever observed.
    pub fn keys(&self) -> usize {
        self.seen.len()
    }

    /// Total `(key, bucket)` pairs observed — the fuzzer's coverage
    /// metric.
    pub fn points(&self) -> u32 {
        self.seen.values().map(|m| m.count_ones()).sum()
    }

    /// Iterates keys with a given prefix (e.g. `"nl:"`) for reporting.
    pub fn keys_with_prefix<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a str> + 'a {
        self.seen
            .keys()
            .filter(move |k| k.starts_with(prefix))
            .map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket(0), 0);
        assert_eq!(bucket(1), 1);
        assert_eq!(bucket(2), 2);
        assert_eq!(bucket(3), 2);
        assert_eq!(bucket(4), 3);
        assert_eq!(bucket(1 << 40), 16);
    }

    #[test]
    fn novelty_is_per_bucket() {
        let mut map = CoverageMap::new();
        assert_eq!(map.record(&[("nl:Add".into(), 3)]), 1);
        // Same bucket: not novel.
        assert_eq!(map.record(&[("nl:Add".into(), 2)]), 0);
        // New bucket for the same key: novel again.
        assert_eq!(map.record(&[("nl:Add".into(), 100)]), 1);
        // New key.
        assert_eq!(map.record(&[("sw:Mul".into(), 1)]), 1);
        assert_eq!(map.keys(), 2);
        assert_eq!(map.points(), 3);
    }
}
