//! `verify` — the cascade-verify command line.
//!
//! ```text
//! verify fuzz   [--iters N] [--seed S] [--corpus DIR]
//! verify bmc    [--designs N] [--k K] [--seed S]
//! verify soak   [--sessions N] [--seed S]
//! verify replay FILE [FILE...]
//! ```
//!
//! Exit status is nonzero whenever a divergence, counterexample, or
//! invariant violation was found — the CI fuzz-smoke job is just this
//! binary with bounded arguments.

use cascade_bits::Prng;
use cascade_netlist::{synthesize, synthesize_raw};
use cascade_sim::{elaborate, library_from_source};
use cascade_verify::{
    check_equiv, BmcResult, CrashConfig, DesignSpec, DiffConfig, DiffOutcome, FuzzConfig, Fuzzer,
    SoakConfig,
};
use std::path::PathBuf;
use std::process::ExitCode;

fn parse_flag(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_u64(args: &[String], flag: &str, default: u64) -> u64 {
    parse_flag(args, flag)
        .map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("invalid value for {flag}: {v}");
                std::process::exit(2);
            })
        })
        .unwrap_or(default)
}

fn cmd_fuzz(args: &[String]) -> ExitCode {
    let iters = parse_u64(args, "--iters", 1000) as u32;
    let seed = parse_u64(args, "--seed", 1);
    let corpus = parse_flag(args, "--corpus").map(PathBuf::from);
    let mut fuzzer = Fuzzer::new(FuzzConfig {
        seed,
        iterations: iters,
        corpus_dir: corpus,
        ..FuzzConfig::default()
    });
    let start = std::time::Instant::now();
    let stats = fuzzer.run();
    let dt = start.elapsed().as_secs_f64();
    println!(
        "fuzz: {} designs in {dt:.2}s ({:.1}/s) | agreed {} skipped {} diverged {}",
        stats.executed,
        stats.executed as f64 / dt.max(1e-9),
        stats.agreed,
        stats.skipped,
        stats.diverged
    );
    println!(
        "coverage: {} keys, {} bucketed points | {} cycles simulated | corpus {}",
        stats.coverage_keys, stats.coverage_points, stats.cycles_total, stats.corpus_len
    );
    for repro in fuzzer.repros() {
        let d = &repro.divergence;
        println!(
            "  DIVERGENCE engine={} kind={:?} cycle={} detail={}{}",
            d.engine.name(),
            d.kind,
            d.cycle,
            d.detail,
            repro
                .path
                .as_ref()
                .map(|p| format!(" -> {}", p.display()))
                .unwrap_or_default()
        );
    }
    if stats.diverged > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_bmc(args: &[String]) -> ExitCode {
    let designs = parse_u64(args, "--designs", 20) as u32;
    let k = parse_u64(args, "--k", 16) as u32;
    let seed = parse_u64(args, "--seed", 1);
    let mut proved = 0u32;
    let mut refuted = 0u32;
    let mut unsupported = 0u32;
    let mut attempts = 0u32;
    let mut gates = 0u64;
    let mut conflicts = 0u64;
    let start = std::time::Instant::now();
    let mut salt = 0u64;
    while proved + refuted < designs && attempts < designs * 4 {
        attempts += 1;
        salt += 1;
        let mut rng = Prng::new(seed.wrapping_add(salt.wrapping_mul(0x9e37_79b9)));
        let spec = DesignSpec::generate(&mut rng);
        let Ok(lib) = library_from_source(&spec.render()) else {
            continue;
        };
        let Ok(design) = elaborate("T", &lib, &Default::default()) else {
            continue;
        };
        let (Ok(raw), Ok(opt)) = (synthesize_raw(&design), synthesize(&design)) else {
            continue;
        };
        match check_equiv(&raw, &opt, k) {
            BmcResult::Equivalent(stats) => {
                proved += 1;
                gates += stats.gates;
                conflicts += stats.conflicts;
            }
            BmcResult::Counterexample { frame, inputs, .. } => {
                refuted += 1;
                eprintln!(
                    "COUNTEREXAMPLE at frame {frame}: inputs {inputs:?}\n{}",
                    spec.render()
                );
            }
            BmcResult::Unsupported(_) => unsupported += 1,
        }
    }
    let dt = start.elapsed().as_secs_f64();
    let cycles = (proved + refuted) as u64 * k as u64;
    println!(
        "bmc: {proved} proved, {refuted} refuted, {unsupported} out of fragment at K={k} \
         in {dt:.2}s ({:.1} unrolled cycles/s) | {gates} gates, {conflicts} conflicts",
        cycles as f64 / dt.max(1e-9)
    );
    if refuted > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_soak(args: &[String]) -> ExitCode {
    let sessions = parse_u64(args, "--sessions", 1000) as u32;
    let seed = parse_u64(args, "--seed", 1);
    let cfg = SoakConfig {
        seed,
        sessions,
        ..SoakConfig::default()
    };
    let start = std::time::Instant::now();
    let report = cascade_verify::run_soak(&cfg);
    let dt = start.elapsed().as_secs_f64();
    println!(
        "soak: {} sessions / {} batches in {dt:.2}s ({:.1}/s) | {} ticks, {} display lines, \
         {} hibernates, {} faults injected",
        report.sessions,
        report.batches,
        report.sessions as f64 / dt.max(1e-9),
        report.ticks,
        report.display_lines,
        report.hibernates,
        report.faults_injected
    );
    for v in &report.violations {
        println!("  VIOLATION {v}");
    }
    if report.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_crash(args: &[String]) -> ExitCode {
    let defaults = CrashConfig::default();
    let cfg = CrashConfig {
        seed: parse_u64(args, "--seed", defaults.seed),
        seeds: parse_u64(args, "--seeds", defaults.seeds as u64) as u32,
        max_points: parse_u64(args, "--max-points", defaults.max_points as u64) as u32,
        tenants: parse_u64(args, "--tenants", defaults.tenants as u64) as u32,
        bursts: parse_u64(args, "--bursts", defaults.bursts as u64) as u32,
    };
    let start = std::time::Instant::now();
    let report = cascade_verify::run_crash(&cfg);
    let dt = start.elapsed().as_secs_f64();
    println!(
        "crash: {} crash points / {} write points across {} seeds in {dt:.2}s | \
         {} recoveries, {} resumes, {} records replayed, {} quarantined, {} warm hits",
        report.crash_points,
        report.write_points,
        cfg.seeds,
        report.recoveries,
        report.resumes,
        report.replayed_records,
        report.quarantined,
        report.warm_hits
    );
    for v in &report.violations {
        println!("  VIOLATION {v}");
    }
    if report.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_replay(args: &[String]) -> ExitCode {
    let files: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    if files.is_empty() {
        eprintln!("replay: no files given");
        return ExitCode::from(2);
    }
    let cfg = DiffConfig::default();
    let mut bad = 0;
    for file in files {
        let Ok(text) = std::fs::read_to_string(file) else {
            eprintln!("{file}: unreadable");
            bad += 1;
            continue;
        };
        match cascade_verify::fuzz::replay_repro(&text, &cfg) {
            Some(DiffOutcome::Agree { cycles_run, .. }) => {
                println!("{file}: engines agree over {cycles_run} cycles (fixed)");
            }
            Some(DiffOutcome::Diverged(d)) => {
                println!(
                    "{file}: STILL DIVERGES engine={} kind={:?} cycle={} detail={}",
                    d.engine.name(),
                    d.kind,
                    d.cycle,
                    d.detail
                );
                bad += 1;
            }
            Some(DiffOutcome::Skipped(why)) => {
                println!("{file}: skipped ({why})");
                bad += 1;
            }
            None => {
                eprintln!("{file}: not a cascade-verify repro file");
                bad += 1;
            }
        }
    }
    if bad == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("fuzz") => cmd_fuzz(&args[1..]),
        Some("bmc") => cmd_bmc(&args[1..]),
        Some("soak") => cmd_soak(&args[1..]),
        Some("crash") => cmd_crash(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        _ => {
            eprintln!(
                "usage: verify <fuzz|bmc|soak|crash|replay> [options]\n\
                 \n\
                 fuzz   [--iters N] [--seed S] [--corpus DIR]   differential fuzzing\n\
                 bmc    [--designs N] [--k K] [--seed S]        bounded equivalence checking\n\
                 soak   [--sessions N] [--seed S]               chaos soak of the serving stack\n\
                 crash  [--seeds N] [--seed S] [--tenants T]\n\
                 \x20       [--bursts B] [--max-points K]          crash-point fuzzing of durability\n\
                 replay FILE [FILE...]                          re-run corpus repro files"
            );
            ExitCode::from(2)
        }
    }
}
