//! Bounded sequential equivalence checking over 2-state netlists.
//!
//! [`check_equiv`] unrolls two synthesized [`Netlist`]s `K` cycles into a
//! single CNF miter and hands it to the in-tree CDCL core ([`crate::sat`]).
//! Both designs read the same symbolic inputs (tied by port name) every
//! frame; registers start from their declared initializers and memories
//! from zero, exactly as the execution engines initialize them. The miter
//! asserts that some frame disagrees on an output value, a task trigger,
//! or a firing task's arguments — UNSAT proves K-cycle equivalence, SAT
//! yields a concrete per-frame input counterexample.
//!
//! The bit-blaster mirrors `cascade_netlist::eval_cell` operator by
//! operator, width-extension rules included, with structural hashing and
//! constant folding at the gate level so logic shared between the two
//! netlists collapses to identical literals and never reaches the solver.
//! Division/remainder cells are outside the fragment (`Unsupported`), as
//! are netlists with more than one clock domain.
//!
//! The headline use: proving the post-synthesis optimization pipeline
//! (`balance_case_chains` + `prune_dead`) preserved a design, by checking
//! `synthesize_raw` output against `synthesize` output.

use crate::sat::{Lit, SatResult, Solver};
use cascade_bits::Bits;
use cascade_netlist::{Cell, CellOp, Def, NetId, Netlist};
use std::collections::HashMap;

/// Constant literals: variable 1 is pinned true by a unit clause.
const LIT_TRUE: Lit = 1;
const LIT_FALSE: Lit = -1;

/// Solver/blast statistics for reporting and benchmarks.
#[derive(Debug, Clone, Copy, Default)]
pub struct BmcStats {
    pub frames: u32,
    pub vars: usize,
    pub clauses: usize,
    pub gates: u64,
    pub decisions: u64,
    pub conflicts: u64,
    pub propagations: u64,
}

/// Equivalence verdict.
#[derive(Debug, Clone)]
pub enum BmcResult {
    /// No divergence within the bound.
    Equivalent(BmcStats),
    /// Concrete stimulus distinguishing the designs.
    Counterexample {
        /// First frame whose outputs/tasks disagree.
        frame: u32,
        /// Input values per frame: `(port, [frame0, frame1, ...])`.
        inputs: Vec<(String, Vec<u64>)>,
        stats: BmcStats,
    },
    /// The design pair is outside the checker's fragment, or the solver
    /// budget ran out.
    Unsupported(String),
}

// ---------------------------------------------------------------------
// Gate-level construction with hashing + folding.
// ---------------------------------------------------------------------

struct GateBuilder {
    solver: Solver,
    and_cache: HashMap<(Lit, Lit), Lit>,
    xor_cache: HashMap<(Lit, Lit), Lit>,
    gates: u64,
}

impl GateBuilder {
    fn new() -> Self {
        let mut solver = Solver::new();
        let t = solver.new_var();
        debug_assert_eq!(t, LIT_TRUE);
        solver.add_clause(&[LIT_TRUE]);
        GateBuilder {
            solver,
            and_cache: HashMap::new(),
            xor_cache: HashMap::new(),
            gates: 0,
        }
    }

    fn and2(&mut self, a: Lit, b: Lit) -> Lit {
        if a == LIT_FALSE || b == LIT_FALSE || a == -b {
            return LIT_FALSE;
        }
        if a == LIT_TRUE || a == b {
            return b;
        }
        if b == LIT_TRUE {
            return a;
        }
        let key = (a.min(b), a.max(b));
        if let Some(&g) = self.and_cache.get(&key) {
            return g;
        }
        let g = self.solver.new_var();
        self.solver.add_clause(&[-g, a]);
        self.solver.add_clause(&[-g, b]);
        self.solver.add_clause(&[g, -a, -b]);
        self.and_cache.insert(key, g);
        self.gates += 1;
        g
    }

    fn or2(&mut self, a: Lit, b: Lit) -> Lit {
        -self.and2(-a, -b)
    }

    fn xor2(&mut self, a: Lit, b: Lit) -> Lit {
        if a == LIT_FALSE {
            return b;
        }
        if b == LIT_FALSE {
            return a;
        }
        if a == LIT_TRUE {
            return -b;
        }
        if b == LIT_TRUE {
            return -a;
        }
        if a == b {
            return LIT_FALSE;
        }
        if a == -b {
            return LIT_TRUE;
        }
        // xor(±a, ±b) differs from xor(|a|, |b|) only in output sign.
        let flip = (a < 0) ^ (b < 0);
        let (x, y) = (a.abs().min(b.abs()), a.abs().max(b.abs()));
        let g = match self.xor_cache.get(&(x, y)) {
            Some(&g) => g,
            None => {
                let g = self.solver.new_var();
                self.solver.add_clause(&[-g, x, y]);
                self.solver.add_clause(&[-g, -x, -y]);
                self.solver.add_clause(&[g, -x, y]);
                self.solver.add_clause(&[g, x, -y]);
                self.xor_cache.insert((x, y), g);
                self.gates += 1;
                g
            }
        };
        if flip {
            -g
        } else {
            g
        }
    }

    fn mux(&mut self, s: Lit, t: Lit, e: Lit) -> Lit {
        if s == LIT_TRUE {
            return t;
        }
        if s == LIT_FALSE || t == e {
            return e;
        }
        let a = self.and2(s, t);
        let b = self.and2(-s, e);
        self.or2(a, b)
    }

    /// Full adder: returns (sum, carry).
    fn full_add(&mut self, a: Lit, b: Lit, c: Lit) -> (Lit, Lit) {
        let axb = self.xor2(a, b);
        let sum = self.xor2(axb, c);
        let ab = self.and2(a, b);
        let axbc = self.and2(axb, c);
        let carry = self.or2(ab, axbc);
        (sum, carry)
    }
}

// ---------------------------------------------------------------------
// Word-level vectors (LSB-first).
// ---------------------------------------------------------------------

type Word = Vec<Lit>;

fn const_word(b: &Bits) -> Word {
    (0..b.width())
        .map(|i| if b.bit(i) { LIT_TRUE } else { LIT_FALSE })
        .collect()
}

fn zext(v: &[Lit], w: u32) -> Word {
    let mut out = v.to_vec();
    out.resize(w as usize, LIT_FALSE);
    out.truncate(w as usize);
    out
}

fn sext(v: &[Lit], w: u32) -> Word {
    match v.last() {
        None => vec![LIT_FALSE; w as usize],
        Some(&sign) => {
            let mut out = v.to_vec();
            out.resize(w as usize, sign);
            out.truncate(w as usize);
            out
        }
    }
}

impl GateBuilder {
    fn w_not(&mut self, a: &[Lit]) -> Word {
        a.iter().map(|&l| -l).collect()
    }

    fn w_bitwise(&mut self, op: CellOp, a: &[Lit], b: &[Lit], w: u32) -> Word {
        let m = a.len().max(b.len()) as u32;
        let (a, b) = (zext(a, m), zext(b, m));
        let mut full = Word::with_capacity(m as usize);
        for (&x, &y) in a.iter().zip(&b) {
            let g = match op {
                CellOp::And => self.and2(x, y),
                CellOp::Or => self.or2(x, y),
                CellOp::Xor => self.xor2(x, y),
                CellOp::Xnor => -self.xor2(x, y),
                _ => unreachable!(),
            };
            full.push(g);
        }
        zext(&full, w)
    }

    /// Ripple add of equal-width words with carry-in; result same width.
    fn w_add_core(&mut self, a: &[Lit], b: &[Lit], mut carry: Lit) -> Word {
        let mut out = Word::with_capacity(a.len());
        for (&x, &y) in a.iter().zip(b) {
            let (s, c) = self.full_add(x, y, carry);
            out.push(s);
            carry = c;
        }
        out
    }

    fn w_add(&mut self, a: &[Lit], b: &[Lit], w: u32) -> Word {
        let m = a.len().max(b.len()) as u32;
        let (a, b) = (zext(a, m), zext(b, m));
        let full = self.w_add_core(&a, &b, LIT_FALSE);
        zext(&full, w)
    }

    fn w_sub(&mut self, a: &[Lit], b: &[Lit], w: u32) -> Word {
        let m = a.len().max(b.len()) as u32;
        let (a, b) = (zext(a, m), zext(b, m));
        let nb = self.w_not(&b);
        let full = self.w_add_core(&a, &nb, LIT_TRUE);
        zext(&full, w)
    }

    fn w_neg(&mut self, a: &[Lit], w: u32) -> Word {
        let zero = vec![LIT_FALSE; a.len()];
        let na = self.w_not(a);
        let full = self.w_add_core(&zero, &na, LIT_TRUE);
        zext(&full, w)
    }

    fn w_mul(&mut self, a: &[Lit], b: &[Lit], w: u32) -> Word {
        let m = a.len().max(b.len());
        let a = zext(a, m as u32);
        let b = zext(b, m as u32);
        let mut acc = vec![LIT_FALSE; m];
        for (i, &bi) in b.iter().enumerate() {
            if bi == LIT_FALSE || i >= m {
                continue;
            }
            // Partial product (a << i) gated by b[i], truncated to m bits.
            let mut pp = vec![LIT_FALSE; m];
            for j in 0..m - i {
                pp[i + j] = self.and2(a[j], bi);
            }
            acc = self.w_add_core(&acc, &pp, LIT_FALSE);
        }
        zext(&acc, w)
    }

    /// Dynamic shifts at the width of `a` (amounts at or past the width
    /// produce zero / sign fill), resized to `w` afterwards — matching
    /// `Bits::shl`/`shr`/`ashr` + `shift_amount`'s low-64-bit read.
    fn w_shift(&mut self, op: CellOp, a: &[Lit], b: &[Lit], w: u32) -> Word {
        let wa = a.len();
        if wa == 0 {
            return zext(&[], w);
        }
        let fill = match op {
            CellOp::AShr => a[wa - 1],
            _ => LIT_FALSE,
        };
        // Barrel stages for shift bits that can matter; every other bit
        // below 64 ORs into an "out of range" flag. Bits 64+ are ignored,
        // as `shift_amount` reads only the low 64 bits of the amount.
        let mut cur = a.to_vec();
        let mut oob = LIT_FALSE;
        for (i, &bi) in b.iter().enumerate() {
            if i >= 64 {
                continue;
            }
            if i >= 32 || (1u64 << i) >= wa as u64 {
                oob = self.or2(oob, bi);
                continue;
            }
            let sh = 1usize << i;
            let mut next = Word::with_capacity(wa);
            for (j, &keep) in cur.iter().enumerate() {
                let shifted = match op {
                    CellOp::Shl => {
                        if j >= sh {
                            cur[j - sh]
                        } else {
                            LIT_FALSE
                        }
                    }
                    _ => {
                        if j + sh < wa {
                            cur[j + sh]
                        } else {
                            fill
                        }
                    }
                };
                next.push(self.mux(bi, shifted, keep));
            }
            cur = next;
        }
        let out: Word = cur.iter().map(|&l| self.mux(oob, fill, l)).collect();
        zext(&out, w)
    }

    /// 1-bit equality of zero-extended words.
    fn w_eq(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        let m = a.len().max(b.len()) as u32;
        let (a, b) = (zext(a, m), zext(b, m));
        let mut acc = LIT_TRUE;
        for (&x, &y) in a.iter().zip(&b) {
            let same = -self.xor2(x, y);
            acc = self.and2(acc, same);
        }
        acc
    }

    /// 1-bit unsigned less-than of zero-extended words.
    fn w_ltu(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        let m = a.len().max(b.len()) as u32;
        let (a, b) = (zext(a, m), zext(b, m));
        let mut lt = LIT_FALSE;
        for (&x, &y) in a.iter().zip(&b) {
            // From LSB up: lt' = (¬x ∧ y) ∨ ((x ≡ y) ∧ lt)
            let xy = self.and2(-x, y);
            let same = -self.xor2(x, y);
            let keep = self.and2(same, lt);
            lt = self.or2(xy, keep);
        }
        lt
    }

    /// Signed less-than: sign-extend each from its own width, flip MSBs,
    /// compare unsigned (matching `Bits::cmp_signed`).
    fn w_lts(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        let m = a.len().max(b.len()).max(1) as u32;
        let mut a = sext(a, m);
        let mut b = sext(b, m);
        let top = (m - 1) as usize;
        a[top] = -a[top];
        b[top] = -b[top];
        self.w_ltu(&a, &b)
    }

    fn w_redor(&mut self, a: &[Lit]) -> Lit {
        let mut acc = LIT_FALSE;
        for &l in a {
            acc = self.or2(acc, l);
        }
        acc
    }

    fn w_redand(&mut self, a: &[Lit]) -> Lit {
        let mut acc = LIT_TRUE;
        for &l in a {
            acc = self.and2(acc, l);
        }
        acc
    }

    fn w_redxor(&mut self, a: &[Lit]) -> Lit {
        let mut acc = LIT_FALSE;
        for &l in a {
            acc = self.xor2(acc, l);
        }
        acc
    }

    fn w_mux(&mut self, s: Lit, t: &[Lit], e: &[Lit], w: u32) -> Word {
        let t = zext(t, w);
        let e = zext(e, w);
        t.iter().zip(&e).map(|(&x, &y)| self.mux(s, x, y)).collect()
    }
}

// ---------------------------------------------------------------------
// Netlist blasting.
// ---------------------------------------------------------------------

/// Sequential state of one netlist at a frame boundary.
struct FrameState {
    regs: Vec<Word>,
    /// Per memory, per word.
    mems: Vec<Vec<Word>>,
}

/// Net values of one netlist within one frame.
struct Frame {
    nets: Vec<Option<Word>>,
}

fn initial_state(nl: &Netlist) -> FrameState {
    FrameState {
        regs: nl.regs.iter().map(|r| const_word(&r.init)).collect(),
        mems: nl
            .mems
            .iter()
            .map(|m| vec![vec![LIT_FALSE; m.width as usize]; m.words as usize])
            .collect(),
    }
}

fn blast_cell(gb: &mut GateBuilder, cell: &Cell, ins: &[&Word], w: u32) -> Result<Word, String> {
    let a = ins.first().copied();
    let b = ins.get(1).copied();
    use CellOp::*;
    Ok(match cell.op {
        Not => zext(&gb.w_not(a.expect("input")), w),
        Neg => gb.w_neg(a.expect("input"), w),
        RedAnd => vec![gb.w_redand(a.expect("input"))],
        RedOr => vec![gb.w_redor(a.expect("input"))],
        RedXor => vec![gb.w_redxor(a.expect("input"))],
        LogNot => vec![-gb.w_redor(a.expect("input"))],
        Add => gb.w_add(a.expect("a"), b.expect("b"), w),
        Sub => gb.w_sub(a.expect("a"), b.expect("b"), w),
        Mul => gb.w_mul(a.expect("a"), b.expect("b"), w),
        DivU | DivS | RemU | RemS => {
            return Err("division/remainder cells are outside the BMC fragment".into())
        }
        And | Or | Xor | Xnor => gb.w_bitwise(cell.op, a.expect("a"), b.expect("b"), w),
        Shl | Shr | AShr => gb.w_shift(cell.op, a.expect("a"), b.expect("b"), w),
        Eq => vec![gb.w_eq(a.expect("a"), b.expect("b"))],
        Ne => vec![-gb.w_eq(a.expect("a"), b.expect("b"))],
        LtU => vec![gb.w_ltu(a.expect("a"), b.expect("b"))],
        LeU => vec![-gb.w_ltu(b.expect("b"), a.expect("a"))],
        LtS => vec![gb.w_lts(a.expect("a"), b.expect("b"))],
        LeS => vec![-gb.w_lts(b.expect("b"), a.expect("a"))],
        Mux => {
            let s = gb.w_redor(ins[0]);
            gb.w_mux(s, ins[1], ins[2], w)
        }
        Concat => {
            // Inputs are MSB-first; accumulate LSB-first.
            let mut acc: Word = Vec::new();
            for part in ins.iter().rev() {
                acc.extend_from_slice(part);
            }
            zext(&acc, w)
        }
        Slice { offset } => {
            let v = a.expect("input");
            (0..w)
                .map(|i| *v.get((offset + i) as usize).unwrap_or(&LIT_FALSE))
                .collect()
        }
        DynSlice => {
            // slice(off, w) == (a >> off) truncated to w, zero-filled.
            gb.w_shift(CellOp::Shr, a.expect("input"), b.expect("offset"), w)
        }
        ZExt => zext(a.expect("input"), w),
        SExt => sext(a.expect("input"), w),
        Repeat { count } => {
            let v = a.expect("input");
            let mut acc: Word = Vec::with_capacity(v.len() * count as usize);
            for _ in 0..count {
                acc.extend_from_slice(v);
            }
            zext(&acc, w)
        }
    })
}

/// Evaluates every net of `nl` for one frame.
fn blast_frame(
    gb: &mut GateBuilder,
    nl: &Netlist,
    order: &[NetId],
    state: &FrameState,
    inputs: &HashMap<String, Word>,
) -> Result<Frame, String> {
    let mut nets: Vec<Option<Word>> = vec![None; nl.nets.len()];
    // Non-cell defs first (any order), then cells in topological order.
    for (i, info) in nl.nets.iter().enumerate() {
        let w = info.width;
        nets[i] = match &info.def {
            Def::Input => {
                let name = info.name.as_deref().unwrap_or("");
                let word = inputs
                    .get(name)
                    .ok_or_else(|| format!("unbound input `{name}`"))?;
                Some(zext(word, w))
            }
            Def::Undriven => Some(vec![LIT_FALSE; w as usize]),
            Def::Const(c) => Some(zext(&const_word(c), w)),
            Def::Reg(r) => Some(zext(&state.regs[r.0 as usize], w)),
            Def::Cell(_) | Def::MemRead { .. } => None,
        };
    }
    for &net in order {
        let i = net.0 as usize;
        if nets[i].is_some() {
            continue;
        }
        let w = nl.nets[i].width;
        let value = match &nl.nets[i].def {
            Def::Cell(cell) => {
                let ins: Vec<&Word> = cell
                    .inputs
                    .iter()
                    .map(|inp| nets[inp.0 as usize].as_ref().expect("topological order"))
                    .collect();
                let owned: Vec<Word> = ins.into_iter().cloned().collect();
                let refs: Vec<&Word> = owned.iter().collect();
                blast_cell(gb, cell, &refs, w)?
            }
            Def::MemRead { mem, addr } => {
                // Async read: eq-mux chain over all words, zero default
                // (out-of-range reads are zero in every engine).
                let addr_w = nets[addr.0 as usize].clone().expect("topological order");
                let mut acc = vec![LIT_FALSE; w as usize];
                for (wi, word) in state.mems[mem.0 as usize].iter().enumerate() {
                    let here = const_word(&Bits::from_u64(64, wi as u64));
                    let sel = gb.w_eq(&addr_w, &here);
                    acc = gb.w_mux(sel, word, &acc, w);
                }
                acc
            }
            _ => continue,
        };
        nets[i] = Some(value);
    }
    Ok(Frame { nets })
}

/// Computes the next-frame state from this frame's net values.
fn next_state(gb: &mut GateBuilder, nl: &Netlist, frame: &Frame, state: &FrameState) -> FrameState {
    let regs = nl
        .regs
        .iter()
        .map(|r| {
            let w = nl.width(r.q);
            zext(frame.nets[r.d.0 as usize].as_ref().expect("driven"), w)
        })
        .collect();
    let mems = nl
        .mems
        .iter()
        .enumerate()
        .map(|(mi, m)| {
            let mut words = state.mems[mi].clone();
            // Write ports apply in declaration order: later ports win on
            // address collisions; out-of-range writes are dropped.
            for port in &m.write_ports {
                let en_w = frame.nets[port.enable.0 as usize].clone().expect("driven");
                let en = gb.w_redor(&en_w);
                let addr = frame.nets[port.addr.0 as usize].clone().expect("driven");
                let data = zext(
                    frame.nets[port.data.0 as usize].as_ref().expect("driven"),
                    m.width,
                );
                for (wi, word) in words.iter_mut().enumerate() {
                    let here = const_word(&Bits::from_u64(64, wi as u64));
                    let hit = gb.w_eq(&addr, &here);
                    let sel = gb.and2(en, hit);
                    *word = gb.w_mux(sel, &data, word, m.width);
                }
            }
            words
        })
        .collect();
    FrameState { regs, mems }
}

/// Per-frame miter over outputs and task behavior; true iff they disagree.
fn frame_diff(
    gb: &mut GateBuilder,
    a: &Netlist,
    af: &Frame,
    b: &Netlist,
    bf: &Frame,
) -> Result<Lit, String> {
    let mut diff = LIT_FALSE;
    let b_outs: HashMap<&str, NetId> = b.outputs.iter().map(|(n, id)| (n.as_str(), *id)).collect();
    for (name, a_net) in &a.outputs {
        let Some(&b_net) = b_outs.get(name.as_str()) else {
            return Err(format!("output `{name}` missing from second netlist"));
        };
        let av = af.nets[a_net.0 as usize].clone().expect("driven");
        let bv = bf.nets[b_net.0 as usize].clone().expect("driven");
        let eq = gb.w_eq(&av, &bv);
        diff = gb.or2(diff, -eq);
    }
    if a.tasks.len() != b.tasks.len() {
        return Err("task lists differ in length".into());
    }
    for (ta, tb) in a.tasks.iter().zip(&b.tasks) {
        let ta_trig = af.nets[ta.trigger.0 as usize].clone().expect("driven");
        let tb_trig = bf.nets[tb.trigger.0 as usize].clone().expect("driven");
        let trig_a = gb.w_redor(&ta_trig);
        let trig_b = gb.w_redor(&tb_trig);
        let trig_x = gb.xor2(trig_a, trig_b);
        diff = gb.or2(diff, trig_x);
        if ta.args.len() != tb.args.len() {
            return Err("task argument lists differ".into());
        }
        for (aa, ba) in ta.args.iter().zip(&tb.args) {
            let av = af.nets[aa.0 as usize].clone().expect("driven");
            let bv = bf.nets[ba.0 as usize].clone().expect("driven");
            let eq = gb.w_eq(&av, &bv);
            // Only firing tasks pin their arguments.
            let bad = gb.and2(trig_a, -eq);
            diff = gb.or2(diff, bad);
        }
    }
    Ok(diff)
}

/// Bounded equivalence check of two netlists over `k` cycles, with an
/// explicit SAT conflict budget (`0` = unlimited).
///
/// See the module docs for the exact contract.
pub fn check_equiv_budget(a: &Netlist, b: &Netlist, k: u32, max_conflicts: u64) -> BmcResult {
    for nl in [a, b] {
        if nl.clocks.len() > 1 {
            return BmcResult::Unsupported("multiple clock domains".into());
        }
    }
    let order_a = match cascade_netlist::levelize(a) {
        Ok(o) => o,
        Err(e) => return BmcResult::Unsupported(format!("levelize: {e:?}")),
    };
    let order_b = match cascade_netlist::levelize(b) {
        Ok(o) => o,
        Err(e) => return BmcResult::Unsupported(format!("levelize: {e:?}")),
    };

    let mut gb = GateBuilder::new();

    // The union of both designs' input ports, shared per frame.
    let mut input_names: Vec<(String, u32)> = Vec::new();
    for nl in [a, b] {
        for &net in &nl.inputs {
            let info = &nl.nets[net.0 as usize];
            let name = info.name.clone().unwrap_or_default();
            match input_names.iter_mut().find(|(n, _)| *n == name) {
                Some((_, w)) => *w = (*w).max(info.width),
                None => input_names.push((name, info.width)),
            }
        }
    }

    let mut state_a = initial_state(a);
    let mut state_b = initial_state(b);
    let mut frame_inputs: Vec<HashMap<String, Word>> = Vec::new();
    let mut diffs: Vec<Lit> = Vec::new();

    for _ in 0..k {
        let mut inputs: HashMap<String, Word> = HashMap::new();
        for (name, w) in &input_names {
            let word: Word = (0..*w).map(|_| gb.solver.new_var()).collect();
            inputs.insert(name.clone(), word);
        }
        let fa = match blast_frame(&mut gb, a, &order_a, &state_a, &inputs) {
            Ok(f) => f,
            Err(e) => return BmcResult::Unsupported(e),
        };
        let fb = match blast_frame(&mut gb, b, &order_b, &state_b, &inputs) {
            Ok(f) => f,
            Err(e) => return BmcResult::Unsupported(e),
        };
        let d = match frame_diff(&mut gb, a, &fa, b, &fb) {
            Ok(d) => d,
            Err(e) => return BmcResult::Unsupported(e),
        };
        diffs.push(d);
        state_a = next_state(&mut gb, a, &fa, &state_a);
        state_b = next_state(&mut gb, b, &fb, &state_b);
        frame_inputs.push(inputs);
    }

    // Some frame must differ.
    gb.solver.add_clause(&diffs);

    let stats_of = |gb: &GateBuilder| BmcStats {
        frames: k,
        vars: gb.solver.num_vars(),
        clauses: gb.solver.num_clauses(),
        gates: gb.gates,
        decisions: gb.solver.stats.decisions,
        conflicts: gb.solver.stats.conflicts,
        propagations: gb.solver.stats.propagations,
    };

    match gb.solver.solve(max_conflicts) {
        SatResult::Unsat => BmcResult::Equivalent(stats_of(&gb)),
        SatResult::Unknown => BmcResult::Unsupported(format!(
            "solver conflict budget ({max_conflicts}) exhausted"
        )),
        SatResult::Sat => {
            let frame = diffs
                .iter()
                .position(|&d| gb.solver.model_value(d))
                .unwrap_or(0) as u32;
            let mut inputs: Vec<(String, Vec<u64>)> = Vec::new();
            for (name, _) in &input_names {
                let mut per_frame = Vec::with_capacity(k as usize);
                for fi in &frame_inputs {
                    let word = &fi[name];
                    let mut v = 0u64;
                    for (i, &l) in word.iter().enumerate().take(64) {
                        if gb.solver.model_value(l) {
                            v |= 1 << i;
                        }
                    }
                    per_frame.push(v);
                }
                inputs.push((name.clone(), per_frame));
            }
            BmcResult::Counterexample {
                frame,
                inputs,
                stats: stats_of(&gb),
            }
        }
    }
}

/// [`check_equiv_budget`] with the default conflict budget.
pub fn check_equiv(a: &Netlist, b: &Netlist, k: u32) -> BmcResult {
    check_equiv_budget(a, b, k, 2_000_000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DesignSpec;
    use cascade_bits::Prng;
    use cascade_netlist::{synthesize, synthesize_raw};
    use cascade_sim::{elaborate, library_from_source};

    fn netlists_for(src: &str) -> Option<(Netlist, Netlist)> {
        let lib = library_from_source(src).ok()?;
        let design = elaborate("T", &lib, &Default::default()).ok()?;
        let raw = synthesize_raw(&design).ok()?;
        let opt = synthesize(&design).ok()?;
        Some((raw, opt))
    }

    /// The production pipeline check: raw vs optimized netlists of
    /// generated designs are equivalent at K=8.
    #[test]
    fn raw_vs_optimized_generated_specs() {
        let mut proved = 0;
        for seed in 0..12 {
            let mut rng = Prng::new(seed + 4000);
            let spec = DesignSpec::generate(&mut rng);
            let Some((raw, opt)) = netlists_for(&spec.render()) else {
                continue;
            };
            match check_equiv(&raw, &opt, 8) {
                BmcResult::Equivalent(_) => proved += 1,
                BmcResult::Counterexample { frame, inputs, .. } => panic!(
                    "seed {seed}: optimizer miscompiled (frame {frame}, inputs {inputs:?})\n{}",
                    spec.render()
                ),
                BmcResult::Unsupported(_) => {}
            }
        }
        assert!(proved >= 9, "only {proved}/12 proved");
    }

    /// A seeded miscompile (mux arms swapped post-synthesis) is caught
    /// with a concrete counterexample.
    #[test]
    fn seeded_miscompile_yields_counterexample() {
        let src = "module T(input wire clk, input wire [15:0] a, input wire [15:0] b, output wire [15:0] o0);\n\
                   reg [15:0] r0 = 0;\n\
                   always @(posedge clk) r0 <= (a[0]) ? (a + b) : (a - b);\n\
                   assign o0 = r0;\nendmodule";
        let (raw, opt) = netlists_for(src).expect("synthesizes");
        assert!(matches!(
            check_equiv(&raw, &opt, 4),
            BmcResult::Equivalent(_)
        ));
        // Tamper: swap the arms of every mux in the optimized netlist.
        let mut bad = opt.clone();
        for n in &mut bad.nets {
            if let Def::Cell(c) = &mut n.def {
                if c.op == CellOp::Mux {
                    c.inputs.swap(1, 2);
                }
            }
        }
        match check_equiv(&raw, &bad, 4) {
            BmcResult::Counterexample { inputs, .. } => {
                assert!(inputs.iter().any(|(n, _)| n == "a"));
            }
            other => panic!("tampered netlist not refuted: {other:?}"),
        }
    }

    /// A design checked against itself folds away structurally: the
    /// solver should close the miter without a single conflict.
    #[test]
    fn self_equivalence_is_structural() {
        let src = "module T(input wire clk, input wire [15:0] a, input wire [15:0] b, output wire [15:0] o0);\n\
                   reg [15:0] r0 = 3;\n\
                   always @(posedge clk) r0 <= r0 + a;\n\
                   assign o0 = r0;\nendmodule";
        let (raw, _) = netlists_for(src).expect("synthesizes");
        match check_equiv(&raw, &raw, 16) {
            BmcResult::Equivalent(stats) => {
                assert_eq!(stats.conflicts, 0, "self-miter should fold to false");
            }
            other => panic!("{other:?}"),
        }
    }

    /// Memories participate in the transition relation.
    #[test]
    fn memory_designs_check() {
        let src = "module T(input wire clk, input wire [15:0] a, input wire [15:0] b, output wire [15:0] om);\n\
                   reg [15:0] m [0:7];\n\
                   reg [7:0] cc = 0;\n\
                   always @(posedge clk) begin\n\
                     cc <= cc + 1;\n\
                     m[a[2:0]] <= b;\n\
                   end\n\
                   assign om = m[cc[2:0]];\nendmodule";
        let (raw, opt) = netlists_for(src).expect("synthesizes");
        assert!(matches!(
            check_equiv(&raw, &opt, 6),
            BmcResult::Equivalent(_)
        ));
    }
}
